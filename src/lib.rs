//! # tracemonkey
//!
//! A from-scratch Rust reproduction of **"Trace-based Just-in-Time Type
//! Specialization for Dynamic Languages"** (Gal et al., PLDI 2009) — the
//! TraceMonkey system: a trace-recording, type-specializing JIT for a
//! dynamic language, together with the full substrate it needs (language
//! frontend, bytecode interpreter, object model with shapes, mark-sweep
//! GC, LIR optimizer, and a register-allocating backend) and the baseline
//! engines its evaluation compares against.
//!
//! ## Quick start
//!
//! ```
//! use tracemonkey::{Engine, Vm};
//!
//! let mut vm = Vm::new(Engine::Tracing);
//! let v = vm.eval("
//!     var primes = [];
//!     for (var i = 0; i < 100; i++) primes[i] = true;
//!     for (var i = 2; i < 100; ++i) {
//!         if (!primes[i]) continue;
//!         for (var k = i + i; k < 100; k += i) primes[k] = false;
//!     }
//!     var count = 0;
//!     for (var i = 2; i < 100; i++) if (primes[i]) count++;
//!     count
//! ")?;
//! assert_eq!(vm.realm.heap.number_value(v), Some(25.0));
//! # Ok::<(), tracemonkey::VmError>(())
//! ```
//!
//! ## Engines
//!
//! * [`Engine::Interp`] — baseline bytecode interpreter (the paper's
//!   SpiderMonkey baseline);
//! * [`Engine::FastInterp`] — interpreter with inline fast paths (the
//!   SquirrelFish Extreme stand-in);
//! * [`Engine::Method`] — whole-function compiler without type
//!   specialization (the 2009 V8 stand-in);
//! * [`Engine::Tracing`] — the TraceMonkey tracing JIT.
//!
//! See `DESIGN.md` for the architecture and the substitutions made
//! relative to the paper, and `EXPERIMENTS.md` for the reproduced
//! evaluation.

pub use tm_bytecode as bytecode;
pub use tm_core as jit;
pub use tm_frontend as frontend;
pub use tm_interp as interp;
pub use tm_lir as lir;
pub use tm_methodjit as methodjit;
pub use tm_nanojit as nanojit;
pub use tm_runtime as runtime;

pub use tm_core::config::JitOptions;
pub use tm_core::monitor::Monitor;
pub use tm_core::persist::{CacheError, CacheHandle};
pub use tm_core::{
    CompilerPool, MultiTenantVm, RealmJob, RealmReport, SharedCacheStats, SharedCodeCache,
};
pub use tm_runtime::{Realm, RuntimeError, Value};

use std::path::PathBuf;
use std::sync::Arc;

use tm_core::persist::cache_path_from_env;
use tm_core::profiler::ProfileStats;
use tm_interp::{Interp, RunExit};
use tm_methodjit::MethodVm;

/// Which execution engine a [`Vm`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Baseline bytecode interpreter (SpiderMonkey stand-in, 1.0x).
    Interp,
    /// Interpreter with inline fast paths (SquirrelFish Extreme stand-in).
    FastInterp,
    /// Method-at-a-time compiler without type specialization (2009 V8
    /// stand-in).
    Method,
    /// The TraceMonkey tracing JIT.
    Tracing,
}

/// An error from [`Vm::eval`].
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Lexing/parsing failed.
    Parse(tm_frontend::ParseError),
    /// Bytecode compilation failed.
    Compile(tm_bytecode::CompileError),
    /// The guest program raised an error.
    Runtime(RuntimeError),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Parse(e) => e.fmt(f),
            VmError::Compile(e) => e.fmt(f),
            VmError::Runtime(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for VmError {}

/// A complete guest-language virtual machine over any of the four engines.
#[derive(Debug)]
pub struct Vm {
    /// The execution environment (globals persist across `eval` calls).
    pub realm: Realm,
    engine: Engine,
    opts: JitOptions,
    monitor: Option<Monitor>,
    last_interp: Option<Interp>,
    /// Step budget applied per eval (bounds runaway programs; mainly for
    /// fuzzing).
    pub step_budget: u64,
    /// Persistent trace-cache file (tracing engine only). Defaults to the
    /// `TM_CACHE` environment variable; `None` disables persistence.
    cache_path: Option<PathBuf>,
    /// Why the last eval's cache load or save was rejected, if it was.
    last_cache_error: Option<CacheError>,
    /// Shared background compiler pool (tracing engine only); when set
    /// and `background_compile` is on, trace compilation and native
    /// emission run on the pool's workers instead of the request thread.
    pool: Option<Arc<CompilerPool>>,
}

impl Vm {
    /// Creates a VM for `engine` with default options.
    pub fn new(engine: Engine) -> Vm {
        Vm::with_options(engine, JitOptions::default())
    }

    /// Creates a VM with explicit JIT options (relevant to
    /// [`Engine::Tracing`]).
    pub fn with_options(engine: Engine, opts: JitOptions) -> Vm {
        Vm {
            realm: Realm::new(),
            engine,
            opts,
            monitor: None,
            last_interp: None,
            step_budget: u64::MAX,
            cache_path: cache_path_from_env(),
            last_cache_error: None,
            pool: None,
        }
    }

    /// Attaches a background compiler pool. Takes effect on the next
    /// `eval` when `JitOptions::background_compile` is on.
    pub fn attach_pool(&mut self, pool: Arc<CompilerPool>) {
        self.pool = Some(pool);
    }

    /// The engine this VM runs.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Sets (or disables) the persistent trace-cache file, overriding the
    /// `TM_CACHE` environment variable. See `docs/PERSISTENCE.md`.
    pub fn set_cache_path(&mut self, path: Option<PathBuf>) {
        self.cache_path = path;
    }

    /// Why the last eval's cache load or save was rejected, if it was.
    /// Diagnostic only — a rejected cache degrades to a cold start.
    pub fn last_cache_error(&self) -> Option<&CacheError> {
        self.last_cache_error.as_ref()
    }

    /// Evaluates a program, returning its completion value (the value of
    /// the last top-level expression statement).
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] for parse, compile, or runtime failures.
    pub fn eval(&mut self, source: &str) -> Result<Value, VmError> {
        let ast = tm_frontend::parse(source).map_err(VmError::Parse)?;
        let prog = tm_bytecode::compile(&ast, &mut self.realm).map_err(VmError::Compile)?;
        match self.engine {
            Engine::Interp | Engine::FastInterp => {
                let mut interp = Interp::new(prog, &mut self.realm);
                interp.steps_remaining = self.step_budget;
                interp.fast_paths = self.engine == Engine::FastInterp;
                let r = match interp.run(&mut self.realm) {
                    Ok(RunExit::Finished(v)) => Ok(v),
                    Ok(RunExit::LoopEdge { .. } | RunExit::RecursiveCall { .. }) => {
                        unreachable!("monitor disabled")
                    }
                    Err(e) => Err(VmError::Runtime(e)),
                };
                self.last_interp = Some(interp);
                r
            }
            Engine::Method => {
                let mut mvm = MethodVm::new(prog, &mut self.realm);
                mvm.steps_remaining = self.step_budget;
                mvm.run(&mut self.realm).map_err(VmError::Runtime)
            }
            Engine::Tracing => {
                let mut interp = Interp::new(prog, &mut self.realm);
                interp.steps_remaining = self.step_budget;
                let mut monitor = Monitor::new(self.opts);
                if let Some(pool) = &self.pool {
                    monitor.attach_pool(Arc::clone(pool));
                }
                self.last_cache_error = None;
                // Capture the cache key/fingerprint at the install point
                // (post-compile, pre-run): the warm process must load
                // against the same realm state the traces were saved for.
                let handle = self.cache_path.as_ref().map(|p| {
                    CacheHandle::capture(p.clone(), interp.prog(), &self.realm)
                });
                if let Some(h) = &handle {
                    if let Err(e) = monitor.load_cache(h, &mut interp, &self.realm) {
                        self.last_cache_error = Some(e);
                    }
                }
                let r = monitor.run_program(&mut interp, &mut self.realm);
                if let (Some(h), Ok(_)) = (&handle, &r) {
                    if let Err(e) = monitor.save_cache(h, &self.realm) {
                        self.last_cache_error = Some(e);
                    }
                }
                self.monitor = Some(monitor);
                self.last_interp = Some(interp);
                r.map_err(VmError::Runtime)
            }
        }
    }

    /// Evaluates and coerces the result to a number (`None` when the
    /// completion value is not numeric).
    ///
    /// # Errors
    ///
    /// See [`Vm::eval`].
    pub fn eval_number(&mut self, source: &str) -> Result<Option<f64>, VmError> {
        let v = self.eval(source)?;
        Ok(self.realm.heap.number_value(v))
    }

    /// Accumulated `print` output.
    pub fn output(&self) -> &str {
        &self.realm.output
    }

    /// The monitor of the last tracing run (trees, events, profile).
    pub fn monitor(&self) -> Option<&Monitor> {
        self.monitor.as_ref()
    }

    /// The interpreter of the last interpreter/tracing run.
    pub fn interp(&self) -> Option<&Interp> {
        self.last_interp.as_ref()
    }

    /// Profile statistics of the last tracing run (Figures 11/12 data).
    pub fn profile(&self) -> Option<&ProfileStats> {
        self.monitor.as_ref().map(|m| &m.profiler.stats)
    }
}
