//! # tm-frontend
//!
//! Lexer, parser, and AST for **JTS**, the JavaScript-subset guest language
//! of the TraceMonkey reproduction.
//!
//! JTS covers the language surface the paper's SunSpider evaluation
//! exercises: top-level functions with recursion, `var` locals,
//! `for`/`while`/`do`, arrays and object literals, prototype-based `new`,
//! method calls with `this`, strings, full numeric/bitwise/logical operator
//! suites, and `typeof`. Deliberate omissions (closures, exceptions,
//! `eval`, regexps, `for`-`in`, `switch`) are documented in DESIGN.md; the
//! first three are also untraceable in the paper's TraceMonkey.
//!
//! ```
//! let program = tm_frontend::parse("var x = 1 + 2;")?;
//! assert_eq!(program.body.len(), 1);
//! # Ok::<(), tm_frontend::ParseError>(())
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{BinOp, Expr, FunctionDecl, Program, Stmt, Target, UnOp};
pub use error::ParseError;
pub use lexer::lex;
pub use parser::parse;
pub use token::{Spanned, Token};
