//! Parse errors.

use std::fmt;

/// An error produced while lexing or parsing JTS source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the error.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at `line`.
    pub fn new(line: u32, message: impl Into<String>) -> ParseError {
        ParseError { line, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}
