//! Abstract syntax tree for JTS.

/// A whole program: top-level function declarations plus a main body.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level `function` declarations.
    pub functions: Vec<FunctionDecl>,
    /// Top-level statements (the script body).
    pub body: Vec<Stmt>,
}

/// A named function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the declaration.
    pub line: u32,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var` declarations: `(name, initializer)` pairs.
    Var(Vec<(String, Option<Expr>)>, u32),
    /// An expression statement.
    Expr(Expr, u32),
    /// `if (cond) then else otherwise`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        otherwise: Option<Box<Stmt>>,
        /// Source line.
        line: u32,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `do body while (cond)`.
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
        /// Source line.
        line: u32,
    },
    /// `for (init; cond; update) body`.
    For {
        /// Initializer (a `var` declaration or expression statement).
        init: Option<Box<Stmt>>,
        /// Loop condition (absent means `true`).
        cond: Option<Expr>,
        /// Update expression.
        update: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `return expr;` / `return;`
    Return(Option<Expr>, u32),
    /// `break;`
    Break(u32),
    /// `continue;`
    Continue(u32),
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNe,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Unary `-`
    Neg,
    /// Unary `+` (ToNumber)
    Pos,
    /// `!`
    Not,
    /// `~`
    BitNot,
    /// `typeof`
    Typeof,
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A variable name (local or global, resolved by the compiler).
    Name(String),
    /// `base.prop`
    Prop(Box<Expr>, String),
    /// `base[index]`
    Elem(Box<Expr>, Box<Expr>),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Number(f64),
    /// String literal (latin-1 code units).
    Str(Vec<u8>),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// A name reference.
    Name(String),
    /// `this` (inside a function called as a method or constructor).
    This,
    /// Array literal.
    Array(Vec<Expr>),
    /// Object literal: `(key, value)` pairs.
    ObjectLit(Vec<(String, Expr)>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Short-circuit `&&`.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit `||`.
    Or(Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Assignment `target = value`; `op` is `Some` for compound assignments
    /// like `+=` (the compiler evaluates the target's base only once).
    Assign {
        /// Assignment target.
        target: Target,
        /// Compound operator, if any.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Box<Expr>,
    },
    /// Pre/post increment/decrement.
    IncDec {
        /// The target being mutated.
        target: Target,
        /// `+1` (true) or `-1` (false).
        inc: bool,
        /// Prefix (`++x`) vs postfix (`x++`).
        prefix: bool,
    },
    /// Property read `base.prop`.
    Prop(Box<Expr>, String),
    /// Indexed read `base[index]`.
    Elem(Box<Expr>, Box<Expr>),
    /// Plain call `callee(args)`.
    Call(Box<Expr>, Vec<Expr>),
    /// Method call `base.method(args)` — the receiver becomes `this`.
    MethodCall(Box<Expr>, String, Vec<Expr>),
    /// `new Callee(args)`.
    New(Box<Expr>, Vec<Expr>),
    /// Comma sequence `(a, b)` — evaluates to the last expression.
    Seq(Vec<Expr>),
}

impl Expr {
    /// Converts an expression to an assignment target if it is one.
    pub fn into_target(self) -> Option<Target> {
        match self {
            Expr::Name(n) => Some(Target::Name(n)),
            Expr::Prop(base, p) => Some(Target::Prop(base, p)),
            Expr::Elem(base, i) => Some(Target::Elem(base, i)),
            _ => None,
        }
    }
}
