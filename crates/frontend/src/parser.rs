//! Recursive-descent parser for JTS.
//!
//! Expressions use precedence climbing; statements are standard. Function
//! declarations are only permitted at the top level (JTS has no closures —
//! a deliberate simplification documented in DESIGN.md).

use crate::ast::{BinOp, Expr, FunctionDecl, Program, Stmt, UnOp};
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// Parses a complete JTS program.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Token::Ident(name) => Ok(name),
            other => {
                Err(ParseError::new(self.line(), format!("expected {what}, found {other:?}")))
            }
        }
    }

    // ---- program / statements ----

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut functions = Vec::new();
        let mut body = Vec::new();
        while self.peek() != &Token::Eof {
            if self.peek() == &Token::Function {
                functions.push(self.function_decl()?);
            } else {
                body.push(self.statement(false)?);
            }
        }
        Ok(Program { functions, body })
    }

    fn function_decl(&mut self) -> Result<FunctionDecl, ParseError> {
        let line = self.line();
        self.expect(&Token::Function, "'function'")?;
        let name = self.ident("function name")?;
        self.expect(&Token::LParen, "'('")?;
        let mut params = Vec::new();
        if self.peek() != &Token::RParen {
            loop {
                params.push(self.ident("parameter name")?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "')'")?;
        self.expect(&Token::LBrace, "'{'")?;
        let mut body = Vec::new();
        while !self.eat(&Token::RBrace) {
            if self.peek() == &Token::Eof {
                return Err(ParseError::new(line, "unterminated function body"));
            }
            body.push(self.statement(true)?);
        }
        Ok(FunctionDecl { name, params, body, line })
    }

    fn statement(&mut self, in_function: bool) -> Result<Stmt, ParseError> {
        let line = self.line();
        match self.peek() {
            Token::Function => Err(ParseError::new(
                line,
                "nested function declarations are not supported in JTS",
            )),
            Token::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Token::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&Token::RBrace) {
                    if self.peek() == &Token::Eof {
                        return Err(ParseError::new(line, "unterminated block"));
                    }
                    stmts.push(self.statement(in_function)?);
                }
                Ok(Stmt::Block(stmts))
            }
            Token::Var => {
                let s = self.var_decl()?;
                self.expect_semi()?;
                Ok(s)
            }
            Token::If => {
                self.bump();
                self.expect(&Token::LParen, "'('")?;
                let cond = self.expression()?;
                self.expect(&Token::RParen, "')'")?;
                let then = Box::new(self.statement(in_function)?);
                let otherwise = if self.eat(&Token::Else) {
                    Some(Box::new(self.statement(in_function)?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, otherwise, line })
            }
            Token::While => {
                self.bump();
                self.expect(&Token::LParen, "'('")?;
                let cond = self.expression()?;
                self.expect(&Token::RParen, "')'")?;
                let body = Box::new(self.statement(in_function)?);
                Ok(Stmt::While { cond, body, line })
            }
            Token::Do => {
                self.bump();
                let body = Box::new(self.statement(in_function)?);
                self.expect(&Token::While, "'while'")?;
                self.expect(&Token::LParen, "'('")?;
                let cond = self.expression()?;
                self.expect(&Token::RParen, "')'")?;
                self.expect_semi()?;
                Ok(Stmt::DoWhile { body, cond, line })
            }
            Token::For => {
                self.bump();
                self.expect(&Token::LParen, "'('")?;
                let init = if self.peek() == &Token::Semi {
                    None
                } else if self.peek() == &Token::Var {
                    Some(Box::new(self.var_decl()?))
                } else {
                    let e = self.expression()?;
                    Some(Box::new(Stmt::Expr(e, line)))
                };
                if self.peek() == &Token::In {
                    return Err(ParseError::new(line, "for-in loops are not supported in JTS"));
                }
                self.expect(&Token::Semi, "';' in for header")?;
                let cond =
                    if self.peek() == &Token::Semi { None } else { Some(self.expression()?) };
                self.expect(&Token::Semi, "';' in for header")?;
                let update =
                    if self.peek() == &Token::RParen { None } else { Some(self.expression()?) };
                self.expect(&Token::RParen, "')'")?;
                let body = Box::new(self.statement(in_function)?);
                Ok(Stmt::For { init, cond, update, body, line })
            }
            Token::Return => {
                self.bump();
                if !in_function {
                    return Err(ParseError::new(line, "'return' outside a function"));
                }
                let value = if self.peek() == &Token::Semi || self.peek() == &Token::RBrace {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_semi()?;
                Ok(Stmt::Return(value, line))
            }
            Token::Break => {
                self.bump();
                self.expect_semi()?;
                Ok(Stmt::Break(line))
            }
            Token::Continue => {
                self.bump();
                self.expect_semi()?;
                Ok(Stmt::Continue(line))
            }
            _ => {
                let e = self.expression()?;
                self.expect_semi()?;
                Ok(Stmt::Expr(e, line))
            }
        }
    }

    /// Permissive semicolon handling: a statement may end with `;`, or at
    /// `}` / EOF (a restricted form of automatic semicolon insertion).
    fn expect_semi(&mut self) -> Result<(), ParseError> {
        if self.eat(&Token::Semi) || self.peek() == &Token::RBrace || self.peek() == &Token::Eof {
            Ok(())
        } else {
            Err(ParseError::new(
                self.line(),
                format!("expected ';', found {:?}", self.peek()),
            ))
        }
    }

    fn var_decl(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        self.expect(&Token::Var, "'var'")?;
        let mut decls = Vec::new();
        loop {
            let name = self.ident("variable name")?;
            let init =
                if self.eat(&Token::Assign) { Some(self.assignment()?) } else { None };
            decls.push((name, init));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Stmt::Var(decls, line))
    }

    // ---- expressions ----

    fn expression(&mut self) -> Result<Expr, ParseError> {
        let first = self.assignment()?;
        if self.peek() != &Token::Comma {
            return Ok(first);
        }
        let mut seq = vec![first];
        while self.eat(&Token::Comma) {
            seq.push(self.assignment()?);
        }
        Ok(Expr::Seq(seq))
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary()?;
        let op = match self.peek() {
            Token::Assign => None,
            Token::PlusAssign => Some(BinOp::Add),
            Token::MinusAssign => Some(BinOp::Sub),
            Token::StarAssign => Some(BinOp::Mul),
            Token::SlashAssign => Some(BinOp::Div),
            Token::PercentAssign => Some(BinOp::Mod),
            Token::AmpAssign => Some(BinOp::BitAnd),
            Token::PipeAssign => Some(BinOp::BitOr),
            Token::CaretAssign => Some(BinOp::BitXor),
            Token::ShlAssign => Some(BinOp::Shl),
            Token::ShrAssign => Some(BinOp::Shr),
            Token::UShrAssign => Some(BinOp::UShr),
            _ => return Ok(lhs),
        };
        let line = self.line();
        self.bump();
        let target = lhs
            .into_target()
            .ok_or_else(|| ParseError::new(line, "invalid assignment target"))?;
        let value = Box::new(self.assignment()?);
        Ok(Expr::Assign { target, op, value })
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.or_expr()?;
        if self.eat(&Token::Question) {
            let a = self.assignment()?;
            self.expect(&Token::Colon, "':'")?;
            let b = self.assignment()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.binary(0)?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.binary(0)?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// Precedence climbing over the binary operators (lowest first):
    /// `|`, `^`, `&`, equality, relational, shifts, additive,
    /// multiplicative.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Token::Pipe => (BinOp::BitOr, 0),
                Token::Caret => (BinOp::BitXor, 1),
                Token::Amp => (BinOp::BitAnd, 2),
                Token::EqEq => (BinOp::Eq, 3),
                Token::NotEq => (BinOp::Ne, 3),
                Token::EqEqEq => (BinOp::StrictEq, 3),
                Token::NotEqEq => (BinOp::StrictNe, 3),
                Token::Lt => (BinOp::Lt, 4),
                Token::Le => (BinOp::Le, 4),
                Token::Gt => (BinOp::Gt, 4),
                Token::Ge => (BinOp::Ge, 4),
                Token::Shl => (BinOp::Shl, 5),
                Token::Shr => (BinOp::Shr, 5),
                Token::UShr => (BinOp::UShr, 5),
                Token::Plus => (BinOp::Add, 6),
                Token::Minus => (BinOp::Sub, 6),
                Token::Star => (BinOp::Mul, 7),
                Token::Slash => (BinOp::Div, 7),
                Token::Percent => (BinOp::Mod, 7),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.peek() {
            Token::Minus => {
                self.bump();
                // Fold negative numeric literals immediately so `-1` is a
                // constant, not a unary op.
                if let Token::Number(n) = self.peek() {
                    let n = *n;
                    self.bump();
                    return Ok(Expr::Number(-n));
                }
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)))
            }
            Token::Plus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Pos, Box::new(self.unary()?)))
            }
            Token::Bang => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)))
            }
            Token::Tilde => {
                self.bump();
                Ok(Expr::Unary(UnOp::BitNot, Box::new(self.unary()?)))
            }
            Token::Typeof => {
                self.bump();
                Ok(Expr::Unary(UnOp::Typeof, Box::new(self.unary()?)))
            }
            Token::PlusPlus | Token::MinusMinus => {
                let inc = self.bump() == Token::PlusPlus;
                let operand = self.unary()?;
                let target = operand
                    .into_target()
                    .ok_or_else(|| ParseError::new(line, "invalid increment target"))?;
                Ok(Expr::IncDec { target, inc, prefix: true })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        let e = self.call_member()?;
        match self.peek() {
            Token::PlusPlus | Token::MinusMinus => {
                let inc = self.bump() == Token::PlusPlus;
                let target = e
                    .into_target()
                    .ok_or_else(|| ParseError::new(line, "invalid increment target"))?;
                Ok(Expr::IncDec { target, inc, prefix: false })
            }
            _ => Ok(e),
        }
    }

    fn call_member(&mut self) -> Result<Expr, ParseError> {
        let mut e = if self.peek() == &Token::New {
            self.bump();
            // `new Callee(args)`: callee is a member chain without calls.
            let mut callee = self.primary()?;
            loop {
                match self.peek() {
                    Token::Dot => {
                        self.bump();
                        let name = self.ident("property name")?;
                        callee = Expr::Prop(Box::new(callee), name);
                    }
                    Token::LBracket => {
                        self.bump();
                        let idx = self.expression()?;
                        self.expect(&Token::RBracket, "']'")?;
                        callee = Expr::Elem(Box::new(callee), Box::new(idx));
                    }
                    _ => break,
                }
            }
            let args = if self.peek() == &Token::LParen { self.arguments()? } else { Vec::new() };
            Expr::New(Box::new(callee), args)
        } else {
            self.primary()?
        };
        loop {
            match self.peek() {
                Token::Dot => {
                    self.bump();
                    let name = self.ident("property name")?;
                    if self.peek() == &Token::LParen {
                        let args = self.arguments()?;
                        e = Expr::MethodCall(Box::new(e), name, args);
                    } else {
                        e = Expr::Prop(Box::new(e), name);
                    }
                }
                Token::LBracket => {
                    self.bump();
                    let idx = self.expression()?;
                    self.expect(&Token::RBracket, "']'")?;
                    e = Expr::Elem(Box::new(e), Box::new(idx));
                }
                Token::LParen => {
                    let args = self.arguments()?;
                    e = Expr::Call(Box::new(e), args);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn arguments(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Token::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek() != &Token::RParen {
            loop {
                args.push(self.assignment()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            Token::Number(n) => Ok(Expr::Number(n)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::True => Ok(Expr::Bool(true)),
            Token::False => Ok(Expr::Bool(false)),
            Token::Null => Ok(Expr::Null),
            Token::This => Ok(Expr::This),
            Token::Ident(name) => Ok(Expr::Name(name)),
            Token::LParen => {
                let e = self.expression()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Token::LBracket => {
                let mut elems = Vec::new();
                if self.peek() != &Token::RBracket {
                    loop {
                        elems.push(self.assignment()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                        // Trailing comma.
                        if self.peek() == &Token::RBracket {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBracket, "']'")?;
                Ok(Expr::Array(elems))
            }
            Token::LBrace => {
                let mut props = Vec::new();
                if self.peek() != &Token::RBrace {
                    loop {
                        let key = match self.bump() {
                            Token::Ident(n) => n,
                            Token::Str(s) => s.iter().map(|&b| b as char).collect(),
                            Token::Number(n) => tm_format_number(n),
                            other => {
                                return Err(ParseError::new(
                                    line,
                                    format!("invalid object key: {other:?}"),
                                ))
                            }
                        };
                        self.expect(&Token::Colon, "':'")?;
                        let value = self.assignment()?;
                        props.push((key, value));
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                        if self.peek() == &Token::RBrace {
                            break;
                        }
                    }
                }
                self.expect(&Token::RBrace, "'}'")?;
                Ok(Expr::ObjectLit(props))
            }
            other => Err(ParseError::new(line, format!("unexpected token {other:?}"))),
        }
    }
}

/// Formats a numeric object-literal key the way `ToString` would.
fn tm_format_number(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Target;

    #[test]
    fn parses_sieve_example() {
        // The paper's Figure 1 program.
        let src = r#"
            var primes = [];
            for (var i = 2; i < 100; ++i) {
                if (!primes[i])
                    continue;
                for (var k = i + i; k < 100; k += i)
                    primes[k] = false;
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.functions.len(), 0);
        assert_eq!(prog.body.len(), 2);
        let Stmt::For { init, cond, update, .. } = &prog.body[1] else {
            panic!("expected for loop")
        };
        assert!(init.is_some() && cond.is_some() && update.is_some());
    }

    #[test]
    fn function_declarations() {
        let prog = parse("function add(a, b) { return a + b; } var x = add(1, 2);").unwrap();
        assert_eq!(prog.functions.len(), 1);
        assert_eq!(prog.functions[0].params, vec!["a", "b"]);
        assert!(parse("function outer() { function inner() {} }").is_err());
        assert!(parse("return 1;").is_err(), "top-level return is an error");
    }

    #[test]
    fn precedence() {
        let prog = parse("var x = 1 + 2 * 3;").unwrap();
        let Stmt::Var(decls, _) = &prog.body[0] else { panic!() };
        let Some(Expr::Binary(BinOp::Add, _, rhs)) = &decls[0].1 else {
            panic!("+ at top: {:?}", decls[0].1)
        };
        assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _)));

        // Bitwise-or binds looser than equality (JS quirk).
        let prog = parse("var y = a == b | c;").unwrap();
        let Stmt::Var(decls, _) = &prog.body[0] else { panic!() };
        assert!(matches!(decls[0].1, Some(Expr::Binary(BinOp::BitOr, _, _))));
    }

    #[test]
    fn method_call_vs_prop_access() {
        let prog = parse("s.charCodeAt(0); s.length;").unwrap();
        let Stmt::Expr(e0, _) = &prog.body[0] else { panic!() };
        assert!(matches!(e0, Expr::MethodCall(_, name, _) if name == "charCodeAt"));
        let Stmt::Expr(e1, _) = &prog.body[1] else { panic!() };
        assert!(matches!(e1, Expr::Prop(_, name) if name == "length"));
    }

    #[test]
    fn compound_assignment_and_incdec() {
        let prog = parse("x += 2; a[i]++; --o.f;").unwrap();
        let Stmt::Expr(e, _) = &prog.body[0] else { panic!() };
        assert!(matches!(e, Expr::Assign { op: Some(BinOp::Add), .. }));
        let Stmt::Expr(e, _) = &prog.body[1] else { panic!() };
        assert!(
            matches!(e, Expr::IncDec { inc: true, prefix: false, target: Target::Elem(..) })
        );
        let Stmt::Expr(e, _) = &prog.body[2] else { panic!() };
        assert!(matches!(e, Expr::IncDec { inc: false, prefix: true, target: Target::Prop(..) }));
    }

    #[test]
    fn new_and_object_literals() {
        let prog = parse("var p = new Point(1, 2); var o = {x: 1, 'y': 2, 3: 4};").unwrap();
        let Stmt::Var(decls, _) = &prog.body[0] else { panic!() };
        assert!(matches!(decls[0].1, Some(Expr::New(..))));
        let Stmt::Var(decls, _) = &prog.body[1] else { panic!() };
        let Some(Expr::ObjectLit(props)) = &decls[0].1 else { panic!() };
        assert_eq!(props.len(), 3);
        assert_eq!(props[2].0, "3");
    }

    #[test]
    fn ternary_and_logical() {
        let prog = parse("var v = a ? b && c : d || e;").unwrap();
        let Stmt::Var(decls, _) = &prog.body[0] else { panic!() };
        let Some(Expr::Ternary(_, t, f)) = &decls[0].1 else { panic!() };
        assert!(matches!(**t, Expr::And(..)));
        assert!(matches!(**f, Expr::Or(..)));
    }

    #[test]
    fn comma_expression_in_for() {
        let prog = parse("for (i = 0, j = 9; i < j; i++, j--) ;").unwrap();
        let Stmt::For { init, update, .. } = &prog.body[0] else { panic!() };
        let Some(boxed) = init else { panic!() };
        let Stmt::Expr(Expr::Seq(seq), _) = &**boxed else { panic!("init: {boxed:?}") };
        assert_eq!(seq.len(), 2);
        assert!(matches!(update, Some(Expr::Seq(_))));
    }

    #[test]
    fn negative_literals_fold() {
        let prog = parse("var x = -1;").unwrap();
        let Stmt::Var(decls, _) = &prog.body[0] else { panic!() };
        assert_eq!(decls[0].1, Some(Expr::Number(-1.0)));
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let err = parse("var x = ;").unwrap_err();
        assert_eq!(err.line, 1);
        let err = parse("\n\nvar y = @;").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(parse("for (var k in obj) ;").is_err(), "for-in unsupported");
    }

    #[test]
    fn do_while_and_break_continue() {
        let prog = parse("do { if (x) break; else continue; } while (x < 10);").unwrap();
        assert!(matches!(prog.body[0], Stmt::DoWhile { .. }));
    }

    #[test]
    fn asi_before_rbrace() {
        let prog = parse("function f() { return 1 }").unwrap();
        assert_eq!(prog.functions.len(), 1);
    }
}
