//! Tokens of the JTS source language.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Numeric literal (always lexed as a double; the compiler re-compresses
    /// integral values to the inline integer representation).
    Number(f64),
    /// String literal (latin-1 code units).
    Str(Vec<u8>),
    /// Identifier.
    Ident(String),

    // Keywords.
    /// `var`
    Var,
    /// `function`
    Function,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `do`
    Do,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `new`
    New,
    /// `this`
    This,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `typeof`
    Typeof,
    /// `in` (reserved; used by `for`-`in`, which JTS does not support)
    In,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `%=`
    PercentAssign,
    /// `&=`
    AmpAssign,
    /// `|=`
    PipeAssign,
    /// `^=`
    CaretAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
    /// `>>>=`
    UShrAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `===`
    EqEqEq,
    /// `!==`
    NotEqEq,

    /// End of input.
    Eof,
}

impl Token {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(ident: &str) -> Option<Token> {
        Some(match ident {
            "var" => Token::Var,
            "function" => Token::Function,
            "if" => Token::If,
            "else" => Token::Else,
            "while" => Token::While,
            "do" => Token::Do,
            "for" => Token::For,
            "return" => Token::Return,
            "break" => Token::Break,
            "continue" => Token::Continue,
            "new" => Token::New,
            "this" => Token::This,
            "true" => Token::True,
            "false" => Token::False,
            "null" => Token::Null,
            "typeof" => Token::Typeof,
            "in" => Token::In,
            _ => return None,
        })
    }
}

/// A token with its source line (1-based), for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
}
