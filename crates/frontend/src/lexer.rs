//! Hand-written lexer for JTS.

use crate::error::ParseError;
use crate::token::{Spanned, Token};

/// Tokenizes `source` into a vector of spanned tokens ending with
/// [`Token::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed numbers, unterminated strings or
/// comments, and unrecognized characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, ParseError> {
    Lexer { src: source.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Spanned>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Spanned>, ParseError> {
        loop {
            self.skip_trivia()?;
            let line = self.line;
            let Some(&c) = self.src.get(self.pos) else {
                self.out.push(Spanned { token: Token::Eof, line });
                return Ok(self.out);
            };
            let token = match c {
                b'0'..=b'9' => self.number()?,
                b'.' if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => self.number()?,
                b'"' | b'\'' => self.string(c)?,
                b'A'..=b'Z' | b'a'..=b'z' | b'_' | b'$' => self.ident(),
                _ => self.operator()?,
            };
            self.out.push(Spanned { token, line });
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.src.get(self.pos).copied();
        if c.is_some() {
            self.pos += 1;
        }
        if c == Some(b'\n') {
            self.line += 1;
        }
        c
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek(0) == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek(0) {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'/') if self.peek(1) == Some(b'/') => {
                    while let Some(c) = self.peek(0) {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek(1) == Some(b'*') => {
                    let start_line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek(0) == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => {
                                return Err(ParseError::new(
                                    start_line,
                                    "unterminated block comment",
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<Token, ParseError> {
        let start = self.pos;
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'X')) {
            self.pos += 2;
            let hex_start = self.pos;
            while self.peek(0).is_some_and(|c| c.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            if self.pos == hex_start {
                return Err(ParseError::new(self.line, "expected hex digits after 0x"));
            }
            let text = std::str::from_utf8(&self.src[hex_start..self.pos]).expect("ascii");
            let v = u64::from_str_radix(text, 16)
                .map_err(|_| ParseError::new(self.line, "hex literal too large"))?;
            return Ok(Token::Number(v as f64));
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.') {
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let mark = self.pos;
            self.pos += 1;
            if matches!(self.peek(0), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                    self.pos += 1;
                }
            } else {
                self.pos = mark;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Token::Number)
            .map_err(|_| ParseError::new(self.line, "malformed number literal"))
    }

    fn string(&mut self, quote: u8) -> Result<Token, ParseError> {
        let start_line = self.line;
        self.bump();
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    return Err(ParseError::new(start_line, "unterminated string literal"))
                }
                Some(c) if c == quote => return Ok(Token::Str(bytes)),
                Some(b'\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| ParseError::new(start_line, "unterminated escape"))?;
                    match esc {
                        b'n' => bytes.push(b'\n'),
                        b't' => bytes.push(b'\t'),
                        b'r' => bytes.push(b'\r'),
                        b'0' => bytes.push(0),
                        b'b' => bytes.push(8),
                        b'f' => bytes.push(12),
                        b'v' => bytes.push(11),
                        b'x' => {
                            let h = self.hex_digits(2)?;
                            bytes.push(h as u8);
                        }
                        b'u' => {
                            let h = self.hex_digits(4)?;
                            // Latin-1 strings: code points above 0xFF are
                            // replaced (documented deviation).
                            bytes.push(if h <= 0xFF { h as u8 } else { b'?' });
                        }
                        other => bytes.push(other),
                    }
                }
                Some(c) => bytes.push(c),
            }
        }
    }

    fn hex_digits(&mut self, n: usize) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..n {
            let c = self
                .bump()
                .ok_or_else(|| ParseError::new(self.line, "unterminated escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| ParseError::new(self.line, "invalid hex escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn ident(&mut self) -> Token {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'$')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
        Token::keyword(text).unwrap_or_else(|| Token::Ident(text.to_owned()))
    }

    fn operator(&mut self) -> Result<Token, ParseError> {
        let c = self.bump().expect("caller checked");
        let t = match c {
            b'(' => Token::LParen,
            b')' => Token::RParen,
            b'{' => Token::LBrace,
            b'}' => Token::RBrace,
            b'[' => Token::LBracket,
            b']' => Token::RBracket,
            b';' => Token::Semi,
            b',' => Token::Comma,
            b'.' => Token::Dot,
            b'?' => Token::Question,
            b':' => Token::Colon,
            b'~' => Token::Tilde,
            b'+' => {
                if self.eat(b'+') {
                    Token::PlusPlus
                } else if self.eat(b'=') {
                    Token::PlusAssign
                } else {
                    Token::Plus
                }
            }
            b'-' => {
                if self.eat(b'-') {
                    Token::MinusMinus
                } else if self.eat(b'=') {
                    Token::MinusAssign
                } else {
                    Token::Minus
                }
            }
            b'*' => {
                if self.eat(b'=') {
                    Token::StarAssign
                } else {
                    Token::Star
                }
            }
            b'/' => {
                if self.eat(b'=') {
                    Token::SlashAssign
                } else {
                    Token::Slash
                }
            }
            b'%' => {
                if self.eat(b'=') {
                    Token::PercentAssign
                } else {
                    Token::Percent
                }
            }
            b'&' => {
                if self.eat(b'&') {
                    Token::AndAnd
                } else if self.eat(b'=') {
                    Token::AmpAssign
                } else {
                    Token::Amp
                }
            }
            b'|' => {
                if self.eat(b'|') {
                    Token::OrOr
                } else if self.eat(b'=') {
                    Token::PipeAssign
                } else {
                    Token::Pipe
                }
            }
            b'^' => {
                if self.eat(b'=') {
                    Token::CaretAssign
                } else {
                    Token::Caret
                }
            }
            b'!' => {
                if self.eat(b'=') {
                    if self.eat(b'=') {
                        Token::NotEqEq
                    } else {
                        Token::NotEq
                    }
                } else {
                    Token::Bang
                }
            }
            b'=' => {
                if self.eat(b'=') {
                    if self.eat(b'=') {
                        Token::EqEqEq
                    } else {
                        Token::EqEq
                    }
                } else {
                    Token::Assign
                }
            }
            b'<' => {
                if self.eat(b'<') {
                    if self.eat(b'=') {
                        Token::ShlAssign
                    } else {
                        Token::Shl
                    }
                } else if self.eat(b'=') {
                    Token::Le
                } else {
                    Token::Lt
                }
            }
            b'>' => {
                if self.eat(b'>') {
                    if self.eat(b'>') {
                        if self.eat(b'=') {
                            Token::UShrAssign
                        } else {
                            Token::UShr
                        }
                    } else if self.eat(b'=') {
                        Token::ShrAssign
                    } else {
                        Token::Shr
                    }
                } else if self.eat(b'=') {
                    Token::Ge
                } else {
                    Token::Gt
                }
            }
            other => {
                return Err(ParseError::new(
                    self.line,
                    format!("unexpected character '{}'", other as char),
                ))
            }
        };
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Token::Number(42.0), Token::Eof]);
        assert_eq!(toks("3.5"), vec![Token::Number(3.5), Token::Eof]);
        assert_eq!(toks(".5"), vec![Token::Number(0.5), Token::Eof]);
        assert_eq!(toks("0xff"), vec![Token::Number(255.0), Token::Eof]);
        assert_eq!(toks("1e3"), vec![Token::Number(1000.0), Token::Eof]);
        assert_eq!(toks("1.5e-2"), vec![Token::Number(0.015), Token::Eof]);
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r#""hi""#), vec![Token::Str(b"hi".to_vec()), Token::Eof]);
        assert_eq!(toks(r#"'a\nb'"#), vec![Token::Str(b"a\nb".to_vec()), Token::Eof]);
        assert_eq!(toks(r#""\x41""#), vec![Token::Str(b"A".to_vec()), Token::Eof]);
        assert_eq!(toks(r#""A""#), vec![Token::Str(b"A".to_vec()), Token::Eof]);
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("var x while foo"),
            vec![
                Token::Var,
                Token::Ident("x".into()),
                Token::While,
                Token::Ident("foo".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            toks("a >>>= b >>> c >> d >= e"),
            vec![
                Token::Ident("a".into()),
                Token::UShrAssign,
                Token::Ident("b".into()),
                Token::UShr,
                Token::Ident("c".into()),
                Token::Shr,
                Token::Ident("d".into()),
                Token::Ge,
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
        assert_eq!(
            toks("a === b !== c == d != e"),
            vec![
                Token::Ident("a".into()),
                Token::EqEqEq,
                Token::Ident("b".into()),
                Token::NotEqEq,
                Token::Ident("c".into()),
                Token::EqEq,
                Token::Ident("d".into()),
                Token::NotEq,
                Token::Ident("e".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let spanned = lex("a // comment\nb /* multi\nline */ c").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[2].line, 3);
        assert!(lex("/* forever").is_err());
    }

    #[test]
    fn postfix_increment_lexes() {
        assert_eq!(
            toks("i++ + ++j"),
            vec![
                Token::Ident("i".into()),
                Token::PlusPlus,
                Token::Plus,
                Token::PlusPlus,
                Token::Ident("j".into()),
                Token::Eof
            ]
        );
    }
}
