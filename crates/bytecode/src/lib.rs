//! # tm-bytecode
//!
//! Bytecode representation, AST→bytecode compiler, and disassembler for the
//! TraceMonkey reproduction.
//!
//! The bytecode compiler enforces the invariant the paper's tracer relies
//! on (§3.3, §4.1): a bytecode is a loop header **iff** it is the target of
//! a backward branch, each loop header is an explicit [`Op::LoopHeader`]
//! pseudo-instruction the trace monitor hooks, and every loop's body range
//! is recorded in [`LoopInfo`] so loop nesting is statically decidable.
//!
//! ```
//! use tm_runtime::Realm;
//!
//! let ast = tm_frontend::parse("var i = 0; while (i < 3) { i++; }")?;
//! let mut realm = Realm::new();
//! let program = tm_bytecode::compile(&ast, &mut realm)?;
//! assert_eq!(program.function(program.main).loops.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod compiler;
pub mod disasm;
pub mod opcode;

pub use compiler::{compile, CompileError};
pub use disasm::{disassemble, disassemble_function};
pub use opcode::{FuncId, Function, LoopId, LoopInfo, Op, Program};
