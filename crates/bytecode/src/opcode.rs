//! Bytecode instruction set and program representation.
//!
//! The interpreter is a stack machine. Following the paper's §3.3, the
//! bytecode compiler guarantees that **a bytecode is a loop header iff it is
//! the target of a backward branch**, and marks each loop header with an
//! explicit [`Op::LoopHeader`] pseudo-instruction. The trace monitor is
//! invoked only at these ops; blacklisting *patches* a `LoopHeader` into a
//! plain [`Op::Nop`] so a blacklisted loop never pays monitor overhead
//! again.

use tm_runtime::Sym;

/// Index of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifier of a loop within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopId(pub u16);

/// A decoded bytecode instruction.
///
/// Operand conventions: `u16` indexes reference the program-wide constant
/// pools ([`Program::numbers`], [`Program::atoms`]) or frame-local slots;
/// jump targets are absolute instruction indexes within the function.
/// Sentinel property-site id: the site exceeds the per-program IC table
/// and always takes the uncached slow path (engines index their IC table
/// with a bounds check, so the sentinel simply never lands in it).
pub const NO_PROP_SITE: u16 = u16::MAX;

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    // -- constants --
    /// Push an inline integer.
    Int(i32),
    /// Push numeric constant `numbers[n]` (materialized once at install).
    Num(u16),
    /// Push string constant `atoms[n]`.
    Str(u16),
    /// Push `true`.
    True,
    /// Push `false`.
    False,
    /// Push `null`.
    Null,
    /// Push `undefined`.
    Undefined,

    // -- variables --
    /// Push local slot `n` (slot 0 is `this`, then parameters, then vars).
    GetLocal(u16),
    /// Pop into local slot `n`.
    SetLocal(u16),
    /// Push global slot `n`.
    GetGlobal(u32),
    /// Pop into global slot `n`.
    SetGlobal(u32),

    // -- stack --
    /// Pop and discard.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two values.
    Swap,

    // -- operators --
    /// `+` (add or concatenate)
    Add,
    /// binary `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// unary `-`
    Neg,
    /// unary `+` (ToNumber)
    Pos,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
    /// `~`
    BitNot,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `===`
    StrictEq,
    /// `!==`
    StrictNe,
    /// `!`
    Not,
    /// `typeof`
    Typeof,

    // -- objects --
    /// Pop `n` elements, push a new array containing them.
    NewArray(u16),
    /// Push a new empty plain object.
    NewObject,
    /// Stack `[obj, val]` → `[obj]`: define property `sym` (object
    /// literals). The second operand is this site's program-wide property
    /// inline-cache id (`0..Program::prop_sites`, or [`NO_PROP_SITE`] on
    /// the rare program with more sites than fit — such sites take the
    /// uncached slow path). `u16` so `Op` stays 8 bytes.
    InitProp(Sym, u16),
    /// Stack `[obj]` → `[value]`: read property `sym`. Second operand:
    /// property IC site id.
    GetProp(Sym, u16),
    /// Stack `[obj, val]` → `[val]`: write property `sym`. Second operand:
    /// property IC site id.
    SetProp(Sym, u16),
    /// Stack `[obj, idx]` → `[value]`.
    GetElem,
    /// Stack `[obj, idx, val]` → `[val]`.
    SetElem,

    // -- calls --
    /// Stack `[callee, this, arg0..argN-1]` → `[result]`.
    Call(u8),
    /// Stack `[callee, arg0..argN-1]` → `[result]`: construct.
    New(u8),
    /// Pop the return value and return from the current frame.
    Return,
    /// Return `undefined`.
    ReturnUndef,

    // -- control flow --
    /// Unconditional jump.
    Jump(u32),
    /// Pop; jump when falsy.
    JumpIfFalse(u32),
    /// Pop; jump when truthy.
    JumpIfTrue(u32),
    /// `&&`: if top is falsy jump (keeping it); else pop.
    AndJump(u32),
    /// `||`: if top is truthy jump (keeping it); else pop.
    OrJump(u32),
    /// Loop header marker: the trace monitor hook (§3.3). Patched to
    /// [`Op::Nop`] when the loop is blacklisted.
    LoopHeader(LoopId),
    /// No-op (blacklisted loop header).
    Nop,
}

/// Static description of one loop in a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// The loop id (index into [`Function::loops`]).
    pub id: LoopId,
    /// Instruction index of the `LoopHeader` op.
    pub header: u32,
    /// Instruction index one past the loop's last instruction (its backward
    /// jump). `header..end` is the loop body range; used to decide loop
    /// nesting (§4.1: "given two loop edges, the system can easily
    /// determine whether they are nested and which is the inner loop").
    pub end: u32,
    /// Source line of the loop.
    pub line: u32,
}

impl LoopInfo {
    /// Whether `other` is strictly nested inside this loop.
    pub fn contains(&self, other: &LoopInfo) -> bool {
        self.header < other.header && other.end <= self.end && self != other
    }

    /// Whether instruction index `pc` is inside the loop body.
    pub fn contains_pc(&self, pc: u32) -> bool {
        (self.header..self.end).contains(&pc)
    }
}

/// A compiled function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Diagnostic name (`"<main>"` for the script body).
    pub name: String,
    /// Number of declared parameters.
    pub nparams: u16,
    /// Total local slots: `1 (this) + nparams + vars + compiler temps`.
    pub nlocals: u16,
    /// The instruction stream.
    pub code: Vec<Op>,
    /// Source line for each instruction (parallel to `code`).
    pub lines: Vec<u32>,
    /// Loops in this function, indexed by [`LoopId`].
    pub loops: Vec<LoopInfo>,
}

impl Function {
    /// The innermost loop containing `pc`, if any.
    pub fn innermost_loop_at(&self, pc: u32) -> Option<&LoopInfo> {
        self.loops
            .iter()
            .filter(|l| l.contains_pc(pc))
            .min_by_key(|l| l.end - l.header)
    }

    /// The loop whose header is exactly `pc`, if any.
    pub fn loop_with_header(&self, pc: u32) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.header == pc)
    }
}

/// A compiled program: functions plus program-wide constant pools.
#[derive(Debug, Clone)]
pub struct Program {
    /// All functions; `functions[main.0]` is the script body.
    pub functions: Vec<Function>,
    /// The entry function (script body).
    pub main: FuncId,
    /// Numeric constants (f64); materialized to boxed values at install.
    pub numbers: Vec<f64>,
    /// String constants (latin-1 code units); materialized at install.
    pub atoms: Vec<Vec<u8>>,
    /// Global slots assigned to declared functions: `(global slot, func)`.
    pub function_globals: Vec<(u32, FuncId)>,
    /// Number of property-access sites (`GetProp`/`SetProp`/`InitProp`)
    /// across all functions. Each site's opcode carries a dense id below
    /// this count; engines size their inline-cache tables from it.
    pub prop_sites: u32,
}

impl Program {
    /// The function table entry for `id`.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Total bytecode length across all functions (diagnostics).
    pub fn code_len(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_nesting_predicate() {
        let outer = LoopInfo { id: LoopId(0), header: 0, end: 20, line: 1 };
        let inner = LoopInfo { id: LoopId(1), header: 5, end: 15, line: 2 };
        let disjoint = LoopInfo { id: LoopId(2), header: 25, end: 30, line: 3 };
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(!outer.contains(&disjoint));
        assert!(!outer.contains(&outer));
        assert!(outer.contains_pc(0));
        assert!(!outer.contains_pc(20));
    }

    #[test]
    fn innermost_loop_selection() {
        let f = Function {
            name: "t".into(),
            nparams: 0,
            nlocals: 1,
            code: vec![],
            lines: vec![],
            loops: vec![
                LoopInfo { id: LoopId(0), header: 0, end: 20, line: 1 },
                LoopInfo { id: LoopId(1), header: 5, end: 15, line: 2 },
            ],
        };
        assert_eq!(f.innermost_loop_at(7).unwrap().id, LoopId(1));
        assert_eq!(f.innermost_loop_at(2).unwrap().id, LoopId(0));
        assert!(f.innermost_loop_at(25).is_none());
        assert_eq!(f.loop_with_header(5).unwrap().id, LoopId(1));
    }
}
