//! AST → bytecode compiler.
//!
//! Responsibilities beyond plain code generation:
//!
//! * **loop headers**: every loop emits an [`Op::LoopHeader`] as the unique
//!   target of its backward branch, and registers a [`LoopInfo`] whose body
//!   range lets the tracer decide loop nesting statically (§4.1);
//! * **name resolution**: function-local `var`s become frame slots
//!   (hoisted), top-level `var`s become realm global slots, functions are
//!   installed as global function objects;
//! * **constant pooling**: numbers and strings are pooled program-wide so
//!   the VM can materialize boxed literals once at install time.

use std::collections::HashMap;

use tm_frontend::ast::{self, BinOp, Expr, Stmt, Target, UnOp};
use tm_runtime::Realm;

use crate::opcode::{FuncId, Function, LoopId, LoopInfo, Op, Program};

/// An error produced during bytecode compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl CompileError {
    fn new(line: u32, message: impl Into<String>) -> CompileError {
        CompileError { line, message: message.into() }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles a parsed program against `realm` (which interns symbols and
/// assigns global slots).
///
/// # Errors
///
/// Returns a [`CompileError`] for resource overflows (too many locals or
/// constants) and malformed constructs.
pub fn compile(prog: &ast::Program, realm: &mut Realm) -> Result<Program, CompileError> {
    let mut shared = SharedPools {
        numbers: Vec::new(),
        atoms: Vec::new(),
        num_map: HashMap::new(),
        atom_map: HashMap::new(),
        prop_sites: 0,
    };

    // Pre-assign global slots for all declared functions so calls resolve
    // regardless of declaration order.
    let mut function_globals = Vec::new();
    for (i, f) in prog.functions.iter().enumerate() {
        // Function index 0 is reserved for main; declared functions follow.
        let func_id = FuncId((i + 1) as u32);
        let slot = realm.global_slot(&f.name);
        function_globals.push((slot, func_id));
    }

    let mut functions = Vec::with_capacity(prog.functions.len() + 1);
    let main =
        FuncCompiler::new(realm, &mut shared, None).compile_main(&prog.body)?;
    functions.push(main);
    for f in &prog.functions {
        let compiled = FuncCompiler::new(realm, &mut shared, Some(f)).compile_function(f)?;
        functions.push(compiled);
    }

    Ok(Program {
        functions,
        main: FuncId(0),
        numbers: shared.numbers,
        atoms: shared.atoms,
        function_globals,
        prop_sites: shared.prop_sites,
    })
}

struct SharedPools {
    numbers: Vec<f64>,
    atoms: Vec<Vec<u8>>,
    num_map: HashMap<u64, u16>,
    atom_map: HashMap<Vec<u8>, u16>,
    /// Next property inline-cache site id (program-wide, dense).
    prop_sites: u32,
}

struct LoopCtx {
    /// Index into `loops`.
    loop_idx: usize,
    /// Header pc (continue target for `while`; `for`/`do` override).
    continue_target: Option<u32>,
    /// Jumps to patch to the loop end.
    break_jumps: Vec<usize>,
    /// Jumps to patch to the continue target (when it is a forward target).
    continue_jumps: Vec<usize>,
}

struct FuncCompiler<'a, 'p> {
    realm: &'a mut Realm,
    shared: &'a mut SharedPools,
    code: Vec<Op>,
    lines: Vec<u32>,
    loops: Vec<LoopInfo>,
    loop_stack: Vec<LoopCtx>,
    locals: HashMap<String, u16>,
    nlocals: u16,
    temps_free: Vec<u16>,
    is_main: bool,
    cur_line: u32,
    /// `main` only: local slot receiving top-level completion values.
    completion_slot: u16,
    _marker: std::marker::PhantomData<&'p ()>,
}

impl<'a, 'p> FuncCompiler<'a, 'p> {
    fn new(
        realm: &'a mut Realm,
        shared: &'a mut SharedPools,
        func: Option<&'p ast::FunctionDecl>,
    ) -> Self {
        let is_main = func.is_none();
        FuncCompiler {
            realm,
            shared,
            code: Vec::new(),
            lines: Vec::new(),
            loops: Vec::new(),
            loop_stack: Vec::new(),
            locals: HashMap::new(),
            nlocals: 1, // slot 0 = this
            temps_free: Vec::new(),
            is_main,
            cur_line: func.map_or(1, |f| f.line),
            completion_slot: 0,
            _marker: std::marker::PhantomData,
        }
    }

    fn compile_main(mut self, body: &[Stmt]) -> Result<Function, CompileError> {
        // Top-level vars are globals (hoisted).
        let mut names = Vec::new();
        collect_vars(body, &mut names);
        for name in names {
            self.realm.global_slot(&name);
        }
        self.completion_slot = self.alloc_local_slot()?;
        self.emit(Op::Undefined);
        self.emit(Op::SetLocal(self.completion_slot));
        for s in body {
            self.stmt(s)?;
        }
        self.emit(Op::GetLocal(self.completion_slot));
        self.emit(Op::Return);
        Ok(self.finish("<main>", 0))
    }

    fn compile_function(mut self, f: &ast::FunctionDecl) -> Result<Function, CompileError> {
        for p in &f.params {
            let slot = self.alloc_local_slot()?;
            self.locals.insert(p.clone(), slot);
        }
        let mut names = Vec::new();
        collect_vars(&f.body, &mut names);
        for name in names {
            if !self.locals.contains_key(&name) {
                let slot = self.alloc_local_slot()?;
                self.locals.insert(name, slot);
            }
        }
        for s in &f.body {
            self.stmt(s)?;
        }
        self.emit(Op::ReturnUndef);
        Ok(self.finish(&f.name, f.params.len() as u16))
    }

    fn finish(self, name: &str, nparams: u16) -> Function {
        Function {
            name: name.to_owned(),
            nparams,
            nlocals: self.nlocals,
            code: self.code,
            lines: self.lines,
            loops: self.loops,
        }
    }

    // ---- emission utilities ----

    fn emit(&mut self, op: Op) -> usize {
        self.code.push(op);
        self.lines.push(self.cur_line);
        self.code.len() - 1
    }

    /// Allocates the next program-wide property inline-cache site id.
    fn prop_site(&mut self) -> u16 {
        if self.shared.prop_sites >= u32::from(crate::opcode::NO_PROP_SITE) {
            return crate::opcode::NO_PROP_SITE;
        }
        let site = self.shared.prop_sites as u16;
        self.shared.prop_sites += 1;
        site
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.here();
        match &mut self.code[at] {
            Op::Jump(t)
            | Op::JumpIfFalse(t)
            | Op::JumpIfTrue(t)
            | Op::AndJump(t)
            | Op::OrJump(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn alloc_local_slot(&mut self) -> Result<u16, CompileError> {
        if self.nlocals == u16::MAX {
            return Err(CompileError::new(self.cur_line, "too many locals"));
        }
        let slot = self.nlocals;
        self.nlocals += 1;
        Ok(slot)
    }

    fn alloc_temp(&mut self) -> Result<u16, CompileError> {
        if let Some(t) = self.temps_free.pop() {
            Ok(t)
        } else {
            self.alloc_local_slot()
        }
    }

    fn free_temp(&mut self, t: u16) {
        self.temps_free.push(t);
    }

    fn number_const(&mut self, n: f64) -> Result<Op, CompileError> {
        // Integral values in the inline range become immediate ints.
        if n == n.trunc() && !(n == 0.0 && n.is_sign_negative()) {
            if let Some(v) = tm_runtime::Value::new_int_checked(n as i64) {
                return Ok(Op::Int(v.as_int().expect("int")));
            }
        }
        let key = n.to_bits();
        let idx = match self.shared.num_map.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.shared.numbers.len();
                if i > u16::MAX as usize {
                    return Err(CompileError::new(self.cur_line, "too many number constants"));
                }
                self.shared.numbers.push(n);
                self.shared.num_map.insert(key, i as u16);
                i as u16
            }
        };
        Ok(Op::Num(idx))
    }

    fn atom_const(&mut self, bytes: &[u8]) -> Result<Op, CompileError> {
        let idx = match self.shared.atom_map.get(bytes) {
            Some(&i) => i,
            None => {
                let i = self.shared.atoms.len();
                if i > u16::MAX as usize {
                    return Err(CompileError::new(self.cur_line, "too many string constants"));
                }
                self.shared.atoms.push(bytes.to_vec());
                self.shared.atom_map.insert(bytes.to_vec(), i as u16);
                i as u16
            }
        };
        Ok(Op::Str(idx))
    }

    // ---- name resolution ----

    fn emit_get_name(&mut self, name: &str) {
        if let Some(&slot) = self.locals.get(name) {
            self.emit(Op::GetLocal(slot));
        } else {
            let slot = self.realm.global_slot(name);
            self.emit(Op::GetGlobal(slot));
        }
    }

    fn emit_set_name(&mut self, name: &str) {
        if let Some(&slot) = self.locals.get(name) {
            self.emit(Op::SetLocal(slot));
        } else {
            let slot = self.realm.global_slot(name);
            self.emit(Op::SetGlobal(slot));
        }
    }

    // ---- statements ----

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Empty => {}
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s)?;
                }
            }
            Stmt::Var(decls, line) => {
                self.cur_line = *line;
                for (name, init) in decls {
                    if let Some(e) = init {
                        self.expr(e)?;
                        self.emit_set_name(name);
                    }
                }
            }
            Stmt::Expr(e, line) => {
                self.cur_line = *line;
                self.expr(e)?;
                if self.is_main && self.loop_stack.is_empty() {
                    // Record the top-level completion value (what `eval`
                    // returns). Inside loops we skip this to keep hot loop
                    // bodies free of bookkeeping.
                    self.emit(Op::SetLocal(self.completion_slot));
                } else {
                    self.emit(Op::Pop);
                }
            }
            Stmt::If { cond, then, otherwise, line } => {
                self.cur_line = *line;
                self.expr(cond)?;
                let jf = self.emit(Op::JumpIfFalse(0));
                self.stmt(then)?;
                if let Some(other) = otherwise {
                    let jend = self.emit(Op::Jump(0));
                    self.patch_jump(jf);
                    self.stmt(other)?;
                    self.patch_jump(jend);
                } else {
                    self.patch_jump(jf);
                }
            }
            Stmt::While { cond, body, line } => {
                self.cur_line = *line;
                let loop_idx = self.begin_loop(*line);
                let header = self.here();
                self.emit(Op::LoopHeader(LoopId(loop_idx as u16)));
                self.expr(cond)?;
                let jexit = self.emit(Op::JumpIfFalse(0));
                self.loop_stack.last_mut().expect("in loop").continue_target = Some(header);
                self.stmt(body)?;
                self.emit(Op::Jump(header));
                self.patch_jump(jexit);
                self.end_loop(loop_idx, header);
            }
            Stmt::DoWhile { body, cond, line } => {
                self.cur_line = *line;
                let loop_idx = self.begin_loop(*line);
                let header = self.here();
                self.emit(Op::LoopHeader(LoopId(loop_idx as u16)));
                self.stmt(body)?;
                // `continue` lands on the condition check.
                let cont = self.here();
                self.patch_continues_to(cont);
                self.expr(cond)?;
                self.emit(Op::JumpIfTrue(header));
                self.end_loop(loop_idx, header);
            }
            Stmt::For { init, cond, update, body, line } => {
                self.cur_line = *line;
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let loop_idx = self.begin_loop(*line);
                let header = self.here();
                self.emit(Op::LoopHeader(LoopId(loop_idx as u16)));
                let jexit = match cond {
                    Some(c) => {
                        self.expr(c)?;
                        Some(self.emit(Op::JumpIfFalse(0)))
                    }
                    None => None,
                };
                self.stmt(body)?;
                let cont = self.here();
                self.patch_continues_to(cont);
                if let Some(u) = update {
                    self.expr(u)?;
                    self.emit(Op::Pop);
                }
                self.emit(Op::Jump(header));
                if let Some(j) = jexit {
                    self.patch_jump(j);
                }
                self.end_loop(loop_idx, header);
            }
            Stmt::Return(value, line) => {
                self.cur_line = *line;
                match value {
                    Some(e) => {
                        self.expr(e)?;
                        self.emit(Op::Return);
                    }
                    None => {
                        self.emit(Op::ReturnUndef);
                    }
                }
            }
            Stmt::Break(line) => {
                self.cur_line = *line;
                let j = self.emit(Op::Jump(0));
                match self.loop_stack.last_mut() {
                    Some(ctx) => ctx.break_jumps.push(j),
                    None => return Err(CompileError::new(*line, "'break' outside a loop")),
                }
            }
            Stmt::Continue(line) => {
                self.cur_line = *line;
                let ctx_target = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "'continue' outside a loop"))?
                    .continue_target;
                match ctx_target {
                    Some(t) => {
                        self.emit(Op::Jump(t));
                    }
                    None => {
                        let j = self.emit(Op::Jump(0));
                        self.loop_stack.last_mut().expect("in loop").continue_jumps.push(j);
                    }
                }
            }
        }
        Ok(())
    }

    fn begin_loop(&mut self, line: u32) -> usize {
        let loop_idx = self.loops.len();
        self.loops.push(LoopInfo { id: LoopId(loop_idx as u16), header: 0, end: 0, line });
        self.loop_stack.push(LoopCtx {
            loop_idx,
            continue_target: None,
            break_jumps: Vec::new(),
            continue_jumps: Vec::new(),
        });
        loop_idx
    }

    fn patch_continues_to(&mut self, target: u32) {
        let ctx = self.loop_stack.last_mut().expect("in loop");
        let pending = std::mem::take(&mut ctx.continue_jumps);
        for j in pending {
            match &mut self.code[j] {
                Op::Jump(t) => *t = target,
                other => unreachable!("continue patch on {other:?}"),
            }
        }
    }

    fn end_loop(&mut self, loop_idx: usize, header: u32) {
        let ctx = self.loop_stack.pop().expect("in loop");
        debug_assert_eq!(ctx.loop_idx, loop_idx);
        debug_assert!(ctx.continue_jumps.is_empty(), "unpatched continue");
        let end = self.here();
        for j in ctx.break_jumps {
            match &mut self.code[j] {
                Op::Jump(t) => *t = end,
                other => unreachable!("break patch on {other:?}"),
            }
        }
        self.loops[loop_idx].header = header;
        self.loops[loop_idx].end = end;
    }

    // ---- expressions ----

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        match e {
            Expr::Number(n) => {
                let op = self.number_const(*n)?;
                self.emit(op);
            }
            Expr::Str(s) => {
                let op = self.atom_const(s)?;
                self.emit(op);
            }
            Expr::Bool(b) => {
                self.emit(if *b { Op::True } else { Op::False });
            }
            Expr::Null => {
                self.emit(Op::Null);
            }
            Expr::This => {
                self.emit(Op::GetLocal(0));
            }
            Expr::Name(n) => self.emit_get_name(n),
            Expr::Array(elems) => {
                if elems.len() > u16::MAX as usize {
                    return Err(CompileError::new(self.cur_line, "array literal too large"));
                }
                for el in elems {
                    self.expr(el)?;
                }
                self.emit(Op::NewArray(elems.len() as u16));
            }
            Expr::ObjectLit(props) => {
                self.emit(Op::NewObject);
                for (k, v) in props {
                    self.expr(v)?;
                    let sym = self.realm.symbols.intern(k);
                    let site = self.prop_site();
                    self.emit(Op::InitProp(sym, site));
                }
            }
            Expr::Binary(op, a, b) => {
                self.expr(a)?;
                self.expr(b)?;
                self.emit(binop_op(*op));
            }
            Expr::Unary(op, a) => {
                self.expr(a)?;
                self.emit(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Pos => Op::Pos,
                    UnOp::Not => Op::Not,
                    UnOp::BitNot => Op::BitNot,
                    UnOp::Typeof => Op::Typeof,
                });
            }
            Expr::And(a, b) => {
                self.expr(a)?;
                let j = self.emit(Op::AndJump(0));
                self.expr(b)?;
                self.patch_jump(j);
            }
            Expr::Or(a, b) => {
                self.expr(a)?;
                let j = self.emit(Op::OrJump(0));
                self.expr(b)?;
                self.patch_jump(j);
            }
            Expr::Ternary(c, t, f) => {
                self.expr(c)?;
                let jf = self.emit(Op::JumpIfFalse(0));
                self.expr(t)?;
                let jend = self.emit(Op::Jump(0));
                self.patch_jump(jf);
                self.expr(f)?;
                self.patch_jump(jend);
            }
            Expr::Seq(exprs) => {
                let (last, rest) = exprs.split_last().expect("non-empty seq");
                for e in rest {
                    self.expr(e)?;
                    self.emit(Op::Pop);
                }
                self.expr(last)?;
            }
            Expr::Assign { target, op, value } => self.assign(target, *op, value)?,
            Expr::IncDec { target, inc, prefix } => self.inc_dec(target, *inc, *prefix)?,
            Expr::Prop(base, name) => {
                self.expr(base)?;
                let sym = self.realm.symbols.intern(name);
                let site = self.prop_site();
                self.emit(Op::GetProp(sym, site));
            }
            Expr::Elem(base, idx) => {
                self.expr(base)?;
                self.expr(idx)?;
                self.emit(Op::GetElem);
            }
            Expr::Call(callee, args) => {
                self.expr(callee)?;
                self.emit(Op::Undefined); // `this`
                self.call_args(args)?;
            }
            Expr::MethodCall(base, name, args) => {
                self.expr(base)?;
                self.emit(Op::Dup);
                let sym = self.realm.symbols.intern(name);
                let site = self.prop_site();
                self.emit(Op::GetProp(sym, site));
                self.emit(Op::Swap); // [callee, this]
                self.call_args(args)?;
            }
            Expr::New(callee, args) => {
                self.expr(callee)?;
                for a in args {
                    self.expr(a)?;
                }
                if args.len() > u8::MAX as usize {
                    return Err(CompileError::new(self.cur_line, "too many arguments"));
                }
                self.emit(Op::New(args.len() as u8));
            }
        }
        Ok(())
    }

    fn call_args(&mut self, args: &[Expr]) -> Result<(), CompileError> {
        for a in args {
            self.expr(a)?;
        }
        if args.len() > u8::MAX as usize {
            return Err(CompileError::new(self.cur_line, "too many arguments"));
        }
        self.emit(Op::Call(args.len() as u8));
        Ok(())
    }

    fn assign(
        &mut self,
        target: &Target,
        op: Option<BinOp>,
        value: &Expr,
    ) -> Result<(), CompileError> {
        match target {
            Target::Name(name) => {
                match op {
                    None => self.expr(value)?,
                    Some(op) => {
                        self.emit_get_name(name);
                        self.expr(value)?;
                        self.emit(binop_op(op));
                    }
                }
                self.emit(Op::Dup);
                self.emit_set_name(name);
            }
            Target::Prop(base, name) => {
                let sym = self.realm.symbols.intern(name);
                match op {
                    None => {
                        self.expr(base)?;
                        self.expr(value)?;
                        let site = self.prop_site();
                        self.emit(Op::SetProp(sym, site));
                    }
                    Some(op) => {
                        let tb = self.alloc_temp()?;
                        self.expr(base)?;
                        self.emit(Op::SetLocal(tb));
                        self.emit(Op::GetLocal(tb));
                        self.emit(Op::GetLocal(tb));
                        let site = self.prop_site();
                        self.emit(Op::GetProp(sym, site));
                        self.expr(value)?;
                        self.emit(binop_op(op));
                        let site = self.prop_site();
                        self.emit(Op::SetProp(sym, site));
                        self.free_temp(tb);
                    }
                }
            }
            Target::Elem(base, idx) => match op {
                None => {
                    self.expr(base)?;
                    self.expr(idx)?;
                    self.expr(value)?;
                    self.emit(Op::SetElem);
                }
                Some(op) => {
                    let tb = self.alloc_temp()?;
                    let ti = self.alloc_temp()?;
                    self.expr(base)?;
                    self.emit(Op::SetLocal(tb));
                    self.expr(idx)?;
                    self.emit(Op::SetLocal(ti));
                    self.emit(Op::GetLocal(tb));
                    self.emit(Op::GetLocal(ti));
                    self.emit(Op::GetLocal(tb));
                    self.emit(Op::GetLocal(ti));
                    self.emit(Op::GetElem);
                    self.expr(value)?;
                    self.emit(binop_op(op));
                    self.emit(Op::SetElem);
                    self.free_temp(ti);
                    self.free_temp(tb);
                }
            },
        }
        Ok(())
    }

    fn inc_dec(&mut self, target: &Target, inc: bool, prefix: bool) -> Result<(), CompileError> {
        let delta = Op::Int(1);
        let arith = if inc { Op::Add } else { Op::Sub };
        match target {
            Target::Name(name) => {
                self.emit_get_name(name);
                self.emit(Op::Pos);
                if prefix {
                    self.emit(delta);
                    self.emit(arith);
                    self.emit(Op::Dup);
                    self.emit_set_name(name);
                } else {
                    self.emit(Op::Dup);
                    self.emit(delta);
                    self.emit(arith);
                    self.emit_set_name(name);
                }
            }
            Target::Prop(base, name) => {
                let sym = self.realm.symbols.intern(name);
                let tb = self.alloc_temp()?;
                self.expr(base)?;
                self.emit(Op::SetLocal(tb));
                self.emit(Op::GetLocal(tb));
                self.emit(Op::GetLocal(tb));
                let site = self.prop_site();
                self.emit(Op::GetProp(sym, site));
                self.emit(Op::Pos);
                if prefix {
                    // [base, old] -> [base, new] -> SetProp -> [new]
                    self.emit(delta);
                    self.emit(arith);
                    let site = self.prop_site();
                    self.emit(Op::SetProp(sym, site));
                } else {
                    // Keep old: stash it in a temp.
                    let told = self.alloc_temp()?;
                    self.emit(Op::Dup);
                    self.emit(Op::SetLocal(told));
                    self.emit(delta);
                    self.emit(arith);
                    let site = self.prop_site();
                    self.emit(Op::SetProp(sym, site));
                    self.emit(Op::Pop);
                    self.emit(Op::GetLocal(told));
                    self.free_temp(told);
                }
                self.free_temp(tb);
            }
            Target::Elem(base, idx) => {
                let tb = self.alloc_temp()?;
                let ti = self.alloc_temp()?;
                self.expr(base)?;
                self.emit(Op::SetLocal(tb));
                self.expr(idx)?;
                self.emit(Op::SetLocal(ti));
                self.emit(Op::GetLocal(tb));
                self.emit(Op::GetLocal(ti));
                self.emit(Op::GetLocal(tb));
                self.emit(Op::GetLocal(ti));
                self.emit(Op::GetElem);
                self.emit(Op::Pos);
                if prefix {
                    self.emit(delta);
                    self.emit(arith);
                    self.emit(Op::SetElem);
                } else {
                    let told = self.alloc_temp()?;
                    self.emit(Op::Dup);
                    self.emit(Op::SetLocal(told));
                    self.emit(delta);
                    self.emit(arith);
                    self.emit(Op::SetElem);
                    self.emit(Op::Pop);
                    self.emit(Op::GetLocal(told));
                    self.free_temp(told);
                }
                self.free_temp(ti);
                self.free_temp(tb);
            }
        }
        Ok(())
    }
}

fn binop_op(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::Add,
        BinOp::Sub => Op::Sub,
        BinOp::Mul => Op::Mul,
        BinOp::Div => Op::Div,
        BinOp::Mod => Op::Mod,
        BinOp::BitAnd => Op::BitAnd,
        BinOp::BitOr => Op::BitOr,
        BinOp::BitXor => Op::BitXor,
        BinOp::Shl => Op::Shl,
        BinOp::Shr => Op::Shr,
        BinOp::UShr => Op::UShr,
        BinOp::Lt => Op::Lt,
        BinOp::Le => Op::Le,
        BinOp::Gt => Op::Gt,
        BinOp::Ge => Op::Ge,
        BinOp::Eq => Op::Eq,
        BinOp::Ne => Op::Ne,
        BinOp::StrictEq => Op::StrictEq,
        BinOp::StrictNe => Op::StrictNe,
    }
}

/// Collects all `var`-declared names in a statement list (hoisting).
fn collect_vars(stmts: &[Stmt], out: &mut Vec<String>) {
    for s in stmts {
        collect_vars_stmt(s, out);
    }
}

fn collect_vars_stmt(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Var(decls, _) => {
            for (name, _) in decls {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        }
        Stmt::Block(stmts) => collect_vars(stmts, out),
        Stmt::If { then, otherwise, .. } => {
            collect_vars_stmt(then, out);
            if let Some(o) = otherwise {
                collect_vars_stmt(o, out);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => collect_vars_stmt(body, out),
        Stmt::For { init, body, .. } => {
            if let Some(i) = init {
                collect_vars_stmt(i, out);
            }
            collect_vars_stmt(body, out);
        }
        Stmt::Expr(..) | Stmt::Return(..) | Stmt::Break(_) | Stmt::Continue(_) | Stmt::Empty => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_src(src: &str) -> (Program, Realm) {
        let ast = tm_frontend::parse(src).expect("parse");
        let mut realm = Realm::new();
        let prog = compile(&ast, &mut realm).expect("compile");
        (prog, realm)
    }

    #[test]
    fn loop_header_is_backward_branch_target() {
        let (prog, _) = compile_src("var i = 0; while (i < 10) { i = i + 1; }");
        let main = prog.function(prog.main);
        assert_eq!(main.loops.len(), 1);
        let l = &main.loops[0];
        assert!(matches!(main.code[l.header as usize], Op::LoopHeader(_)));
        // The instruction just before `end` is the backward jump to the
        // header — the loop edge.
        assert_eq!(main.code[(l.end - 1) as usize], Op::Jump(l.header));
        // No other instruction jumps backwards.
        for (pc, op) in main.code.iter().enumerate() {
            if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) = op {
                if (*t as usize) < pc {
                    assert!(
                        matches!(main.code[*t as usize], Op::LoopHeader(_)),
                        "backward branch at {pc} targets non-header {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn nested_loops_have_nested_ranges() {
        let (prog, _) = compile_src(
            "var s = 0;
             for (var i = 0; i < 10; i++) {
                 for (var j = 0; j < 10; j++) {
                     s = s + 1;
                 }
             }",
        );
        let main = prog.function(prog.main);
        assert_eq!(main.loops.len(), 2);
        let outer = &main.loops[0];
        let inner = &main.loops[1];
        assert!(outer.contains(inner), "outer {outer:?} should contain inner {inner:?}");
    }

    #[test]
    fn top_level_vars_are_globals() {
        let (prog, realm) = compile_src("var x = 5;");
        assert!(realm.lookup_global("x").is_some());
        let main = prog.function(prog.main);
        assert!(main.code.iter().any(|op| matches!(op, Op::SetGlobal(_))));
    }

    #[test]
    fn function_vars_are_locals() {
        let (prog, realm) = compile_src("function f(a) { var b = a + 1; return b; }");
        assert_eq!(prog.functions.len(), 2);
        let f = &prog.functions[1];
        assert_eq!(f.nparams, 1);
        // this + a + b = 3 locals.
        assert_eq!(f.nlocals, 3);
        // `b` must not be a global.
        assert!(realm.lookup_global("b").is_none());
        assert!(realm.lookup_global("f").is_some(), "function name is a global");
    }

    #[test]
    fn function_globals_mapping() {
        let (prog, realm) = compile_src("function a() {} function b() {}");
        assert_eq!(prog.function_globals.len(), 2);
        let slot_a = realm.lookup_global("a").unwrap();
        assert_eq!(prog.function_globals[0], (slot_a, FuncId(1)));
    }

    #[test]
    fn small_int_literals_are_immediate() {
        let (prog, _) = compile_src("var x = 42; var y = 0.5;");
        let main = prog.function(prog.main);
        assert!(main.code.contains(&Op::Int(42)));
        assert_eq!(prog.numbers, vec![0.5]);
    }

    #[test]
    fn constants_are_pooled() {
        let (prog, _) = compile_src("var x = 'abc'; var y = 'abc'; var z = 0.5 + 0.5;");
        assert_eq!(prog.atoms.len(), 1);
        assert_eq!(prog.numbers.len(), 1);
    }

    #[test]
    fn break_and_continue_patching() {
        let (prog, _) = compile_src(
            "var i = 0;
             while (true) {
                 i++;
                 if (i > 5) break;
                 if (i > 2) continue;
                 i++;
             }",
        );
        let main = prog.function(prog.main);
        let l = &main.loops[0];
        // All jumps land inside [header, end] or exactly at end.
        for op in &main.code {
            if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) = op {
                assert!(*t <= l.end, "jump target {t} escapes loop end {}", l.end);
            }
        }
    }

    #[test]
    fn do_while_continue_goes_to_condition() {
        let (prog, _) = compile_src("var i = 0; do { i++; if (i < 3) continue; } while (i < 5);");
        let main = prog.function(prog.main);
        assert_eq!(main.loops.len(), 1);
        // The backward branch of a do-while is the JumpIfTrue.
        let l = &main.loops[0];
        assert!(matches!(main.code[(l.end - 1) as usize], Op::JumpIfTrue(t) if t == l.header));
    }

    #[test]
    fn method_call_shape() {
        let (prog, _) = compile_src("var s = 'x'; s.charCodeAt(0);");
        let main = prog.function(prog.main);
        let idx = main.code.iter().position(|o| matches!(o, Op::GetProp(..))).unwrap();
        assert_eq!(main.code[idx - 1], Op::Dup);
        assert_eq!(main.code[idx + 1], Op::Swap);
        assert!(matches!(main.code[idx + 3], Op::Call(1)));
    }

    #[test]
    fn compound_elem_assignment_uses_temps() {
        let (prog, _) = compile_src("var a = [1]; a[0] += 2;");
        let main = prog.function(prog.main);
        assert!(main.code.iter().any(|o| matches!(o, Op::GetElem)));
        assert!(main.code.iter().any(|o| matches!(o, Op::SetElem)));
        // temps bump nlocals beyond just the completion slot.
        assert!(main.nlocals >= 3);
    }

    #[test]
    fn break_outside_loop_is_error() {
        let ast = tm_frontend::parse("break;").unwrap();
        let mut realm = Realm::new();
        assert!(compile(&ast, &mut realm).is_err());
    }

    #[test]
    fn sieve_compiles_with_two_loops() {
        let (prog, _) = compile_src(
            "var primes = [];
             for (var i = 2; i < 100; ++i) {
                 if (!primes[i]) continue;
                 for (var k = i + i; k < 100; k += i) primes[k] = false;
             }",
        );
        let main = prog.function(prog.main);
        assert_eq!(main.loops.len(), 2);
        assert!(main.loops[0].contains(&main.loops[1]));
    }
}
