//! Bytecode disassembler (diagnostics and golden tests).

use tm_runtime::Realm;

use crate::opcode::{Function, Op, Program};

/// Renders one function as readable assembly, one instruction per line:
/// `pc: op` with loop headers annotated.
pub fn disassemble_function(f: &Function, prog: &Program, realm: &Realm) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "function {} (params={}, locals={}, loops={})\n",
        f.name,
        f.nparams,
        f.nlocals,
        f.loops.len()
    ));
    for (pc, op) in f.code.iter().enumerate() {
        let text = match op {
            Op::Num(i) => format!("num {}", prog.numbers[*i as usize]),
            Op::Str(i) => {
                let s: String =
                    prog.atoms[*i as usize].iter().map(|&b| b as char).collect();
                format!("str {s:?}")
            }
            // Site ids are engine bookkeeping, not program semantics: keep
            // the disassembly stable across IC-numbering changes.
            Op::GetProp(sym, _) => format!("getprop .{}", realm.symbols.name(*sym)),
            Op::SetProp(sym, _) => format!("setprop .{}", realm.symbols.name(*sym)),
            Op::InitProp(sym, _) => format!("initprop .{}", realm.symbols.name(*sym)),
            Op::GetGlobal(slot) => {
                format!("getglobal {}", realm.global_name(*slot).unwrap_or("?"))
            }
            Op::SetGlobal(slot) => {
                format!("setglobal {}", realm.global_name(*slot).unwrap_or("?"))
            }
            other => format!("{other:?}").to_lowercase(),
        };
        out.push_str(&format!("  {pc:4}: {text}\n"));
    }
    out
}

/// Disassembles every function in `prog`.
pub fn disassemble(prog: &Program, realm: &Realm) -> String {
    let mut out = String::new();
    for f in &prog.functions {
        out.push_str(&disassemble_function(f, prog, realm));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disassembly_mentions_names() {
        let ast = tm_frontend::parse("var x = 'hi'; function f(a) { return a.len; }").unwrap();
        let mut realm = Realm::new();
        let prog = crate::compiler::compile(&ast, &mut realm).unwrap();
        let text = disassemble(&prog, &realm);
        assert!(text.contains("function <main>"));
        assert!(text.contains("function f"));
        assert!(text.contains("str \"hi\""));
        assert!(text.contains("getprop .len"));
        assert!(text.contains("setglobal x"));
    }
}
