//! Trace-flavored SSA LIR (the paper's §3.1/§5).
//!
//! A trace is a **linear** sequence of LIR instructions: no join points, no
//! φ-nodes except the implicit entry ([`Lir::Import`] reads the trace
//! activation record, which is both the entry state and the loop-carried
//! state). Control flow appears only as **guards** — instructions that
//! conditionally leave the trace through a numbered side exit — and the
//! final [`Lir::LoopBack`]/[`Lir::End`].
//!
//! Integer values on trace are 32-bit two's-complement, but the *boxable*
//! integer range is the 31-bit inline range of the value tagging scheme, so
//! the checked arithmetic ops (`AddIChk`, ...) guard the 31-bit range: this
//! is exactly the "adding two integers can produce a value too large for
//! the integer representation" guard of §3.1.

use tm_runtime::Helper;

/// Index of an instruction within a trace (SSA value id).
pub type LirId = u32;

/// Index of a side exit within a trace's exit table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExitId(pub u16);

/// Sentinel exit for operations that carry an exit field structurally but
/// can never take it (e.g. soft-float helper calls).
pub const NO_EXIT: ExitId = ExitId(u16::MAX);

/// Index of a slot in the trace activation record.
pub type ArSlot = u16;

/// The type of an SSA value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LirType {
    /// Unboxed 32-bit integer (boxable subset: 31-bit).
    Int,
    /// Unboxed IEEE-754 double.
    Double,
    /// Object handle.
    Object,
    /// String handle.
    String,
    /// Boolean (0/1 in a word).
    Bool,
    /// The constant `null`.
    Null,
    /// The constant `undefined`.
    Undefined,
    /// A raw boxed value word (tagged).
    Boxed,
}

impl LirType {
    /// Single-letter prefix used by the printer (`i3`, `d7`, ...).
    pub fn prefix(self) -> char {
        match self {
            LirType::Int => 'i',
            LirType::Double => 'd',
            LirType::Object => 'o',
            LirType::String => 's',
            LirType::Bool => 'b',
            LirType::Null => 'n',
            LirType::Undefined => 'u',
            LirType::Boxed => 'v',
        }
    }
}

/// One LIR instruction.
///
/// Operand fields name the SSA ids of inputs; each instruction defines at
/// most one SSA value (its own id).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Lir {
    // ---- constants ----
    /// Integer constant.
    ConstI(i32),
    /// Double constant (bit pattern, so the type is `Eq`-friendly).
    ConstD(u64),
    /// Object-handle constant.
    ConstObj(u32),
    /// String-handle constant.
    ConstStr(u32),
    /// Boolean constant.
    ConstBool(bool),
    /// Raw boxed word constant (`undefined`, `null`, boxed booleans).
    ConstBoxed(u64),

    // ---- trace activation record ----
    /// Entry read of AR slot `slot` with the entry type `ty` — the trace's
    /// φ-node. The monitor unboxes interpreter state into the AR before
    /// entering (§6.1).
    Import {
        /// AR slot index.
        slot: ArSlot,
        /// Unboxed type of the slot.
        ty: LirType,
    },
    /// Store `v` to AR slot `slot` — the paper's "stores to the interpreter
    /// stack" (Figure 3), candidates for dead-store elimination (§5.1).
    WriteAr {
        /// AR slot index.
        slot: ArSlot,
        /// Value to store (raw word).
        v: LirId,
    },

    // ---- integer arithmetic (unchecked: result provably in range or
    //      wrap semantics wanted) ----
    /// 32-bit wrapping add.
    AddI(LirId, LirId),
    /// 32-bit wrapping subtract.
    SubI(LirId, LirId),
    /// 32-bit wrapping multiply.
    MulI(LirId, LirId),
    /// Bitwise and.
    AndI(LirId, LirId),
    /// Bitwise or.
    OrI(LirId, LirId),
    /// Bitwise xor.
    XorI(LirId, LirId),
    /// Shift left (count masked to 5 bits).
    ShlI(LirId, LirId),
    /// Arithmetic shift right.
    ShrI(LirId, LirId),
    /// Logical shift right (result viewed as u32 bits).
    UShrI(LirId, LirId),
    /// Bitwise not.
    NotI(LirId),
    /// Integer negate (unchecked).
    NegI(LirId),

    // ---- checked integer arithmetic: exit when the exact result leaves
    //      the boxable 31-bit range (§3.1 overflow guards) ----
    /// Checked add.
    AddIChk(LirId, LirId, ExitId),
    /// Checked subtract.
    SubIChk(LirId, LirId, ExitId),
    /// Checked multiply.
    MulIChk(LirId, LirId, ExitId),
    /// Checked negate (also exits on -0).
    NegIChk(LirId, ExitId),
    /// Checked remainder (exits on zero divisor or -0 result).
    ModIChk(LirId, LirId, ExitId),
    /// Checked shift left (exits when the result leaves the 31-bit range).
    ShlIChk(LirId, LirId, ExitId),
    /// Checked unsigned shift right (exits when the u32 result leaves the
    /// 31-bit range).
    UShrIChk(LirId, LirId, ExitId),

    // ---- double arithmetic ----
    /// Double add.
    AddD(LirId, LirId),
    /// Double subtract.
    SubD(LirId, LirId),
    /// Double multiply.
    MulD(LirId, LirId),
    /// Double divide.
    DivD(LirId, LirId),
    /// Double remainder (fmod).
    ModD(LirId, LirId),
    /// Double negate.
    NegD(LirId),

    // ---- comparisons (produce Bool) ----
    /// Integer compare.
    EqI(LirId, LirId),
    /// Integer compare.
    LtI(LirId, LirId),
    /// Integer compare.
    LeI(LirId, LirId),
    /// Integer compare.
    GtI(LirId, LirId),
    /// Integer compare.
    GeI(LirId, LirId),
    /// Double compare (NaN compares false).
    EqD(LirId, LirId),
    /// Double compare.
    LtD(LirId, LirId),
    /// Double compare.
    LeD(LirId, LirId),
    /// Double compare.
    GtD(LirId, LirId),
    /// Double compare.
    GeD(LirId, LirId),
    /// Boolean not (input Bool).
    NotB(LirId),

    // ---- conversions (§3.1: "type conversions ... are represented by
    //      function calls" — here dedicated ops the backend may inline) ----
    /// Exact int → double.
    I2D(LirId),
    /// u32 bits → double (for `>>>` results).
    U2D(LirId),
    /// Double → int, exiting unless the value is integral and in the
    /// 31-bit range (used for indices and demotion).
    D2IChk(LirId, ExitId),
    /// JS `ToInt32` wrap of a double (deterministic, no guard).
    D2I32(LirId),
    /// Guard that a full-range i32 value fits the boxable 31-bit range
    /// (used after `ToInt32` conversions whose observed results were
    /// boxable ints); the result is the same value, typed Int-in-range.
    ChkRangeI(LirId, ExitId),

    // ---- boxing / unboxing ----
    /// Box an int (always fits the inline representation; pure).
    BoxI(LirId),
    /// Box a double (allocates when non-integral).
    BoxD(LirId),
    /// Box a bool.
    BoxB(LirId),
    /// Box an object handle (pure bit tagging).
    BoxObj(LirId),
    /// Box a string handle (pure bit tagging).
    BoxStr(LirId),
    /// Unbox an int, exiting when the tag is not int.
    UnboxI(LirId, ExitId),
    /// Unbox a double, exiting when the tag is not double.
    UnboxD(LirId, ExitId),
    /// Unbox any number as double, exiting when not a number.
    UnboxNumD(LirId, ExitId),
    /// Unbox an object handle.
    UnboxObj(LirId, ExitId),
    /// Unbox a string handle.
    UnboxStr(LirId, ExitId),
    /// Unbox a boolean.
    UnboxBool(LirId, ExitId),

    // ---- guards ----
    /// Exit unless the Bool operand is true.
    GuardTrue(LirId, ExitId),
    /// Exit unless the Bool operand is false.
    GuardFalse(LirId, ExitId),
    /// Exit unless the object's shape id equals `shape` (§3.1 object
    /// representation guard).
    GuardShape {
        /// Object operand.
        obj: LirId,
        /// Required shape id.
        shape: u32,
        /// Exit on mismatch.
        exit: ExitId,
    },
    /// Exit unless the object's class word equals `class` (Figure 3's
    /// array check).
    GuardClass {
        /// Object operand.
        obj: LirId,
        /// Required class (`ObjectClass` as u8).
        class: u8,
        /// Exit on mismatch.
        exit: ExitId,
    },
    /// Exit unless the boxed operand bit-equals `word` (guards observed
    /// `null`/`undefined`/bool values and function identity).
    GuardBoxedEq(LirId, u64, ExitId),
    /// Exit unless `0 <= idx < elements.len()` for array `arr`.
    GuardBound {
        /// Array operand.
        arr: LirId,
        /// Int index operand.
        idx: LirId,
        /// Exit when out of bounds.
        exit: ExitId,
    },

    // ---- memory ----
    /// Read property slot `slot` of an object: one indexed load (§3.1).
    LoadSlot(LirId, u32),
    /// Write property slot `slot` of an object.
    StoreSlot(LirId, u32, LirId),
    /// Read the prototype link.
    LoadProto(LirId),
    /// Read dense element `idx` (must be guarded in-bounds).
    LoadElem(LirId, LirId),
    /// Write dense element `idx` (must be guarded in-bounds).
    StoreElem(LirId, LirId, LirId),
    /// Dense length of an array.
    ArrayLen(LirId),
    /// Length of a string.
    StrLen(LirId),

    // ---- calls ----
    /// Call a runtime helper (§6.5 FFI; also `js_Array_set`-style runtime
    /// services). Arguments are raw words in the helper's convention.
    Call {
        /// The helper to call.
        helper: Helper,
        /// Argument values.
        args: Box<[LirId]>,
        /// Result type.
        ret: LirType,
        /// Exit taken when the helper reports a deep bail (reentry, error).
        exit: ExitId,
    },
    /// Call a nested trace tree (§4): executes the inner loop to
    /// completion. Exits through `exit` when the inner tree left through an
    /// unexpected side exit.
    CallTree {
        /// Key of the inner tree in the tree registry.
        tree: u32,
        /// Exit taken on unexpected inner exit.
        exit: ExitId,
    },

    // ---- trace ends ----
    /// Jump back to the tree anchor (type-stable loop edge). Carries the
    /// exit used for preemption/GC bail-outs at the loop edge (§6.4).
    LoopBack(ExitId),
    /// Unconditional exit (type-unstable tail, or a trace that leaves the
    /// loop).
    End(ExitId),
}

impl Lir {
    /// The type of the SSA value this instruction defines, or `None` for
    /// pure effects (stores, guards, trace ends).
    pub fn result_ty(&self) -> Option<LirType> {
        use Lir::*;
        Some(match self {
            ConstI(_) => LirType::Int,
            ConstD(_) => LirType::Double,
            ConstObj(_) => LirType::Object,
            ConstStr(_) => LirType::String,
            ConstBool(_) => LirType::Bool,
            ConstBoxed(_) => LirType::Boxed,
            Import { ty, .. } => *ty,
            AddI(..) | SubI(..) | MulI(..) | AndI(..) | OrI(..) | XorI(..) | ShlI(..)
            | ShrI(..) | UShrI(..) | NotI(_) | NegI(_) => LirType::Int,
            AddIChk(..) | SubIChk(..) | MulIChk(..) | NegIChk(..) | ModIChk(..)
            | ShlIChk(..) | UShrIChk(..) => LirType::Int,
            AddD(..) | SubD(..) | MulD(..) | DivD(..) | ModD(..) | NegD(_) => LirType::Double,
            EqI(..) | LtI(..) | LeI(..) | GtI(..) | GeI(..) | EqD(..) | LtD(..) | LeD(..)
            | GtD(..) | GeD(..) | NotB(_) => LirType::Bool,
            I2D(_) | U2D(_) => LirType::Double,
            D2IChk(..) | D2I32(_) | ChkRangeI(..) => LirType::Int,
            BoxI(_) | BoxD(_) | BoxB(_) | BoxObj(_) | BoxStr(_) => LirType::Boxed,
            UnboxI(..) => LirType::Int,
            UnboxD(..) | UnboxNumD(..) => LirType::Double,
            UnboxObj(..) => LirType::Object,
            UnboxStr(..) => LirType::String,
            UnboxBool(..) => LirType::Bool,
            LoadSlot(..) | LoadElem(..) => LirType::Boxed,
            LoadProto(_) => LirType::Object,
            ArrayLen(_) | StrLen(_) => LirType::Int,
            Call { ret, .. } => *ret,
            WriteAr { .. } | StoreSlot(..) | StoreElem(..) | GuardTrue(..) | GuardFalse(..)
            | GuardShape { .. } | GuardClass { .. } | GuardBoxedEq(..) | GuardBound { .. }
            | CallTree { .. } | LoopBack(_) | End(_) => return None,
        })
    }

    /// Whether the instruction is pure (no side effects, no guard): safe to
    /// CSE and to remove when unused.
    pub fn is_pure(&self) -> bool {
        use Lir::*;
        matches!(
            self,
            ConstI(_)
                | ConstD(_)
                | ConstObj(_)
                | ConstStr(_)
                | ConstBool(_)
                | ConstBoxed(_)
                | AddI(..)
                | SubI(..)
                | MulI(..)
                | AndI(..)
                | OrI(..)
                | XorI(..)
                | ShlI(..)
                | ShrI(..)
                | UShrI(..)
                | NotI(_)
                | NegI(_)
                | AddD(..)
                | SubD(..)
                | MulD(..)
                | DivD(..)
                | ModD(..)
                | NegD(_)
                | EqI(..)
                | LtI(..)
                | LeI(..)
                | GtI(..)
                | GeI(..)
                | EqD(..)
                | LtD(..)
                | LeD(..)
                | GtD(..)
                | GeD(..)
                | NotB(_)
                | I2D(_)
                | U2D(_)
                | D2I32(_)
                | BoxI(_)
                | BoxB(_)
                | BoxObj(_)
                | BoxStr(_)
        )
    }

    /// Whether this is a guard or checked op (can take a side exit).
    pub fn exit(&self) -> Option<ExitId> {
        use Lir::*;
        match self {
            AddIChk(_, _, e) | SubIChk(_, _, e) | MulIChk(_, _, e) | ModIChk(_, _, e)
            | ShlIChk(_, _, e) | UShrIChk(_, _, e) => Some(*e),
            NegIChk(_, e) | D2IChk(_, e) | ChkRangeI(_, e) => Some(*e),
            UnboxI(_, e) | UnboxD(_, e) | UnboxNumD(_, e) | UnboxObj(_, e) | UnboxStr(_, e)
            | UnboxBool(_, e) => Some(*e),
            GuardTrue(_, e) | GuardFalse(_, e) | GuardBoxedEq(_, _, e) => Some(*e),
            GuardShape { exit, .. } | GuardClass { exit, .. } | GuardBound { exit, .. } => {
                Some(*exit)
            }
            Call { exit, .. } | CallTree { exit, .. } => Some(*exit),
            LoopBack(e) | End(e) => Some(*e),
            _ => None,
        }
    }

    /// Whether this is a memory load (invalidated by stores/calls for CSE).
    pub fn is_load(&self) -> bool {
        matches!(
            self,
            Lir::LoadSlot(..)
                | Lir::LoadElem(..)
                | Lir::LoadProto(_)
                | Lir::ArrayLen(_)
                | Lir::StrLen(_)
        )
    }

    /// Whether this instruction writes memory or has arbitrary effects
    /// (kills CSE'd loads).
    pub fn clobbers_memory(&self) -> bool {
        matches!(
            self,
            Lir::StoreSlot(..) | Lir::StoreElem(..) | Lir::Call { .. } | Lir::CallTree { .. }
        )
    }

    /// Collects the operand ids into `out`.
    pub fn operands(&self, out: &mut Vec<LirId>) {
        use Lir::*;
        match self {
            ConstI(_) | ConstD(_) | ConstObj(_) | ConstStr(_) | ConstBool(_) | ConstBoxed(_)
            | Import { .. } | CallTree { .. } | LoopBack(_) | End(_) => {}
            WriteAr { v, .. } => out.push(*v),
            AddI(a, b) | SubI(a, b) | MulI(a, b) | AndI(a, b) | OrI(a, b) | XorI(a, b)
            | ShlI(a, b) | ShrI(a, b) | UShrI(a, b) | AddD(a, b) | SubD(a, b) | MulD(a, b)
            | DivD(a, b) | ModD(a, b) | EqI(a, b) | LtI(a, b) | LeI(a, b) | GtI(a, b)
            | GeI(a, b) | EqD(a, b) | LtD(a, b) | LeD(a, b) | GtD(a, b) | GeD(a, b) => {
                out.push(*a);
                out.push(*b);
            }
            AddIChk(a, b, _) | SubIChk(a, b, _) | MulIChk(a, b, _) | ModIChk(a, b, _)
            | ShlIChk(a, b, _) | UShrIChk(a, b, _) => {
                out.push(*a);
                out.push(*b);
            }
            NotI(a) | NegI(a) | NegD(a) | NotB(a) | I2D(a) | U2D(a) | D2I32(a) | BoxI(a)
            | BoxD(a) | BoxB(a) | BoxObj(a) | BoxStr(a) | NegIChk(a, _) | D2IChk(a, _)
            | ChkRangeI(a, _) | UnboxI(a, _) | UnboxD(a, _)
            | UnboxNumD(a, _) | UnboxObj(a, _) | UnboxStr(a, _) | UnboxBool(a, _)
            | GuardTrue(a, _) | GuardFalse(a, _) | GuardBoxedEq(a, _, _) | LoadProto(a)
            | ArrayLen(a) | StrLen(a) => out.push(*a),
            GuardShape { obj, .. } | GuardClass { obj, .. } => out.push(*obj),
            GuardBound { arr, idx, .. } => {
                out.push(*arr);
                out.push(*idx);
            }
            LoadSlot(o, _) => out.push(*o),
            StoreSlot(o, _, v) => {
                out.push(*o);
                out.push(*v);
            }
            LoadElem(a, i) => {
                out.push(*a);
                out.push(*i);
            }
            StoreElem(a, i, v) => {
                out.push(*a);
                out.push(*i);
                out.push(*v);
            }
            Call { args, .. } => out.extend(args.iter().copied()),
        }
    }
}

/// A recorded trace: linear LIR plus its entry/AR metadata.
///
/// The exit descriptor table itself lives with the tracer (`tm-core`),
/// which knows how to reconstruct interpreter state; LIR only references
/// exits by [`ExitId`].
#[derive(Debug, Clone, Default)]
pub struct LirTrace {
    /// The instructions; index = SSA id.
    pub code: Vec<Lir>,
    /// Number of side exits referenced.
    pub num_exits: u16,
}

impl LirTrace {
    /// Creates an empty trace.
    pub fn new() -> LirTrace {
        LirTrace::default()
    }

    /// The type of SSA value `id`.
    pub fn ty(&self, id: LirId) -> Option<LirType> {
        self.code[id as usize].result_ty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_types() {
        assert_eq!(Lir::ConstI(3).result_ty(), Some(LirType::Int));
        assert_eq!(Lir::AddD(0, 1).result_ty(), Some(LirType::Double));
        assert_eq!(Lir::LtI(0, 1).result_ty(), Some(LirType::Bool));
        assert_eq!(Lir::LoadSlot(0, 2).result_ty(), Some(LirType::Boxed));
        assert_eq!(Lir::GuardTrue(0, ExitId(0)).result_ty(), None);
        assert_eq!(Lir::UnboxI(0, ExitId(1)).result_ty(), Some(LirType::Int));
    }

    #[test]
    fn purity_and_exits() {
        assert!(Lir::AddI(0, 1).is_pure());
        assert!(!Lir::AddIChk(0, 1, ExitId(0)).is_pure());
        assert!(!Lir::LoadSlot(0, 0).is_pure(), "loads are not CSE-pure without memory tracking");
        assert_eq!(Lir::AddIChk(0, 1, ExitId(3)).exit(), Some(ExitId(3)));
        assert_eq!(Lir::AddI(0, 1).exit(), None);
        assert!(Lir::StoreElem(0, 1, 2).clobbers_memory());
        assert!(Lir::LoadElem(0, 1).is_load());
    }

    #[test]
    fn operand_collection() {
        let mut out = Vec::new();
        Lir::StoreElem(5, 6, 7).operands(&mut out);
        assert_eq!(out, vec![5, 6, 7]);
        out.clear();
        Lir::Call {
            helper: Helper::Sin,
            args: vec![3].into_boxed_slice(),
            ret: LirType::Double,
            exit: ExitId(0),
        }
        .operands(&mut out);
        assert_eq!(out, vec![3]);
        out.clear();
        Lir::ConstI(1).operands(&mut out);
        assert!(out.is_empty());
    }
}
