//! LIR pretty-printer, in the style of the paper's Figure 3.

use crate::ir::{Lir, LirTrace};
use crate::opclass::{AluOp, ChkOp, CmpOp};

/// Renders a trace one instruction per line, e.g.:
///
/// ```text
/// v0 = import slot[0] int
/// v2 = addi.chk v0, v1 -> exit0
/// st ar[0], v2
/// loop -> exit1
/// ```
pub fn print_trace(trace: &LirTrace) -> String {
    let mut out = String::new();
    for (i, inst) in trace.code.iter().enumerate() {
        let name = |id: u32| -> String {
            let ty = trace.code[id as usize].result_ty();
            match ty {
                Some(t) => format!("{}{}", t.prefix(), id),
                None => format!("v{id}"),
            }
        };
        let line = render(inst, i, &name);
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[allow(clippy::too_many_lines)]
fn render(inst: &Lir, idx: usize, name: &dyn Fn(u32) -> String) -> String {
    use Lir::*;
    let def = |body: String| -> String {
        format!("  {} = {}", name(idx as u32), body)
    };
    let eff = |body: String| -> String { format!("  {body}") };
    match inst {
        ConstI(v) => def(format!("const {v}")),
        ConstD(bits) => def(format!("constd {}", f64::from_bits(*bits))),
        ConstObj(h) => def(format!("constobj #{h}")),
        ConstStr(h) => def(format!("conststr #{h}")),
        ConstBool(v) => def(format!("constbool {v}")),
        ConstBoxed(w) => def(format!("constboxed {w:#x}")),
        Import { slot, ty } => def(format!("import slot[{slot}] {ty:?}")),
        WriteAr { slot, v } => eff(format!("st ar[{slot}], {}", name(*v))),
        AddI(a, b) => def(format!("{} {}, {}", AluOp::Add.mnemonic(), name(*a), name(*b))),
        SubI(a, b) => def(format!("{} {}, {}", AluOp::Sub.mnemonic(), name(*a), name(*b))),
        MulI(a, b) => def(format!("{} {}, {}", AluOp::Mul.mnemonic(), name(*a), name(*b))),
        AndI(a, b) => def(format!("{} {}, {}", AluOp::And.mnemonic(), name(*a), name(*b))),
        OrI(a, b) => def(format!("{} {}, {}", AluOp::Or.mnemonic(), name(*a), name(*b))),
        XorI(a, b) => def(format!("{} {}, {}", AluOp::Xor.mnemonic(), name(*a), name(*b))),
        ShlI(a, b) => def(format!("{} {}, {}", AluOp::Shl.mnemonic(), name(*a), name(*b))),
        ShrI(a, b) => def(format!("{} {}, {}", AluOp::Shr.mnemonic(), name(*a), name(*b))),
        UShrI(a, b) => def(format!("{} {}, {}", AluOp::UShr.mnemonic(), name(*a), name(*b))),
        NotI(a) => def(format!("noti {}", name(*a))),
        NegI(a) => def(format!("negi {}", name(*a))),
        AddIChk(a, b, e) => {
            def(format!("{} {}, {} -> exit{}", ChkOp::Add.mnemonic(), name(*a), name(*b), e.0))
        }
        SubIChk(a, b, e) => {
            def(format!("{} {}, {} -> exit{}", ChkOp::Sub.mnemonic(), name(*a), name(*b), e.0))
        }
        MulIChk(a, b, e) => {
            def(format!("{} {}, {} -> exit{}", ChkOp::Mul.mnemonic(), name(*a), name(*b), e.0))
        }
        NegIChk(a, e) => def(format!("negi.chk {} -> exit{}", name(*a), e.0)),
        ModIChk(a, b, e) => def(format!("modi.chk {}, {} -> exit{}", name(*a), name(*b), e.0)),
        ShlIChk(a, b, e) => def(format!("shli.chk {}, {} -> exit{}", name(*a), name(*b), e.0)),
        UShrIChk(a, b, e) => def(format!("ushri.chk {}, {} -> exit{}", name(*a), name(*b), e.0)),
        AddD(a, b) => def(format!("addd {}, {}", name(*a), name(*b))),
        SubD(a, b) => def(format!("subd {}, {}", name(*a), name(*b))),
        MulD(a, b) => def(format!("muld {}, {}", name(*a), name(*b))),
        DivD(a, b) => def(format!("divd {}, {}", name(*a), name(*b))),
        ModD(a, b) => def(format!("modd {}, {}", name(*a), name(*b))),
        NegD(a) => def(format!("negd {}", name(*a))),
        EqI(a, b) => def(format!("{} {}, {}", CmpOp::Eq.mnemonic_i(), name(*a), name(*b))),
        LtI(a, b) => def(format!("{} {}, {}", CmpOp::Lt.mnemonic_i(), name(*a), name(*b))),
        LeI(a, b) => def(format!("{} {}, {}", CmpOp::Le.mnemonic_i(), name(*a), name(*b))),
        GtI(a, b) => def(format!("{} {}, {}", CmpOp::Gt.mnemonic_i(), name(*a), name(*b))),
        GeI(a, b) => def(format!("{} {}, {}", CmpOp::Ge.mnemonic_i(), name(*a), name(*b))),
        EqD(a, b) => def(format!("{} {}, {}", CmpOp::Eq.mnemonic_d(), name(*a), name(*b))),
        LtD(a, b) => def(format!("{} {}, {}", CmpOp::Lt.mnemonic_d(), name(*a), name(*b))),
        LeD(a, b) => def(format!("{} {}, {}", CmpOp::Le.mnemonic_d(), name(*a), name(*b))),
        GtD(a, b) => def(format!("{} {}, {}", CmpOp::Gt.mnemonic_d(), name(*a), name(*b))),
        GeD(a, b) => def(format!("{} {}, {}", CmpOp::Ge.mnemonic_d(), name(*a), name(*b))),
        NotB(a) => def(format!("notb {}", name(*a))),
        I2D(a) => def(format!("i2d {}", name(*a))),
        U2D(a) => def(format!("u2d {}", name(*a))),
        D2IChk(a, e) => def(format!("d2i.chk {} -> exit{}", name(*a), e.0)),
        D2I32(a) => def(format!("d2i32 {}", name(*a))),
        ChkRangeI(a, e) => def(format!("chkrange {} -> exit{}", name(*a), e.0)),
        BoxI(a) => def(format!("boxi {}", name(*a))),
        BoxD(a) => def(format!("boxd {}", name(*a))),
        BoxB(a) => def(format!("boxb {}", name(*a))),
        BoxObj(a) => def(format!("boxobj {}", name(*a))),
        BoxStr(a) => def(format!("boxstr {}", name(*a))),
        UnboxI(a, e) => def(format!("unboxi {} -> exit{}", name(*a), e.0)),
        UnboxD(a, e) => def(format!("unboxd {} -> exit{}", name(*a), e.0)),
        UnboxNumD(a, e) => def(format!("unboxnum {} -> exit{}", name(*a), e.0)),
        UnboxObj(a, e) => def(format!("unboxobj {} -> exit{}", name(*a), e.0)),
        UnboxStr(a, e) => def(format!("unboxstr {} -> exit{}", name(*a), e.0)),
        UnboxBool(a, e) => def(format!("unboxbool {} -> exit{}", name(*a), e.0)),
        GuardTrue(a, e) => eff(format!("xf {} -> exit{}", name(*a), e.0)),
        GuardFalse(a, e) => eff(format!("xt {} -> exit{}", name(*a), e.0)),
        GuardShape { obj, shape, exit } => {
            eff(format!("guard shape({}) == {} -> exit{}", name(*obj), shape, exit.0))
        }
        GuardClass { obj, class, exit } => {
            eff(format!("guard class({}) == {} -> exit{}", name(*obj), class, exit.0))
        }
        GuardBoxedEq(a, w, e) => eff(format!("guard {} == {:#x} -> exit{}", name(*a), w, e.0)),
        GuardBound { arr, idx, exit } => {
            eff(format!("guard {} in bounds({}) -> exit{}", name(*idx), name(*arr), exit.0))
        }
        LoadSlot(o, slot) => def(format!("ld {}[slot {}]", name(*o), slot)),
        StoreSlot(o, slot, v) => {
            eff(format!("st {}[slot {}], {}", name(*o), slot, name(*v)))
        }
        LoadProto(o) => def(format!("ld proto({})", name(*o))),
        LoadElem(a, i) => def(format!("ld {}[{}]", name(*a), name(*i))),
        StoreElem(a, i, v) => eff(format!("st {}[{}], {}", name(*a), name(*i), name(*v))),
        ArrayLen(a) => def(format!("arraylen {}", name(*a))),
        StrLen(a) => def(format!("strlen {}", name(*a))),
        Call { helper, args, ret, exit } => {
            let args: Vec<String> = args.iter().map(|&a| name(a)).collect();
            def(format!("call {helper:?}({}) {ret:?} -> exit{}", args.join(", "), exit.0))
        }
        CallTree { tree, exit } => eff(format!("calltree T{} -> exit{}", tree, exit.0)),
        LoopBack(e) => eff(format!("loop -> exit{}", e.0)),
        End(e) => eff(format!("end -> exit{}", e.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{FilterOptions, LirBuffer};
    use crate::ir::LirType;

    #[test]
    fn prints_figure3_style() {
        let mut b = LirBuffer::new(FilterOptions { fold: false, ..Default::default() });
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e = b.alloc_exit();
        let sum = b.emit(Lir::AddIChk(x, one, e));
        b.emit(Lir::WriteAr { slot: 0, v: sum });
        let le = b.alloc_exit();
        b.emit(Lir::LoopBack(le));
        let text = print_trace(b.trace());
        assert!(text.contains("import slot[0]"));
        assert!(text.contains("addi.chk"));
        assert!(text.contains("st ar[0]"));
        assert!(text.contains("loop -> exit1"));
    }
}
