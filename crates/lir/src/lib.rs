//! # tm-lir
//!
//! Trace-flavored SSA LIR and its optimization filter pipelines — the
//! NanoJIT LIR layer of the TraceMonkey reproduction (paper §3.1, §5.1).
//!
//! Traces are linear instruction sequences with guards as the only control
//! flow. Optimization runs as the paper describes: forward filters stream
//! over instructions *as the recorder emits them* ([`LirBuffer`]), backward
//! filters run once recording completes
//! ([`backward::run_backward_filters`]), so the whole trace is optimized in
//! "just two loop passes ... one forward and one backward".
//!
//! ```
//! use tm_lir::{Lir, LirBuffer, LirType, FilterOptions};
//!
//! let mut buf = LirBuffer::new(FilterOptions::default());
//! let x = buf.emit(Lir::Import { slot: 0, ty: LirType::Int });
//! let k = buf.emit(Lir::ConstI(0));
//! // The algebraic filter folds x + 0 to x as it streams through.
//! assert_eq!(buf.emit(Lir::AddI(x, k)), x);
//! ```

pub mod backward;
pub mod buffer;
pub mod ir;
pub mod opclass;
pub mod printer;

pub use backward::{run_backward_filters, BackwardStats, ExitLiveness};
pub use buffer::{FilterOptions, FilterStats, LirBuffer, NO_VALUE};
pub use ir::{ArSlot, ExitId, Lir, LirId, LirTrace, LirType, NO_EXIT};
pub use opclass::{AluOp, ChkOp, CmpOp};
pub use printer::print_trace;
