//! Operation classes shared between the LIR and the backend's virtual ISA.
//!
//! The superinstruction (peephole fusion) pass in `tm-nanojit` folds
//! constant operands, activation-record reads/writes, and guard exits into
//! single fused instructions. Rather than minting one opcode per
//! (operation × operand-form) combination, fused instructions carry one of
//! these small operation classes; the printer, the disassembler, and the
//! fragment verifier all share the same vocabulary.

/// A plain (unchecked) binary integer ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping i32 add.
    Add,
    /// Wrapping i32 subtract.
    Sub,
    /// Wrapping i32 multiply.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left by `b & 31`.
    Shl,
    /// Arithmetic shift right by `b & 31`.
    Shr,
    /// Logical (u32) shift right by `b & 31`.
    UShr,
}

impl AluOp {
    /// The LIR-printer mnemonic ("addi", "shri", ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "addi",
            AluOp::Sub => "subi",
            AluOp::Mul => "muli",
            AluOp::And => "andi",
            AluOp::Or => "ori",
            AluOp::Xor => "xori",
            AluOp::Shl => "shli",
            AluOp::Shr => "shri",
            AluOp::UShr => "ushri",
        }
    }

    /// Whether `a op b == b op a` (drives operand-swap in constant
    /// folding).
    pub fn commutative(self) -> bool {
        matches!(self, AluOp::Add | AluOp::Mul | AluOp::And | AluOp::Or | AluOp::Xor)
    }
}

/// A comparison producing 0/1 (int or double flavour is carried by the
/// instruction using it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==` (NaN-false for doubles).
    Eq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl CmpOp {
    /// Integer mnemonic ("lti", ...).
    pub fn mnemonic_i(self) -> &'static str {
        match self {
            CmpOp::Eq => "eqi",
            CmpOp::Lt => "lti",
            CmpOp::Le => "lei",
            CmpOp::Gt => "gti",
            CmpOp::Ge => "gei",
        }
    }

    /// Double mnemonic ("ltd", ...).
    pub fn mnemonic_d(self) -> &'static str {
        match self {
            CmpOp::Eq => "eqd",
            CmpOp::Lt => "ltd",
            CmpOp::Le => "led",
            CmpOp::Gt => "gtd",
            CmpOp::Ge => "ged",
        }
    }

    /// The comparison with swapped operands: `a op b == b op.swapped() a`
    /// (drives folding a constant *left* operand into an immediate form).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Overflow-checked integer arithmetic (exits to the attached side exit
/// when the result leaves the boxable 31-bit range, matching the
/// `AddIChk`/`SubIChk`/`MulIChk`/`ShlIChk`/`UShrIChk` semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChkOp {
    /// Checked add.
    Add,
    /// Checked subtract.
    Sub,
    /// Checked multiply (also exits on a `-0` result).
    Mul,
    /// Checked shift left by `b & 31`.
    Shl,
    /// Checked logical (u32) shift right by `b & 31` (exits when the
    /// unsigned result exceeds the boxable maximum).
    UShr,
}

impl ChkOp {
    /// Mnemonic ("addi.chk", ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            ChkOp::Add => "addi.chk",
            ChkOp::Sub => "subi.chk",
            ChkOp::Mul => "muli.chk",
            ChkOp::Shl => "shli.chk",
            ChkOp::UShr => "ushri.chk",
        }
    }

    /// Whether the operands can be swapped.
    pub fn commutative(self) -> bool {
        matches!(self, ChkOp::Add | ChkOp::Mul)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_cover_all_ops() {
        assert_eq!(AluOp::UShr.mnemonic(), "ushri");
        assert_eq!(CmpOp::Ge.mnemonic_i(), "gei");
        assert_eq!(CmpOp::Ge.mnemonic_d(), "ged");
        assert_eq!(ChkOp::Mul.mnemonic(), "muli.chk");
    }

    #[test]
    fn commutativity() {
        assert!(AluOp::Add.commutative());
        assert!(!AluOp::Sub.commutative());
        assert!(!AluOp::Shl.commutative());
        assert!(ChkOp::Add.commutative());
        assert!(!ChkOp::Sub.commutative());
        assert!(!ChkOp::Shl.commutative());
        assert!(!ChkOp::UShr.commutative());
    }

    #[test]
    fn swapped_is_an_involution_preserving_meaning() {
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.swapped().swapped(), op);
        }
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.swapped(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
    }
}
