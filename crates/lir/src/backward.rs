//! The backward optimization filters (§5.1).
//!
//! "When trace recording is completed, nanojit runs the backward
//! optimization filters": dead activation-record store elimination (the
//! paper's *dead data-stack store elimination* and *dead call-stack store
//! elimination*, which our unified activation record covers in one pass)
//! and dead code elimination.

use crate::ir::{ArSlot, Lir, LirId, LirTrace};

/// For each side exit, which AR slots the exit reads when taken (the
/// interpreter state that must be restored: locals, globals, and operand
/// stack entries below the exit's stack depth).
#[derive(Debug, Clone, Default)]
pub struct ExitLiveness {
    /// Indexed by `ExitId`.
    pub live_slots: Vec<Vec<ArSlot>>,
}

impl ExitLiveness {
    fn slots(&self, exit: crate::ir::ExitId) -> &[ArSlot] {
        self.live_slots.get(exit.0 as usize).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Statistics from the backward filters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BackwardStats {
    /// `WriteAr` instructions removed as dead.
    pub dead_stores: u64,
    /// Value instructions removed as unused.
    pub dead_code: u64,
}

/// Runs the backward filter pipeline in place: dead AR-store elimination
/// followed by dead code elimination (with id compaction).
///
/// `loop_live` lists the AR slots that are read when the trace loops back
/// to its anchor (the imported, loop-carried slots).
pub fn run_backward_filters(
    trace: &mut LirTrace,
    exits: &ExitLiveness,
    loop_live: &[ArSlot],
) -> BackwardStats {
    let mut stats = BackwardStats::default();
    stats.dead_stores = eliminate_dead_stores(trace, exits, loop_live);
    stats.dead_code = eliminate_dead_code(trace);
    stats
}

/// Removes `WriteAr` instructions whose value can never be observed: the
/// slot is overwritten before the next potential exit that reads it.
///
/// Walking backward, a store is **live** if its slot is in the live set;
/// executing a guard adds the slots its exit reads; reaching the loop edge
/// re-seeds the set with the loop-carried slots.
pub fn eliminate_dead_stores(
    trace: &mut LirTrace,
    exits: &ExitLiveness,
    loop_live: &[ArSlot],
) -> u64 {
    let nslots = trace
        .code
        .iter()
        .filter_map(|i| match i {
            Lir::WriteAr { slot, .. } | Lir::Import { slot, .. } => Some(*slot as usize + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut live = vec![false; nslots];

    // Seed: nothing is live past the end of the trace except what the
    // final instruction (LoopBack/End, handled below as the first backward
    // step) demands.
    let mut dead: Vec<usize> = Vec::new();
    for idx in (0..trace.code.len()).rev() {
        let inst = &trace.code[idx];
        match inst {
            Lir::WriteAr { slot, .. } => {
                let s = *slot as usize;
                if live[s] {
                    // This store is observed; earlier stores to the same
                    // slot are dead until something reads it again.
                    live[s] = false;
                } else {
                    dead.push(idx);
                }
            }
            Lir::LoopBack(e) => {
                for &s in loop_live {
                    if (s as usize) < live.len() {
                        live[s as usize] = true;
                    }
                }
                for &s in exits.slots(*e) {
                    if (s as usize) < live.len() {
                        live[s as usize] = true;
                    }
                }
            }
            other => {
                if let Some(e) = other.exit() {
                    for &s in exits.slots(e) {
                        if (s as usize) < live.len() {
                            live[s as usize] = true;
                        }
                    }
                }
            }
        }
    }

    let count = dead.len() as u64;
    // Replace dead stores with a konstant no-value marker by filtering in
    // the compaction pass: mark via a keep mask.
    if !dead.is_empty() {
        let mut keep = vec![true; trace.code.len()];
        for idx in dead {
            keep[idx] = false;
        }
        compact(trace, &keep);
    }
    count
}

/// Removes value-producing instructions whose results are never used.
/// Guards, checked ops, stores, calls, and trace ends are roots (their
/// side effects — including the type checks exits rely on — must happen).
pub fn eliminate_dead_code(trace: &mut LirTrace) -> u64 {
    let n = trace.code.len();
    let mut used = vec![false; n];
    let mut operands = Vec::with_capacity(4);
    // Roots: effectful instructions.
    for (i, inst) in trace.code.iter().enumerate() {
        let is_root = !inst.is_pure() && !inst.is_load() || matches!(inst, Lir::Import { .. });
        // Imports are kept as roots: they define the AR slot reads that the
        // entry type map documents (and keep slot numbering stable).
        if is_root {
            used[i] = true;
        }
    }
    // Backward propagation of operand liveness.
    for i in (0..n).rev() {
        if used[i] {
            operands.clear();
            trace.code[i].operands(&mut operands);
            for &op in &operands {
                used[op as usize] = true;
            }
        }
    }
    let removed = used.iter().filter(|&&u| !u).count() as u64;
    if removed > 0 {
        compact(trace, &used);
    }
    removed
}

/// Rebuilds the trace keeping only instructions with `keep[i]`, renumbering
/// all operand references.
fn compact(trace: &mut LirTrace, keep: &[bool]) {
    let mut remap: Vec<LirId> = vec![LirId::MAX; trace.code.len()];
    let mut new_code: Vec<Lir> = Vec::with_capacity(trace.code.len());
    for (i, inst) in trace.code.drain(..).enumerate() {
        if keep[i] {
            remap[i] = new_code.len() as LirId;
            new_code.push(inst);
        }
    }
    for inst in &mut new_code {
        remap_operands(inst, &remap);
    }
    trace.code = new_code;
}

fn remap_operands(inst: &mut Lir, remap: &[LirId]) {
    use Lir::*;
    let m = |id: &mut LirId| {
        let new = remap[*id as usize];
        debug_assert_ne!(new, LirId::MAX, "operand {id} was removed while still in use");
        *id = new;
    };
    match inst {
        ConstI(_) | ConstD(_) | ConstObj(_) | ConstStr(_) | ConstBool(_) | ConstBoxed(_)
        | Import { .. } | CallTree { .. } | LoopBack(_) | End(_) => {}
        WriteAr { v, .. } => m(v),
        AddI(a, b) | SubI(a, b) | MulI(a, b) | AndI(a, b) | OrI(a, b) | XorI(a, b)
        | ShlI(a, b) | ShrI(a, b) | UShrI(a, b) | AddD(a, b) | SubD(a, b) | MulD(a, b)
        | DivD(a, b) | ModD(a, b) | EqI(a, b) | LtI(a, b) | LeI(a, b) | GtI(a, b) | GeI(a, b)
        | EqD(a, b) | LtD(a, b) | LeD(a, b) | GtD(a, b) | GeD(a, b) => {
            m(a);
            m(b);
        }
        AddIChk(a, b, _) | SubIChk(a, b, _) | MulIChk(a, b, _) | ModIChk(a, b, _)
        | ShlIChk(a, b, _) | UShrIChk(a, b, _) => {
            m(a);
            m(b);
        }
        NotI(a) | NegI(a) | NegD(a) | NotB(a) | I2D(a) | U2D(a) | D2I32(a) | BoxI(a) | BoxD(a)
        | BoxB(a) | BoxObj(a) | BoxStr(a) | NegIChk(a, _) | D2IChk(a, _) | ChkRangeI(a, _) | UnboxI(a, _) | UnboxD(a, _)
        | UnboxNumD(a, _) | UnboxObj(a, _) | UnboxStr(a, _) | UnboxBool(a, _)
        | GuardTrue(a, _) | GuardFalse(a, _) | GuardBoxedEq(a, _, _) | LoadProto(a)
        | ArrayLen(a) | StrLen(a) => m(a),
        GuardShape { obj, .. } | GuardClass { obj, .. } => m(obj),
        GuardBound { arr, idx, .. } => {
            m(arr);
            m(idx);
        }
        LoadSlot(o, _) => m(o),
        StoreSlot(o, _, v) => {
            m(o);
            m(v);
        }
        LoadElem(a, i) => {
            m(a);
            m(i);
        }
        StoreElem(a, i, v) => {
            m(a);
            m(i);
            m(v);
        }
        Call { args, .. } => {
            for a in args.iter_mut() {
                m(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{FilterOptions, LirBuffer};
    use crate::ir::{ExitId, LirType};

    #[test]
    fn overwritten_store_before_exit_is_dead() {
        // st slot0, v1 ; st slot0, v2 ; guard(reads slot0) — first store
        // is dead (the paper: "stores to the stack that are overwritten
        // before the next exit are dead").
        let mut b = LirBuffer::new(FilterOptions { cse: false, ..Default::default() });
        let v1 = b.emit(Lir::ConstI(1));
        let v2 = b.emit(Lir::ConstI(2));
        let c = b.emit(Lir::Import { slot: 1, ty: LirType::Bool });
        b.emit(Lir::WriteAr { slot: 0, v: v1 });
        b.emit(Lir::WriteAr { slot: 0, v: v2 });
        let e = b.alloc_exit();
        b.emit(Lir::GuardTrue(c, e));
        let le = b.alloc_exit();
        b.emit(Lir::LoopBack(le));
        let mut trace = b.into_trace();
        let exits = ExitLiveness { live_slots: vec![vec![0, 1], vec![0, 1]] };
        let stats = run_backward_filters(&mut trace, &exits, &[0, 1]);
        assert_eq!(stats.dead_stores, 1);
        let stores = trace.code.iter().filter(|i| matches!(i, Lir::WriteAr { .. })).count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn store_above_exit_stack_top_is_dead() {
        // A store to a slot no exit reads (e.g. an operand stack slot above
        // every exit's stack top) is removed even without overwriting.
        let mut b = LirBuffer::new(FilterOptions::default());
        let v = b.emit(Lir::ConstI(7));
        b.emit(Lir::WriteAr { slot: 5, v });
        let le = b.alloc_exit();
        b.emit(Lir::LoopBack(le));
        let mut trace = b.into_trace();
        let exits = ExitLiveness { live_slots: vec![vec![0]] };
        let stats = run_backward_filters(&mut trace, &exits, &[0]);
        assert_eq!(stats.dead_stores, 1);
    }

    #[test]
    fn loop_carried_store_is_live() {
        let mut b = LirBuffer::new(FilterOptions::default());
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e = b.alloc_exit();
        let sum = b.emit(Lir::AddIChk(x, one, e));
        b.emit(Lir::WriteAr { slot: 0, v: sum });
        let le = b.alloc_exit();
        b.emit(Lir::LoopBack(le));
        let mut trace = b.into_trace();
        let exits = ExitLiveness { live_slots: vec![vec![0], vec![0]] };
        let stats = run_backward_filters(&mut trace, &exits, &[0]);
        assert_eq!(stats.dead_stores, 0, "loop-carried variable store must survive");
        assert!(trace.code.iter().any(|i| matches!(i, Lir::WriteAr { slot: 0, .. })));
    }

    #[test]
    fn dce_removes_unused_pure_ops_but_keeps_guards() {
        let mut b = LirBuffer::new(FilterOptions { fold: false, ..Default::default() });
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let y = b.emit(Lir::Import { slot: 1, ty: LirType::Int });
        let _unused = b.emit(Lir::MulI(x, y));
        let e = b.alloc_exit();
        let _checked_unused = b.emit(Lir::AddIChk(x, y, e)); // guard: kept
        let le = b.alloc_exit();
        b.emit(Lir::LoopBack(le));
        let mut trace = b.into_trace();
        let exits = ExitLiveness { live_slots: vec![vec![], vec![]] };
        let stats = run_backward_filters(&mut trace, &exits, &[]);
        assert_eq!(stats.dead_code, 1, "only the pure MulI should die");
        assert!(trace.code.iter().any(|i| matches!(i, Lir::AddIChk(..))));
        assert!(!trace.code.iter().any(|i| matches!(i, Lir::MulI(..))));
    }

    #[test]
    fn dce_renumbers_operands() {
        let mut b = LirBuffer::new(FilterOptions { fold: false, cse: false, ..Default::default() });
        let dead = b.emit(Lir::ConstI(99));
        let _ = dead;
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let sum = b.emit(Lir::AddI(x, one));
        b.emit(Lir::WriteAr { slot: 0, v: sum });
        let le = b.alloc_exit();
        b.emit(Lir::LoopBack(le));
        let mut trace = b.into_trace();
        let exits = ExitLiveness { live_slots: vec![vec![0]] };
        run_backward_filters(&mut trace, &exits, &[0]);
        // After removing the leading dead constant every id shifts by one;
        // the AddI must reference the renumbered import/const.
        let add_idx = trace.code.iter().position(|i| matches!(i, Lir::AddI(..))).unwrap();
        let Lir::AddI(a, c) = trace.code[add_idx] else { unreachable!() };
        assert!(matches!(trace.code[a as usize], Lir::Import { .. }));
        assert!(matches!(trace.code[c as usize], Lir::ConstI(1)));
    }

    #[test]
    fn unused_load_is_removed() {
        let mut b = LirBuffer::new(FilterOptions::default());
        let o = b.emit(Lir::Import { slot: 0, ty: LirType::Object });
        let _len = b.emit(Lir::ArrayLen(o));
        let le = b.alloc_exit();
        b.emit(Lir::LoopBack(le));
        let mut trace = b.into_trace();
        let exits = ExitLiveness { live_slots: vec![vec![0]] };
        let stats = run_backward_filters(&mut trace, &exits, &[0]);
        assert_eq!(stats.dead_code, 1);
    }

    #[test]
    fn exit_liveness_uses_exit_ids() {
        let _ = ExitId(3);
        let el = ExitLiveness { live_slots: vec![vec![1, 2]] };
        assert_eq!(el.slots(ExitId(0)), &[1, 2]);
        assert_eq!(el.slots(ExitId(9)), &[] as &[ArSlot]);
    }
}
