//! The forward optimization pipeline (§5.1).
//!
//! "Every time the trace recorder emits a LIR instruction, the instruction
//! is immediately passed to the first filter in the forward pipeline" — a
//! [`LirBuffer`] is that pipeline. Each `emit` call streams the instruction
//! through (in order):
//!
//! 1. the **soft-float** filter (optional): double arithmetic → helper
//!    calls, for ISAs without floating point;
//! 2. **expression simplification**: constant folding and algebraic
//!    identities (`a - a = 0`, `x * 1 = x`, ...);
//! 3. the **semantic-specific** filter: INT↔DOUBLE identities that let
//!    DOUBLE be replaced with INT (e.g. `BoxD(I2D(x)) → BoxI(x)`,
//!    `D2IChk(I2D(x)) → x`);
//! 4. **CSE** over pure/guarded computations and (memory-generation-aware)
//!    loads.
//!
//! A filter may pass the instruction through, substitute an existing SSA
//! value, rewrite it, or drop it entirely — the same contract as the
//! paper's pipelined filters.

use std::collections::HashMap;

use tm_runtime::Helper;

use crate::ir::{ExitId, Lir, LirId, LirTrace, LirType};

/// Which forward filters run (all on by default; individually toggleable
/// for the ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterOptions {
    /// Constant folding + algebraic simplification.
    pub fold: bool,
    /// Common subexpression elimination.
    pub cse: bool,
    /// INT↔DOUBLE demotion identities.
    pub demote: bool,
    /// Soft-float lowering of double arithmetic.
    pub softfloat: bool,
}

impl Default for FilterOptions {
    fn default() -> Self {
        FilterOptions { fold: true, cse: true, demote: true, softfloat: false }
    }
}

/// Counters describing what the filters did (tests, diagnostics).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FilterStats {
    /// Instructions folded to constants or simplified algebraically.
    pub folded: u64,
    /// Instructions eliminated by CSE.
    pub csed: u64,
    /// INT↔DOUBLE round trips removed.
    pub demoted: u64,
    /// Guards dropped because their condition was provably satisfied.
    pub guards_elided: u64,
}

/// Sentinel id returned by [`LirBuffer::emit`] for effect-only
/// instructions that were dropped by a filter. Never a valid operand.
pub const NO_VALUE: LirId = LirId::MAX;

/// The streaming LIR emission buffer with its forward filter pipeline.
#[derive(Debug)]
pub struct LirBuffer {
    trace: LirTrace,
    opts: FilterOptions,
    stats: FilterStats,
    cse: HashMap<(Lir, u32), LirId>,
    mem_gen: u32,
}

impl LirBuffer {
    /// Creates an empty buffer with the given filter configuration.
    pub fn new(opts: FilterOptions) -> LirBuffer {
        LirBuffer {
            trace: LirTrace::new(),
            opts,
            stats: FilterStats::default(),
            cse: HashMap::new(),
            mem_gen: 0,
        }
    }

    /// The trace built so far.
    pub fn trace(&self) -> &LirTrace {
        &self.trace
    }

    /// Consumes the buffer, returning the finished trace.
    pub fn into_trace(self) -> LirTrace {
        self.trace
    }

    /// Filter activity counters.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Allocates a fresh side-exit id.
    pub fn alloc_exit(&mut self) -> ExitId {
        let id = ExitId(self.trace.num_exits);
        self.trace.num_exits += 1;
        id
    }

    /// The instruction defining `id`.
    pub fn inst(&self, id: LirId) -> &Lir {
        &self.trace.code[id as usize]
    }

    /// Emits `inst` through the forward pipeline, returning the SSA id of
    /// the resulting value. Returns [`NO_VALUE`] when an effect-only
    /// instruction was dropped.
    pub fn emit(&mut self, inst: Lir) -> LirId {
        let inst = if self.opts.softfloat { self.softfloat(inst) } else { inst };
        let inst = if self.opts.fold {
            match self.fold(inst) {
                Filtered::Value(id) => return id,
                Filtered::Dropped => return NO_VALUE,
                Filtered::Keep(i) => i,
            }
        } else {
            inst
        };
        let inst = if self.opts.demote {
            match self.demote(inst) {
                Filtered::Value(id) => return id,
                Filtered::Dropped => return NO_VALUE,
                Filtered::Keep(i) => i,
            }
        } else {
            inst
        };
        if self.opts.cse {
            if let Some(id) = self.try_cse(&inst) {
                self.stats.csed += 1;
                return id;
            }
        }
        self.push(inst)
    }

    /// Appends without filtering (used by the filters themselves and by
    /// tests).
    pub fn push(&mut self, inst: Lir) -> LirId {
        if inst.clobbers_memory() {
            self.mem_gen += 1;
        }
        let id = self.trace.code.len() as LirId;
        if self.opts.cse && (inst.is_pure() || cse_guarded(&inst) || inst.is_load()) {
            let key = self.cse_key(&inst);
            self.cse.insert(key, id);
        }
        self.trace.code.push(inst);
        id
    }

    fn cse_key(&self, inst: &Lir) -> (Lir, u32) {
        let gen = if inst.is_load() { self.mem_gen } else { 0 };
        (normalize_for_cse(inst), gen)
    }

    fn try_cse(&self, inst: &Lir) -> Option<LirId> {
        if !(inst.is_pure() || cse_guarded(inst) || inst.is_load()) {
            return None;
        }
        self.cse.get(&self.cse_key(inst)).copied()
    }

    // ---- soft-float filter ----

    fn softfloat(&mut self, inst: Lir) -> Lir {
        let (helper, a, b) = match inst {
            Lir::AddD(a, b) => (Helper::SoftAdd, a, b),
            Lir::SubD(a, b) => (Helper::SoftSub, a, b),
            Lir::MulD(a, b) => (Helper::SoftMul, a, b),
            Lir::DivD(a, b) => (Helper::SoftDiv, a, b),
            other => return other,
        };
        // Soft-float helpers cannot bail, so they use the no-exit
        // sentinel instead of allocating a real side exit (which would
        // desynchronize the recorder's exit table).
        Lir::Call {
            helper,
            args: vec![a, b].into_boxed_slice(),
            ret: LirType::Double,
            exit: crate::ir::NO_EXIT,
        }
    }

    // ---- expression simplification ----

    #[allow(clippy::too_many_lines)]
    fn fold(&mut self, inst: Lir) -> Filtered {
        use Lir::*;
        let ci = |buf: &Self, id: LirId| -> Option<i32> {
            match buf.trace.code[id as usize] {
                ConstI(v) => Some(v),
                _ => None,
            }
        };
        let cd = |buf: &Self, id: LirId| -> Option<f64> {
            match buf.trace.code[id as usize] {
                ConstD(bits) => Some(f64::from_bits(bits)),
                _ => None,
            }
        };
        let cb = |buf: &Self, id: LirId| -> Option<bool> {
            match buf.trace.code[id as usize] {
                ConstBool(v) => Some(v),
                _ => None,
            }
        };

        macro_rules! rewrite {
            ($inst:expr) => {{
                self.stats.folded += 1;
                return Filtered::Keep($inst);
            }};
        }
        macro_rules! subst {
            ($id:expr) => {{
                self.stats.folded += 1;
                return Filtered::Value($id);
            }};
        }

        match inst {
            AddI(a, b) => match (ci(self, a), ci(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstI(x.wrapping_add(y))),
                (_, Some(0)) => subst!(a),
                (Some(0), _) => subst!(b),
                _ => {}
            },
            SubI(a, b) => match (ci(self, a), ci(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstI(x.wrapping_sub(y))),
                (_, Some(0)) => subst!(a),
                _ if a == b => rewrite!(ConstI(0)), // the paper's a - a = 0
                _ => {}
            },
            MulI(a, b) => match (ci(self, a), ci(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstI(x.wrapping_mul(y))),
                (_, Some(1)) => subst!(a),
                (Some(1), _) => subst!(b),
                (_, Some(0)) | (Some(0), _) => rewrite!(ConstI(0)),
                _ => {}
            },
            AndI(a, b) => match (ci(self, a), ci(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstI(x & y)),
                (_, Some(-1)) => subst!(a),
                (Some(-1), _) => subst!(b),
                (_, Some(0)) | (Some(0), _) => rewrite!(ConstI(0)),
                _ if a == b => subst!(a),
                _ => {}
            },
            OrI(a, b) => match (ci(self, a), ci(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstI(x | y)),
                (_, Some(0)) => subst!(a),
                (Some(0), _) => subst!(b),
                _ if a == b => subst!(a),
                _ => {}
            },
            XorI(a, b) => match (ci(self, a), ci(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstI(x ^ y)),
                (_, Some(0)) => subst!(a),
                _ if a == b => rewrite!(ConstI(0)),
                _ => {}
            },
            ShlI(a, b) => match (ci(self, a), ci(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstI(x.wrapping_shl((y & 31) as u32))),
                (_, Some(0)) => subst!(a),
                _ => {}
            },
            ShrI(a, b) => match (ci(self, a), ci(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstI(x.wrapping_shr((y & 31) as u32))),
                (_, Some(0)) => subst!(a),
                _ => {}
            },
            UShrI(a, b) => {
                if let (Some(x), Some(y)) = (ci(self, a), ci(self, b)) {
                    rewrite!(ConstI(((x as u32).wrapping_shr((y & 31) as u32)) as i32));
                }
            }
            NotI(a) => {
                if let Some(x) = ci(self, a) {
                    rewrite!(ConstI(!x));
                }
            }
            NegI(a) => {
                if let Some(x) = ci(self, a) {
                    rewrite!(ConstI(x.wrapping_neg()));
                }
            }
            AddD(a, b) => {
                if let (Some(x), Some(y)) = (cd(self, a), cd(self, b)) {
                    rewrite!(ConstD((x + y).to_bits()));
                }
            }
            SubD(a, b) => match (cd(self, a), cd(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstD((x - y).to_bits())),
                // x - 0.0 == x for every x including -0 and NaN.
                (_, Some(y)) if y == 0.0 && y.is_sign_positive() => subst!(a),
                _ => {}
            },
            MulD(a, b) => match (cd(self, a), cd(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstD((x * y).to_bits())),
                // x * 1.0 == x for every x including NaN/-0/inf.
                (_, Some(y)) if y == 1.0 => subst!(a),
                (Some(x), _) if x == 1.0 => subst!(b),
                _ => {}
            },
            DivD(a, b) => match (cd(self, a), cd(self, b)) {
                (Some(x), Some(y)) => rewrite!(ConstD((x / y).to_bits())),
                (_, Some(y)) if y == 1.0 => subst!(a),
                _ => {}
            },
            ModD(a, b) => {
                if let (Some(x), Some(y)) = (cd(self, a), cd(self, b)) {
                    rewrite!(ConstD((x % y).to_bits()));
                }
            }
            NegD(a) => {
                if let Some(x) = cd(self, a) {
                    rewrite!(ConstD((-x).to_bits()));
                }
            }
            EqI(a, b) => {
                if let (Some(x), Some(y)) = (ci(self, a), ci(self, b)) {
                    rewrite!(ConstBool(x == y));
                }
            }
            LtI(a, b) => {
                if let (Some(x), Some(y)) = (ci(self, a), ci(self, b)) {
                    rewrite!(ConstBool(x < y));
                }
            }
            LeI(a, b) => {
                if let (Some(x), Some(y)) = (ci(self, a), ci(self, b)) {
                    rewrite!(ConstBool(x <= y));
                }
            }
            GtI(a, b) => {
                if let (Some(x), Some(y)) = (ci(self, a), ci(self, b)) {
                    rewrite!(ConstBool(x > y));
                }
            }
            GeI(a, b) => {
                if let (Some(x), Some(y)) = (ci(self, a), ci(self, b)) {
                    rewrite!(ConstBool(x >= y));
                }
            }
            LtD(a, b) => {
                if let (Some(x), Some(y)) = (cd(self, a), cd(self, b)) {
                    rewrite!(ConstBool(x < y));
                }
            }
            LeD(a, b) => {
                if let (Some(x), Some(y)) = (cd(self, a), cd(self, b)) {
                    rewrite!(ConstBool(x <= y));
                }
            }
            GtD(a, b) => {
                if let (Some(x), Some(y)) = (cd(self, a), cd(self, b)) {
                    rewrite!(ConstBool(x > y));
                }
            }
            GeD(a, b) => {
                if let (Some(x), Some(y)) = (cd(self, a), cd(self, b)) {
                    rewrite!(ConstBool(x >= y));
                }
            }
            EqD(a, b) => {
                if let (Some(x), Some(y)) = (cd(self, a), cd(self, b)) {
                    rewrite!(ConstBool(x == y));
                }
            }
            NotB(a) => {
                if let Some(x) = cb(self, a) {
                    rewrite!(ConstBool(!x));
                }
                if let NotB(inner) = self.trace.code[a as usize] {
                    subst!(inner);
                }
            }
            I2D(a) => {
                if let Some(x) = ci(self, a) {
                    rewrite!(ConstD(f64::from(x).to_bits()));
                }
            }
            U2D(a) => {
                if let Some(x) = ci(self, a) {
                    rewrite!(ConstD(f64::from(x as u32).to_bits()));
                }
            }
            D2I32(a) => {
                if let Some(x) = cd(self, a) {
                    rewrite!(ConstI(tm_runtime::ops::double_to_int32(x)));
                }
            }
            GuardTrue(c, _) => {
                if cb(self, c) == Some(true) {
                    self.stats.guards_elided += 1;
                    return Filtered::Dropped;
                }
            }
            GuardFalse(c, _) => {
                if cb(self, c) == Some(false) {
                    self.stats.guards_elided += 1;
                    return Filtered::Dropped;
                }
            }
            BoxI(a) => {
                if let Some(x) = ci(self, a) {
                    rewrite!(ConstBoxed(tm_runtime::Value::new_int(x).raw()));
                }
            }
            BoxB(a) => {
                if let Some(x) = cb(self, a) {
                    rewrite!(ConstBoxed(tm_runtime::Value::new_bool(x).raw()));
                }
            }
            _ => {}
        }
        Filtered::Keep(inst)
    }

    // ---- INT↔DOUBLE demotion identities ----

    fn demote(&mut self, inst: Lir) -> Filtered {
        use Lir::*;
        match inst {
            // int → double → int round trips vanish.
            D2IChk(a, _) | D2I32(a) => {
                if let I2D(x) = self.trace.code[a as usize] {
                    self.stats.demoted += 1;
                    return Filtered::Value(x);
                }
            }
            // double → guarded int → double: the guard proved integrality.
            I2D(a) => {
                if let D2IChk(x, _) = self.trace.code[a as usize] {
                    self.stats.demoted += 1;
                    return Filtered::Value(x);
                }
            }
            // Boxing an int-valued double is boxing the int: no allocation.
            BoxD(a) => {
                if let I2D(x) = self.trace.code[a as usize] {
                    self.stats.demoted += 1;
                    return Filtered::Keep(BoxI(x));
                }
            }
            // Unboxing a value we just boxed.
            UnboxI(a, _) => {
                if let BoxI(x) = self.trace.code[a as usize] {
                    self.stats.demoted += 1;
                    return Filtered::Value(x);
                }
            }
            UnboxD(a, _) | UnboxNumD(a, _) => match self.trace.code[a as usize] {
                BoxD(x) => {
                    self.stats.demoted += 1;
                    return Filtered::Value(x);
                }
                BoxI(x) => {
                    self.stats.demoted += 1;
                    return Filtered::Keep(I2D(x));
                }
                _ => {}
            },
            UnboxBool(a, _) => {
                if let BoxB(x) = self.trace.code[a as usize] {
                    self.stats.demoted += 1;
                    return Filtered::Value(x);
                }
            }
            _ => {}
        }
        Filtered::Keep(inst)
    }
}

enum Filtered {
    /// Keep emitting this (possibly rewritten) instruction.
    Keep(Lir),
    /// The result is an existing SSA value.
    Value(LirId),
    /// Effect-only instruction eliminated.
    Dropped,
}

/// Checked/guarded value-producing ops may be CSE'd against an earlier
/// identical computation (whose guard already ran); their exit ids differ
/// per site, so keys normalize the exit away.
fn cse_guarded(inst: &Lir) -> bool {
    use Lir::*;
    matches!(
        inst,
        AddIChk(..)
            | SubIChk(..)
            | MulIChk(..)
            | NegIChk(..)
            | ModIChk(..)
            | ShlIChk(..)
            | UShrIChk(..)
            | D2IChk(..)
            | ChkRangeI(..)
            | UnboxI(..)
            | UnboxD(..)
            | UnboxNumD(..)
            | UnboxObj(..)
            | UnboxStr(..)
            | UnboxBool(..)
            | BoxD(..)
    )
}

/// Normalizes exit ids to zero so structurally identical guarded ops
/// collide in the CSE map.
fn normalize_for_cse(inst: &Lir) -> Lir {
    use Lir::*;
    let z = ExitId(0);
    match inst.clone() {
        AddIChk(a, b, _) => AddIChk(a, b, z),
        SubIChk(a, b, _) => SubIChk(a, b, z),
        MulIChk(a, b, _) => MulIChk(a, b, z),
        NegIChk(a, _) => NegIChk(a, z),
        ModIChk(a, b, _) => ModIChk(a, b, z),
        ShlIChk(a, b, _) => ShlIChk(a, b, z),
        UShrIChk(a, b, _) => UShrIChk(a, b, z),
        D2IChk(a, _) => D2IChk(a, z),
        ChkRangeI(a, _) => ChkRangeI(a, z),
        UnboxI(a, _) => UnboxI(a, z),
        UnboxD(a, _) => UnboxD(a, z),
        UnboxNumD(a, _) => UnboxNumD(a, z),
        UnboxObj(a, _) => UnboxObj(a, z),
        UnboxStr(a, _) => UnboxStr(a, z),
        UnboxBool(a, _) => UnboxBool(a, z),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf() -> LirBuffer {
        LirBuffer::new(FilterOptions::default())
    }

    #[test]
    fn constant_folding() {
        let mut b = buf();
        let two = b.emit(Lir::ConstI(2));
        let three = b.emit(Lir::ConstI(3));
        let sum = b.emit(Lir::AddI(two, three));
        assert_eq!(*b.inst(sum), Lir::ConstI(5));
        assert!(b.stats().folded >= 1);
    }

    #[test]
    fn algebraic_identities() {
        let mut b = buf();
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let zero = b.emit(Lir::ConstI(0));
        let one = b.emit(Lir::ConstI(1));
        assert_eq!(b.emit(Lir::AddI(x, zero)), x);
        assert_eq!(b.emit(Lir::MulI(x, one)), x);
        let diff = b.emit(Lir::SubI(x, x));
        assert_eq!(*b.inst(diff), Lir::ConstI(0), "the paper's a - a = 0");
        let xor = b.emit(Lir::XorI(x, x));
        assert_eq!(*b.inst(xor), Lir::ConstI(0));
    }

    #[test]
    fn double_identities_respect_ieee() {
        let mut b = buf();
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Double });
        let one = b.emit(Lir::ConstD(1.0f64.to_bits()));
        let zero = b.emit(Lir::ConstD(0.0f64.to_bits()));
        assert_eq!(b.emit(Lir::MulD(x, one)), x);
        assert_eq!(b.emit(Lir::SubD(x, zero)), x);
        // x + 0.0 must NOT simplify: (-0.0) + 0.0 == +0.0.
        let add = b.emit(Lir::AddD(x, zero));
        assert_ne!(add, x);
    }

    #[test]
    fn cse_reuses_pure_ops() {
        let mut b = buf();
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let y = b.emit(Lir::Import { slot: 1, ty: LirType::Int });
        let a1 = b.emit(Lir::AddI(x, y));
        let a2 = b.emit(Lir::AddI(x, y));
        assert_eq!(a1, a2);
        assert_eq!(b.stats().csed, 1);
    }

    #[test]
    fn cse_of_guarded_ops_ignores_exit_ids() {
        let mut b = buf();
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Boxed });
        let e1 = b.alloc_exit();
        let e2 = b.alloc_exit();
        let u1 = b.emit(Lir::UnboxI(x, e1));
        let u2 = b.emit(Lir::UnboxI(x, e2));
        assert_eq!(u1, u2);
    }

    #[test]
    fn cse_of_loads_is_memory_aware() {
        let mut b = buf();
        let o = b.emit(Lir::Import { slot: 0, ty: LirType::Object });
        let l1 = b.emit(Lir::LoadSlot(o, 2));
        let l2 = b.emit(Lir::LoadSlot(o, 2));
        assert_eq!(l1, l2, "identical loads with no store between CSE");
        let v = b.emit(Lir::ConstBoxed(7));
        b.emit(Lir::StoreSlot(o, 2, v));
        let l3 = b.emit(Lir::LoadSlot(o, 2));
        assert_ne!(l1, l3, "store kills load CSE");
    }

    #[test]
    fn demotion_removes_int_double_round_trips() {
        let mut b = buf();
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let d = b.emit(Lir::I2D(x));
        let e = b.alloc_exit();
        // The paper: "LIR that converts an INT to a DOUBLE and then back
        // again would be removed by this filter."
        assert_eq!(b.emit(Lir::D2IChk(d, e)), x);
        assert_eq!(b.emit(Lir::D2I32(d)), x);
        let boxed = b.emit(Lir::BoxD(d));
        assert_eq!(*b.inst(boxed), Lir::BoxI(x), "boxing an int-valued double boxes the int");
        assert!(b.stats().demoted >= 3);
    }

    #[test]
    fn box_unbox_round_trips() {
        let mut b = buf();
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let boxed = b.emit(Lir::BoxI(x));
        let e = b.alloc_exit();
        assert_eq!(b.emit(Lir::UnboxI(boxed, e)), x);
        let xd = b.emit(Lir::Import { slot: 1, ty: LirType::Double });
        let boxed_d = b.emit(Lir::BoxD(xd));
        let e2 = b.alloc_exit();
        assert_eq!(b.emit(Lir::UnboxNumD(boxed_d, e2)), xd);
    }

    #[test]
    fn guards_on_constants_are_elided() {
        let mut b = buf();
        let t = b.emit(Lir::ConstBool(true));
        let e = b.alloc_exit();
        assert_eq!(b.emit(Lir::GuardTrue(t, e)), NO_VALUE);
        assert_eq!(b.stats().guards_elided, 1);
        // GuardTrue on a *false* constant is kept (the trace will exit).
        let f = b.emit(Lir::ConstBool(false));
        let e2 = b.alloc_exit();
        assert_ne!(b.emit(Lir::GuardTrue(f, e2)), NO_VALUE);
    }

    #[test]
    fn softfloat_rewrites_double_arith() {
        let mut b = LirBuffer::new(FilterOptions {
            softfloat: true,
            ..FilterOptions::default()
        });
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Double });
        let y = b.emit(Lir::Import { slot: 1, ty: LirType::Double });
        let sum = b.emit(Lir::AddD(x, y));
        assert!(
            matches!(b.inst(sum), Lir::Call { helper: Helper::SoftAdd, .. }),
            "soft-float converts double add to a call: {:?}",
            b.inst(sum)
        );
    }

    #[test]
    fn filters_can_be_disabled() {
        let mut b = LirBuffer::new(FilterOptions {
            fold: false,
            cse: false,
            demote: false,
            softfloat: false,
        });
        let two = b.emit(Lir::ConstI(2));
        let three = b.emit(Lir::ConstI(3));
        let sum = b.emit(Lir::AddI(two, three));
        assert_eq!(*b.inst(sum), Lir::AddI(two, three));
        let sum2 = b.emit(Lir::AddI(two, three));
        assert_ne!(sum, sum2);
    }
}
