//! # tm-interp
//!
//! The bytecode interpreter of the TraceMonkey reproduction — the
//! SpiderMonkey stand-in the paper's tracer extends.
//!
//! Two baseline configurations of the same interpreter are exposed:
//!
//! * default — generic dispatch through the shared operator semantics of
//!   `tm_runtime::ops` (models the 2009 SpiderMonkey interpreter,
//!   Figure 10's 1.0x baseline);
//! * `fast_paths = true` — inline integer fast paths in the dispatch loop
//!   (models the call-threaded SquirrelFish Extreme interpreter of
//!   Figure 10).
//!
//! The interpreter owns the installed program so the trace monitor can
//! patch blacklisted loop headers to no-ops (§3.3), and returns control at
//! every monitored loop edge — the paper's "the interpreter must hit a loop
//! edge and enter the monitor" protocol (§6.1).
//!
//! ```
//! use tm_runtime::Realm;
//! use tm_interp::{Interp, RunExit};
//!
//! let ast = tm_frontend::parse("var s = 0; for (var i = 1; i <= 3; i++) s += i; s")?;
//! let mut realm = Realm::new();
//! let prog = tm_bytecode::compile(&ast, &mut realm)?;
//! let mut interp = Interp::new(prog, &mut realm);
//! let RunExit::Finished(v) = interp.run(&mut realm)? else { panic!() };
//! assert_eq!(realm.heap.number_value(v), Some(6.0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod install;
pub mod interp;

pub use install::{install, Installed, Literals};
pub use interp::{Flow, Frame, Interp, RunExit};
