//! Program installation: materializing literals and function objects into a
//! realm.

use tm_bytecode::{FuncId, Program};
use tm_runtime::{Callee, Object, Realm, Value};

/// Boxed literal values for a program, materialized once at install time so
/// constant pushes never allocate.
#[derive(Debug, Clone)]
pub struct Literals {
    /// Boxed numeric constants, parallel to [`Program::numbers`].
    pub numbers: Vec<Value>,
    /// String constants, parallel to [`Program::atoms`].
    pub atoms: Vec<Value>,
}

/// A program installed into a realm: function objects created, function
/// globals defined, literals materialized.
#[derive(Debug, Clone)]
pub struct Installed {
    /// Materialized literal values (GC roots).
    pub literals: Literals,
    /// Function object for each [`FuncId`] (GC roots).
    pub func_objects: Vec<Value>,
}

impl Installed {
    /// All values that must be treated as GC roots while the program can
    /// still run.
    pub fn roots(&self) -> impl Iterator<Item = Value> + '_ {
        self.literals
            .numbers
            .iter()
            .chain(self.literals.atoms.iter())
            .chain(self.func_objects.iter())
            .copied()
    }

    /// The function object for `id`.
    pub fn func_object(&self, id: FuncId) -> Value {
        self.func_objects[id.0 as usize]
    }
}

/// Installs `prog` into `realm`: creates one function object per compiled
/// function (each with a fresh `prototype` object, enabling `new F()`),
/// assigns declared functions to their global slots, and boxes all literal
/// constants.
pub fn install(prog: &Program, realm: &mut Realm) -> Installed {
    let numbers: Vec<Value> = prog.numbers.iter().map(|&n| realm.heap.alloc_double(n)).collect();
    let atoms: Vec<Value> =
        prog.atoms.iter().map(|a| realm.heap.alloc_string_bytes(a.clone())).collect();

    let mut func_objects = Vec::with_capacity(prog.functions.len());
    for (i, _f) in prog.functions.iter().enumerate() {
        let obj = Object::new_function(Callee::Scripted(i as u32), None);
        let id = realm.heap.alloc_object(obj);
        // Give every function a `prototype` object for `new`.
        let proto = realm.new_plain_object();
        realm
            .set_prop(Value::new_object(id), realm.sym_prototype, Value::new_object(proto))
            .expect("function is an object");
        func_objects.push(Value::new_object(id));
    }
    for &(slot, func) in &prog.function_globals {
        realm.set_global(slot, func_objects[func.0 as usize]);
    }

    Installed { literals: Literals { numbers, atoms }, func_objects }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_defines_function_globals_with_prototypes() {
        let ast = tm_frontend::parse("function f() { return 1; } var x = 0.25;").unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let inst = install(&prog, &mut realm);

        assert_eq!(inst.func_objects.len(), 2);
        assert_eq!(inst.literals.numbers.len(), 1);
        let f = realm.global(realm.lookup_global("f").unwrap());
        assert_eq!(f, inst.func_object(tm_bytecode::FuncId(1)));
        let proto = realm.get_prop(f, realm.sym_prototype).unwrap();
        assert!(proto.is_object());
        assert!(inst.roots().count() >= 3);
    }
}
