//! The bytecode interpreter — the mixed-mode VM's fallback engine.
//!
//! The interpreter owns the installed [`Program`] (so the trace monitor can
//! *patch* blacklisted loop headers into no-ops, §3.3) and exposes two
//! granularities of execution:
//!
//! * [`Interp::run`] — the production loop: executes until the program
//!   finishes or a [`Op::LoopHeader`] is crossed with monitoring enabled,
//!   at which point control returns to the trace monitor ("the interpreter
//!   calls into the trace monitor every time it executes a loop header
//!   no-op");
//! * [`Interp::step`] — single instruction, used while the trace recorder
//!   shadows execution (§6.3: the recorder observes each bytecode as the
//!   interpreter executes it).
//!
//! The `fast_paths` flag enables inline integer fast paths in the dispatch
//! loop, modelling the call-threaded SquirrelFish Extreme baseline of the
//! paper's Figure 10.

use tm_bytecode::{FuncId, LoopId, Op, Program};
use tm_runtime::ops;
use tm_runtime::{Callee, IcStats, ObjectClass, PropIc, Realm, RuntimeError, Value};

use crate::install::{install, Installed};

/// An activation record of the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// The running function.
    pub func: FuncId,
    /// Next instruction index.
    pub pc: u32,
    /// Index of local slot 0 (`this`) in the value stack.
    pub base: u32,
    /// Whether this frame was entered via `new`.
    pub is_construct: bool,
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Flow {
    /// Keep going.
    Normal,
    /// A loop header was crossed (monitoring enabled); `pc` has already
    /// advanced past the header op.
    LoopHeader(LoopId),
    /// A scripted call re-entered a function already on the frame stack
    /// (monitoring enabled); the callee frame has already been pushed, so
    /// the running frame is `func` at pc 0.
    RecursiveCall {
        /// The recursive callee.
        func: FuncId,
    },
    /// The program finished with a completion value.
    Finished(Value),
}

/// Why [`Interp::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunExit {
    /// Program completed.
    Finished(Value),
    /// A monitored loop edge was crossed at `func`/`header_pc`.
    LoopEdge {
        /// Function containing the loop.
        func: FuncId,
        /// Instruction index of the `LoopHeader` op.
        header_pc: u32,
        /// The loop id.
        loop_id: LoopId,
    },
    /// A monitored recursive call was made; the callee frame is already
    /// pushed and the running frame sits at `func` pc 0.
    RecursiveCall {
        /// The recursive callee.
        func: FuncId,
    },
}

/// The bytecode interpreter.
#[derive(Debug)]
pub struct Interp {
    prog: Program,
    installed: Installed,
    /// The value stack: every frame's locals followed by its operands.
    pub stack: Vec<Value>,
    /// The frame stack; `frames.last()` is the running frame.
    pub frames: Vec<Frame>,
    /// When true, crossing a `LoopHeader` returns control to the caller
    /// (the trace monitor).
    pub monitor_enabled: bool,
    /// Enable inline integer fast paths (the SFX-style configuration).
    pub fast_paths: bool,
    /// Dynamic count of bytecodes executed by this interpreter.
    pub ops_executed: u64,
    /// Remaining instruction budget (guards runaway fuzz programs).
    pub steps_remaining: u64,
    /// Per-function flag: when set, recursive calls into that function are
    /// no longer reported to the monitor (the function-entry analogue of
    /// patching a blacklisted loop header into a `Nop`).
    recursion_silenced: Vec<bool>,
    /// Per-site property inline caches, indexed by the site id carried in
    /// `GetProp`/`SetProp`/`InitProp` (see [`Program::prop_sites`]).
    ///
    /// [`Program::prop_sites`]: tm_bytecode::Program::prop_sites
    pub ics: Vec<PropIc>,
    /// Hit/miss counters for [`Interp::ics`].
    pub ic_stats: IcStats,
}

impl Interp {
    /// Installs `prog` into `realm` and prepares an interpreter positioned
    /// at the start of the script body.
    pub fn new(prog: Program, realm: &mut Realm) -> Interp {
        let installed = install(&prog, realm);
        let ics = vec![PropIc::default(); prog.prop_sites as usize];
        let recursion_silenced = vec![false; prog.functions.len()];
        let mut interp = Interp {
            prog,
            installed,
            stack: Vec::with_capacity(256),
            frames: Vec::with_capacity(16),
            monitor_enabled: false,
            fast_paths: false,
            ops_executed: 0,
            steps_remaining: u64::MAX,
            recursion_silenced,
            ics,
            ic_stats: IcStats::default(),
        };
        interp.reset();
        interp
    }

    /// Rewinds to the start of the script body (does not reset globals).
    pub fn reset(&mut self) {
        self.stack.clear();
        self.frames.clear();
        let main = self.prog.main;
        let nlocals = self.prog.function(main).nlocals as usize;
        self.stack.resize(nlocals, Value::UNDEFINED);
        self.frames.push(Frame { func: main, pc: 0, base: 0, is_construct: false });
    }

    /// The installed program.
    pub fn prog(&self) -> &Program {
        &self.prog
    }

    /// Installation artifacts (literals and function objects).
    pub fn installed(&self) -> &Installed {
        &self.installed
    }

    /// Patches the `LoopHeader` at `func:pc` into a `Nop` — the paper's
    /// blacklisting mechanism ("we simply replace the loop header no-op
    /// with a regular no-op; the interpreter will never again even call
    /// into the trace monitor").
    ///
    /// # Panics
    ///
    /// Panics if the instruction at `func:pc` is not a `LoopHeader`.
    pub fn patch_loop_header(&mut self, func: FuncId, pc: u32) {
        let op = &mut self.prog.functions[func.0 as usize].code[pc as usize];
        assert!(matches!(op, Op::LoopHeader(_)), "patching non-header {op:?}");
        *op = Op::Nop;
    }

    /// Stops reporting recursive calls into `func` to the monitor — the
    /// function-entry analogue of [`Interp::patch_loop_header`] for
    /// blacklisted recursion anchors.
    pub fn silence_recursion(&mut self, func: FuncId) {
        self.recursion_silenced[func.0 as usize] = true;
    }

    /// The currently running frame.
    ///
    /// # Panics
    ///
    /// Panics if the program has finished (no frames).
    pub fn frame(&self) -> Frame {
        *self.frames.last().expect("no running frame")
    }

    /// The instruction about to execute.
    pub fn current_op(&self) -> Op {
        let f = self.frame();
        self.prog.functions[f.func.0 as usize].code[f.pc as usize]
    }

    /// Value of local `slot` in the running frame.
    pub fn local(&self, slot: u16) -> Value {
        let f = self.frame();
        self.stack[f.base as usize + slot as usize]
    }

    /// Value of local `slot` in frame `frame_idx` (absolute index into
    /// [`Interp::frames`]).
    pub fn local_at(&self, frame_idx: usize, slot: u16) -> Value {
        let f = self.frames[frame_idx];
        self.stack[f.base as usize + slot as usize]
    }

    /// The operand stack of the running frame (everything above its
    /// locals).
    pub fn operands(&self) -> &[Value] {
        let f = self.frame();
        let nlocals = self.prog.function(f.func).nlocals as usize;
        &self.stack[f.base as usize + nlocals..]
    }

    /// Depth of the operand stack of the running frame.
    pub fn sp(&self) -> usize {
        self.operands().len()
    }

    /// GC roots owned by the interpreter (stack plus installed literals).
    pub fn roots(&self) -> Vec<Value> {
        let mut roots: Vec<Value> = self.stack.clone();
        roots.extend(self.installed.roots());
        roots
    }

    fn maybe_gc(&mut self, realm: &mut Realm) {
        if realm.heap.should_collect() || realm.heap.gc_pending {
            let roots = self.roots();
            realm.collect_garbage(&roots);
        }
    }

    /// Runs until the program finishes or (with monitoring enabled) a loop
    /// header is crossed.
    ///
    /// # Errors
    ///
    /// Propagates guest [`RuntimeError`]s, including
    /// [`RuntimeError::Interrupted`] when the preemption flag is set and
    /// [`RuntimeError::StepBudgetExhausted`] when the step budget runs out.
    pub fn run(&mut self, realm: &mut Realm) -> Result<RunExit, RuntimeError> {
        loop {
            match self.step(realm)? {
                Flow::Normal => {}
                Flow::Finished(v) => return Ok(RunExit::Finished(v)),
                Flow::LoopHeader(loop_id) => {
                    let f = self.frame();
                    return Ok(RunExit::LoopEdge {
                        func: f.func,
                        header_pc: f.pc - 1,
                        loop_id,
                    });
                }
                Flow::RecursiveCall { func } => {
                    return Ok(RunExit::RecursiveCall { func });
                }
            }
        }
    }

    /// Executes exactly one instruction.
    ///
    /// # Errors
    ///
    /// See [`Interp::run`].
    #[allow(clippy::too_many_lines)]
    pub fn step(&mut self, realm: &mut Realm) -> Result<Flow, RuntimeError> {
        let frame_idx = self.frames.len() - 1;
        let (func_id, pc, base) = {
            let f = &self.frames[frame_idx];
            (f.func, f.pc, f.base as usize)
        };
        let op = self.prog.functions[func_id.0 as usize].code[pc as usize];
        self.frames[frame_idx].pc = pc + 1;
        self.ops_executed += 1;
        if self.steps_remaining == 0 {
            return Err(RuntimeError::StepBudgetExhausted);
        }
        self.steps_remaining -= 1;

        macro_rules! push {
            ($v:expr) => {
                self.stack.push($v)
            };
        }
        macro_rules! pop {
            () => {
                self.stack.pop().expect("operand stack underflow")
            };
        }
        macro_rules! binop {
            ($f:path) => {{
                let b = pop!();
                let a = pop!();
                push!($f(realm, a, b)?);
            }};
        }
        macro_rules! int_fast_binop {
            ($f:path, $op:tt) => {{
                let b = pop!();
                let a = pop!();
                if self.fast_paths {
                    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
                        let r = i64::from(x) $op i64::from(y);
                        if let Some(v) = Value::new_int_checked(r) {
                            push!(v);
                            return Ok(Flow::Normal);
                        }
                    }
                }
                push!($f(realm, a, b)?);
            }};
        }
        macro_rules! int_fast_relop {
            ($rel:expr, $op:tt) => {{
                let b = pop!();
                let a = pop!();
                if self.fast_paths {
                    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
                        push!(Value::new_bool(x $op y));
                        return Ok(Flow::Normal);
                    }
                }
                push!(ops::rel_op(realm, $rel, a, b)?);
            }};
        }

        match op {
            Op::Int(i) => push!(Value::new_int(i)),
            Op::Num(i) => push!(self.installed.literals.numbers[i as usize]),
            Op::Str(i) => push!(self.installed.literals.atoms[i as usize]),
            Op::True => push!(Value::TRUE),
            Op::False => push!(Value::FALSE),
            Op::Null => push!(Value::NULL),
            Op::Undefined => push!(Value::UNDEFINED),

            Op::GetLocal(slot) => push!(self.stack[base + slot as usize]),
            Op::SetLocal(slot) => {
                let v = pop!();
                self.stack[base + slot as usize] = v;
            }
            Op::GetGlobal(slot) => push!(realm.global(slot)),
            Op::SetGlobal(slot) => {
                let v = pop!();
                realm.set_global(slot, v);
            }

            Op::Pop => {
                pop!();
            }
            Op::Dup => {
                let v = *self.stack.last().expect("dup on empty stack");
                push!(v);
            }
            Op::Swap => {
                let len = self.stack.len();
                self.stack.swap(len - 1, len - 2);
            }

            Op::Add => int_fast_binop!(ops::add_values, +),
            Op::Sub => int_fast_binop!(ops::sub_values, -),
            Op::Mul => binop!(ops::mul_values),
            Op::Div => binop!(ops::div_values),
            Op::Mod => binop!(ops::mod_values),
            Op::Neg => {
                let a = pop!();
                push!(ops::neg_value(realm, a)?);
            }
            Op::Pos => {
                let a = pop!();
                if a.is_number() {
                    push!(a);
                } else {
                    let n = ops::to_number(realm, a);
                    push!(realm.heap.number(n));
                }
            }
            Op::BitAnd => {
                let b = pop!();
                let a = pop!();
                push!(ops::bit_op(realm, ops::BitOp::And, a, b)?);
            }
            Op::BitOr => {
                let b = pop!();
                let a = pop!();
                push!(ops::bit_op(realm, ops::BitOp::Or, a, b)?);
            }
            Op::BitXor => {
                let b = pop!();
                let a = pop!();
                push!(ops::bit_op(realm, ops::BitOp::Xor, a, b)?);
            }
            Op::Shl => {
                let b = pop!();
                let a = pop!();
                push!(ops::bit_op(realm, ops::BitOp::Shl, a, b)?);
            }
            Op::Shr => {
                let b = pop!();
                let a = pop!();
                push!(ops::bit_op(realm, ops::BitOp::Shr, a, b)?);
            }
            Op::UShr => {
                let b = pop!();
                let a = pop!();
                push!(ops::bit_op(realm, ops::BitOp::UShr, a, b)?);
            }
            Op::BitNot => {
                let a = pop!();
                push!(ops::bitnot_value(realm, a)?);
            }
            Op::Lt => int_fast_relop!(ops::RelOp::Lt, <),
            Op::Le => int_fast_relop!(ops::RelOp::Le, <=),
            Op::Gt => int_fast_relop!(ops::RelOp::Gt, >),
            Op::Ge => int_fast_relop!(ops::RelOp::Ge, >=),
            Op::Eq => {
                let b = pop!();
                let a = pop!();
                push!(Value::new_bool(ops::loose_eq(realm, a, b)));
            }
            Op::Ne => {
                let b = pop!();
                let a = pop!();
                push!(Value::new_bool(!ops::loose_eq(realm, a, b)));
            }
            Op::StrictEq => {
                let b = pop!();
                let a = pop!();
                push!(Value::new_bool(ops::strict_eq(realm, a, b)));
            }
            Op::StrictNe => {
                let b = pop!();
                let a = pop!();
                push!(Value::new_bool(!ops::strict_eq(realm, a, b)));
            }
            Op::Not => {
                let a = pop!();
                push!(Value::new_bool(!ops::truthy(realm, a)));
            }
            Op::Typeof => {
                let a = pop!();
                let s = ops::typeof_str(realm, a);
                push!(realm.typeof_atom(s));
            }

            Op::NewArray(n) => {
                let n = n as usize;
                let start = self.stack.len() - n;
                let elems: Vec<Value> = self.stack.drain(start..).collect();
                let id = realm.new_array(0);
                realm.heap.object_mut(id).elements = elems;
                push!(Value::new_object(id));
                self.maybe_gc(realm);
            }
            Op::NewObject => {
                let id = realm.new_plain_object();
                push!(Value::new_object(id));
                self.maybe_gc(realm);
            }
            Op::InitProp(sym, site) => {
                let v = pop!();
                let obj = *self.stack.last().expect("initprop needs object");
                match self.ics.get_mut(site as usize) {
                    Some(ic) => realm.set_prop_with_ic(obj, sym, v, ic, &mut self.ic_stats)?,
                    None => realm.set_prop(obj, sym, v)?,
                }
            }
            Op::GetProp(sym, site) => {
                let obj = pop!();
                let v = match self.ics.get_mut(site as usize) {
                    Some(ic) => realm.get_prop_with_ic(obj, sym, ic, &mut self.ic_stats)?,
                    None => realm.get_prop(obj, sym)?,
                };
                push!(v);
            }
            Op::SetProp(sym, site) => {
                let v = pop!();
                let obj = pop!();
                match self.ics.get_mut(site as usize) {
                    Some(ic) => realm.set_prop_with_ic(obj, sym, v, ic, &mut self.ic_stats)?,
                    None => realm.set_prop(obj, sym, v)?,
                }
                push!(v);
            }
            Op::GetElem => {
                let idx = pop!();
                let obj = pop!();
                // Dense-array int fast path mirrors the fat `getelem`
                // bytecode's special case.
                if self.fast_paths {
                    if let (Some(id), Some(i)) = (obj.as_object(), idx.as_int()) {
                        if i >= 0 && realm.heap.object(id).class == ObjectClass::Array {
                            push!(realm.heap.object(id).element(i as u32));
                            return Ok(Flow::Normal);
                        }
                    }
                }
                push!(realm.get_elem(obj, idx)?);
            }
            Op::SetElem => {
                let v = pop!();
                let idx = pop!();
                let obj = pop!();
                realm.set_elem(obj, idx, v)?;
                push!(v);
            }

            Op::Call(argc) => {
                if let Some(func) = self.do_call(realm, argc, false)? {
                    return Ok(Flow::RecursiveCall { func });
                }
            }
            Op::New(argc) => {
                let argc_us = argc as usize;
                let callee_idx = self.stack.len() - argc_us - 1;
                let callee = self.stack[callee_idx];
                let proto_v = realm.get_prop(callee, realm.sym_prototype).unwrap_or(Value::NULL);
                let proto = proto_v.as_object().or(realm.object_proto);
                let this_obj =
                    realm.heap.alloc_object(tm_runtime::Object::new_plain(proto));
                self.stack.insert(callee_idx + 1, Value::new_object(this_obj));
                self.maybe_gc(realm);
                // Construct calls never report recursion (`do_call` returns
                // `None` when `is_construct`).
                self.do_call(realm, argc, true)?;
            }
            Op::Return => {
                let v = pop!();
                if let Some(flow) = self.do_return(v) {
                    return Ok(flow);
                }
            }
            Op::ReturnUndef => {
                if let Some(flow) = self.do_return(Value::UNDEFINED) {
                    return Ok(flow);
                }
            }

            Op::Jump(t) => self.frames[frame_idx].pc = t,
            Op::JumpIfFalse(t) => {
                let v = pop!();
                if !ops::truthy(realm, v) {
                    self.frames[frame_idx].pc = t;
                }
            }
            Op::JumpIfTrue(t) => {
                let v = pop!();
                if ops::truthy(realm, v) {
                    self.frames[frame_idx].pc = t;
                }
            }
            Op::AndJump(t) => {
                let v = *self.stack.last().expect("andjump on empty stack");
                if ops::truthy(realm, v) {
                    pop!();
                } else {
                    self.frames[frame_idx].pc = t;
                }
            }
            Op::OrJump(t) => {
                let v = *self.stack.last().expect("orjump on empty stack");
                if ops::truthy(realm, v) {
                    self.frames[frame_idx].pc = t;
                } else {
                    pop!();
                }
            }
            Op::LoopHeader(loop_id) => {
                if realm.interrupt {
                    return Err(RuntimeError::Interrupted);
                }
                self.maybe_gc(realm);
                if self.monitor_enabled {
                    return Ok(Flow::LoopHeader(loop_id));
                }
            }
            Op::Nop => {
                // Blacklisted loop header: preemption must still work.
                if realm.interrupt {
                    return Err(RuntimeError::Interrupted);
                }
            }
        }
        Ok(Flow::Normal)
    }

    /// Performs a call. Returns `Some(func)` when a monitored, non-construct
    /// scripted call re-entered a function already on the frame stack (the
    /// callee frame is pushed either way; the caller decides whether to
    /// surface [`Flow::RecursiveCall`]).
    fn do_call(
        &mut self,
        realm: &mut Realm,
        argc: u8,
        is_construct: bool,
    ) -> Result<Option<FuncId>, RuntimeError> {
        let argc = argc as usize;
        // Stack: [callee, this, args...]
        let callee_idx = self.stack.len() - argc - 2;
        let callee = self.stack[callee_idx];
        let Some(obj_id) = callee.as_object() else {
            return Err(RuntimeError::NotCallable(format!("{callee:?}")));
        };
        let Some(callee_kind) = realm.heap.object(obj_id).callee else {
            return Err(RuntimeError::NotCallable("object is not a function".into()));
        };
        match callee_kind {
            Callee::Scripted(fidx) => {
                let recursive = self.monitor_enabled
                    && !is_construct
                    && !self.recursion_silenced[fidx as usize]
                    && self.frames.iter().any(|f| f.func.0 == fidx);
                let func = &self.prog.functions[fidx as usize];
                let nparams = func.nparams as usize;
                let nlocals = func.nlocals as usize;
                let base = callee_idx + 1; // `this` becomes local slot 0
                // Adjust provided args to the declared parameter count.
                let have = argc;
                if have > nparams {
                    self.stack.truncate(base + 1 + nparams);
                }
                self.stack.resize(base + nlocals, Value::UNDEFINED);
                self.frames.push(Frame {
                    func: FuncId(fidx),
                    pc: 0,
                    base: base as u32,
                    is_construct,
                });
                if recursive {
                    return Ok(Some(FuncId(fidx)));
                }
            }
            Callee::Native(nid) => {
                let args: Vec<Value> = self.stack[callee_idx + 1..].to_vec();
                self.stack.truncate(callee_idx);
                let result = realm.call_native(tm_runtime::NativeId(nid), &args)?;
                let result = if is_construct && !result.is_object() {
                    args[0]
                } else {
                    result
                };
                self.stack.push(result);
                self.maybe_gc(realm);
            }
        }
        Ok(None)
    }

    fn do_return(&mut self, v: Value) -> Option<Flow> {
        let frame = self.frames.pop().expect("return without frame");
        let result = if frame.is_construct && !v.is_object() {
            // `new F()` evaluates to the constructed object unless the body
            // returned an object.
            self.stack[frame.base as usize]
        } else {
            v
        };
        if self.frames.is_empty() {
            self.stack.clear();
            return Some(Flow::Finished(result));
        }
        // Drop the frame's locals/operands and the callee slot beneath.
        self.stack.truncate(frame.base as usize - 1);
        self.stack.push(result);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(src: &str) -> (Value, Realm) {
        let ast = tm_frontend::parse(src).expect("parse");
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).expect("compile");
        let mut interp = Interp::new(prog, &mut realm);
        match interp.run(&mut realm).expect("run") {
            RunExit::Finished(v) => (v, realm),
            other => panic!("unexpected exit: {other:?}"),
        }
    }

    fn eval_num(src: &str) -> f64 {
        let (v, realm) = eval(src);
        realm.heap.number_value(v).unwrap_or_else(|| panic!("not a number: {v:?}"))
    }

    fn eval_str(src: &str) -> String {
        let (v, realm) = eval(src);
        realm.heap.string_text(v.as_string().expect("string"))
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_num("1 + 2 * 3"), 7.0);
        assert_eq!(eval_num("10 / 4"), 2.5);
        assert_eq!(eval_num("7 % 3"), 1.0);
        assert_eq!(eval_num("2 + 3 * 4 - 6 / 2"), 11.0);
        assert_eq!(eval_num("-(5)"), -5.0);
        assert_eq!(eval_num("1 << 10"), 1024.0);
        assert_eq!(eval_num("-1 >>> 28"), 15.0);
        assert_eq!(eval_num("~0"), -1.0);
    }

    #[test]
    fn variables_and_loops() {
        assert_eq!(eval_num("var s = 0; for (var i = 1; i <= 10; i++) s += i; s"), 55.0);
        assert_eq!(eval_num("var i = 0; while (i < 5) i += 2; i"), 6.0);
        assert_eq!(eval_num("var i = 0; do i++; while (i < 3); i"), 3.0);
        assert_eq!(
            eval_num("var n = 0; for (var i = 0; i < 10; i++) { if (i % 2) continue; n++; } n"),
            5.0
        );
        assert_eq!(
            eval_num("var i = 0; while (true) { i++; if (i >= 7) break; } i"),
            7.0
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            eval_num("function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } fib(10)"),
            55.0
        );
        assert_eq!(
            eval_num("function add(a, b) { return a + b; } add(2, 3)"),
            5.0
        );
        // Missing arguments are undefined; extra arguments dropped.
        assert_eq!(eval_str("function t(a, b) { return typeof b; } t(1)"), "undefined");
        assert_eq!(eval_num("function one(a) { return a; } one(1, 2, 3)"), 1.0);
    }

    #[test]
    fn objects_and_arrays() {
        assert_eq!(eval_num("var o = {x: 1, y: 2}; o.x + o.y"), 3.0);
        assert_eq!(eval_num("var a = [1, 2, 3]; a[0] + a[2]"), 4.0);
        assert_eq!(eval_num("var a = []; a[5] = 7; a.length"), 6.0);
        assert_eq!(eval_num("var o = {}; o.n = 4; o.n *= 3; o.n"), 12.0);
        assert_eq!(eval_num("var a = [1]; a[0] += 9; a[0]"), 10.0);
        assert_eq!(eval_str("var o = {a: 'x'}; o.missing === undefined ? 'yes' : 'no'"), "yes");
    }

    #[test]
    fn constructors_and_this() {
        let src = "
            function Point(x, y) { this.x = x; this.y = y; }
            function dist2(p) { return p.x * p.x + p.y * p.y; }
            var p = new Point(3, 4);
            dist2(p)
        ";
        assert_eq!(eval_num(src), 25.0);
    }

    #[test]
    fn prototype_methods() {
        let src = "
            function Counter(start) { this.n = start; }
            function bump(c, d) { c.n += d; return c.n; }
            var c = new Counter(10);
            bump(c, 5)
        ";
        assert_eq!(eval_num(src), 15.0);
    }

    #[test]
    fn method_calls_on_builtins() {
        assert_eq!(eval_num("'hello'.charCodeAt(1)"), 101.0);
        assert_eq!(eval_str("'hello'.toUpperCase()"), "HELLO");
        assert_eq!(eval_num("Math.max(3, 9)"), 9.0);
        assert_eq!(eval_num("Math.floor(3.7)"), 3.0);
        assert_eq!(eval_num("var a = [3, 1, 2]; a.push(0); a.length"), 4.0);
        assert_eq!(eval_str("[1,2,3].join('+')"), "1+2+3");
        assert_eq!(eval_num("'abc'.length"), 3.0);
    }

    #[test]
    fn string_concat_and_compare() {
        assert_eq!(eval_str("'a' + 'b' + 1"), "ab1");
        assert_eq!(eval_str("1 + 2 + 'x'"), "3x");
        assert_eq!(eval_str("'x' + 1 + 2"), "x12");
        let (v, _) = eval("'abc' < 'abd'");
        assert_eq!(v, Value::TRUE);
    }

    #[test]
    fn logical_and_ternary() {
        assert_eq!(eval_num("true && 5 || 9"), 5.0);
        assert_eq!(eval_num("false && 5 || 9"), 9.0);
        assert_eq!(eval_num("0 || 42"), 42.0);
        assert_eq!(eval_num("null ? 1 : 2"), 2.0);
        // Short circuit must not evaluate the right side.
        assert_eq!(
            eval_num("var n = 0; function f() { n = 1; return 1; } false && f(); n"),
            0.0
        );
    }

    #[test]
    fn typeof_and_equality() {
        assert_eq!(eval_str("typeof 1"), "number");
        assert_eq!(eval_str("typeof 'x'"), "string");
        assert_eq!(eval_str("typeof undefined"), "undefined");
        assert_eq!(eval_str("typeof Math"), "object");
        assert_eq!(eval_str("typeof Math.sin"), "function");
        let (v, _) = eval("1 == '1'");
        assert_eq!(v, Value::TRUE);
        let (v, _) = eval("1 === '1'");
        assert_eq!(v, Value::FALSE);
        let (v, _) = eval("null == undefined");
        assert_eq!(v, Value::TRUE);
    }

    #[test]
    fn incdec_semantics() {
        assert_eq!(eval_num("var i = 5; i++"), 5.0);
        assert_eq!(eval_num("var i = 5; ++i"), 6.0);
        assert_eq!(eval_num("var i = 5; i++; i"), 6.0);
        assert_eq!(eval_num("var a = [7]; a[0]++"), 7.0);
        assert_eq!(eval_num("var a = [7]; a[0]++; a[0]"), 8.0);
        assert_eq!(eval_num("var o = {n: 3}; --o.n; o.n"), 2.0);
        assert_eq!(eval_num("var o = {n: 3}; o.n--"), 3.0);
    }

    #[test]
    fn sieve_program_runs() {
        // The paper's Figure 1 program (fixed to count primes).
        let src = "
            var primes = [];
            for (var i = 0; i < 100; i++) primes[i] = true;
            for (var i = 2; i < 100; ++i) {
                if (!primes[i]) continue;
                for (var k = i + i; k < 100; k += i)
                    primes[k] = false;
            }
            var count = 0;
            for (var i = 2; i < 100; i++) if (primes[i]) count++;
            count
        ";
        assert_eq!(eval_num(src), 25.0);
    }

    #[test]
    fn run_returns_loop_edges_when_monitored() {
        let ast = tm_frontend::parse("var s = 0; for (var i = 0; i < 3; i++) s += i; s").unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        interp.monitor_enabled = true;
        let mut edges = 0;
        loop {
            match interp.run(&mut realm).unwrap() {
                RunExit::LoopEdge { loop_id, .. } => {
                    assert_eq!(loop_id, LoopId(0));
                    edges += 1;
                }
                RunExit::Finished(v) => {
                    assert_eq!(realm.heap.number_value(v), Some(3.0));
                    break;
                }
                RunExit::RecursiveCall { .. } => panic!("no recursion in this program"),
            }
        }
        // Header crossed on entry plus once per completed iteration check:
        // i=0,1,2 plus the final failing check => 4 crossings.
        assert_eq!(edges, 4);
    }

    #[test]
    fn blacklist_patching_silences_monitor() {
        let ast = tm_frontend::parse("var s = 0; for (var i = 0; i < 3; i++) s += i; s").unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        interp.monitor_enabled = true;
        // Find the loop header and patch it immediately.
        let main = interp.prog().main;
        let header = interp.prog().function(main).loops[0].header;
        interp.patch_loop_header(main, header);
        match interp.run(&mut realm).unwrap() {
            RunExit::Finished(v) => assert_eq!(realm.heap.number_value(v), Some(3.0)),
            other => panic!("monitor was called for a patched loop: {other:?}"),
        }
    }

    #[test]
    fn recursive_calls_report_to_monitor_and_can_be_silenced() {
        let src = "function f(n) { if (n == 0) return 0; return f(n - 1); } f(5)";
        let ast = tm_frontend::parse(src).unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        interp.monitor_enabled = true;
        let mut reports = 0;
        loop {
            match interp.run(&mut realm).unwrap() {
                RunExit::RecursiveCall { func } => {
                    assert_eq!(interp.frame().func, func);
                    assert_eq!(interp.frame().pc, 0);
                    reports += 1;
                }
                RunExit::LoopEdge { .. } => {}
                RunExit::Finished(v) => {
                    assert_eq!(realm.heap.number_value(v), Some(0.0));
                    break;
                }
            }
        }
        // The top-level f(5) is not recursive; f(4)..f(0) are.
        assert_eq!(reports, 5);

        // Silencing a function stops the reports entirely.
        let mut realm = Realm::new();
        let ast = tm_frontend::parse(src).unwrap();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        interp.monitor_enabled = true;
        for i in 0..interp.prog().functions.len() {
            interp.silence_recursion(FuncId(i as u32));
        }
        match interp.run(&mut realm).unwrap() {
            RunExit::Finished(v) => assert_eq!(realm.heap.number_value(v), Some(0.0)),
            other => panic!("silenced recursion still reported: {other:?}"),
        }
    }

    #[test]
    fn preemption_interrupts_loops() {
        let ast = tm_frontend::parse("while (true) {}").unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        realm.interrupt = true;
        assert_eq!(interp.run(&mut realm), Err(RuntimeError::Interrupted));
    }

    #[test]
    fn step_budget_stops_runaway_programs() {
        let ast = tm_frontend::parse("while (true) {}").unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        interp.steps_remaining = 10_000;
        assert_eq!(interp.run(&mut realm), Err(RuntimeError::StepBudgetExhausted));
    }

    #[test]
    fn calling_non_function_is_error() {
        let ast = tm_frontend::parse("var x = 5; x();").unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        assert!(matches!(interp.run(&mut realm), Err(RuntimeError::NotCallable(_))));
    }

    #[test]
    fn fast_paths_agree_with_generic() {
        let src = "var s = 0; for (var i = 0; i < 100; i++) { s = s + i * 2 - 1; } s";
        let slow = eval_num(src);
        let ast = tm_frontend::parse(src).unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        interp.fast_paths = true;
        let RunExit::Finished(v) = interp.run(&mut realm).unwrap() else { panic!() };
        assert_eq!(realm.heap.number_value(v), Some(slow));
    }

    #[test]
    fn gc_during_execution_preserves_liveness() {
        let src = "
            var keep = [];
            for (var i = 0; i < 200; i++) {
                var s = 'x' + i;
                if (i % 50 === 0) keep.push(s);
            }
            keep.length
        ";
        let ast = tm_frontend::parse(src).unwrap();
        let mut realm = Realm::new();
        realm.heap.set_gc_threshold(64);
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        let RunExit::Finished(v) = interp.run(&mut realm).unwrap() else { panic!() };
        assert_eq!(realm.heap.number_value(v), Some(4.0));
        assert!(realm.heap.gc_stats().collections > 0, "GC should have run");
    }

    #[test]
    fn ops_executed_counts() {
        let (_, _) = eval("1 + 1");
        let ast = tm_frontend::parse("1 + 1").unwrap();
        let mut realm = Realm::new();
        let prog = tm_bytecode::compile(&ast, &mut realm).unwrap();
        let mut interp = Interp::new(prog, &mut realm);
        let _ = interp.run(&mut realm).unwrap();
        assert!(interp.ops_executed >= 4);
    }
}
