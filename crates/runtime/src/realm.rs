//! The realm: a complete guest-language execution environment.
//!
//! A [`Realm`] bundles the GC heap, symbol and shape tables, the global
//! variable array, and the registry of native (FFI) functions. Every engine
//! in this repository — the interpreter, the method JIT, and the tracing
//! JIT — executes against a `Realm`, which is what guarantees that they
//! share identical semantics and observable state.

use std::collections::HashMap;

use crate::error::RuntimeError;
use crate::heap::Heap;
use crate::ic::{IcKind, IcStats, PropIc};
use crate::object::{Callee, Object, ObjectClass};
use crate::shape::{ShapeTable, Sym, SymbolTable};
use crate::value::{ObjectId, Unpacked, Value};

/// A native (FFI) function callable from guest code.
///
/// Following the paper's FFI (§6.5), the "key argument" is an array of boxed
/// values; `args[0]` is the receiver for method-style calls and
/// `Value::UNDEFINED` otherwise.
pub type NativeFn = fn(&mut Realm, &[Value]) -> Result<Value, RuntimeError>;

/// Index of a native function in the realm registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NativeId(pub u32);

/// Effects metadata for a native function, used by the trace recorder to
/// decide whether the call may be made from trace (§6.5: reentrant natives
/// force the trace to exit after the call; global/stack-accessing natives
/// need state synchronization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NativeEffects {
    /// May reenter the interpreter (e.g. higher-order natives like `sort`
    /// with a scripted comparator).
    pub may_reenter: bool,
    /// Reads or writes global variables directly.
    pub accesses_globals: bool,
    /// May allocate GC memory.
    pub allocates: bool,
}

/// A registered native function.
pub struct NativeFunc {
    /// Diagnostic name (e.g. `"Math.sin"`).
    pub name: String,
    /// The implementation.
    pub func: NativeFn,
    /// Effects the tracer must respect.
    pub effects: NativeEffects,
    /// Typed fast-call annotation (§6.5): when the observed argument types
    /// match, the tracer calls the specialized helper directly on unboxed
    /// values instead of building a boxed argument array.
    pub fast: Option<crate::trace_helpers::FastNative>,
}

impl std::fmt::Debug for NativeFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeFunc")
            .field("name", &self.name)
            .field("effects", &self.effects)
            .field("fast", &self.fast)
            .finish()
    }
}

/// The guest execution environment.
#[derive(Debug)]
pub struct Realm {
    /// The garbage-collected heap.
    pub heap: Heap,
    /// Property-name interner.
    pub symbols: SymbolTable,
    /// The global shape tree.
    pub shapes: ShapeTable,
    /// Global variable slots.
    pub globals: Vec<Value>,
    global_names: HashMap<String, u32>,
    /// Native function registry.
    pub natives: Vec<NativeFunc>,
    /// Prototype object for arrays (holds `push`, `join`, ...).
    pub array_proto: Option<ObjectId>,
    /// Prototype consulted for method calls on string receivers.
    pub string_proto: Option<ObjectId>,
    /// Prototype for plain objects.
    pub object_proto: Option<ObjectId>,
    /// Output accumulated by the `print` builtin.
    pub output: String,
    /// Also echo `print` output to stdout.
    pub print_to_stdout: bool,
    /// Preemption flag (§6.4): when set, interpreter loop edges and
    /// trace-compiled loop edges bail out with `RuntimeError::Interrupted`.
    pub interrupt: bool,
    /// Set by reentrant native calls while a trace is on stack; the trace
    /// must exit immediately after the call returns (§6.5).
    pub reentered_during_trace: bool,
    /// Deterministic RNG state for `Math.random`.
    pub rng_state: u64,
    /// Cached string values for `typeof` results (avoids allocating in
    /// `typeof`-heavy loops).
    typeof_cache: HashMap<&'static str, Value>,
    /// Interned `length` symbol (hot in property paths).
    pub sym_length: Sym,
    /// Interned `prototype` symbol.
    pub sym_prototype: Sym,
}

impl Default for Realm {
    fn default() -> Self {
        Realm::new()
    }
}

impl Realm {
    /// Creates a realm with core builtins installed.
    pub fn new() -> Realm {
        let mut symbols = SymbolTable::new();
        let sym_length = symbols.intern("length");
        let sym_prototype = symbols.intern("prototype");
        let mut realm = Realm {
            heap: Heap::new(),
            symbols,
            shapes: ShapeTable::new(),
            globals: Vec::new(),
            global_names: HashMap::new(),
            natives: Vec::new(),
            array_proto: None,
            string_proto: None,
            object_proto: None,
            output: String::new(),
            print_to_stdout: false,
            interrupt: false,
            reentered_during_trace: false,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            typeof_cache: HashMap::new(),
            sym_length,
            sym_prototype,
        };
        crate::builtins::install(&mut realm);
        realm
    }

    // ---- globals ----

    /// Resolves (creating on first use) the global slot for `name`.
    pub fn global_slot(&mut self, name: &str) -> u32 {
        if let Some(&slot) = self.global_names.get(name) {
            return slot;
        }
        let slot = self.globals.len() as u32;
        self.globals.push(Value::UNDEFINED);
        self.global_names.insert(name.to_owned(), slot);
        slot
    }

    /// Returns the slot for `name` if it exists.
    pub fn lookup_global(&self, name: &str) -> Option<u32> {
        self.global_names.get(name).copied()
    }

    /// Reads global slot `slot`.
    #[inline]
    pub fn global(&self, slot: u32) -> Value {
        self.globals[slot as usize]
    }

    /// Writes global slot `slot`.
    #[inline]
    pub fn set_global(&mut self, slot: u32, v: Value) {
        self.globals[slot as usize] = v;
    }

    /// Convenience: defines global `name` with value `v`.
    pub fn define_global(&mut self, name: &str, v: Value) -> u32 {
        let slot = self.global_slot(name);
        self.globals[slot as usize] = v;
        slot
    }

    /// Name of a global slot (diagnostics).
    pub fn global_name(&self, slot: u32) -> Option<&str> {
        self.global_names
            .iter()
            .find(|&(_, &s)| s == slot)
            .map(|(n, _)| n.as_str())
    }

    // ---- natives ----

    /// Registers a native function, returning its id.
    pub fn register_native(
        &mut self,
        name: &str,
        func: NativeFn,
        effects: NativeEffects,
        fast: Option<crate::trace_helpers::FastNative>,
    ) -> NativeId {
        let id = NativeId(self.natives.len() as u32);
        self.natives.push(NativeFunc { name: name.to_owned(), func, effects, fast });
        id
    }

    /// Creates a function object wrapping native `id`.
    pub fn new_native_function(&mut self, id: NativeId) -> Value {
        let obj = Object::new_function(Callee::Native(id.0), None);
        Value::new_object(self.heap.alloc_object(obj))
    }

    /// Calls native `id` with boxed `args` (`args[0]` = receiver).
    pub fn call_native(&mut self, id: NativeId, args: &[Value]) -> Result<Value, RuntimeError> {
        let f = self.natives[id.0 as usize].func;
        f(self, args)
    }

    // ---- object / property operations (shared slow paths) ----

    /// Allocates a plain object with the default object prototype.
    pub fn new_plain_object(&mut self) -> ObjectId {
        self.heap.alloc_object(Object::new_plain(self.object_proto))
    }

    /// Allocates an array of length `len` with the array prototype.
    pub fn new_array(&mut self, len: usize) -> ObjectId {
        self.heap.alloc_object(Object::new_array(len, self.array_proto))
    }

    /// Full property read with prototype-chain walk — the expensive
    /// interpreter path that trace recording specializes away (§3.1).
    pub fn get_prop(&mut self, base: Value, sym: Sym) -> Result<Value, RuntimeError> {
        match base.unpack() {
            Unpacked::Object(mut id) => {
                if sym == self.sym_length && self.heap.object(id).class == ObjectClass::Array {
                    let len = self.heap.object(id).array_length();
                    return Ok(self.heap.number_i64(i64::from(len)));
                }
                loop {
                    let obj = self.heap.object(id);
                    let shape = obj.shape;
                    if let Some(slot) = self.shapes.lookup(shape, sym) {
                        return Ok(self.heap.object(id).slots[slot as usize]);
                    }
                    match self.heap.object(id).proto {
                        Some(p) => id = p,
                        None => return Ok(Value::UNDEFINED),
                    }
                }
            }
            Unpacked::String(sid) => {
                if sym == self.sym_length {
                    let len = self.heap.string(sid).len();
                    return Ok(self.heap.number_i64(len as i64));
                }
                // String methods come from the string prototype.
                if let Some(proto) = self.string_proto {
                    return self.get_prop(Value::new_object(proto), sym);
                }
                Ok(Value::UNDEFINED)
            }
            Unpacked::Null | Unpacked::Undefined => Err(RuntimeError::TypeError(format!(
                "cannot read property '{}' of {}",
                self.symbols.name(sym),
                if base.is_null() { "null" } else { "undefined" }
            ))),
            _ => Ok(Value::UNDEFINED),
        }
    }

    /// [`get_prop`](Realm::get_prop) through a per-site inline cache.
    ///
    /// On a monomorphic hit (receiver shape and table epoch match the
    /// cached entry) the read is two integer compares plus an indexed slot
    /// load — no shape-table access. On miss, falls back to the full lookup
    /// and re-fills the cache when the property is an own slot.
    ///
    /// `length` reads are never cached: arrays answer `length` virtually
    /// *before* the shape walk, and shapes do not encode the object class,
    /// so a `(shape, slot)` entry filled from a plain object could
    /// otherwise shadow an array's virtual length at the same site.
    #[inline]
    pub fn get_prop_with_ic(
        &mut self,
        base: Value,
        sym: Sym,
        ic: &mut PropIc,
        stats: &mut IcStats,
    ) -> Result<Value, RuntimeError> {
        if let Some(id) = base.as_object() {
            let shape = self.heap.object(id).shape;
            if let IcKind::GetSlot(slot) = ic.kind {
                if ic.matches(shape, self.shapes.epoch()) {
                    stats.get_hits += 1;
                    return Ok(self.heap.object(id).slots[slot as usize]);
                }
            }
        }
        self.get_prop_ic_miss(base, sym, ic, stats)
    }

    /// The miss half of [`get_prop_with_ic`](Realm::get_prop_with_ic):
    /// full lookup plus cache fill. Kept out of line so the caller's
    /// dispatch loop only carries the two-compare hit path.
    #[inline(never)]
    fn get_prop_ic_miss(
        &mut self,
        base: Value,
        sym: Sym,
        ic: &mut PropIc,
        stats: &mut IcStats,
    ) -> Result<Value, RuntimeError> {
        stats.get_misses += 1;
        if let Some(id) = base.as_object() {
            let shape = self.heap.object(id).shape;
            let v = self.get_prop(base, sym)?;
            if sym != self.sym_length {
                if let Some(slot) = self.shapes.lookup(shape, sym) {
                    *ic = PropIc {
                        shape,
                        epoch: self.shapes.epoch(),
                        kind: IcKind::GetSlot(slot),
                    };
                }
            }
            return Ok(v);
        }
        self.get_prop(base, sym)
    }

    /// [`set_prop`](Realm::set_prop) through a per-site inline cache.
    ///
    /// Caches both flavors of monomorphic write: in-place stores to an
    /// existing own slot, and property-adding writes as the exact shape
    /// transition the slow path would take (valid because transitions are
    /// memoized and shape ids are never recycled).
    #[inline]
    pub fn set_prop_with_ic(
        &mut self,
        base: Value,
        sym: Sym,
        v: Value,
        ic: &mut PropIc,
        stats: &mut IcStats,
    ) -> Result<(), RuntimeError> {
        if let Some(id) = base.as_object() {
            let shape = self.heap.object(id).shape;
            if ic.matches(shape, self.shapes.epoch()) {
                match ic.kind {
                    IcKind::SetSlot(slot) => {
                        stats.set_hits += 1;
                        self.heap.object_mut(id).slots[slot as usize] = v;
                        return Ok(());
                    }
                    IcKind::SetTransition { to, slot } => {
                        stats.set_hits += 1;
                        let obj = self.heap.object_mut(id);
                        debug_assert_eq!(obj.slots.len() as u32, slot);
                        obj.shape = to;
                        obj.slots.push(v);
                        return Ok(());
                    }
                    _ => {}
                }
            }
        }
        self.set_prop_ic_miss(base, sym, v, ic, stats)
    }

    /// The miss half of [`set_prop_with_ic`](Realm::set_prop_with_ic):
    /// slow-path store plus cache fill, out of line like
    /// [`get_prop_ic_miss`](Realm::get_prop_ic_miss).
    #[inline(never)]
    fn set_prop_ic_miss(
        &mut self,
        base: Value,
        sym: Sym,
        v: Value,
        ic: &mut PropIc,
        stats: &mut IcStats,
    ) -> Result<(), RuntimeError> {
        stats.set_misses += 1;
        if let Some(id) = base.as_object() {
            let shape = self.heap.object(id).shape;
            if let Some(slot) = self.shapes.lookup(shape, sym) {
                self.heap.object_mut(id).slots[slot as usize] = v;
                *ic =
                    PropIc { shape, epoch: self.shapes.epoch(), kind: IcKind::SetSlot(slot) };
            } else {
                let to = self.shapes.transition(shape, sym);
                let obj = self.heap.object_mut(id);
                obj.shape = to;
                let slot = obj.slots.len() as u32;
                obj.slots.push(v);
                // `transition` may have bumped the epoch (first use of this
                // transition); filling with the *current* epoch makes the
                // entry live immediately.
                *ic = PropIc {
                    shape,
                    epoch: self.shapes.epoch(),
                    kind: IcKind::SetTransition { to, slot },
                };
            }
            return Ok(());
        }
        self.set_prop(base, sym, v)
    }

    /// Property write on an object's own shape, transitioning the shape when
    /// the property is new.
    pub fn set_prop(&mut self, base: Value, sym: Sym, v: Value) -> Result<(), RuntimeError> {
        let id = base.as_object().ok_or_else(|| {
            RuntimeError::TypeError(format!(
                "cannot set property '{}' on a non-object",
                self.symbols.name(sym)
            ))
        })?;
        let shape = self.heap.object(id).shape;
        if let Some(slot) = self.shapes.lookup(shape, sym) {
            self.heap.object_mut(id).slots[slot as usize] = v;
        } else {
            let new_shape = self.shapes.transition(shape, sym);
            let obj = self.heap.object_mut(id);
            obj.shape = new_shape;
            obj.slots.push(v);
        }
        Ok(())
    }

    /// Indexed read: dense array elements, string characters, or
    /// string-keyed object properties.
    pub fn get_elem(&mut self, base: Value, index: Value) -> Result<Value, RuntimeError> {
        match base.unpack() {
            Unpacked::Object(id) => {
                if let Some(i) = index_as_u32(self, index) {
                    if self.heap.object(id).class == ObjectClass::Array {
                        return Ok(self.heap.object(id).element(i));
                    }
                }
                let sym = self.index_to_sym(index);
                self.get_prop(base, sym)
            }
            Unpacked::String(sid) => {
                if let Some(i) = index_as_u32(self, index) {
                    let s = self.heap.string(sid);
                    if let Some(&b) = s.get(i as usize) {
                        return Ok(self.heap.alloc_string_bytes(vec![b]));
                    }
                }
                Ok(Value::UNDEFINED)
            }
            _ => Err(RuntimeError::TypeError("cannot index a non-object".into())),
        }
    }

    /// Indexed write.
    pub fn set_elem(&mut self, base: Value, index: Value, v: Value) -> Result<(), RuntimeError> {
        let id = base
            .as_object()
            .ok_or_else(|| RuntimeError::TypeError("cannot index-assign a non-object".into()))?;
        if let Some(i) = index_as_u32(self, index) {
            if self.heap.object(id).class == ObjectClass::Array {
                self.heap.object_mut(id).set_element(i, v);
                return Ok(());
            }
        }
        let sym = self.index_to_sym(index);
        self.set_prop(base, sym, v)
    }

    fn index_to_sym(&mut self, index: Value) -> Sym {
        let key = crate::ops::to_display(self, index);
        self.symbols.intern(&key)
    }

    // ---- GC ----

    /// Collects garbage with the realm's own roots plus `extra_roots`
    /// supplied by the executing engine (stacks, activation records).
    pub fn collect_garbage(&mut self, extra_roots: &[Value]) {
        let mut roots: Vec<Value> = Vec::with_capacity(self.globals.len() + extra_roots.len() + 4);
        roots.extend_from_slice(&self.globals);
        roots.extend_from_slice(extra_roots);
        for proto in [self.array_proto, self.string_proto, self.object_proto].into_iter().flatten()
        {
            roots.push(Value::new_object(proto));
        }
        roots.extend(self.typeof_cache.values().copied());
        let heap = &mut self.heap;
        heap.collect(&roots);
        // Conservatively invalidate all property inline caches: a
        // collection is the one realm-wide event after which cached
        // `(shape, slot)` entries must be re-proven against live objects.
        self.shapes.bump_epoch();
    }

    /// Cached, rooted string value for a `typeof` result.
    pub fn typeof_atom(&mut self, s: &'static str) -> Value {
        if let Some(&v) = self.typeof_cache.get(s) {
            return v;
        }
        let v = self.heap.alloc_string(s);
        self.typeof_cache.insert(s, v);
        v
    }

    /// Deterministic `Math.random` (xorshift*).
    pub fn next_random(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// Appends to the `print` output buffer.
    pub fn print_line(&mut self, line: &str) {
        self.output.push_str(line);
        self.output.push('\n');
        if self.print_to_stdout {
            println!("{line}");
        }
    }
}

/// Converts `index` to a dense-array index if it is a non-negative integral
/// number.
fn index_as_u32(realm: &Realm, index: Value) -> Option<u32> {
    match index.unpack() {
        Unpacked::Int(i) if i >= 0 => Some(i as u32),
        Unpacked::Double(id) => {
            let d = realm.heap.double(id);
            if d >= 0.0 && d <= f64::from(u32::MAX) && d.fract() == 0.0 {
                Some(d as u32)
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ic_zero_slow_paths_after_warmup() {
        // The acceptance property for the PR-4 caches: one slow-path
        // lookup fills the site, and every later same-shape access is
        // served entirely by the cache.
        let mut realm = Realm::new();
        let o = realm.new_plain_object();
        let x = realm.symbols.intern("x");
        realm.set_prop(Value::new_object(o), x, Value::new_int(7)).unwrap();

        let mut ic = crate::ic::PropIc::default();
        let mut stats = crate::ic::IcStats::default();
        for _ in 0..1000 {
            let v = realm
                .get_prop_with_ic(Value::new_object(o), x, &mut ic, &mut stats)
                .unwrap();
            assert_eq!(v.as_int(), Some(7));
        }
        assert_eq!(stats.get_misses, 1, "exactly the warm-up lookup");
        assert_eq!(stats.get_hits, 999);

        // Same property for writes.
        let mut wic = crate::ic::PropIc::default();
        for i in 0..1000 {
            realm
                .set_prop_with_ic(Value::new_object(o), x, Value::new_int(i), &mut wic, &mut stats)
                .unwrap();
        }
        assert_eq!(stats.set_misses, 1);
        assert_eq!(stats.set_hits, 999);
    }

    #[test]
    fn ic_misses_after_shape_transition_then_refills() {
        let mut realm = Realm::new();
        let o = realm.new_plain_object();
        let x = realm.symbols.intern("x");
        let y = realm.symbols.intern("y");
        realm.set_prop(Value::new_object(o), x, Value::new_int(1)).unwrap();

        let mut ic = crate::ic::PropIc::default();
        let mut stats = crate::ic::IcStats::default();
        realm.get_prop_with_ic(Value::new_object(o), x, &mut ic, &mut stats).unwrap();
        realm.get_prop_with_ic(Value::new_object(o), x, &mut ic, &mut stats).unwrap();
        assert_eq!((stats.get_misses, stats.get_hits), (1, 1));

        // Adding `y` transitions `o` to a different shape: the cached
        // entry no longer matches and the site must refill.
        realm.set_prop(Value::new_object(o), y, Value::new_int(2)).unwrap();
        let v = realm.get_prop_with_ic(Value::new_object(o), x, &mut ic, &mut stats).unwrap();
        assert_eq!(v.as_int(), Some(1));
        assert_eq!(stats.get_misses, 2, "transition invalidates the entry");
        realm.get_prop_with_ic(Value::new_object(o), x, &mut ic, &mut stats).unwrap();
        assert_eq!(stats.get_hits, 2, "refilled against the new shape");
    }

    #[test]
    fn ic_invalidated_across_gc() {
        let mut realm = Realm::new();
        let o = realm.new_plain_object();
        let x = realm.symbols.intern("x");
        let root = Value::new_object(o);
        realm.set_prop(root, x, Value::new_int(3)).unwrap();

        let mut ic = crate::ic::PropIc::default();
        let mut stats = crate::ic::IcStats::default();
        realm.get_prop_with_ic(root, x, &mut ic, &mut stats).unwrap();
        realm.get_prop_with_ic(root, x, &mut ic, &mut stats).unwrap();
        assert_eq!((stats.get_misses, stats.get_hits), (1, 1));

        // GC bumps the shape-table epoch: every cache entry filled before
        // the collection is dead, regardless of shape.
        realm.collect_garbage(&[root]);
        let v = realm.get_prop_with_ic(root, x, &mut ic, &mut stats).unwrap();
        assert_eq!(v.as_int(), Some(3), "value survives the collection");
        assert_eq!(stats.get_misses, 2, "pre-GC entry must not be consulted");
        realm.get_prop_with_ic(root, x, &mut ic, &mut stats).unwrap();
        assert_eq!(stats.get_hits, 2, "site re-warms after the collection");
    }

    #[test]
    fn set_ic_caches_the_transition() {
        // A site that always *adds* the same property to same-shaped
        // objects caches the `(from, to, slot)` transition and performs
        // later adds without consulting the shape table.
        let mut realm = Realm::new();
        let x = realm.symbols.intern("x");
        let mut ic = crate::ic::PropIc::default();
        let mut stats = crate::ic::IcStats::default();
        for i in 0..100 {
            let o = realm.new_plain_object();
            realm
                .set_prop_with_ic(Value::new_object(o), x, Value::new_int(i), &mut ic, &mut stats)
                .unwrap();
            let got = realm.get_prop(Value::new_object(o), x).unwrap();
            assert_eq!(got.as_int(), Some(i));
        }
        // First add creates the x-shape (epoch bump) and fills; the second
        // may refill under the new epoch; everything after must hit.
        assert!(stats.set_misses <= 2, "misses: {}", stats.set_misses);
        assert!(stats.set_hits >= 98, "hits: {}", stats.set_hits);
    }

    #[test]
    fn globals_resolve_stably() {
        let mut realm = Realm::new();
        let a = realm.global_slot("counter");
        let b = realm.global_slot("counter");
        assert_eq!(a, b);
        realm.set_global(a, Value::new_int(5));
        assert_eq!(realm.global(b).as_int(), Some(5));
        assert_eq!(realm.global_name(a), Some("counter"));
    }

    #[test]
    fn property_read_walks_prototype_chain() {
        let mut realm = Realm::new();
        let proto = realm.new_plain_object();
        let x = realm.symbols.intern("x");
        realm.set_prop(Value::new_object(proto), x, Value::new_int(7)).unwrap();

        let child = realm.heap.alloc_object(Object::new_plain(Some(proto)));
        let got = realm.get_prop(Value::new_object(child), x).unwrap();
        assert_eq!(got.as_int(), Some(7));

        // Own property shadows the prototype.
        realm.set_prop(Value::new_object(child), x, Value::new_int(9)).unwrap();
        let got = realm.get_prop(Value::new_object(child), x).unwrap();
        assert_eq!(got.as_int(), Some(9));
        let got = realm.get_prop(Value::new_object(proto), x).unwrap();
        assert_eq!(got.as_int(), Some(7));
    }

    #[test]
    fn missing_property_is_undefined() {
        let mut realm = Realm::new();
        let o = realm.new_plain_object();
        let nope = realm.symbols.intern("nope");
        assert_eq!(realm.get_prop(Value::new_object(o), nope).unwrap(), Value::UNDEFINED);
    }

    #[test]
    fn reading_property_of_null_is_type_error() {
        let mut realm = Realm::new();
        let x = realm.symbols.intern("x");
        assert!(realm.get_prop(Value::NULL, x).is_err());
        assert!(realm.get_prop(Value::UNDEFINED, x).is_err());
    }

    #[test]
    fn array_length_and_elements() {
        let mut realm = Realm::new();
        let arr = realm.new_array(3);
        let v = Value::new_object(arr);
        let len = realm.get_prop(v, realm.sym_length).unwrap();
        assert_eq!(len.as_int(), Some(3));

        realm.set_elem(v, Value::new_int(1), Value::new_int(42)).unwrap();
        assert_eq!(realm.get_elem(v, Value::new_int(1)).unwrap().as_int(), Some(42));
        assert_eq!(realm.get_elem(v, Value::new_int(99)).unwrap(), Value::UNDEFINED);

        // Out-of-bounds store grows the array.
        realm.set_elem(v, Value::new_int(10), Value::TRUE).unwrap();
        let len = realm.get_prop(v, realm.sym_length).unwrap();
        assert_eq!(len.as_int(), Some(11));
    }

    #[test]
    fn string_length_and_indexing() {
        let mut realm = Realm::new();
        let s = realm.heap.alloc_string("hi");
        let len = realm.get_prop(s, realm.sym_length).unwrap();
        assert_eq!(len.as_int(), Some(2));
        let c = realm.get_elem(s, Value::new_int(0)).unwrap();
        let cid = c.as_string().unwrap();
        assert_eq!(realm.heap.string(cid), b"h");
        assert_eq!(realm.get_elem(s, Value::new_int(5)).unwrap(), Value::UNDEFINED);
    }

    #[test]
    fn object_string_keys() {
        let mut realm = Realm::new();
        let o = Value::new_object(realm.new_plain_object());
        let key = realm.heap.alloc_string("k");
        realm.set_elem(o, key, Value::new_int(1)).unwrap();
        let key2 = realm.heap.alloc_string("k");
        assert_eq!(realm.get_elem(o, key2).unwrap().as_int(), Some(1));
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut r1 = Realm::new();
        let mut r2 = Realm::new();
        for _ in 0..100 {
            let a = r1.next_random();
            let b = r2.next_random();
            assert_eq!(a, b);
            assert!((0.0..1.0).contains(&a));
        }
    }

    #[test]
    fn collect_preserves_globals() {
        let mut realm = Realm::new();
        let s = realm.heap.alloc_string("global string");
        realm.define_global("gs", s);
        let before = realm.heap.live_strings();
        realm.collect_garbage(&[]);
        assert!(realm.heap.live_strings() >= 1);
        assert!(realm.heap.live_strings() <= before);
        let sid = realm.global(realm.lookup_global("gs").unwrap()).as_string().unwrap();
        assert_eq!(realm.heap.string(sid), b"global string");
    }
}
