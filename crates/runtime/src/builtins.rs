//! Standard-library builtins installed into every realm.
//!
//! All builtins go through the FFI described in the paper's §6.5: each is a
//! native function taking an array of boxed values (`args[0]` = receiver).
//! Hot numeric natives carry a [`FastNative`] annotation so the tracer can
//! call them directly on unboxed values.

use crate::error::RuntimeError;
use crate::ops;
use crate::realm::{NativeEffects, Realm};
use crate::trace_helpers::{FastNative, FastTy, Helper};
use crate::value::{Unpacked, Value};

const PURE: NativeEffects =
    NativeEffects { may_reenter: false, accesses_globals: false, allocates: false };
const ALLOC: NativeEffects =
    NativeEffects { may_reenter: false, accesses_globals: false, allocates: true };

macro_rules! math1 {
    ($name:ident, $method:ident) => {
        fn $name(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
            let x = ops::to_number(realm, arg(args, 1));
            Ok(realm.heap.number(x.$method()))
        }
    };
}

#[inline]
fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).copied().unwrap_or(Value::UNDEFINED)
}

math1!(math_sin, sin);
math1!(math_cos, cos);
math1!(math_tan, tan);
math1!(math_asin, asin);
math1!(math_acos, acos);
math1!(math_atan, atan);
math1!(math_exp, exp);
math1!(math_log, ln);
math1!(math_sqrt, sqrt);
math1!(math_floor, floor);
math1!(math_ceil, ceil);
math1!(math_abs, abs);

fn math_round(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let x = ops::to_number(realm, arg(args, 1));
    Ok(realm.heap.number((x + 0.5).floor()))
}

fn math_atan2(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let y = ops::to_number(realm, arg(args, 1));
    let x = ops::to_number(realm, arg(args, 2));
    Ok(realm.heap.number(y.atan2(x)))
}

fn math_pow(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let b = ops::to_number(realm, arg(args, 1));
    let e = ops::to_number(realm, arg(args, 2));
    Ok(realm.heap.number(b.powf(e)))
}

fn math_min(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let mut best = f64::INFINITY;
    for &a in &args[1..] {
        let x = ops::to_number(realm, a);
        if x.is_nan() {
            return Ok(realm.heap.number(f64::NAN));
        }
        if x < best {
            best = x;
        }
    }
    Ok(realm.heap.number(best))
}

fn math_max(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let mut best = f64::NEG_INFINITY;
    for &a in &args[1..] {
        let x = ops::to_number(realm, a);
        if x.is_nan() {
            return Ok(realm.heap.number(f64::NAN));
        }
        if x > best {
            best = x;
        }
    }
    Ok(realm.heap.number(best))
}

fn math_random(realm: &mut Realm, _args: &[Value]) -> Result<Value, RuntimeError> {
    let r = realm.next_random();
    Ok(realm.heap.number(r))
}

fn global_print(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let parts: Vec<String> = args[1..].iter().map(|&a| ops::to_display(realm, a)).collect();
    realm.print_line(&parts.join(" "));
    Ok(Value::UNDEFINED)
}

fn global_parse_int(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let v = arg(args, 1);
    let radix = match arg(args, 2).unpack() {
        Unpacked::Undefined => 10,
        other => {
            let r = match other {
                Unpacked::Int(i) => i,
                _ => ops::to_number(realm, arg(args, 2)) as i32,
            };
            if !(2..=36).contains(&r) {
                return Ok(realm.heap.number(f64::NAN));
            }
            r as u32
        }
    };
    let text = ops::to_display(realm, v);
    let t = text.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let t = if radix == 16 {
        t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")).unwrap_or(t)
    } else {
        t
    };
    let mut value: f64 = 0.0;
    let mut any = false;
    for c in t.chars() {
        match c.to_digit(radix) {
            Some(d) => {
                value = value * f64::from(radix) + f64::from(d);
                any = true;
            }
            None => break,
        }
    }
    if !any {
        return Ok(realm.heap.number(f64::NAN));
    }
    Ok(realm.heap.number(if neg { -value } else { value }))
}

fn global_parse_float(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let text = ops::to_display(realm, arg(args, 1));
    let t = text.trim();
    // Parse the longest valid float prefix.
    let mut end = 0;
    let bytes = t.as_bytes();
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'+' | b'-' if i == 0 || bytes[i - 1] == b'e' || bytes[i - 1] == b'E' => {}
            b'0'..=b'9' => seen_digit = true,
            b'.' if !seen_dot && !seen_exp => seen_dot = true,
            b'e' | b'E' if seen_digit && !seen_exp => {
                seen_exp = true;
            }
            _ => {
                end = i;
                break;
            }
        }
        end = i + 1;
    }
    let prefix = &t[..end];
    match prefix.parse::<f64>() {
        Ok(v) if seen_digit => Ok(realm.heap.number(v)),
        _ => Ok(realm.heap.number(f64::NAN)),
    }
}

fn global_is_nan(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let x = ops::to_number(realm, arg(args, 1));
    Ok(Value::new_bool(x.is_nan()))
}

// ---- string methods (receiver = args[0]) ----

fn recv_string(realm: &Realm, args: &[Value]) -> Result<Vec<u8>, RuntimeError> {
    match arg(args, 0).as_string() {
        Some(id) => Ok(realm.heap.string(id).to_vec()),
        None => Err(RuntimeError::TypeError("string method on non-string receiver".into())),
    }
}

fn string_char_code_at(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let s = recv_string(realm, args)?;
    let i = ops::to_number(realm, arg(args, 1));
    if i >= 0.0 && (i as usize) < s.len() && i.fract() == 0.0 {
        Ok(Value::new_int(i32::from(s[i as usize])))
    } else {
        Ok(realm.heap.number(f64::NAN))
    }
}

fn string_char_at(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let s = recv_string(realm, args)?;
    let i = ops::to_number(realm, arg(args, 1));
    let bytes = if i >= 0.0 && (i as usize) < s.len() && i.fract() == 0.0 {
        vec![s[i as usize]]
    } else {
        Vec::new()
    };
    Ok(realm.heap.alloc_string_bytes(bytes))
}

fn string_index_of(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let s = recv_string(realm, args)?;
    let needle_v = ops::to_string_value(realm, arg(args, 1));
    let needle = realm.heap.string(needle_v.as_string().expect("string")).to_vec();
    let start = match arg(args, 2).unpack() {
        Unpacked::Undefined => 0usize,
        _ => (ops::to_number(realm, arg(args, 2)).max(0.0) as usize).min(s.len()),
    };
    if needle.is_empty() {
        return Ok(Value::new_int(start as i32));
    }
    let pos = s[start..]
        .windows(needle.len())
        .position(|w| w == &needle[..])
        .map(|p| (p + start) as i32)
        .unwrap_or(-1);
    Ok(Value::new_int(pos))
}

fn string_substring(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let s = recv_string(realm, args)?;
    let len = s.len() as f64;
    let a = clamp_index(ops::to_number(realm, arg(args, 1)), len);
    let b = match arg(args, 2).unpack() {
        Unpacked::Undefined => len as usize,
        _ => clamp_index(ops::to_number(realm, arg(args, 2)), len),
    };
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    Ok(realm.heap.alloc_string_bytes(s[lo..hi].to_vec()))
}

fn clamp_index(x: f64, len: f64) -> usize {
    if x.is_nan() {
        0
    } else {
        x.clamp(0.0, len) as usize
    }
}

fn string_slice(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let s = recv_string(realm, args)?;
    let len = s.len() as i64;
    let norm = |x: f64| -> i64 {
        if x.is_nan() {
            0
        } else if x < 0.0 {
            (len + x as i64).max(0)
        } else {
            (x as i64).min(len)
        }
    };
    let a = norm(ops::to_number(realm, arg(args, 1)));
    let b = match arg(args, 2).unpack() {
        Unpacked::Undefined => len,
        _ => norm(ops::to_number(realm, arg(args, 2))),
    };
    let bytes = if a < b { s[a as usize..b as usize].to_vec() } else { Vec::new() };
    Ok(realm.heap.alloc_string_bytes(bytes))
}

fn string_split(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let s = recv_string(realm, args)?;
    let sep_v = ops::to_string_value(realm, arg(args, 1));
    let sep = realm.heap.string(sep_v.as_string().expect("string")).to_vec();
    let mut parts: Vec<Vec<u8>> = Vec::new();
    if sep.is_empty() {
        parts.extend(s.iter().map(|&b| vec![b]));
    } else {
        let mut start = 0;
        let mut i = 0;
        while i + sep.len() <= s.len() {
            if &s[i..i + sep.len()] == &sep[..] {
                parts.push(s[start..i].to_vec());
                i += sep.len();
                start = i;
            } else {
                i += 1;
            }
        }
        parts.push(s[start..].to_vec());
    }
    let arr = realm.new_array(parts.len());
    for (i, p) in parts.into_iter().enumerate() {
        let v = realm.heap.alloc_string_bytes(p);
        realm.heap.object_mut(arr).set_element(i as u32, v);
    }
    Ok(Value::new_object(arr))
}

fn string_to_lower(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let s = recv_string(realm, args)?;
    let out: Vec<u8> = s.iter().map(|b| b.to_ascii_lowercase()).collect();
    Ok(realm.heap.alloc_string_bytes(out))
}

fn string_to_upper(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let s = recv_string(realm, args)?;
    let out: Vec<u8> = s.iter().map(|b| b.to_ascii_uppercase()).collect();
    Ok(realm.heap.alloc_string_bytes(out))
}

fn string_replace(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    // Plain-string replace of the first occurrence (no regexp support).
    let s = recv_string(realm, args)?;
    let pat_v = ops::to_string_value(realm, arg(args, 1));
    let pat = realm.heap.string(pat_v.as_string().expect("string")).to_vec();
    let rep_v = ops::to_string_value(realm, arg(args, 2));
    let rep = realm.heap.string(rep_v.as_string().expect("string")).to_vec();
    if pat.is_empty() {
        return Ok(arg(args, 0));
    }
    let mut out = Vec::with_capacity(s.len());
    let mut i = 0;
    let mut replaced = false;
    while i < s.len() {
        if !replaced && i + pat.len() <= s.len() && &s[i..i + pat.len()] == &pat[..] {
            out.extend_from_slice(&rep);
            i += pat.len();
            replaced = true;
        } else {
            out.push(s[i]);
            i += 1;
        }
    }
    Ok(realm.heap.alloc_string_bytes(out))
}

fn string_from_char_code(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let mut bytes = Vec::with_capacity(args.len().saturating_sub(1));
    for &a in &args[1..] {
        let c = ops::to_int32(realm, a);
        bytes.push((c & 0xFF) as u8);
    }
    Ok(realm.heap.alloc_string_bytes(bytes))
}

// ---- array methods ----

fn recv_array(args: &[Value]) -> Result<crate::value::ObjectId, RuntimeError> {
    arg(args, 0)
        .as_object()
        .ok_or_else(|| RuntimeError::TypeError("array method on non-object receiver".into()))
}

fn array_push(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let id = recv_array(args)?;
    for &a in &args[1..] {
        realm.heap.object_mut(id).elements.push(a);
    }
    let len = realm.heap.object(id).array_length();
    Ok(realm.heap.number_i64(i64::from(len)))
}

fn array_pop(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let id = recv_array(args)?;
    Ok(realm.heap.object_mut(id).elements.pop().unwrap_or(Value::UNDEFINED))
}

fn array_shift(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let id = recv_array(args)?;
    let o = realm.heap.object_mut(id);
    if o.elements.is_empty() {
        Ok(Value::UNDEFINED)
    } else {
        Ok(o.elements.remove(0))
    }
}

fn array_unshift(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let id = recv_array(args)?;
    let o = realm.heap.object_mut(id);
    for (i, &a) in args[1..].iter().enumerate() {
        o.elements.insert(i, a);
    }
    let len = o.elements.len() as i64;
    Ok(realm.heap.number_i64(len))
}

fn array_join(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let id = recv_array(args)?;
    let sep = match arg(args, 1).unpack() {
        Unpacked::Undefined => ",".to_owned(),
        _ => ops::to_display(realm, arg(args, 1)),
    };
    let elems = realm.heap.object(id).elements.clone();
    let parts: Vec<String> = elems
        .into_iter()
        .map(|e| {
            if e.is_null() || e.is_undefined() {
                String::new()
            } else {
                ops::to_display(realm, e)
            }
        })
        .collect();
    Ok(realm.heap.alloc_string(&parts.join(&sep)))
}

fn array_reverse(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let id = recv_array(args)?;
    realm.heap.object_mut(id).elements.reverse();
    Ok(arg(args, 0))
}

fn array_index_of(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let id = recv_array(args)?;
    let needle = arg(args, 1);
    let elems = realm.heap.object(id).elements.clone();
    for (i, e) in elems.into_iter().enumerate() {
        if ops::strict_eq(realm, e, needle) {
            return Ok(Value::new_int(i as i32));
        }
    }
    Ok(Value::new_int(-1))
}

fn array_slice(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let id = recv_array(args)?;
    let len = realm.heap.object(id).elements.len() as i64;
    let norm = |x: f64| -> i64 {
        if x.is_nan() {
            0
        } else if x < 0.0 {
            (len + x as i64).max(0)
        } else {
            (x as i64).min(len)
        }
    };
    let a = match arg(args, 1).unpack() {
        Unpacked::Undefined => 0,
        _ => norm(ops::to_number(realm, arg(args, 1))),
    };
    let b = match arg(args, 2).unpack() {
        Unpacked::Undefined => len,
        _ => norm(ops::to_number(realm, arg(args, 2))),
    };
    let slice: Vec<Value> =
        if a < b { realm.heap.object(id).elements[a as usize..b as usize].to_vec() } else { vec![] };
    let out = realm.new_array(slice.len());
    realm.heap.object_mut(out).elements = slice;
    Ok(Value::new_object(out))
}

fn array_concat(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    let id = recv_array(args)?;
    let mut elems = realm.heap.object(id).elements.clone();
    for &a in &args[1..] {
        match a.as_object() {
            Some(oid) if realm.heap.object(oid).class == crate::object::ObjectClass::Array => {
                elems.extend(realm.heap.object(oid).elements.iter().copied());
            }
            _ => elems.push(a),
        }
    }
    let out = realm.new_array(0);
    realm.heap.object_mut(out).elements = elems;
    Ok(Value::new_object(out))
}

fn array_sort(realm: &mut Realm, args: &[Value]) -> Result<Value, RuntimeError> {
    // Default JS sort: by string representation. (A scripted comparator
    // would reenter the interpreter; this native does not support one and
    // is marked may_reenter=false accordingly.)
    let id = recv_array(args)?;
    let elems = realm.heap.object(id).elements.clone();
    let mut keyed: Vec<(String, Value)> =
        elems.into_iter().map(|e| (ops::to_display(realm, e), e)).collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0));
    realm.heap.object_mut(id).elements = keyed.into_iter().map(|(_, v)| v).collect();
    Ok(arg(args, 0))
}

// ---- installation ----

/// Installs all builtins into `realm`: the `Math` and `String` global
/// objects, global functions, and the array/string prototypes.
pub fn install(realm: &mut Realm) {
    use FastTy::{Double, Int, Str};

    // Prototype objects first.
    let object_proto = realm.heap.alloc_object(crate::object::Object::new_plain(None));
    realm.object_proto = Some(object_proto);
    let array_proto = realm.heap.alloc_object(crate::object::Object::new_plain(None));
    realm.array_proto = Some(array_proto);
    let string_proto = realm.heap.alloc_object(crate::object::Object::new_plain(None));
    realm.string_proto = Some(string_proto);

    let def_method = |realm: &mut Realm,
                          proto: crate::value::ObjectId,
                          name: &str,
                          f: crate::realm::NativeFn,
                          effects: NativeEffects,
                          fast: Option<FastNative>| {
        let id = realm.register_native(name, f, effects, fast);
        let fv = realm.new_native_function(id);
        let sym = realm.symbols.intern(name.rsplit('.').next().expect("name"));
        realm.set_prop(Value::new_object(proto), sym, fv).expect("proto is an object");
    };

    // Array.prototype
    def_method(realm, array_proto, "Array.push", array_push, ALLOC, None);
    def_method(realm, array_proto, "Array.pop", array_pop, PURE, None);
    def_method(realm, array_proto, "Array.shift", array_shift, PURE, None);
    def_method(realm, array_proto, "Array.unshift", array_unshift, ALLOC, None);
    def_method(realm, array_proto, "Array.join", array_join, ALLOC, None);
    def_method(realm, array_proto, "Array.reverse", array_reverse, PURE, None);
    def_method(realm, array_proto, "Array.indexOf", array_index_of, PURE, None);
    def_method(realm, array_proto, "Array.slice", array_slice, ALLOC, None);
    def_method(realm, array_proto, "Array.concat", array_concat, ALLOC, None);
    def_method(realm, array_proto, "Array.sort", array_sort, ALLOC, None);

    // String.prototype
    def_method(
        realm,
        string_proto,
        "String.charCodeAt",
        string_char_code_at,
        PURE,
        Some(FastNative { helper: Helper::CharCodeAt, args: &[Str, Int], ret: Int }),
    );
    def_method(
        realm,
        string_proto,
        "String.charAt",
        string_char_at,
        ALLOC,
        Some(FastNative { helper: Helper::CharAt, args: &[Str, Int], ret: Str }),
    );
    def_method(realm, string_proto, "String.indexOf", string_index_of, PURE, None);
    def_method(
        realm,
        string_proto,
        "String.substring",
        string_substring,
        ALLOC,
        Some(FastNative { helper: Helper::Substring, args: &[Str, Int, Int], ret: Str }),
    );
    def_method(realm, string_proto, "String.slice", string_slice, ALLOC, None);
    def_method(realm, string_proto, "String.split", string_split, ALLOC, None);
    def_method(
        realm,
        string_proto,
        "String.toLowerCase",
        string_to_lower,
        ALLOC,
        Some(FastNative { helper: Helper::ToLowerCase, args: &[Str], ret: Str }),
    );
    def_method(
        realm,
        string_proto,
        "String.toUpperCase",
        string_to_upper,
        ALLOC,
        Some(FastNative { helper: Helper::ToUpperCase, args: &[Str], ret: Str }),
    );
    def_method(realm, string_proto, "String.replace", string_replace, ALLOC, None);

    // Math object.
    let math = realm.new_plain_object();
    let def_math = |realm: &mut Realm,
                        name: &str,
                        f: crate::realm::NativeFn,
                        fast: Option<FastNative>| {
        let id = realm.register_native(&format!("Math.{name}"), f, PURE, fast);
        let fv = realm.new_native_function(id);
        let sym = realm.symbols.intern(name);
        realm.set_prop(Value::new_object(math), sym, fv).expect("Math is an object");
    };
    let f1 = |h: Helper| Some(FastNative { helper: h, args: &[Double][..], ret: Double });
    let f2 = |h: Helper| {
        Some(FastNative { helper: h, args: &[Double, Double][..], ret: Double })
    };
    def_math(realm, "sin", math_sin, f1(Helper::Sin));
    def_math(realm, "cos", math_cos, f1(Helper::Cos));
    def_math(realm, "tan", math_tan, f1(Helper::Tan));
    def_math(realm, "asin", math_asin, f1(Helper::Asin));
    def_math(realm, "acos", math_acos, f1(Helper::Acos));
    def_math(realm, "atan", math_atan, f1(Helper::Atan));
    def_math(realm, "exp", math_exp, f1(Helper::Exp));
    def_math(realm, "log", math_log, f1(Helper::Log));
    def_math(realm, "sqrt", math_sqrt, f1(Helper::Sqrt));
    def_math(realm, "floor", math_floor, f1(Helper::Floor));
    def_math(realm, "ceil", math_ceil, f1(Helper::Ceil));
    def_math(realm, "abs", math_abs, f1(Helper::AbsD));
    def_math(realm, "round", math_round, f1(Helper::Round));
    def_math(realm, "atan2", math_atan2, f2(Helper::Atan2));
    def_math(realm, "pow", math_pow, f2(Helper::Pow));
    def_math(realm, "min", math_min, f2(Helper::MinD));
    def_math(realm, "max", math_max, f2(Helper::MaxD));
    def_math(
        realm,
        "random",
        math_random,
        Some(FastNative { helper: Helper::Random, args: &[], ret: Double }),
    );
    let pi = realm.heap.alloc_double(std::f64::consts::PI);
    let pi_sym = realm.symbols.intern("PI");
    realm.set_prop(Value::new_object(math), pi_sym, pi).expect("Math is an object");
    let e = realm.heap.alloc_double(std::f64::consts::E);
    let e_sym = realm.symbols.intern("E");
    realm.set_prop(Value::new_object(math), e_sym, e).expect("Math is an object");
    realm.define_global("Math", Value::new_object(math));

    // String object (constructor-less namespace with fromCharCode).
    let string_ns = realm.new_plain_object();
    let id = realm.register_native(
        "String.fromCharCode",
        string_from_char_code,
        ALLOC,
        // Typed fast path for the common 1-arg case; multi-arg calls take
        // the generic boxed path.
        Some(FastNative { helper: Helper::FromCharCode, args: &[Int], ret: Str }),
    );
    let fv = realm.new_native_function(id);
    let sym = realm.symbols.intern("fromCharCode");
    realm.set_prop(Value::new_object(string_ns), sym, fv).expect("String is an object");
    realm.define_global("String", Value::new_object(string_ns));

    // Global functions.
    let def_global = |realm: &mut Realm, name: &str, f: crate::realm::NativeFn| {
        let id = realm.register_native(name, f, ALLOC, None);
        let fv = realm.new_native_function(id);
        realm.define_global(name, fv);
    };
    def_global(realm, "print", global_print);
    def_global(realm, "parseInt", global_parse_int);
    def_global(realm, "parseFloat", global_parse_float);
    def_global(realm, "isNaN", global_is_nan);

    let nan = realm.heap.alloc_double(f64::NAN);
    realm.define_global("NaN", nan);
    let inf = realm.heap.alloc_double(f64::INFINITY);
    realm.define_global("Infinity", inf);
    realm.define_global("undefined", Value::UNDEFINED);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call_global(realm: &mut Realm, name: &str, args: &[Value]) -> Value {
        let slot = realm.lookup_global(name).expect("global exists");
        let f = realm.global(slot).as_object().expect("function object");
        let callee = realm.heap.object(f).callee.expect("callable");
        let crate::object::Callee::Native(id) = callee else { panic!("native") };
        let mut full = vec![Value::UNDEFINED];
        full.extend_from_slice(args);
        realm.call_native(crate::realm::NativeId(id), &full).expect("call ok")
    }

    fn call_method(realm: &mut Realm, recv: Value, name: &str, args: &[Value]) -> Value {
        let sym = realm.symbols.intern(name);
        let f = realm.get_prop(recv, sym).unwrap().as_object().expect("method");
        let callee = realm.heap.object(f).callee.expect("callable");
        let crate::object::Callee::Native(id) = callee else { panic!("native") };
        let mut full = vec![recv];
        full.extend_from_slice(args);
        realm.call_native(crate::realm::NativeId(id), &full).expect("call ok")
    }

    #[test]
    fn math_props_exist() {
        let mut realm = Realm::new();
        let math = realm.global(realm.lookup_global("Math").unwrap());
        let pi_sym = realm.symbols.intern("PI");
        let pi = realm.get_prop(math, pi_sym).unwrap();
        assert!((realm.heap.number_value(pi).unwrap() - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn print_accumulates_output() {
        let mut realm = Realm::new();
        let s = realm.heap.alloc_string("hello");
        call_global(&mut realm, "print", &[s, Value::new_int(42)]);
        assert_eq!(realm.output, "hello 42\n");
    }

    #[test]
    fn parse_int_radix() {
        let mut realm = Realm::new();
        let s = realm.heap.alloc_string("ff");
        let v = call_global(&mut realm, "parseInt", &[s, Value::new_int(16)]);
        assert_eq!(v.as_int(), Some(255));
        let s = realm.heap.alloc_string("42abc");
        let v = call_global(&mut realm, "parseInt", &[s]);
        assert_eq!(v.as_int(), Some(42));
        let s = realm.heap.alloc_string("zzz");
        let v = call_global(&mut realm, "parseInt", &[s]);
        assert!(realm.heap.number_value(v).unwrap().is_nan());
        let s = realm.heap.alloc_string("-10");
        let v = call_global(&mut realm, "parseInt", &[s]);
        assert_eq!(v.as_int(), Some(-10));
    }

    #[test]
    fn parse_float_prefix() {
        let mut realm = Realm::new();
        let s = realm.heap.alloc_string("3.5xyz");
        let v = call_global(&mut realm, "parseFloat", &[s]);
        assert_eq!(realm.heap.number_value(v), Some(3.5));
        let s = realm.heap.alloc_string("1e3");
        let v = call_global(&mut realm, "parseFloat", &[s]);
        assert_eq!(realm.heap.number_value(v), Some(1000.0));
    }

    #[test]
    fn string_methods() {
        let mut realm = Realm::new();
        let s = realm.heap.alloc_string("Hello World");
        let v = call_method(&mut realm, s, "charCodeAt", &[Value::new_int(0)]);
        assert_eq!(v.as_int(), Some(72));
        let v = call_method(&mut realm, s, "charCodeAt", &[Value::new_int(999)]);
        assert!(realm.heap.number_value(v).unwrap().is_nan());
        let world = realm.heap.alloc_string("World");
        let v = call_method(&mut realm, s, "indexOf", &[world]);
        assert_eq!(v.as_int(), Some(6));
        let v = call_method(
            &mut realm,
            s,
            "substring",
            &[Value::new_int(0), Value::new_int(5)],
        );
        assert_eq!(realm.heap.string(v.as_string().unwrap()), b"Hello");
        let v = call_method(&mut realm, s, "toUpperCase", &[]);
        assert_eq!(realm.heap.string(v.as_string().unwrap()), b"HELLO WORLD");
        let v = call_method(&mut realm, s, "slice", &[Value::new_int(-5)]);
        assert_eq!(realm.heap.string(v.as_string().unwrap()), b"World");
    }

    #[test]
    fn string_split_and_replace() {
        let mut realm = Realm::new();
        let s = realm.heap.alloc_string("a,b,c");
        let sep = realm.heap.alloc_string(",");
        let v = call_method(&mut realm, s, "split", &[sep]);
        let arr = v.as_object().unwrap();
        assert_eq!(realm.heap.object(arr).array_length(), 3);
        let s2 = realm.heap.alloc_string("aXbXc");
        let pat = realm.heap.alloc_string("X");
        let rep = realm.heap.alloc_string("-");
        let v = call_method(&mut realm, s2, "replace", &[pat, rep]);
        assert_eq!(realm.heap.string(v.as_string().unwrap()), b"a-bXc");
    }

    #[test]
    fn array_methods() {
        let mut realm = Realm::new();
        let arr = Value::new_object(realm.new_array(0));
        call_method(&mut realm, arr, "push", &[Value::new_int(3)]);
        call_method(&mut realm, arr, "push", &[Value::new_int(1)]);
        let len = call_method(&mut realm, arr, "push", &[Value::new_int(2)]);
        assert_eq!(len.as_int(), Some(3));
        call_method(&mut realm, arr, "sort", &[]);
        let dash = realm.heap.alloc_string("-");
        let joined = call_method(&mut realm, arr, "join", &[dash]);
        assert_eq!(realm.heap.string(joined.as_string().unwrap()), b"1-2-3");
        let popped = call_method(&mut realm, arr, "pop", &[]);
        assert_eq!(popped.as_int(), Some(3));
        let idx = call_method(&mut realm, arr, "indexOf", &[Value::new_int(2)]);
        assert_eq!(idx.as_int(), Some(1));
        let rev = call_method(&mut realm, arr, "reverse", &[]);
        assert_eq!(rev, arr);
        let first = realm.get_elem(arr, Value::new_int(0)).unwrap();
        assert_eq!(first.as_int(), Some(2));
    }

    #[test]
    fn from_char_code() {
        let mut realm = Realm::new();
        let string_ns = realm.global(realm.lookup_global("String").unwrap());
        let sym = realm.symbols.intern("fromCharCode");
        let f = realm.get_prop(string_ns, sym).unwrap().as_object().unwrap();
        let crate::object::Callee::Native(id) = realm.heap.object(f).callee.unwrap() else {
            panic!()
        };
        let v = realm
            .call_native(
                crate::realm::NativeId(id),
                &[Value::UNDEFINED, Value::new_int(72), Value::new_int(105)],
            )
            .unwrap();
        assert_eq!(realm.heap.string(v.as_string().unwrap()), b"Hi");
    }

    #[test]
    fn fast_annotations_present() {
        let realm = Realm::new();
        let sin = realm.natives.iter().find(|n| n.name == "Math.sin").unwrap();
        assert!(sin.fast.is_some());
        let cca = realm.natives.iter().find(|n| n.name == "String.charCodeAt").unwrap();
        assert_eq!(cca.fast.unwrap().helper, Helper::CharCodeAt);
    }
}
