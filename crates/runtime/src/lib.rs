//! # tm-runtime
//!
//! Runtime substrate for the TraceMonkey reproduction: tagged values,
//! garbage-collected heap, object shapes, strings, native builtins, and the
//! helper entry points callable from compiled code.
//!
//! This crate plays the role of SpiderMonkey's object model and GC in the
//! paper (*Trace-based Just-in-Time Type Specialization for Dynamic
//! Languages*, PLDI 2009):
//!
//! * [`value::Value`] is the tagged `jsval` machine word of Figure 9;
//! * [`shape`] implements the integer-keyed object shapes that make trace
//!   property guards single comparisons;
//! * [`heap::Heap`] is the exact, non-generational, stop-the-world
//!   mark-and-sweep collector described in §6;
//! * [`ops`] holds the operator semantics shared by **all** engines, so the
//!   interpreter, method JIT, and tracing JIT agree by construction;
//! * [`trace_helpers`] is the FFI surface compiled code calls into
//!   (the equivalent of `js_Array_set` in the paper's Figure 3);
//! * [`builtins`] installs `Math`, `String`, array/string prototypes, and
//!   global functions through the boxed-value FFI of §6.5, with typed
//!   fast-call annotations for hot natives.
//!
//! ```
//! use tm_runtime::{Realm, Value};
//!
//! let mut realm = Realm::new();
//! let s = realm.heap.alloc_string("hello");
//! let slot = realm.define_global("greeting", s);
//! assert!(realm.global(slot).is_string());
//! ```

pub mod builtins;
pub mod error;
pub mod heap;
pub mod ic;
pub mod object;
pub mod ops;
pub mod realm;
pub mod shape;
pub mod trace_helpers;
pub mod value;

pub use error::RuntimeError;
pub use heap::Heap;
pub use ic::{IcKind, IcStats, PropIc};
pub use object::{Callee, Object, ObjectClass};
pub use realm::{NativeEffects, NativeFn, NativeId, Realm};
pub use shape::{ShapeId, Sym, SymbolTable, EMPTY_SHAPE};
pub use trace_helpers::{Helper, Word};
pub use value::{DoubleId, ObjectId, StringId, Unpacked, Value};
