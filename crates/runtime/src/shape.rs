//! Object shapes: shared structural descriptions of objects.
//!
//! The paper (§6) describes SpiderMonkey objects as "a shared structural
//! description, called the object *shape*, that maps property names to array
//! indexes". Shapes are what make trace-compiled property access fast: a
//! guard compares the object's integer shape id, and on success the property
//! value is a single indexed load from the object's slot vector
//! ("representation specialization: objects", §3.1).
//!
//! Shapes form a tree: the empty shape is the root, and adding property `p`
//! to an object with shape `s` moves the object to the child shape
//! `transition(s, p)`. Objects created by the same code path therefore share
//! shapes, and a single shape guard covers every property of the object.

use std::collections::HashMap;

/// An interned property-name symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// Integer key identifying an object shape; trace guards compare these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeId(pub u32);

/// The shape id of the empty shape (no properties).
pub const EMPTY_SHAPE: ShapeId = ShapeId(0);

/// Interner for property names.
///
/// Property lookup by name happens in the interpreter; on trace, names have
/// been resolved to slot indexes so symbols never appear in compiled code.
#[derive(Debug, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    map: HashMap<String, Sym>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Interns `name`, returning its symbol.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), s);
        s
    }

    /// Returns the name of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this table.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Returns the symbol for `name` if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[derive(Debug)]
struct Shape {
    parent: ShapeId,
    /// Property added by this shape relative to its parent. `None` only for
    /// the empty root shape.
    prop: Option<Sym>,
    /// Slot index of `prop` in the object's slot vector.
    slot: u32,
    /// Number of slots an object of this shape owns.
    slot_count: u32,
}

/// One entry of the direct-mapped lookup cache. `shape == TOMBSTONE_SHAPE`
/// marks an empty way.
#[derive(Debug, Clone, Copy)]
struct LookupEntry {
    shape: ShapeId,
    prop: Sym,
    slot: Option<u32>,
}

const TOMBSTONE_SHAPE: ShapeId = ShapeId(u32::MAX);

/// Ways in the direct-mapped lookup cache. Power of two; small enough that
/// resident shape-table state is bounded by construction no matter how many
/// `(shape, prop)` pairs a long-running realm probes.
pub const LOOKUP_CACHE_WAYS: usize = 256;

/// The global shape tree.
///
/// All objects in a realm share one `ShapeTable`. Lookup of a property in a
/// shape walks the parent chain, front-ended by a small fixed-size
/// direct-mapped cache (the per-site inline caches above it make this a
/// second-chance cache, so bounding it costs nothing on hot paths).
#[derive(Debug)]
pub struct ShapeTable {
    shapes: Vec<Shape>,
    transitions: HashMap<(ShapeId, Sym), ShapeId>,
    /// Fixed-size direct-mapped `(shape, prop) → slot` cache.
    lookup_cache: Box<[LookupEntry; LOOKUP_CACHE_WAYS]>,
    /// Inline-cache invalidation epoch: bumped whenever a genuinely new
    /// shape is created (memoized transitions reuse ids and do *not* bump)
    /// and on GC. A `PropIc` is valid only while its recorded epoch matches.
    epoch: u32,
}

impl Default for ShapeTable {
    fn default() -> Self {
        ShapeTable::new()
    }
}

impl ShapeTable {
    /// Creates a shape table containing only the empty shape.
    pub fn new() -> ShapeTable {
        ShapeTable {
            shapes: vec![Shape { parent: EMPTY_SHAPE, prop: None, slot: 0, slot_count: 0 }],
            transitions: HashMap::new(),
            lookup_cache: Box::new(
                [LookupEntry { shape: TOMBSTONE_SHAPE, prop: Sym(0), slot: None };
                    LOOKUP_CACHE_WAYS],
            ),
            epoch: 0,
        }
    }

    /// Returns the shape reached by adding property `prop` to shape `from`,
    /// creating it on first use (a *shape transition*).
    ///
    /// The returned shape assigns `prop` the next free slot index.
    pub fn transition(&mut self, from: ShapeId, prop: Sym) -> ShapeId {
        if let Some(&to) = self.transitions.get(&(from, prop)) {
            return to;
        }
        let slot = self.shapes[from.0 as usize].slot_count;
        let id = ShapeId(self.shapes.len() as u32);
        self.shapes.push(Shape { parent: from, prop: Some(prop), slot, slot_count: slot + 1 });
        self.transitions.insert((from, prop), id);
        // A new shape exists: conservatively invalidate all property ICs.
        // Steady-state code creates no new shapes, so warm ICs stay valid.
        self.bump_epoch();
        id
    }

    fn cache_way(shape: ShapeId, prop: Sym) -> usize {
        let h = (shape.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((prop.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        (h >> 32) as usize & (LOOKUP_CACHE_WAYS - 1)
    }

    /// Finds the slot index of `prop` in `shape`, or `None` if the shape has
    /// no such property.
    pub fn lookup(&mut self, shape: ShapeId, prop: Sym) -> Option<u32> {
        let way = Self::cache_way(shape, prop);
        let e = self.lookup_cache[way];
        if e.shape == shape && e.prop == prop {
            return e.slot;
        }
        let mut cur = shape;
        let mut result = None;
        loop {
            let s = &self.shapes[cur.0 as usize];
            if s.prop == Some(prop) {
                result = Some(s.slot);
                break;
            }
            if cur == EMPTY_SHAPE {
                break;
            }
            cur = s.parent;
        }
        self.lookup_cache[way] = LookupEntry { shape, prop, slot: result };
        result
    }

    /// The current inline-cache invalidation epoch.
    #[inline]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Invalidates every property inline cache in the realm (wrapping; ICs
    /// also compare the cached shape id, so a 2^32-transition wrap cannot
    /// produce a false hit on a *different* site shape).
    pub fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Capacity of the bounded lookup cache — constant by construction.
    pub fn lookup_cache_capacity(&self) -> usize {
        self.lookup_cache.len()
    }

    /// Number of slots an object with `shape` owns.
    pub fn slot_count(&self, shape: ShapeId) -> u32 {
        self.shapes[shape.0 as usize].slot_count
    }

    /// Enumerates the properties of `shape` in definition order.
    pub fn properties(&self, shape: ShapeId) -> Vec<(Sym, u32)> {
        let mut props = Vec::new();
        let mut cur = shape;
        loop {
            let s = &self.shapes[cur.0 as usize];
            if let Some(p) = s.prop {
                props.push((p, s.slot));
            }
            if cur == EMPTY_SHAPE {
                break;
            }
            cur = s.parent;
        }
        props.reverse();
        props
    }

    /// The property-name path from the root to `shape` (definition order),
    /// or `None` when `shape` is not a shape of this table. Two shape
    /// tables assign the same id to a shape iff the tables reached it by
    /// the same creation order; the persistent trace cache uses paths as
    /// the *creation-order-independent* identity when revalidating cached
    /// shape guards (`docs/PERSISTENCE.md` §5).
    pub fn path(&self, shape: ShapeId) -> Option<Vec<Sym>> {
        if shape.0 as usize >= self.shapes.len() {
            return None;
        }
        let mut path: Vec<Sym> =
            self.properties(shape).into_iter().map(|(sym, _)| sym).collect();
        path.shrink_to_fit();
        Some(path)
    }

    /// Resolves a property-name path to the shape it denotes, walking the
    /// memoized transition edges **without creating shapes** — unlike
    /// [`ShapeTable::transition`], an unknown path returns `None` and
    /// leaves the table (and the IC epoch) untouched. This is the
    /// cache-load side of [`ShapeTable::path`].
    pub fn find_path(&self, path: &[Sym]) -> Option<ShapeId> {
        let mut cur = EMPTY_SHAPE;
        for &p in path {
            cur = *self.transitions.get(&(cur, p))?;
        }
        Some(cur)
    }

    /// Total number of distinct shapes created.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether only the empty shape exists.
    pub fn is_empty(&self) -> bool {
        self.shapes.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let mut syms = SymbolTable::new();
        let a = syms.intern("x");
        let b = syms.intern("y");
        let a2 = syms.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(syms.name(a), "x");
        assert_eq!(syms.lookup("y"), Some(b));
        assert_eq!(syms.lookup("z"), None);
        assert_eq!(syms.len(), 2);
    }

    #[test]
    fn same_insertion_order_shares_shapes() {
        let mut syms = SymbolTable::new();
        let mut shapes = ShapeTable::new();
        let (x, y) = (syms.intern("x"), syms.intern("y"));

        // Two objects adding x then y end at the same shape — the property
        // of shapes that makes a single integer guard sufficient on trace.
        let s1 = shapes.transition(EMPTY_SHAPE, x);
        let s2 = shapes.transition(s1, y);
        let t1 = shapes.transition(EMPTY_SHAPE, x);
        let t2 = shapes.transition(t1, y);
        assert_eq!(s2, t2);

        // Different insertion order yields a different shape.
        let u1 = shapes.transition(EMPTY_SHAPE, y);
        let u2 = shapes.transition(u1, x);
        assert_ne!(s2, u2);
    }

    #[test]
    fn lookup_finds_slots() {
        let mut syms = SymbolTable::new();
        let mut shapes = ShapeTable::new();
        let (x, y, z) = (syms.intern("x"), syms.intern("y"), syms.intern("z"));
        let s1 = shapes.transition(EMPTY_SHAPE, x);
        let s2 = shapes.transition(s1, y);

        assert_eq!(shapes.lookup(s2, x), Some(0));
        assert_eq!(shapes.lookup(s2, y), Some(1));
        assert_eq!(shapes.lookup(s2, z), None);
        assert_eq!(shapes.lookup(s1, y), None);
        assert_eq!(shapes.slot_count(s2), 2);
        assert_eq!(shapes.slot_count(EMPTY_SHAPE), 0);
        // Memoized second lookup.
        assert_eq!(shapes.lookup(s2, x), Some(0));
    }

    #[test]
    fn lookup_cache_is_bounded_under_transition_heavy_workload() {
        let mut syms = SymbolTable::new();
        let mut shapes = ShapeTable::new();
        let props: Vec<Sym> = (0..64).map(|i| syms.intern(&format!("p{i}"))).collect();
        // Build shape chains in many insertion orders and probe every
        // (shape, prop) pair along the way: tens of thousands of distinct
        // keys that would each have become a resident map entry before.
        for i in 0..64 {
            let mut s = EMPTY_SHAPE;
            for j in 0..16 {
                s = shapes.transition(s, props[(i * 7 + j) % 64]);
                for &p in &props {
                    let _ = shapes.lookup(s, p);
                }
            }
        }
        assert!(shapes.len() > 500, "workload should create many shapes");
        // Resident cache state is constant-size by construction.
        assert_eq!(shapes.lookup_cache_capacity(), LOOKUP_CACHE_WAYS);
    }

    #[test]
    fn epoch_bumps_only_on_new_shapes() {
        let mut syms = SymbolTable::new();
        let mut shapes = ShapeTable::new();
        let x = syms.intern("x");
        let e0 = shapes.epoch();
        let s1 = shapes.transition(EMPTY_SHAPE, x);
        assert_ne!(shapes.epoch(), e0, "creating a shape invalidates ICs");
        // Memoized transition reuses the shape: steady state, no bump.
        let e1 = shapes.epoch();
        assert_eq!(shapes.transition(EMPTY_SHAPE, x), s1);
        assert_eq!(shapes.epoch(), e1);
        // lookup never bumps.
        let _ = shapes.lookup(s1, x);
        assert_eq!(shapes.epoch(), e1);
        // Explicit bump (GC) invalidates.
        shapes.bump_epoch();
        assert_ne!(shapes.epoch(), e1);
    }

    #[test]
    fn path_and_find_path_are_inverse_and_non_mutating() {
        let mut syms = SymbolTable::new();
        let mut shapes = ShapeTable::new();
        let (a, b, c) = (syms.intern("a"), syms.intern("b"), syms.intern("c"));
        let s1 = shapes.transition(EMPTY_SHAPE, a);
        let s2 = shapes.transition(s1, b);

        assert_eq!(shapes.path(EMPTY_SHAPE), Some(vec![]));
        assert_eq!(shapes.path(s2), Some(vec![a, b]));
        assert_eq!(shapes.path(ShapeId(999)), None);

        assert_eq!(shapes.find_path(&[]), Some(EMPTY_SHAPE));
        assert_eq!(shapes.find_path(&[a, b]), Some(s2));

        // An unknown path must not create shapes or bump the IC epoch.
        let (len, epoch) = (shapes.len(), shapes.epoch());
        assert_eq!(shapes.find_path(&[a, c]), None);
        assert_eq!(shapes.find_path(&[b]), None);
        assert_eq!((shapes.len(), shapes.epoch()), (len, epoch));
    }

    #[test]
    fn properties_in_definition_order() {
        let mut syms = SymbolTable::new();
        let mut shapes = ShapeTable::new();
        let (a, b, c) = (syms.intern("a"), syms.intern("b"), syms.intern("c"));
        let s = shapes.transition(EMPTY_SHAPE, a);
        let s = shapes.transition(s, b);
        let s = shapes.transition(s, c);
        assert_eq!(shapes.properties(s), vec![(a, 0), (b, 1), (c, 2)]);
        assert_eq!(shapes.properties(EMPTY_SHAPE), vec![]);
    }
}
