//! Object shapes: shared structural descriptions of objects.
//!
//! The paper (§6) describes SpiderMonkey objects as "a shared structural
//! description, called the object *shape*, that maps property names to array
//! indexes". Shapes are what make trace-compiled property access fast: a
//! guard compares the object's integer shape id, and on success the property
//! value is a single indexed load from the object's slot vector
//! ("representation specialization: objects", §3.1).
//!
//! Shapes form a tree: the empty shape is the root, and adding property `p`
//! to an object with shape `s` moves the object to the child shape
//! `transition(s, p)`. Objects created by the same code path therefore share
//! shapes, and a single shape guard covers every property of the object.

use std::collections::HashMap;

/// An interned property-name symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// Integer key identifying an object shape; trace guards compare these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeId(pub u32);

/// The shape id of the empty shape (no properties).
pub const EMPTY_SHAPE: ShapeId = ShapeId(0);

/// Interner for property names.
///
/// Property lookup by name happens in the interpreter; on trace, names have
/// been resolved to slot indexes so symbols never appear in compiled code.
#[derive(Debug, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    map: HashMap<String, Sym>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Interns `name`, returning its symbol.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), s);
        s
    }

    /// Returns the name of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this table.
    pub fn name(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Returns the symbol for `name` if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[derive(Debug)]
struct Shape {
    parent: ShapeId,
    /// Property added by this shape relative to its parent. `None` only for
    /// the empty root shape.
    prop: Option<Sym>,
    /// Slot index of `prop` in the object's slot vector.
    slot: u32,
    /// Number of slots an object of this shape owns.
    slot_count: u32,
}

/// The global shape tree.
///
/// All objects in a realm share one `ShapeTable`. Lookup of a property in a
/// shape walks the parent chain (cached in a flat map for O(1) access).
#[derive(Debug)]
pub struct ShapeTable {
    shapes: Vec<Shape>,
    transitions: HashMap<(ShapeId, Sym), ShapeId>,
    /// Memoized full property → slot maps per shape (built lazily).
    lookup_cache: HashMap<(ShapeId, Sym), Option<u32>>,
}

impl Default for ShapeTable {
    fn default() -> Self {
        ShapeTable::new()
    }
}

impl ShapeTable {
    /// Creates a shape table containing only the empty shape.
    pub fn new() -> ShapeTable {
        ShapeTable {
            shapes: vec![Shape { parent: EMPTY_SHAPE, prop: None, slot: 0, slot_count: 0 }],
            transitions: HashMap::new(),
            lookup_cache: HashMap::new(),
        }
    }

    /// Returns the shape reached by adding property `prop` to shape `from`,
    /// creating it on first use (a *shape transition*).
    ///
    /// The returned shape assigns `prop` the next free slot index.
    pub fn transition(&mut self, from: ShapeId, prop: Sym) -> ShapeId {
        if let Some(&to) = self.transitions.get(&(from, prop)) {
            return to;
        }
        let slot = self.shapes[from.0 as usize].slot_count;
        let id = ShapeId(self.shapes.len() as u32);
        self.shapes.push(Shape { parent: from, prop: Some(prop), slot, slot_count: slot + 1 });
        self.transitions.insert((from, prop), id);
        id
    }

    /// Finds the slot index of `prop` in `shape`, or `None` if the shape has
    /// no such property. Results are memoized.
    pub fn lookup(&mut self, shape: ShapeId, prop: Sym) -> Option<u32> {
        if let Some(&cached) = self.lookup_cache.get(&(shape, prop)) {
            return cached;
        }
        let mut cur = shape;
        let mut result = None;
        loop {
            let s = &self.shapes[cur.0 as usize];
            if s.prop == Some(prop) {
                result = Some(s.slot);
                break;
            }
            if cur == EMPTY_SHAPE {
                break;
            }
            cur = s.parent;
        }
        self.lookup_cache.insert((shape, prop), result);
        result
    }

    /// Number of slots an object with `shape` owns.
    pub fn slot_count(&self, shape: ShapeId) -> u32 {
        self.shapes[shape.0 as usize].slot_count
    }

    /// Enumerates the properties of `shape` in definition order.
    pub fn properties(&self, shape: ShapeId) -> Vec<(Sym, u32)> {
        let mut props = Vec::new();
        let mut cur = shape;
        loop {
            let s = &self.shapes[cur.0 as usize];
            if let Some(p) = s.prop {
                props.push((p, s.slot));
            }
            if cur == EMPTY_SHAPE {
                break;
            }
            cur = s.parent;
        }
        props.reverse();
        props
    }

    /// Total number of distinct shapes created.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether only the empty shape exists.
    pub fn is_empty(&self) -> bool {
        self.shapes.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable() {
        let mut syms = SymbolTable::new();
        let a = syms.intern("x");
        let b = syms.intern("y");
        let a2 = syms.intern("x");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(syms.name(a), "x");
        assert_eq!(syms.lookup("y"), Some(b));
        assert_eq!(syms.lookup("z"), None);
        assert_eq!(syms.len(), 2);
    }

    #[test]
    fn same_insertion_order_shares_shapes() {
        let mut syms = SymbolTable::new();
        let mut shapes = ShapeTable::new();
        let (x, y) = (syms.intern("x"), syms.intern("y"));

        // Two objects adding x then y end at the same shape — the property
        // of shapes that makes a single integer guard sufficient on trace.
        let s1 = shapes.transition(EMPTY_SHAPE, x);
        let s2 = shapes.transition(s1, y);
        let t1 = shapes.transition(EMPTY_SHAPE, x);
        let t2 = shapes.transition(t1, y);
        assert_eq!(s2, t2);

        // Different insertion order yields a different shape.
        let u1 = shapes.transition(EMPTY_SHAPE, y);
        let u2 = shapes.transition(u1, x);
        assert_ne!(s2, u2);
    }

    #[test]
    fn lookup_finds_slots() {
        let mut syms = SymbolTable::new();
        let mut shapes = ShapeTable::new();
        let (x, y, z) = (syms.intern("x"), syms.intern("y"), syms.intern("z"));
        let s1 = shapes.transition(EMPTY_SHAPE, x);
        let s2 = shapes.transition(s1, y);

        assert_eq!(shapes.lookup(s2, x), Some(0));
        assert_eq!(shapes.lookup(s2, y), Some(1));
        assert_eq!(shapes.lookup(s2, z), None);
        assert_eq!(shapes.lookup(s1, y), None);
        assert_eq!(shapes.slot_count(s2), 2);
        assert_eq!(shapes.slot_count(EMPTY_SHAPE), 0);
        // Memoized second lookup.
        assert_eq!(shapes.lookup(s2, x), Some(0));
    }

    #[test]
    fn properties_in_definition_order() {
        let mut syms = SymbolTable::new();
        let mut shapes = ShapeTable::new();
        let (a, b, c) = (syms.intern("a"), syms.intern("b"), syms.intern("c"));
        let s = shapes.transition(EMPTY_SHAPE, a);
        let s = shapes.transition(s, b);
        let s = shapes.transition(s, c);
        assert_eq!(shapes.properties(s), vec![(a, 0), (b, 1), (c, 2)]);
        assert_eq!(shapes.properties(EMPTY_SHAPE), vec![]);
    }
}
