//! Tagged value words, following the SpiderMonkey `jsval` scheme the paper
//! reproduces in Figure 9.
//!
//! A [`Value`] is a single 64-bit machine word whose low three bits are a
//! type tag:
//!
//! | tag bits | type      | payload |
//! |----------|-----------|---------|
//! | `xx1`    | number    | 31-bit integer, stored in bits 1..32 |
//! | `000`    | object    | handle (index) of a heap `Object` |
//! | `010`    | number    | handle of a heap-boxed `f64` |
//! | `100`    | string    | handle of a heap string |
//! | `110`    | special   | enumeration for `false`, `true`, `null`, `undefined` |
//!
//! Exactly as in the paper, *number* is semantically a 64-bit IEEE-754
//! double; the 31-bit integer representation is an invisible optimization
//! ("representation specialization: numbers", §3.1). Boxing and unboxing
//! these words is a significant interpreter cost that compiled traces avoid
//! by keeping values unboxed in the trace activation record.

/// Number of low bits used for the type tag.
pub const TAG_BITS: u32 = 3;

/// Raw tag values for the three-bit tags (the integer tag only needs bit 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Tag {
    /// `000` — pointer (handle) to a heap object.
    Object = 0b000,
    /// `010` — pointer (handle) to a heap-boxed double.
    Double = 0b010,
    /// `100` — pointer (handle) to a heap string.
    String = 0b100,
    /// `110` — special constant: `false`, `true`, `null`, `undefined`.
    Special = 0b110,
    /// `xx1` — 31-bit integer (only bit 0 is significant).
    Int = 0b001,
}

/// Payload enumeration for the `Special` tag.
pub const SPECIAL_FALSE: u64 = 0;
/// Payload for `true`.
pub const SPECIAL_TRUE: u64 = 1;
/// Payload for `null`.
pub const SPECIAL_NULL: u64 = 2;
/// Payload for `undefined`.
pub const SPECIAL_UNDEFINED: u64 = 3;

/// Smallest integer representable in the 31-bit inline integer encoding.
pub const INT_MIN: i64 = -(1 << 30);
/// Largest integer representable in the 31-bit inline integer encoding.
pub const INT_MAX: i64 = (1 << 30) - 1;

/// Handle to a heap object (an index into the object arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

/// Handle to a heap string (an index into the string arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StringId(pub u32);

/// Handle to a heap-boxed double (an index into the double arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DoubleId(pub u32);

/// A boxed dynamic-language value: one tagged 64-bit word.
///
/// `Value` is deliberately opaque; use the `new_*` constructors and the
/// [`Value::unpack`] view. The inline-integer fast paths (`as_int`,
/// `is_int`) mirror the checks an interpreter performs on every operation —
/// the costs that trace compilation eliminates.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value(u64);

/// A decoded view of a [`Value`], produced by [`Value::unpack`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Unpacked {
    /// An inline 31-bit integer (a `number` to the language).
    Int(i32),
    /// A heap-boxed double (a `number` to the language).
    Double(DoubleId),
    /// A heap object (plain object, array, or function).
    Object(ObjectId),
    /// A heap string.
    String(StringId),
    /// The boolean `true` or `false`.
    Bool(bool),
    /// The `null` constant.
    Null,
    /// The `undefined` constant.
    Undefined,
}

impl Value {
    /// The `undefined` constant.
    pub const UNDEFINED: Value =
        Value((SPECIAL_UNDEFINED << TAG_BITS) | Tag::Special as u64);
    /// The `null` constant.
    pub const NULL: Value = Value((SPECIAL_NULL << TAG_BITS) | Tag::Special as u64);
    /// The boolean `true`.
    pub const TRUE: Value = Value((SPECIAL_TRUE << TAG_BITS) | Tag::Special as u64);
    /// The boolean `false`.
    pub const FALSE: Value = Value((SPECIAL_FALSE << TAG_BITS) | Tag::Special as u64);
    /// Integer zero, useful as a default.
    pub const ZERO: Value = Value(1); // (0 << 1) | 1

    /// Creates an inline integer value.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i` is outside the 31-bit inline range;
    /// use [`Value::fits_int`] or [`Value::new_int_checked`] first.
    #[inline]
    pub fn new_int(i: i32) -> Value {
        debug_assert!(Value::fits_int(i64::from(i)), "int out of 31-bit range: {i}");
        Value((((i as u32) as u64) << 1) | 1)
    }

    /// Creates an inline integer if `i` fits the 31-bit range.
    #[inline]
    pub fn new_int_checked(i: i64) -> Option<Value> {
        if Value::fits_int(i) {
            Some(Value::new_int(i as i32))
        } else {
            None
        }
    }

    /// Returns `true` if `i` fits the inline 31-bit integer representation.
    #[inline]
    pub fn fits_int(i: i64) -> bool {
        (INT_MIN..=INT_MAX).contains(&i)
    }

    /// Creates a boolean value.
    #[inline]
    pub fn new_bool(b: bool) -> Value {
        if b {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }

    /// Creates an object handle value.
    #[inline]
    pub fn new_object(id: ObjectId) -> Value {
        Value((u64::from(id.0) << TAG_BITS) | Tag::Object as u64)
    }

    /// Creates a string handle value.
    #[inline]
    pub fn new_string(id: StringId) -> Value {
        Value((u64::from(id.0) << TAG_BITS) | Tag::String as u64)
    }

    /// Creates a boxed-double handle value.
    #[inline]
    pub fn new_double(id: DoubleId) -> Value {
        Value((u64::from(id.0) << TAG_BITS) | Tag::Double as u64)
    }

    /// Returns the raw tagged word. Traces store boxed values as raw words.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a value from a raw tagged word previously produced by
    /// [`Value::raw`].
    #[inline]
    pub fn from_raw(raw: u64) -> Value {
        Value(raw)
    }

    /// Returns the tag of this value.
    #[inline]
    pub fn tag(self) -> Tag {
        if self.0 & 1 == 1 {
            Tag::Int
        } else {
            match self.0 & 0b110 {
                0b000 => Tag::Object,
                0b010 => Tag::Double,
                0b100 => Tag::String,
                _ => Tag::Special,
            }
        }
    }

    /// Is this an inline integer?
    #[inline]
    pub fn is_int(self) -> bool {
        self.0 & 1 == 1
    }

    /// Is this a number (inline integer or boxed double)?
    #[inline]
    pub fn is_number(self) -> bool {
        matches!(self.tag(), Tag::Int | Tag::Double)
    }

    /// Is this an object handle?
    #[inline]
    pub fn is_object(self) -> bool {
        self.tag() == Tag::Object
    }

    /// Is this a string handle?
    #[inline]
    pub fn is_string(self) -> bool {
        self.tag() == Tag::String
    }

    /// Is this `true` or `false`?
    #[inline]
    pub fn is_bool(self) -> bool {
        self == Value::TRUE || self == Value::FALSE
    }

    /// Is this `null`?
    #[inline]
    pub fn is_null(self) -> bool {
        self == Value::NULL
    }

    /// Is this `undefined`?
    #[inline]
    pub fn is_undefined(self) -> bool {
        self == Value::UNDEFINED
    }

    /// Extracts the inline integer payload.
    ///
    /// Returns `None` when the value is not an inline integer.
    #[inline]
    pub fn as_int(self) -> Option<i32> {
        if self.is_int() {
            // Arithmetic shift recovers the sign.
            Some(((self.0 as u32) as i32) >> 1)
        } else {
            None
        }
    }

    /// Extracts the object handle, if this is an object.
    #[inline]
    pub fn as_object(self) -> Option<ObjectId> {
        if self.tag() == Tag::Object {
            Some(ObjectId((self.0 >> TAG_BITS) as u32))
        } else {
            None
        }
    }

    /// Extracts the string handle, if this is a string.
    #[inline]
    pub fn as_string(self) -> Option<StringId> {
        if self.tag() == Tag::String {
            Some(StringId((self.0 >> TAG_BITS) as u32))
        } else {
            None
        }
    }

    /// Extracts the boxed-double handle, if this is a boxed double.
    #[inline]
    pub fn as_double_id(self) -> Option<DoubleId> {
        if self.tag() == Tag::Double {
            Some(DoubleId((self.0 >> TAG_BITS) as u32))
        } else {
            None
        }
    }

    /// Extracts the boolean payload, if this is a boolean.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        if self == Value::TRUE {
            Some(true)
        } else if self == Value::FALSE {
            Some(false)
        } else {
            None
        }
    }

    /// Decodes the value into its [`Unpacked`] view.
    #[inline]
    pub fn unpack(self) -> Unpacked {
        if self.is_int() {
            return Unpacked::Int(((self.0 as u32) as i32) >> 1);
        }
        let payload = self.0 >> TAG_BITS;
        match self.0 & 0b110 {
            0b000 => Unpacked::Object(ObjectId(payload as u32)),
            0b010 => Unpacked::Double(DoubleId(payload as u32)),
            0b100 => Unpacked::String(StringId(payload as u32)),
            _ => match payload {
                SPECIAL_FALSE => Unpacked::Bool(false),
                SPECIAL_TRUE => Unpacked::Bool(true),
                SPECIAL_NULL => Unpacked::Null,
                _ => Unpacked::Undefined,
            },
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::UNDEFINED
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::new_bool(b)
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.unpack() {
            Unpacked::Int(i) => write!(f, "Int({i})"),
            Unpacked::Double(id) => write!(f, "Double(#{})", id.0),
            Unpacked::Object(id) => write!(f, "Object(#{})", id.0),
            Unpacked::String(id) => write!(f, "String(#{})", id.0),
            Unpacked::Bool(b) => write!(f, "Bool({b})"),
            Unpacked::Null => write!(f, "Null"),
            Unpacked::Undefined => write!(f, "Undefined"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        for i in [0, 1, -1, 42, -42, INT_MAX as i32, INT_MIN as i32] {
            let v = Value::new_int(i);
            assert!(v.is_int());
            assert!(v.is_number());
            assert_eq!(v.as_int(), Some(i));
            assert_eq!(v.unpack(), Unpacked::Int(i));
        }
    }

    #[test]
    fn int_tag_is_low_bit() {
        // Figure 9: `xx1` means any word with bit 0 set is an integer.
        assert_eq!(Value::new_int(7).raw() & 1, 1);
        assert_eq!(Value::new_int(-7).raw() & 1, 1);
    }

    #[test]
    fn fits_int_bounds() {
        assert!(Value::fits_int(INT_MAX));
        assert!(Value::fits_int(INT_MIN));
        assert!(!Value::fits_int(INT_MAX + 1));
        assert!(!Value::fits_int(INT_MIN - 1));
        assert!(Value::new_int_checked(INT_MAX + 1).is_none());
        assert!(Value::new_int_checked(0).is_some());
    }

    #[test]
    fn specials_are_distinct() {
        let all = [Value::TRUE, Value::FALSE, Value::NULL, Value::UNDEFINED];
        for (i, a) in all.iter().enumerate() {
            assert_eq!(a.tag(), Tag::Special);
            for (j, b) in all.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }

    #[test]
    fn handle_round_trips() {
        let o = Value::new_object(ObjectId(12345));
        assert_eq!(o.tag(), Tag::Object);
        assert_eq!(o.as_object(), Some(ObjectId(12345)));
        assert_eq!(o.as_string(), None);

        let s = Value::new_string(StringId(7));
        assert_eq!(s.tag(), Tag::String);
        assert_eq!(s.as_string(), Some(StringId(7)));

        let d = Value::new_double(DoubleId(9));
        assert_eq!(d.tag(), Tag::Double);
        assert!(d.is_number());
        assert_eq!(d.as_double_id(), Some(DoubleId(9)));
    }

    #[test]
    fn raw_round_trip() {
        for v in [
            Value::new_int(-5),
            Value::new_object(ObjectId(1)),
            Value::UNDEFINED,
            Value::new_string(StringId(3)),
        ] {
            assert_eq!(Value::from_raw(v.raw()), v);
        }
    }

    #[test]
    fn tag_bit_patterns_match_figure_9() {
        assert_eq!(Value::new_object(ObjectId(1)).raw() & 0b111, 0b000);
        assert_eq!(Value::new_double(DoubleId(1)).raw() & 0b111, 0b010);
        assert_eq!(Value::new_string(StringId(1)).raw() & 0b111, 0b100);
        assert_eq!(Value::TRUE.raw() & 0b111, 0b110);
    }

    #[test]
    fn bool_helpers() {
        assert_eq!(Value::new_bool(true).as_bool(), Some(true));
        assert_eq!(Value::new_bool(false).as_bool(), Some(false));
        assert_eq!(Value::NULL.as_bool(), None);
        assert!(Value::TRUE.is_bool());
        assert!(!Value::NULL.is_bool());
        assert!(Value::NULL.is_null());
        assert!(Value::UNDEFINED.is_undefined());
    }

    #[test]
    fn default_is_undefined() {
        assert_eq!(Value::default(), Value::UNDEFINED);
    }
}
