//! Runtime helpers callable from compiled code.
//!
//! The paper's LIR represents type conversions and runtime services as
//! function calls ("this makes the LIR used by TraceMonkey independent of
//! the concrete type system", §3.1), and its Figure 3 trace calls
//! `js_Array_set` to store an array element. This module is the Rust
//! equivalent: a closed set of [`Helper`] entry points that compiled traces
//! and method-JIT code invoke with raw unboxed machine words.
//!
//! Calling conventions: every argument and result is a 64-bit [`Word`].
//! Doubles travel as IEEE-754 bit patterns, 32-bit integers as
//! sign-extended two's complement, heap handles as zero-extended indexes,
//! and boxed values as raw tagged words.

use crate::error::RuntimeError;
use crate::object::ObjectClass;
use crate::ops;
use crate::realm::{NativeId, Realm};
use crate::shape::Sym;
use crate::value::{ObjectId, StringId, Value};

/// A raw 64-bit machine word.
pub type Word = u64;

/// Encodes an `f64` as a word.
#[inline]
pub fn word_from_f64(d: f64) -> Word {
    d.to_bits()
}

/// Decodes an `f64` from a word.
#[inline]
pub fn f64_from_word(w: Word) -> f64 {
    f64::from_bits(w)
}

/// Encodes an `i32` as a (sign-extended) word.
#[inline]
pub fn word_from_i32(i: i32) -> Word {
    i64::from(i) as u64
}

/// Decodes an `i32` from a word.
#[inline]
pub fn i32_from_word(w: Word) -> i32 {
    w as i32
}

/// Unboxed argument/result types for typed fast-call natives (§6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastTy {
    /// Unboxed IEEE double.
    Double,
    /// Unboxed 32-bit integer.
    Int,
    /// String handle.
    Str,
    /// Object handle.
    Obj,
}

/// Typed fast-call annotation attached to a native function: when observed
/// argument types match `args`, the tracer emits a direct [`Helper`] call on
/// unboxed values, skipping boxed-array argument marshalling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastNative {
    /// Specialized helper implementing the native.
    pub helper: Helper,
    /// Required unboxed argument types; for method-style natives the
    /// receiver is `args[0]`.
    pub args: &'static [FastTy],
    /// Result type. For [`Helper::CharCodeAt`] the recorder additionally
    /// guards the `-1 = NaN` sentinel.
    pub ret: FastTy,
}

/// Identifies a runtime helper routine callable from compiled code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Helper {
    // -- double -> double math --
    /// `Math.sin`
    Sin,
    /// `Math.cos`
    Cos,
    /// `Math.tan`
    Tan,
    /// `Math.asin`
    Asin,
    /// `Math.acos`
    Acos,
    /// `Math.atan`
    Atan,
    /// `Math.exp`
    Exp,
    /// `Math.log`
    Log,
    /// `Math.sqrt`
    Sqrt,
    /// `Math.floor`
    Floor,
    /// `Math.ceil`
    Ceil,
    /// `Math.round`
    Round,
    /// `Math.abs` on doubles
    AbsD,
    // -- (double, double) -> double --
    /// `Math.atan2`
    Atan2,
    /// `Math.pow`
    Pow,
    /// `Math.min` (2-arg double case)
    MinD,
    /// `Math.max` (2-arg double case)
    MaxD,
    /// `%` on doubles (fmod)
    ModD,
    // -- soft-float (§5.1's soft-float forward filter targets: double
    //    arithmetic as out-of-line calls for FP-less ISAs) --
    /// Soft-float add: (double bits, double bits) -> double bits
    SoftAdd,
    /// Soft-float subtract.
    SoftSub,
    /// Soft-float multiply.
    SoftMul,
    /// Soft-float divide.
    SoftDiv,
    // -- misc --
    /// `Math.random`: () -> double
    Random,
    /// number (double bits) -> string handle. Allocates.
    NumberToString,
    /// int -> string handle. Allocates.
    IntToString,
    // -- strings --
    /// (str, str) -> str. Allocates.
    ConcatStrings,
    /// (str, str) -> 0/1 content equality
    StrEq,
    /// (str, str) -> -1/0/1 lexicographic compare
    StrCmp,
    /// (str, i32) -> code unit, or -1 for out-of-range (NaN in JS)
    CharCodeAt,
    /// (str, i32) -> str (empty when out of range). Allocates.
    CharAt,
    /// str -> i32 length
    StrLength,
    /// (str, str) -> i32 indexOf (-1 when absent)
    StrIndexOf,
    /// (str, i32, i32) -> str substring. Allocates.
    Substring,
    /// (i32 code) -> str. Allocates. (`String.fromCharCode`, 1-arg case)
    FromCharCode,
    /// (str) -> double bits: JS `ToNumber` on a string body. Pure.
    StrToNum,
    /// (str) -> str lower-cased. Allocates.
    ToLowerCase,
    /// (str) -> str upper-cased. Allocates.
    ToUpperCase,
    // -- arrays / objects --
    /// (obj, i32 index, boxed value) -> 1. The paper's `js_Array_set`.
    ArraySetElem,
    /// (obj, i32 index) -> boxed value (undefined when out of range)
    ArrayGetElem,
    /// obj -> i32 dense length
    ArrayLength,
    /// (obj, boxed value) -> i32 new length (`Array.push`, 1-arg case)
    ArrayPush,
    /// obj -> boxed value (`Array.pop`)
    ArrayPop,
    /// (i32 len) -> obj handle. Allocates.
    NewArray,
    /// (obj proto handle or NO_PROTO) -> obj handle. Allocates.
    NewObject,
    /// (obj, u32 slot) -> boxed value from the shape-resolved slot
    LoadSlot,
    /// (obj, u32 slot, boxed value) -> 0 store into an existing slot
    StoreSlot,
    /// (obj, u32 sym, boxed value) -> 0 full property store (may transition
    /// the object's shape)
    SetPropSlow,
    // -- boxing --
    /// (double bits) -> boxed number value. Allocates when non-integral.
    BoxDouble,
    /// (i32) -> boxed number value. Allocates when outside the i31 range.
    BoxInt,
    // -- generic dynamic-typed operations (the method JIT's bread and
    //    butter; boxed words in and out) --
    /// `+`
    AddAny,
    /// binary `-`
    SubAny,
    /// `*`
    MulAny,
    /// `/`
    DivAny,
    /// `%`
    ModAny,
    /// unary `-`
    NegAny,
    /// `&`
    BitAndAny,
    /// `|`
    BitOrAny,
    /// `^`
    BitXorAny,
    /// `<<`
    ShlAny,
    /// `>>`
    ShrAny,
    /// `>>>`
    UShrAny,
    /// `~`
    BitNotAny,
    /// `<`
    LtAny,
    /// `<=`
    LeAny,
    /// `>`
    GtAny,
    /// `>=`
    GeAny,
    /// `==`
    EqAny,
    /// `!=`
    NeAny,
    /// `===`
    StrictEqAny,
    /// `!==`
    StrictNeAny,
    /// `!` -> boxed bool
    NotAny,
    /// boxed -> 0/1 truthiness
    TruthyAny,
    /// boxed -> string handle of `typeof`
    TypeofAny,
    /// (boxed base, u32 sym) -> boxed value
    GetPropAny,
    /// (boxed base, u32 sym, boxed value) -> 0
    SetPropAny,
    /// (boxed base, boxed index) -> boxed value
    GetElemAny,
    /// (boxed base, boxed index, boxed value) -> 0
    SetElemAny,
    /// Call a registered native with boxed args: (native id, argc, args...)
    CallNative(NativeId),
}

/// Sentinel "no prototype" handle argument for [`Helper::NewObject`].
pub const NO_PROTO: Word = u64::MAX;

#[inline]
fn obj(w: Word) -> ObjectId {
    ObjectId(w as u32)
}

#[inline]
fn strid(w: Word) -> StringId {
    StringId(w as u32)
}

#[inline]
fn boxed(w: Word) -> Value {
    Value::from_raw(w)
}

fn maybe_defer_gc(realm: &mut Realm) {
    if realm.heap.should_collect() {
        // On-trace allocation: defer collection to the next safe point
        // (trace loop edge or exit) because roots in machine registers are
        // not enumerable here.
        realm.heap.gc_pending = true;
    }
}

/// Invokes helper `h` with raw `args`.
///
/// # Errors
///
/// Propagates guest [`RuntimeError`]s (e.g. type errors raised by generic
/// operations on behalf of the method JIT). Compiled traces only call
/// helpers whose error paths were guarded away during recording, so an
/// error from trace execution aborts the whole trace run.
pub fn call_helper(realm: &mut Realm, h: Helper, args: &[Word]) -> Result<Word, RuntimeError> {
    let w = |v: Value| v.raw();
    // String-producing helpers return raw handles (the trace convention),
    // not boxed words.
    let hs = |v: Value| u64::from(v.as_string().expect("string result").0);
    let r = match h {
        Helper::Sin => word_from_f64(f64_from_word(args[0]).sin()),
        Helper::Cos => word_from_f64(f64_from_word(args[0]).cos()),
        Helper::Tan => word_from_f64(f64_from_word(args[0]).tan()),
        Helper::Asin => word_from_f64(f64_from_word(args[0]).asin()),
        Helper::Acos => word_from_f64(f64_from_word(args[0]).acos()),
        Helper::Atan => word_from_f64(f64_from_word(args[0]).atan()),
        Helper::Exp => word_from_f64(f64_from_word(args[0]).exp()),
        Helper::Log => word_from_f64(f64_from_word(args[0]).ln()),
        Helper::Sqrt => word_from_f64(f64_from_word(args[0]).sqrt()),
        Helper::Floor => word_from_f64(f64_from_word(args[0]).floor()),
        Helper::Ceil => word_from_f64(f64_from_word(args[0]).ceil()),
        Helper::Round => {
            // JS rounds half-up (towards +inf), unlike Rust's round.
            let d = f64_from_word(args[0]);
            word_from_f64((d + 0.5).floor())
        }
        Helper::AbsD => word_from_f64(f64_from_word(args[0]).abs()),
        Helper::Atan2 => word_from_f64(f64_from_word(args[0]).atan2(f64_from_word(args[1]))),
        Helper::Pow => word_from_f64(f64_from_word(args[0]).powf(f64_from_word(args[1]))),
        Helper::MinD => {
            let (a, b) = (f64_from_word(args[0]), f64_from_word(args[1]));
            word_from_f64(if a.is_nan() || b.is_nan() {
                f64::NAN
            } else if a < b {
                a
            } else {
                b
            })
        }
        Helper::MaxD => {
            let (a, b) = (f64_from_word(args[0]), f64_from_word(args[1]));
            word_from_f64(if a.is_nan() || b.is_nan() {
                f64::NAN
            } else if a > b {
                a
            } else {
                b
            })
        }
        Helper::ModD => word_from_f64(f64_from_word(args[0]) % f64_from_word(args[1])),
        Helper::SoftAdd => word_from_f64(f64_from_word(args[0]) + f64_from_word(args[1])),
        Helper::SoftSub => word_from_f64(f64_from_word(args[0]) - f64_from_word(args[1])),
        Helper::SoftMul => word_from_f64(f64_from_word(args[0]) * f64_from_word(args[1])),
        Helper::SoftDiv => word_from_f64(f64_from_word(args[0]) / f64_from_word(args[1])),
        Helper::Random => word_from_f64(realm.next_random()),
        Helper::NumberToString => {
            let s = ops::format_number(f64_from_word(args[0]));
            let v = realm.heap.alloc_string(&s);
            maybe_defer_gc(realm);
            hs(v)
        }
        Helper::IntToString => {
            let s = i32_from_word(args[0]).to_string();
            let v = realm.heap.alloc_string(&s);
            maybe_defer_gc(realm);
            hs(v)
        }
        Helper::ConcatStrings => {
            let a = realm.heap.string(strid(args[0])).to_vec();
            let b = realm.heap.string(strid(args[1]));
            let mut out = a;
            out.extend_from_slice(b);
            let v = realm.heap.alloc_string_bytes(out);
            maybe_defer_gc(realm);
            hs(v)
        }
        Helper::StrEq => {
            let eq = realm.heap.string(strid(args[0])) == realm.heap.string(strid(args[1]));
            word_from_i32(i32::from(eq))
        }
        Helper::StrCmp => {
            let a = realm.heap.string(strid(args[0]));
            let b = realm.heap.string(strid(args[1]));
            word_from_i32(match a.cmp(b) {
                std::cmp::Ordering::Less => -1,
                std::cmp::Ordering::Equal => 0,
                std::cmp::Ordering::Greater => 1,
            })
        }
        Helper::CharCodeAt => {
            let s = realm.heap.string(strid(args[0]));
            let i = i32_from_word(args[1]);
            let code =
                if i >= 0 { s.get(i as usize).map(|&b| i32::from(b)) } else { None };
            word_from_i32(code.unwrap_or(-1))
        }
        Helper::CharAt => {
            let s = realm.heap.string(strid(args[0]));
            let i = i32_from_word(args[1]);
            let bytes: Vec<u8> = if i >= 0 {
                s.get(i as usize).map(|&b| vec![b]).unwrap_or_default()
            } else {
                Vec::new()
            };
            let v = realm.heap.alloc_string_bytes(bytes);
            maybe_defer_gc(realm);
            hs(v)
        }
        Helper::StrLength => word_from_i32(realm.heap.string(strid(args[0])).len() as i32),
        Helper::StrIndexOf => {
            let hay = realm.heap.string(strid(args[0]));
            let needle = realm.heap.string(strid(args[1]));
            let pos = find_sub(hay, needle).map(|p| p as i32).unwrap_or(-1);
            word_from_i32(pos)
        }
        Helper::Substring => {
            let s = realm.heap.string(strid(args[0]));
            let len = s.len() as i32;
            let a = i32_from_word(args[1]).clamp(0, len);
            let b = i32_from_word(args[2]).clamp(0, len);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let bytes = s[lo as usize..hi as usize].to_vec();
            let v = realm.heap.alloc_string_bytes(bytes);
            maybe_defer_gc(realm);
            hs(v)
        }
        Helper::FromCharCode => {
            let c = (i32_from_word(args[0]) & 0xFF) as u8;
            let v = realm.heap.alloc_string_bytes(vec![c]);
            maybe_defer_gc(realm);
            hs(v)
        }
        Helper::StrToNum => {
            word_from_f64(ops::parse_number(realm.heap.string(strid(args[0]))))
        }
        Helper::ToLowerCase => {
            let bytes: Vec<u8> =
                realm.heap.string(strid(args[0])).iter().map(|b| b.to_ascii_lowercase()).collect();
            let v = realm.heap.alloc_string_bytes(bytes);
            maybe_defer_gc(realm);
            hs(v)
        }
        Helper::ToUpperCase => {
            let bytes: Vec<u8> =
                realm.heap.string(strid(args[0])).iter().map(|b| b.to_ascii_uppercase()).collect();
            let v = realm.heap.alloc_string_bytes(bytes);
            maybe_defer_gc(realm);
            hs(v)
        }
        Helper::ArraySetElem => {
            let id = obj(args[0]);
            let i = i32_from_word(args[1]);
            if i < 0 {
                return Err(RuntimeError::RangeError("negative array index".into()));
            }
            realm.heap.object_mut(id).set_element(i as u32, boxed(args[2]));
            maybe_defer_gc(realm);
            word_from_i32(1)
        }
        Helper::ArrayGetElem => {
            let id = obj(args[0]);
            let i = i32_from_word(args[1]);
            let v = if i >= 0 { realm.heap.object(id).element(i as u32) } else { Value::UNDEFINED };
            w(v)
        }
        Helper::ArrayLength => {
            word_from_i32(realm.heap.object(obj(args[0])).array_length() as i32)
        }
        Helper::ArrayPush => {
            let id = obj(args[0]);
            let o = realm.heap.object_mut(id);
            o.elements.push(boxed(args[1]));
            let len = o.elements.len() as i32;
            maybe_defer_gc(realm);
            word_from_i32(len)
        }
        Helper::ArrayPop => {
            let id = obj(args[0]);
            w(realm.heap.object_mut(id).elements.pop().unwrap_or(Value::UNDEFINED))
        }
        Helper::NewArray => {
            let len = i32_from_word(args[0]).max(0) as usize;
            let id = realm.new_array(len);
            maybe_defer_gc(realm);
            u64::from(id.0)
        }
        Helper::NewObject => {
            let proto = if args[0] == NO_PROTO { realm.object_proto } else { Some(obj(args[0])) };
            let id = realm.heap.alloc_object(crate::object::Object::new_plain(proto));
            maybe_defer_gc(realm);
            u64::from(id.0)
        }
        Helper::LoadSlot => {
            let id = obj(args[0]);
            w(realm.heap.object(id).slots[args[1] as u32 as usize])
        }
        Helper::StoreSlot => {
            let id = obj(args[0]);
            realm.heap.object_mut(id).slots[args[1] as u32 as usize] = boxed(args[2]);
            0
        }
        Helper::SetPropSlow => {
            let id = obj(args[0]);
            realm.set_prop(Value::new_object(id), Sym(args[1] as u32), boxed(args[2]))?;
            maybe_defer_gc(realm);
            0
        }
        Helper::BoxDouble => {
            let v = realm.heap.number(f64_from_word(args[0]));
            maybe_defer_gc(realm);
            w(v)
        }
        Helper::BoxInt => {
            let v = realm.heap.number_i32(i32_from_word(args[0]));
            maybe_defer_gc(realm);
            w(v)
        }
        Helper::AddAny => w(ops::add_values(realm, boxed(args[0]), boxed(args[1]))?),
        Helper::SubAny => w(ops::sub_values(realm, boxed(args[0]), boxed(args[1]))?),
        Helper::MulAny => w(ops::mul_values(realm, boxed(args[0]), boxed(args[1]))?),
        Helper::DivAny => w(ops::div_values(realm, boxed(args[0]), boxed(args[1]))?),
        Helper::ModAny => w(ops::mod_values(realm, boxed(args[0]), boxed(args[1]))?),
        Helper::NegAny => w(ops::neg_value(realm, boxed(args[0]))?),
        Helper::BitAndAny => {
            w(ops::bit_op(realm, ops::BitOp::And, boxed(args[0]), boxed(args[1]))?)
        }
        Helper::BitOrAny => w(ops::bit_op(realm, ops::BitOp::Or, boxed(args[0]), boxed(args[1]))?),
        Helper::BitXorAny => {
            w(ops::bit_op(realm, ops::BitOp::Xor, boxed(args[0]), boxed(args[1]))?)
        }
        Helper::ShlAny => w(ops::bit_op(realm, ops::BitOp::Shl, boxed(args[0]), boxed(args[1]))?),
        Helper::ShrAny => w(ops::bit_op(realm, ops::BitOp::Shr, boxed(args[0]), boxed(args[1]))?),
        Helper::UShrAny => w(ops::bit_op(realm, ops::BitOp::UShr, boxed(args[0]), boxed(args[1]))?),
        Helper::BitNotAny => w(ops::bitnot_value(realm, boxed(args[0]))?),
        Helper::LtAny => w(ops::rel_op(realm, ops::RelOp::Lt, boxed(args[0]), boxed(args[1]))?),
        Helper::LeAny => w(ops::rel_op(realm, ops::RelOp::Le, boxed(args[0]), boxed(args[1]))?),
        Helper::GtAny => w(ops::rel_op(realm, ops::RelOp::Gt, boxed(args[0]), boxed(args[1]))?),
        Helper::GeAny => w(ops::rel_op(realm, ops::RelOp::Ge, boxed(args[0]), boxed(args[1]))?),
        Helper::EqAny => w(Value::new_bool(ops::loose_eq(realm, boxed(args[0]), boxed(args[1])))),
        Helper::NeAny => w(Value::new_bool(!ops::loose_eq(realm, boxed(args[0]), boxed(args[1])))),
        Helper::StrictEqAny => {
            w(Value::new_bool(ops::strict_eq(realm, boxed(args[0]), boxed(args[1]))))
        }
        Helper::StrictNeAny => {
            w(Value::new_bool(!ops::strict_eq(realm, boxed(args[0]), boxed(args[1]))))
        }
        Helper::NotAny => w(Value::new_bool(!ops::truthy(realm, boxed(args[0])))),
        Helper::TruthyAny => word_from_i32(i32::from(ops::truthy(realm, boxed(args[0])))),
        Helper::TypeofAny => {
            let s = ops::typeof_str(realm, boxed(args[0]));
            let v = realm.heap.alloc_string(s);
            maybe_defer_gc(realm);
            w(v)
        }
        Helper::GetPropAny => w(realm.get_prop(boxed(args[0]), Sym(args[1] as u32))?),
        Helper::SetPropAny => {
            realm.set_prop(boxed(args[0]), Sym(args[1] as u32), boxed(args[2]))?;
            maybe_defer_gc(realm);
            0
        }
        Helper::GetElemAny => w(realm.get_elem(boxed(args[0]), boxed(args[1]))?),
        Helper::SetElemAny => {
            realm.set_elem(boxed(args[0]), boxed(args[1]), boxed(args[2]))?;
            maybe_defer_gc(realm);
            0
        }
        Helper::CallNative(id) => {
            let vals: Vec<Value> = args.iter().map(|&a| boxed(a)).collect();
            let effects = realm.natives[id.0 as usize].effects;
            let result = realm.call_native(id, &vals)?;
            if effects.may_reenter {
                // §6.5: the VM sets a flag whenever the interpreter is
                // reentered while a compiled trace is running; the trace
                // exits immediately after the call.
                realm.reentered_during_trace = true;
            }
            maybe_defer_gc(realm);
            w(result)
        }
    };
    Ok(r)
}

fn find_sub(hay: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() {
        return Some(0);
    }
    hay.windows(needle.len()).position(|win| win == needle)
}

/// True when the object's class word matches `Array` — the check behind the
/// paper's Figure 3 class guard.
pub fn is_array(realm: &Realm, id: ObjectId) -> bool {
    realm.heap.object(id).class == ObjectClass::Array
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn math_helpers_round_trip_doubles() {
        let mut realm = Realm::new();
        let r = call_helper(&mut realm, Helper::Sqrt, &[word_from_f64(9.0)]).unwrap();
        assert_eq!(f64_from_word(r), 3.0);
        let r = call_helper(&mut realm, Helper::Pow, &[word_from_f64(2.0), word_from_f64(10.0)])
            .unwrap();
        assert_eq!(f64_from_word(r), 1024.0);
        // JS-style round: half goes towards +infinity.
        let r = call_helper(&mut realm, Helper::Round, &[word_from_f64(-0.5)]).unwrap();
        assert_eq!(f64_from_word(r), 0.0);
        let r = call_helper(&mut realm, Helper::Round, &[word_from_f64(2.5)]).unwrap();
        assert_eq!(f64_from_word(r), 3.0);
    }

    #[test]
    fn char_code_at_sentinel() {
        let mut realm = Realm::new();
        let s = realm.heap.alloc_string("AB");
        let sid = u64::from(s.as_string().unwrap().0);
        let r = call_helper(&mut realm, Helper::CharCodeAt, &[sid, word_from_i32(1)]).unwrap();
        assert_eq!(i32_from_word(r), 66);
        // Out of range returns the -1 sentinel the recorder guards
        // (String.charCodeAt "returns an integer or NaN", §6.3).
        let r = call_helper(&mut realm, Helper::CharCodeAt, &[sid, word_from_i32(7)]).unwrap();
        assert_eq!(i32_from_word(r), -1);
        let r = call_helper(&mut realm, Helper::CharCodeAt, &[sid, word_from_i32(-1)]).unwrap();
        assert_eq!(i32_from_word(r), -1);
    }

    #[test]
    fn array_set_elem_is_js_array_set() {
        let mut realm = Realm::new();
        let arr = realm.new_array(2);
        let ok = call_helper(
            &mut realm,
            Helper::ArraySetElem,
            &[u64::from(arr.0), word_from_i32(5), Value::FALSE.raw()],
        )
        .unwrap();
        assert_eq!(i32_from_word(ok), 1);
        assert_eq!(realm.heap.object(arr).array_length(), 6);
        assert_eq!(realm.heap.object(arr).element(5), Value::FALSE);
        let neg = call_helper(
            &mut realm,
            Helper::ArraySetElem,
            &[u64::from(arr.0), word_from_i32(-1), Value::FALSE.raw()],
        );
        assert!(neg.is_err());
    }

    #[test]
    fn generic_add_matches_ops() {
        let mut realm = Realm::new();
        let r = call_helper(
            &mut realm,
            Helper::AddAny,
            &[Value::new_int(2).raw(), Value::new_int(40).raw()],
        )
        .unwrap();
        assert_eq!(Value::from_raw(r).as_int(), Some(42));
    }

    #[test]
    fn box_helpers() {
        let mut realm = Realm::new();
        let r = call_helper(&mut realm, Helper::BoxInt, &[word_from_i32(7)]).unwrap();
        assert_eq!(Value::from_raw(r).as_int(), Some(7));
        let r = call_helper(&mut realm, Helper::BoxDouble, &[word_from_f64(2.5)]).unwrap();
        assert_eq!(realm.heap.number_value(Value::from_raw(r)), Some(2.5));
        // BoxDouble of an integral double re-compresses to the int rep.
        let r = call_helper(&mut realm, Helper::BoxDouble, &[word_from_f64(3.0)]).unwrap();
        assert_eq!(Value::from_raw(r).as_int(), Some(3));
    }

    #[test]
    fn allocation_past_threshold_defers_gc() {
        let mut realm = Realm::new();
        realm.heap.set_gc_threshold(1);
        let _ = call_helper(&mut realm, Helper::NewArray, &[word_from_i32(4)]).unwrap();
        let _ = call_helper(&mut realm, Helper::NewArray, &[word_from_i32(4)]).unwrap();
        assert!(realm.heap.gc_pending, "on-trace allocation defers GC via gc_pending");
    }

    #[test]
    fn substring_clamps_and_swaps() {
        let mut realm = Realm::new();
        let s = realm.heap.alloc_string("hello");
        let sid = u64::from(s.as_string().unwrap().0);
        // String-producing helpers return raw handles (trace convention).
        let r = call_helper(
            &mut realm,
            Helper::Substring,
            &[sid, word_from_i32(3), word_from_i32(1)],
        )
        .unwrap();
        assert_eq!(realm.heap.string(StringId(r as u32)), b"el");
        let r = call_helper(
            &mut realm,
            Helper::Substring,
            &[sid, word_from_i32(-5), word_from_i32(99)],
        )
        .unwrap();
        assert_eq!(realm.heap.string(StringId(r as u32)), b"hello");
    }

    #[test]
    fn concat_returns_a_handle() {
        let mut realm = Realm::new();
        let a = realm.heap.alloc_string("ab");
        let b = realm.heap.alloc_string("cd");
        let r = call_helper(
            &mut realm,
            Helper::ConcatStrings,
            &[
                u64::from(a.as_string().unwrap().0),
                u64::from(b.as_string().unwrap().0),
            ],
        )
        .unwrap();
        assert_eq!(realm.heap.string(StringId(r as u32)), b"abcd");
    }
}
