//! Heap objects: plain objects, dense arrays, and function objects.

use crate::shape::{ShapeId, EMPTY_SHAPE};
use crate::value::{ObjectId, Value};

/// Identifies what kind of object this is.
///
/// The paper's recorded LIR guards on the object class word (Figure 3 masks
/// out the class tag of `primes` and compares it with `Array`); our trace
/// guards compare this enum as a small integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ObjectClass {
    /// An ordinary object with named properties.
    Plain = 0,
    /// A dense array with `elements` storage and a `length`.
    Array = 1,
    /// A callable function object.
    Function = 2,
}

/// What a function object calls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A scripted function: index into the program's function table.
    Scripted(u32),
    /// A native (FFI) function: index into the realm's native registry.
    Native(u32),
}

/// A garbage-collected object.
///
/// Named properties live in `slots`, indexed through the object's
/// [`ShapeId`]; integer-indexed elements live in the dense `elements`
/// vector. This mirrors SpiderMonkey's representation that the paper's
/// property-access specialization exploits.
#[derive(Debug, Clone)]
pub struct Object {
    /// Object kind: plain, array, or function.
    pub class: ObjectClass,
    /// Structural description mapping property names to slot indexes.
    pub shape: ShapeId,
    /// Named property values, positioned by shape slot index.
    pub slots: Vec<Value>,
    /// Dense integer-indexed elements (arrays; holes are `undefined`).
    pub elements: Vec<Value>,
    /// Prototype link for property lookup.
    pub proto: Option<ObjectId>,
    /// Call target, for function objects.
    pub callee: Option<Callee>,
}

impl Object {
    /// Creates a plain object with the empty shape and no prototype.
    pub fn new_plain(proto: Option<ObjectId>) -> Object {
        Object {
            class: ObjectClass::Plain,
            shape: EMPTY_SHAPE,
            slots: Vec::new(),
            elements: Vec::new(),
            proto,
            callee: None,
        }
    }

    /// Creates an array with `len` elements initialized to `undefined`.
    pub fn new_array(len: usize, proto: Option<ObjectId>) -> Object {
        Object {
            class: ObjectClass::Array,
            shape: EMPTY_SHAPE,
            slots: Vec::new(),
            elements: vec![Value::UNDEFINED; len],
            proto,
            callee: None,
        }
    }

    /// Creates a function object wrapping `callee`.
    pub fn new_function(callee: Callee, proto: Option<ObjectId>) -> Object {
        Object {
            class: ObjectClass::Function,
            shape: EMPTY_SHAPE,
            slots: Vec::new(),
            elements: Vec::new(),
            proto,
            callee: Some(callee),
        }
    }

    /// Array length (number of dense elements).
    #[inline]
    pub fn array_length(&self) -> u32 {
        self.elements.len() as u32
    }

    /// Reads dense element `idx`, returning `undefined` for holes past the
    /// end (the interpreter's slow path; traces guard `idx < len` instead).
    #[inline]
    pub fn element(&self, idx: u32) -> Value {
        self.elements.get(idx as usize).copied().unwrap_or(Value::UNDEFINED)
    }

    /// Writes dense element `idx`, growing the array as needed.
    pub fn set_element(&mut self, idx: u32, v: Value) {
        let idx = idx as usize;
        if idx >= self.elements.len() {
            self.elements.resize(idx + 1, Value::UNDEFINED);
        }
        self.elements[idx] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_grows_on_store() {
        let mut a = Object::new_array(2, None);
        assert_eq!(a.array_length(), 2);
        a.set_element(5, Value::new_int(9));
        assert_eq!(a.array_length(), 6);
        assert_eq!(a.element(5).as_int(), Some(9));
        assert_eq!(a.element(3), Value::UNDEFINED);
        assert_eq!(a.element(100), Value::UNDEFINED);
    }

    #[test]
    fn constructors_set_class() {
        assert_eq!(Object::new_plain(None).class, ObjectClass::Plain);
        assert_eq!(Object::new_array(0, None).class, ObjectClass::Array);
        let f = Object::new_function(Callee::Scripted(3), None);
        assert_eq!(f.class, ObjectClass::Function);
        assert_eq!(f.callee, Some(Callee::Scripted(3)));
    }
}
