//! Runtime error values.

use std::fmt;

/// An error raised while executing guest-language code.
///
/// The guest language has no `try`/`catch` (the paper notes TraceMonkey
/// "does not currently support recording throwing and catching of arbitrary
/// exceptions"); errors unwind to the embedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Operation applied to a value of the wrong type.
    TypeError(String),
    /// Numeric or index argument out of range.
    RangeError(String),
    /// Unresolvable name.
    ReferenceError(String),
    /// Call of a non-function value.
    NotCallable(String),
    /// Execution was preempted via the interrupt flag (§6.4).
    Interrupted,
    /// The configured step budget was exhausted (used by the fuzzer to bound
    /// runaway programs).
    StepBudgetExhausted,
    /// Any other host-reported failure.
    Other(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::TypeError(m) => write!(f, "type error: {m}"),
            RuntimeError::RangeError(m) => write!(f, "range error: {m}"),
            RuntimeError::ReferenceError(m) => write!(f, "reference error: {m}"),
            RuntimeError::NotCallable(m) => write!(f, "not callable: {m}"),
            RuntimeError::Interrupted => write!(f, "interrupted"),
            RuntimeError::StepBudgetExhausted => write!(f, "step budget exhausted"),
            RuntimeError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = RuntimeError::TypeError("x is not a number".into());
        let s = e.to_string();
        assert!(s.starts_with("type error"));
        assert!(!format!("{e:?}").is_empty());
    }
}
