//! Per-site property inline caches.
//!
//! The paper's shape guards (§3.1, §6) presuppose that resolving a property
//! name against a shape is cheap at recording time and in the interpreter.
//! These monomorphic per-bytecode-site caches make that true: after one
//! slow-path lookup, a site remembers `(shape, slot)` and every later access
//! to a same-shaped object is two integer compares plus an indexed load —
//! the interpreter analogue of the trace's `GuardShape` + `LoadSlot` pair.
//!
//! One `PropIc` per `GetProp`/`SetProp`/`InitProp` bytecode site; engines
//! size their tables from [`Program::prop_sites`]. A cache entry is valid
//! only while its recorded [`ShapeTable::epoch`] matches — the epoch bumps
//! whenever a genuinely new shape is created and on GC, so stale entries
//! self-invalidate without any per-site bookkeeping.
//!
//! [`Program::prop_sites`]: ../../tm_bytecode/struct.Program.html
//! [`ShapeTable::epoch`]: crate::shape::ShapeTable::epoch

use crate::shape::ShapeId;

/// What a warmed inline cache knows how to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IcKind {
    /// Never filled (or explicitly reset).
    #[default]
    Empty,
    /// Read: the property lives in own slot `n` of objects with the cached
    /// shape.
    GetSlot(u32),
    /// Write to an existing own property in slot `n`.
    SetSlot(u32),
    /// Write that adds a property: objects with the cached shape transition
    /// to shape `to` and the value lands in (freshly pushed) slot `slot`.
    SetTransition {
        /// Destination shape after the transition.
        to: ShapeId,
        /// Slot index assigned to the new property.
        slot: u32,
    },
}

/// A monomorphic per-site property cache.
#[derive(Debug, Clone, Copy)]
pub struct PropIc {
    /// Receiver shape the entry is specialized to.
    pub shape: ShapeId,
    /// [`ShapeTable::epoch`](crate::shape::ShapeTable::epoch) at fill time.
    pub epoch: u32,
    /// The specialized action.
    pub kind: IcKind,
}

impl Default for PropIc {
    fn default() -> Self {
        // The tombstone shape id never matches a live object.
        PropIc { shape: ShapeId(u32::MAX), epoch: 0, kind: IcKind::Empty }
    }
}

impl PropIc {
    /// Whether this entry may be consulted for an object of `shape` under
    /// the table's current `epoch`.
    #[inline]
    pub fn matches(&self, shape: ShapeId, epoch: u32) -> bool {
        self.shape == shape && self.epoch == epoch
    }
}

/// Aggregate hit/miss counters for a table of [`PropIc`]s, mirrored into
/// `ProfileStats` by the engines (see `docs/DIAGNOSTICS.md`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IcStats {
    /// `GetProp` resolved by the site cache.
    pub get_hits: u64,
    /// `GetProp` that fell back to the realm lookup.
    pub get_misses: u64,
    /// `SetProp`/`InitProp` resolved by the site cache.
    pub set_hits: u64,
    /// `SetProp`/`InitProp` that fell back to the realm lookup.
    pub set_misses: u64,
}

impl IcStats {
    /// Adds `other`'s counters into `self` (engine → profiler roll-up).
    pub fn absorb(&mut self, other: &IcStats) {
        self.get_hits += other.get_hits;
        self.get_misses += other.get_misses;
        self.set_hits += other.set_hits;
        self.set_misses += other.set_misses;
    }

    /// Total lookups that missed the site caches.
    pub fn misses(&self) -> u64 {
        self.get_misses + self.set_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ic_never_matches() {
        let ic = PropIc::default();
        assert_eq!(ic.kind, IcKind::Empty);
        assert!(!ic.matches(ShapeId(0), 0));
        assert!(!ic.matches(ShapeId(u32::MAX - 1), 0));
    }

    #[test]
    fn matches_requires_shape_and_epoch() {
        let ic = PropIc { shape: ShapeId(7), epoch: 3, kind: IcKind::GetSlot(1) };
        assert!(ic.matches(ShapeId(7), 3));
        assert!(!ic.matches(ShapeId(7), 4));
        assert!(!ic.matches(ShapeId(8), 3));
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = IcStats { get_hits: 1, get_misses: 2, set_hits: 3, set_misses: 4 };
        let b = IcStats { get_hits: 10, get_misses: 20, set_hits: 30, set_misses: 40 };
        a.absorb(&b);
        assert_eq!(a, IcStats { get_hits: 11, get_misses: 22, set_hits: 33, set_misses: 44 });
        assert_eq!(a.misses(), 66);
    }
}
