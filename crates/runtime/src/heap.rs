//! The garbage-collected heap: arenas for objects, strings, and boxed
//! doubles, plus an exact, non-generational, stop-the-world mark-and-sweep
//! collector — the collector the paper describes for SpiderMonkey (§6).
//!
//! Handles ([`ObjectId`], [`StringId`], [`DoubleId`]) are indexes into
//! non-moving arenas with free lists, so compiled traces can keep unboxed
//! handles in registers across helper calls. Collection only happens at
//! explicit safe points: the interpreter's allocation sites, and — for
//! allocations performed *on trace* — deferred until the trace exits (the
//! trace sets [`Heap::gc_pending`]; the monitor collects once the full root
//! set is reconstructible). This mirrors TraceMonkey's constraint that
//! traces do not update interpreter state until exiting.

use crate::object::Object;
use crate::value::{DoubleId, ObjectId, StringId, Unpacked, Value};

/// Statistics about collector activity, for tests and the bench harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcStats {
    /// Number of collections performed.
    pub collections: u64,
    /// Objects freed over all collections.
    pub objects_freed: u64,
    /// Strings freed over all collections.
    pub strings_freed: u64,
    /// Boxed doubles freed over all collections.
    pub doubles_freed: u64,
}

/// The garbage-collected heap.
#[derive(Debug)]
pub struct Heap {
    objects: Vec<Option<Object>>,
    obj_free: Vec<u32>,
    strings: Vec<Option<Box<[u8]>>>,
    str_free: Vec<u32>,
    doubles: Vec<f64>,
    dbl_live: Vec<bool>,
    dbl_free: Vec<u32>,
    /// Allocations since the last collection (in arena cells).
    allocated_since_gc: usize,
    /// Allocation budget between collections.
    gc_threshold: usize,
    /// Set when an on-trace allocation crossed the GC threshold; the trace
    /// monitor collects at the next trace exit.
    pub gc_pending: bool,
    /// Extra roots pushed by code holding otherwise-unrooted intermediates.
    temp_roots: Vec<Value>,
    stats: GcStats,
}

impl Default for Heap {
    fn default() -> Self {
        Heap::new()
    }
}

impl Heap {
    /// Default allocation budget between collections.
    pub const DEFAULT_GC_THRESHOLD: usize = 1 << 20;

    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap {
            objects: Vec::new(),
            obj_free: Vec::new(),
            strings: Vec::new(),
            str_free: Vec::new(),
            doubles: Vec::new(),
            dbl_live: Vec::new(),
            dbl_free: Vec::new(),
            allocated_since_gc: 0,
            gc_threshold: Heap::DEFAULT_GC_THRESHOLD,
            gc_pending: false,
            temp_roots: Vec::new(),
            stats: GcStats::default(),
        }
    }

    /// Sets the allocation budget between collections (useful to force
    /// frequent GC in tests).
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.gc_threshold = threshold.max(1);
    }

    /// Collector statistics so far.
    pub fn gc_stats(&self) -> GcStats {
        self.stats
    }

    /// True when enough allocation has happened that the caller should
    /// collect at the next safe point.
    #[inline]
    pub fn should_collect(&self) -> bool {
        self.allocated_since_gc >= self.gc_threshold
    }

    // ---- allocation ----

    /// Allocates `obj`, returning its handle.
    pub fn alloc_object(&mut self, obj: Object) -> ObjectId {
        self.allocated_since_gc += 1 + obj.slots.len() + obj.elements.len();
        if let Some(i) = self.obj_free.pop() {
            self.objects[i as usize] = Some(obj);
            ObjectId(i)
        } else {
            self.objects.push(Some(obj));
            ObjectId((self.objects.len() - 1) as u32)
        }
    }

    /// Allocates a string from UTF-8 text, returning a string value.
    ///
    /// Guest strings are sequences of latin-1 code units (like 2009-era JS
    /// engines' 8-bit string path); characters above U+00FF are replaced
    /// with `?`.
    pub fn alloc_string(&mut self, s: &str) -> Value {
        let bytes: Vec<u8> = s
            .chars()
            .map(|c| if (c as u32) <= 0xFF { c as u32 as u8 } else { b'?' })
            .collect();
        self.alloc_string_bytes(bytes)
    }

    /// Allocates a string from raw latin-1 code units.
    pub fn alloc_string_bytes(&mut self, bytes: impl Into<Box<[u8]>>) -> Value {
        let s = bytes.into();
        self.allocated_since_gc += 1 + s.len() / 8;
        let id = if let Some(i) = self.str_free.pop() {
            self.strings[i as usize] = Some(s);
            StringId(i)
        } else {
            self.strings.push(Some(s));
            StringId((self.strings.len() - 1) as u32)
        };
        Value::new_string(id)
    }

    /// Boxes a double on the heap, returning a double value.
    ///
    /// Prefer [`Heap::number`], which uses the inline integer representation
    /// whenever possible.
    pub fn alloc_double(&mut self, d: f64) -> Value {
        self.allocated_since_gc += 1;
        let id = if let Some(i) = self.dbl_free.pop() {
            self.doubles[i as usize] = d;
            self.dbl_live[i as usize] = true;
            DoubleId(i)
        } else {
            self.doubles.push(d);
            self.dbl_live.push(true);
            DoubleId((self.doubles.len() - 1) as u32)
        };
        Value::new_double(id)
    }

    /// Boxes a numeric result, using the inline 31-bit integer representation
    /// when the value is integral and in range (the representation
    /// preference of §3.1: "the interpreter uses integer representations as
    /// much as it can").
    pub fn number(&mut self, d: f64) -> Value {
        // -0.0 must stay a double: it is distinguishable via 1/x.
        if d == d.trunc() && !(d == 0.0 && d.is_sign_negative()) {
            if let Some(v) = Value::new_int_checked(d as i64) {
                return v;
            }
        }
        self.alloc_double(d)
    }

    /// Boxes an `i32` numeric result (inline when in the 31-bit range).
    pub fn number_i32(&mut self, i: i32) -> Value {
        Value::new_int_checked(i64::from(i)).unwrap_or_else(|| self.alloc_double(f64::from(i)))
    }

    /// Boxes an `i64` numeric result.
    pub fn number_i64(&mut self, i: i64) -> Value {
        Value::new_int_checked(i).unwrap_or_else(|| self.alloc_double(i as f64))
    }

    // ---- accessors ----

    /// Immutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (object was collected).
    #[inline]
    pub fn object(&self, id: ObjectId) -> &Object {
        self.objects[id.0 as usize].as_ref().expect("stale object handle")
    }

    /// Mutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale (object was collected).
    #[inline]
    pub fn object_mut(&mut self, id: ObjectId) -> &mut Object {
        self.objects[id.0 as usize].as_mut().expect("stale object handle")
    }

    /// The code units of a heap string.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    #[inline]
    pub fn string(&self, id: StringId) -> &[u8] {
        self.strings[id.0 as usize].as_deref().expect("stale string handle")
    }

    /// The text of a heap string, decoding latin-1 code units.
    pub fn string_text(&self, id: StringId) -> String {
        self.string(id).iter().map(|&b| b as char).collect()
    }

    /// The payload of a boxed double.
    #[inline]
    pub fn double(&self, id: DoubleId) -> f64 {
        self.doubles[id.0 as usize]
    }

    /// Numeric payload of a value known to be a number (inline int or boxed
    /// double); `None` otherwise.
    #[inline]
    pub fn number_value(&self, v: Value) -> Option<f64> {
        match v.unpack() {
            Unpacked::Int(i) => Some(f64::from(i)),
            Unpacked::Double(id) => Some(self.double(id)),
            _ => None,
        }
    }

    // ---- temporary roots ----

    /// Pushes a temporary root; pair with [`Heap::pop_temp_root`].
    pub fn push_temp_root(&mut self, v: Value) {
        self.temp_roots.push(v);
    }

    /// Pops the most recent temporary root.
    pub fn pop_temp_root(&mut self) {
        self.temp_roots.pop();
    }

    // ---- collection ----

    /// Runs a stop-the-world mark-and-sweep collection with the given roots
    /// (the caller supplies interpreter stacks, globals, and any trace
    /// activation record contents).
    pub fn collect(&mut self, roots: &[Value]) {
        let mut obj_marks = vec![false; self.objects.len()];
        let mut str_marks = vec![false; self.strings.len()];
        let mut dbl_marks = vec![false; self.doubles.len()];

        let mut work: Vec<Value> = Vec::with_capacity(roots.len() + self.temp_roots.len());
        work.extend_from_slice(roots);
        work.extend_from_slice(&self.temp_roots);

        while let Some(v) = work.pop() {
            match v.unpack() {
                Unpacked::Object(id) => {
                    let i = id.0 as usize;
                    if i >= obj_marks.len() || obj_marks[i] {
                        continue;
                    }
                    obj_marks[i] = true;
                    let obj = self.objects[i].as_ref().expect("marking stale object");
                    work.extend(obj.slots.iter().copied());
                    work.extend(obj.elements.iter().copied());
                    if let Some(proto) = obj.proto {
                        work.push(Value::new_object(proto));
                    }
                }
                Unpacked::String(id) => {
                    let i = id.0 as usize;
                    if i < str_marks.len() {
                        str_marks[i] = true;
                    }
                }
                Unpacked::Double(id) => {
                    let i = id.0 as usize;
                    if i < dbl_marks.len() {
                        dbl_marks[i] = true;
                    }
                }
                _ => {}
            }
        }

        // Sweep.
        for (i, cell) in self.objects.iter_mut().enumerate() {
            if cell.is_some() && !obj_marks[i] {
                *cell = None;
                self.obj_free.push(i as u32);
                self.stats.objects_freed += 1;
            }
        }
        for (i, cell) in self.strings.iter_mut().enumerate() {
            if cell.is_some() && !str_marks[i] {
                *cell = None;
                self.str_free.push(i as u32);
                self.stats.strings_freed += 1;
            }
        }
        for i in 0..self.doubles.len() {
            if self.dbl_live[i] && !dbl_marks[i] {
                self.dbl_live[i] = false;
                self.dbl_free.push(i as u32);
                self.stats.doubles_freed += 1;
            }
        }

        self.allocated_since_gc = 0;
        self.gc_pending = false;
        self.stats.collections += 1;
    }

    /// Number of live objects (diagnostic).
    pub fn live_objects(&self) -> usize {
        self.objects.iter().filter(|c| c.is_some()).count()
    }

    /// Number of live strings (diagnostic).
    pub fn live_strings(&self) -> usize {
        self.strings.iter().filter(|c| c.is_some()).count()
    }

    /// Number of live boxed doubles (diagnostic).
    pub fn live_doubles(&self) -> usize {
        self.dbl_live.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Object;

    #[test]
    fn number_prefers_int_representation() {
        let mut h = Heap::new();
        assert_eq!(h.number(42.0).as_int(), Some(42));
        assert_eq!(h.number(-7.0).as_int(), Some(-7));
        assert!(h.number(0.5).as_double_id().is_some());
        assert!(h.number(1e18).as_double_id().is_some());
        // -0.0 must be boxed to preserve its sign.
        let neg_zero = h.number(-0.0);
        let id = neg_zero.as_double_id().expect("-0.0 boxed");
        assert!(h.double(id).is_sign_negative());
        // 2^30 does not fit in i31.
        assert!(h.number(1073741824.0).as_double_id().is_some());
        assert_eq!(h.number(1073741823.0).as_int(), Some(1073741823));
    }

    #[test]
    fn collect_frees_unreachable() {
        let mut h = Heap::new();
        let keep = h.alloc_object(Object::new_plain(None));
        let _drop1 = h.alloc_object(Object::new_plain(None));
        let _drop2 = h.alloc_string("garbage");
        let kept_str = h.alloc_string("kept");
        h.object_mut(keep).slots.push(kept_str);

        h.collect(&[Value::new_object(keep)]);
        assert_eq!(h.live_objects(), 1);
        assert_eq!(h.live_strings(), 1);
        assert_eq!(h.gc_stats().collections, 1);
        assert_eq!(h.gc_stats().objects_freed, 1);
        // The kept string is still readable through the kept object.
        let s = h.object(keep).slots[0].as_string().unwrap();
        assert_eq!(h.string(s), b"kept");
    }

    #[test]
    fn collect_traverses_elements_and_proto() {
        let mut h = Heap::new();
        let proto = h.alloc_object(Object::new_plain(None));
        let arr = h.alloc_object(Object::new_array(1, Some(proto)));
        let elem = h.alloc_object(Object::new_plain(None));
        h.object_mut(arr).set_element(0, Value::new_object(elem));

        h.collect(&[Value::new_object(arr)]);
        assert_eq!(h.live_objects(), 3);
    }

    #[test]
    fn freed_cells_are_reused() {
        let mut h = Heap::new();
        let a = h.alloc_object(Object::new_plain(None));
        h.collect(&[]);
        assert_eq!(h.live_objects(), 0);
        let b = h.alloc_object(Object::new_plain(None));
        assert_eq!(a, b, "free list should reuse the slot");
    }

    #[test]
    fn temp_roots_protect_values() {
        let mut h = Heap::new();
        let s = h.alloc_string("precious");
        h.push_temp_root(s);
        h.collect(&[]);
        assert_eq!(h.live_strings(), 1);
        h.pop_temp_root();
        h.collect(&[]);
        assert_eq!(h.live_strings(), 0);
    }

    #[test]
    fn cycles_are_collected() {
        let mut h = Heap::new();
        let a = h.alloc_object(Object::new_plain(None));
        let b = h.alloc_object(Object::new_plain(None));
        h.object_mut(a).slots.push(Value::new_object(b));
        h.object_mut(b).slots.push(Value::new_object(a));
        h.collect(&[]);
        assert_eq!(h.live_objects(), 0, "mark-sweep reclaims cycles");
    }

    #[test]
    fn should_collect_after_threshold() {
        let mut h = Heap::new();
        h.set_gc_threshold(4);
        assert!(!h.should_collect());
        for _ in 0..4 {
            let _ = h.alloc_object(Object::new_plain(None));
        }
        assert!(h.should_collect());
        h.collect(&[]);
        assert!(!h.should_collect());
    }
}
