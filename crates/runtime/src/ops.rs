//! Operator semantics shared by every engine.
//!
//! The interpreter's generic slow paths, the method JIT's helper calls, and
//! the trace recorder's semantic model all route through these functions, so
//! the four engines in this repository are observably identical — the
//! property the paper's §6.3 calls "semantic equivalence" between the
//! recorder and the interpreter, which we get by construction.
//!
//! Semantics follow JavaScript with two documented deviations (no
//! `ToPrimitive` on objects in `==`/relational operators, and latin-1
//! strings); see DESIGN.md.

use crate::error::RuntimeError;
use crate::realm::Realm;
use crate::value::{Unpacked, Value};

/// JS `ToNumber`.
pub fn to_number(realm: &Realm, v: Value) -> f64 {
    match v.unpack() {
        Unpacked::Int(i) => f64::from(i),
        Unpacked::Double(id) => realm.heap.double(id),
        Unpacked::Bool(b) => {
            if b {
                1.0
            } else {
                0.0
            }
        }
        Unpacked::Null => 0.0,
        Unpacked::Undefined => f64::NAN,
        Unpacked::String(id) => parse_number(realm.heap.string(id)),
        Unpacked::Object(_) => f64::NAN,
    }
}

/// Parses a string body as a number the way JS `ToNumber` does (trimmed;
/// empty string is 0; decimal or hex literal; otherwise NaN).
pub fn parse_number(bytes: &[u8]) -> f64 {
    let text: String = bytes.iter().map(|&b| b as char).collect();
    let t = text.trim();
    if t.is_empty() {
        return 0.0;
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return match i64::from_str_radix(hex, 16) {
            Ok(v) => v as f64,
            Err(_) => f64::NAN,
        };
    }
    if t == "Infinity" || t == "+Infinity" {
        return f64::INFINITY;
    }
    if t == "-Infinity" {
        return f64::NEG_INFINITY;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

/// JS `ToInt32` (modular wrap of the double).
pub fn to_int32(realm: &Realm, v: Value) -> i32 {
    if let Some(i) = v.as_int() {
        return i;
    }
    double_to_int32(to_number(realm, v))
}

/// JS `ToInt32` on a raw double.
pub fn double_to_int32(d: f64) -> i32 {
    if !d.is_finite() || d == 0.0 {
        return 0;
    }
    let d = d.trunc();
    let m = d.rem_euclid(4294967296.0);
    let m = if m >= 2147483648.0 { m - 4294967296.0 } else { m };
    m as i32
}

/// JS `ToUint32` on a raw double.
pub fn double_to_uint32(d: f64) -> u32 {
    double_to_int32(d) as u32
}

/// JS truthiness.
pub fn truthy(realm: &Realm, v: Value) -> bool {
    match v.unpack() {
        Unpacked::Int(i) => i != 0,
        Unpacked::Double(id) => {
            let d = realm.heap.double(id);
            d != 0.0 && !d.is_nan()
        }
        Unpacked::Bool(b) => b,
        Unpacked::Null | Unpacked::Undefined => false,
        Unpacked::String(id) => !realm.heap.string(id).is_empty(),
        Unpacked::Object(_) => true,
    }
}

/// `typeof` result string.
pub fn typeof_str(realm: &Realm, v: Value) -> &'static str {
    match v.unpack() {
        Unpacked::Int(_) | Unpacked::Double(_) => "number",
        Unpacked::Bool(_) => "boolean",
        Unpacked::Null => "object",
        Unpacked::Undefined => "undefined",
        Unpacked::String(_) => "string",
        Unpacked::Object(id) => {
            if realm.heap.object(id).class == crate::object::ObjectClass::Function {
                "function"
            } else {
                "object"
            }
        }
    }
}

/// Formats a number the way JS `ToString` does for the common cases:
/// integral values print without a fractional part, specials print as
/// `NaN`/`Infinity`.
pub fn format_number(d: f64) -> String {
    if d.is_nan() {
        return "NaN".to_owned();
    }
    if d.is_infinite() {
        return if d > 0.0 { "Infinity".into() } else { "-Infinity".into() };
    }
    if d == 0.0 {
        return "0".to_owned();
    }
    if d == d.trunc() && d.abs() < 1e21 {
        return format!("{}", d as i64);
    }
    let s = format!("{d}");
    s
}

/// JS-style display string for any value (the interpreter's `ToString`).
pub fn to_display(realm: &mut Realm, v: Value) -> String {
    match v.unpack() {
        Unpacked::Int(i) => i.to_string(),
        Unpacked::Double(id) => format_number(realm.heap.double(id)),
        Unpacked::Bool(b) => b.to_string(),
        Unpacked::Null => "null".to_owned(),
        Unpacked::Undefined => "undefined".to_owned(),
        Unpacked::String(id) => realm.heap.string_text(id),
        Unpacked::Object(id) => {
            let obj = realm.heap.object(id);
            match obj.class {
                crate::object::ObjectClass::Array => {
                    let elems: Vec<Value> = obj.elements.clone();
                    let parts: Vec<String> = elems
                        .into_iter()
                        .map(|e| {
                            if e.is_null() || e.is_undefined() {
                                String::new()
                            } else {
                                to_display(realm, e)
                            }
                        })
                        .collect();
                    parts.join(",")
                }
                crate::object::ObjectClass::Function => "function".to_owned(),
                crate::object::ObjectClass::Plain => "[object Object]".to_owned(),
            }
        }
    }
}

/// `ToString` producing a guest string value.
pub fn to_string_value(realm: &mut Realm, v: Value) -> Value {
    if v.is_string() {
        return v;
    }
    let s = to_display(realm, v);
    realm.heap.alloc_string(&s)
}

/// The `+` operator: numeric addition or string concatenation.
pub fn add_values(realm: &mut Realm, a: Value, b: Value) -> Result<Value, RuntimeError> {
    // Integer fast path, escalating to double on 31-bit overflow — the
    // interpreter-side mirror of the trace's overflow guard (§3.1).
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        return Ok(realm.heap.number_i64(i64::from(x) + i64::from(y)));
    }
    if a.is_string() || b.is_string() {
        let sa = to_display(realm, a);
        let sb = to_display(realm, b);
        let mut bytes = Vec::with_capacity(sa.len() + sb.len());
        bytes.extend(sa.chars().map(|c| if (c as u32) <= 0xFF { c as u32 as u8 } else { b'?' }));
        bytes.extend(sb.chars().map(|c| if (c as u32) <= 0xFF { c as u32 as u8 } else { b'?' }));
        return Ok(realm.heap.alloc_string_bytes(bytes));
    }
    let x = to_number(realm, a);
    let y = to_number(realm, b);
    Ok(realm.heap.number(x + y))
}

/// The `-` operator.
pub fn sub_values(realm: &mut Realm, a: Value, b: Value) -> Result<Value, RuntimeError> {
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        return Ok(realm.heap.number_i64(i64::from(x) - i64::from(y)));
    }
    let x = to_number(realm, a);
    let y = to_number(realm, b);
    Ok(realm.heap.number(x - y))
}

/// The `*` operator.
pub fn mul_values(realm: &mut Realm, a: Value, b: Value) -> Result<Value, RuntimeError> {
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        let p = i64::from(x) * i64::from(y);
        // -0 results must take the double path: e.g. -1 * 0.
        if p != 0 || (x >= 0 && y >= 0) {
            return Ok(realm.heap.number_i64(p));
        }
    }
    let x = to_number(realm, a);
    let y = to_number(realm, b);
    Ok(realm.heap.number(x * y))
}

/// The `/` operator (always double semantics; `number()` re-compresses
/// integral results to the inline representation).
pub fn div_values(realm: &mut Realm, a: Value, b: Value) -> Result<Value, RuntimeError> {
    let x = to_number(realm, a);
    let y = to_number(realm, b);
    Ok(realm.heap.number(x / y))
}

/// The `%` operator (JS `fmod` semantics; sign of the dividend).
pub fn mod_values(realm: &mut Realm, a: Value, b: Value) -> Result<Value, RuntimeError> {
    if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
        if y != 0 && !(x < 0 && x % y == 0) {
            // Rust % matches JS sign-of-dividend semantics for integers,
            // but a zero result with negative dividend is -0 in JS.
            return Ok(Value::new_int(x % y));
        }
    }
    let x = to_number(realm, a);
    let y = to_number(realm, b);
    Ok(realm.heap.number(x % y))
}

/// Unary `-`.
pub fn neg_value(realm: &mut Realm, a: Value) -> Result<Value, RuntimeError> {
    if let Some(x) = a.as_int() {
        if x != 0 {
            return Ok(realm.heap.number_i64(-i64::from(x)));
        }
        // -0 must become a boxed double.
        return Ok(realm.heap.alloc_double(-0.0));
    }
    let x = to_number(realm, a);
    Ok(realm.heap.number(-x))
}

/// Bitwise binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitOp {
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
}

/// Applies a bitwise operator with JS `ToInt32`/`ToUint32` coercion.
pub fn bit_op(realm: &mut Realm, op: BitOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
    let x = to_int32(realm, a);
    let y = to_int32(realm, b);
    let r: i64 = match op {
        BitOp::And => i64::from(x & y),
        BitOp::Or => i64::from(x | y),
        BitOp::Xor => i64::from(x ^ y),
        BitOp::Shl => i64::from(x.wrapping_shl((y & 31) as u32)),
        BitOp::Shr => i64::from(x.wrapping_shr((y & 31) as u32)),
        BitOp::UShr => i64::from((x as u32).wrapping_shr((y & 31) as u32)),
    };
    Ok(realm.heap.number_i64(r))
}

/// Bitwise `~`.
pub fn bitnot_value(realm: &mut Realm, a: Value) -> Result<Value, RuntimeError> {
    let x = to_int32(realm, a);
    Ok(realm.heap.number_i64(i64::from(!x)))
}

/// Relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Applies a relational operator: lexicographic for two strings, numeric
/// otherwise (NaN compares false).
pub fn rel_op(realm: &mut Realm, op: RelOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
    if let (Some(sa), Some(sb)) = (a.as_string(), b.as_string()) {
        let (x, y) = (realm.heap.string(sa), realm.heap.string(sb));
        let r = match op {
            RelOp::Lt => x < y,
            RelOp::Le => x <= y,
            RelOp::Gt => x > y,
            RelOp::Ge => x >= y,
        };
        return Ok(Value::new_bool(r));
    }
    let x = to_number(realm, a);
    let y = to_number(realm, b);
    let r = match op {
        RelOp::Lt => x < y,
        RelOp::Le => x <= y,
        RelOp::Gt => x > y,
        RelOp::Ge => x >= y,
    };
    Ok(Value::new_bool(r))
}

/// Strict equality (`===`): numbers compare numerically across the int /
/// double representations, strings by content, objects by identity.
pub fn strict_eq(realm: &Realm, a: Value, b: Value) -> bool {
    if a == b {
        // Same word: equal unless NaN (a boxed NaN double equals itself by
        // word identity, which JS says is false).
        if let Some(id) = a.as_double_id() {
            return !realm.heap.double(id).is_nan();
        }
        return true;
    }
    match (a.unpack(), b.unpack()) {
        (Unpacked::Int(_), Unpacked::Int(_)) => false, // different words
        (Unpacked::Int(x), Unpacked::Double(yd)) => f64::from(x) == realm.heap.double(yd),
        (Unpacked::Double(xd), Unpacked::Int(y)) => realm.heap.double(xd) == f64::from(y),
        (Unpacked::Double(xd), Unpacked::Double(yd)) => {
            realm.heap.double(xd) == realm.heap.double(yd)
        }
        (Unpacked::String(xs), Unpacked::String(ys)) => {
            realm.heap.string(xs) == realm.heap.string(ys)
        }
        _ => false,
    }
}

/// Loose equality (`==`): like strict equality plus `null == undefined`,
/// number/string and boolean coercions. Objects compare by identity only
/// (no `ToPrimitive`; documented deviation).
pub fn loose_eq(realm: &Realm, a: Value, b: Value) -> bool {
    if strict_eq(realm, a, b) {
        return true;
    }
    match (a.unpack(), b.unpack()) {
        (Unpacked::Null, Unpacked::Undefined) | (Unpacked::Undefined, Unpacked::Null) => true,
        (Unpacked::Bool(x), _) => {
            loose_eq(realm, if x { Value::new_int(1) } else { Value::new_int(0) }, b)
        }
        (_, Unpacked::Bool(y)) => {
            loose_eq(realm, a, if y { Value::new_int(1) } else { Value::new_int(0) })
        }
        (Unpacked::String(_), Unpacked::Int(_) | Unpacked::Double(_))
        | (Unpacked::Int(_) | Unpacked::Double(_), Unpacked::String(_)) => {
            to_number(realm, a) == to_number(realm, b)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn realm() -> Realm {
        Realm::new()
    }

    #[test]
    fn add_ints_fast_path_and_overflow() {
        let mut r = realm();
        let v = add_values(&mut r, Value::new_int(2), Value::new_int(3)).unwrap();
        assert_eq!(v.as_int(), Some(5));
        // i31 overflow escalates to a boxed double.
        let big = Value::new_int(crate::value::INT_MAX as i32);
        let v = add_values(&mut r, big, Value::new_int(1)).unwrap();
        assert!(v.as_double_id().is_some());
        assert_eq!(r.heap.number_value(v), Some(1073741824.0));
    }

    #[test]
    fn add_concats_strings() {
        let mut r = realm();
        let s = r.heap.alloc_string("x=");
        let v = add_values(&mut r, s, Value::new_int(3)).unwrap();
        let sid = v.as_string().unwrap();
        assert_eq!(r.heap.string(sid), b"x=3");
    }

    #[test]
    fn div_produces_double_then_recompresses() {
        let mut r = realm();
        let v = div_values(&mut r, Value::new_int(6), Value::new_int(2)).unwrap();
        assert_eq!(v.as_int(), Some(3));
        let v = div_values(&mut r, Value::new_int(1), Value::new_int(2)).unwrap();
        assert_eq!(r.heap.number_value(v), Some(0.5));
        let v = div_values(&mut r, Value::new_int(1), Value::new_int(0)).unwrap();
        assert_eq!(r.heap.number_value(v), Some(f64::INFINITY));
    }

    #[test]
    fn mod_matches_js() {
        let mut r = realm();
        let v = mod_values(&mut r, Value::new_int(7), Value::new_int(3)).unwrap();
        assert_eq!(v.as_int(), Some(1));
        let v = mod_values(&mut r, Value::new_int(-7), Value::new_int(3)).unwrap();
        assert_eq!(v.as_int(), Some(-1));
        let v = mod_values(&mut r, Value::new_int(1), Value::new_int(0)).unwrap();
        assert!(r.heap.number_value(v).unwrap().is_nan());
    }

    #[test]
    fn mul_negative_zero() {
        let mut r = realm();
        let v = mul_values(&mut r, Value::new_int(-1), Value::new_int(0)).unwrap();
        let d = r.heap.number_value(v).unwrap();
        assert_eq!(d, 0.0);
        assert!(d.is_sign_negative(), "-1 * 0 must be -0");
    }

    #[test]
    fn bitops_coerce_to_int32() {
        let mut r = realm();
        let d = r.heap.alloc_double(4294967297.5); // ToInt32 -> 1
        let v = bit_op(&mut r, BitOp::And, d, Value::new_int(3)).unwrap();
        assert_eq!(v.as_int(), Some(1));
        let v = bit_op(&mut r, BitOp::Shl, Value::new_int(1), Value::new_int(30)).unwrap();
        // 2^30 exceeds i31: becomes a double numerically equal to 2^30.
        assert_eq!(r.heap.number_value(v), Some(1073741824.0));
        let v = bit_op(&mut r, BitOp::UShr, Value::new_int(-1), Value::new_int(0)).unwrap();
        assert_eq!(r.heap.number_value(v), Some(4294967295.0));
        let v = bitnot_value(&mut r, Value::new_int(0)).unwrap();
        assert_eq!(v.as_int(), Some(-1));
    }

    #[test]
    fn to_int32_wraps() {
        assert_eq!(double_to_int32(4294967296.0), 0);
        assert_eq!(double_to_int32(4294967297.0), 1);
        assert_eq!(double_to_int32(-1.0), -1);
        assert_eq!(double_to_int32(2147483648.0), -2147483648);
        assert_eq!(double_to_int32(f64::NAN), 0);
        assert_eq!(double_to_int32(f64::INFINITY), 0);
        assert_eq!(double_to_int32(3.7), 3);
        assert_eq!(double_to_int32(-3.7), -3);
    }

    #[test]
    fn relational_and_equality() {
        let mut r = realm();
        let lt = rel_op(&mut r, RelOp::Lt, Value::new_int(1), Value::new_int(2)).unwrap();
        assert_eq!(lt, Value::TRUE);
        let sa = r.heap.alloc_string("abc");
        let sb = r.heap.alloc_string("abd");
        let lt = rel_op(&mut r, RelOp::Lt, sa, sb).unwrap();
        assert_eq!(lt, Value::TRUE);

        // 1 === 1.0 across representations.
        let one_d = r.heap.alloc_double(1.0);
        assert!(strict_eq(&r, Value::new_int(1), one_d));
        // NaN !== NaN even for the same boxed double.
        let nan = r.heap.alloc_double(f64::NAN);
        assert!(!strict_eq(&r, nan, nan));
        // String content equality.
        let s1 = r.heap.alloc_string("xyz");
        let s2 = r.heap.alloc_string("xyz");
        assert!(strict_eq(&r, s1, s2));
        // Loose equality coercions.
        let five_s = r.heap.alloc_string("5");
        assert!(loose_eq(&r, five_s, Value::new_int(5)));
        assert!(loose_eq(&r, Value::NULL, Value::UNDEFINED));
        assert!(!strict_eq(&r, Value::NULL, Value::UNDEFINED));
        assert!(loose_eq(&r, Value::TRUE, Value::new_int(1)));
    }

    #[test]
    fn truthiness_table() {
        let mut r = realm();
        assert!(!truthy(&r, Value::new_int(0)));
        assert!(truthy(&r, Value::new_int(-1)));
        assert!(!truthy(&r, Value::FALSE));
        assert!(!truthy(&r, Value::NULL));
        assert!(!truthy(&r, Value::UNDEFINED));
        let nan = r.heap.alloc_double(f64::NAN);
        assert!(!truthy(&r, nan));
        let empty = r.heap.alloc_string("");
        assert!(!truthy(&r, empty));
        let s = r.heap.alloc_string("0");
        assert!(truthy(&r, s), "non-empty string '0' is truthy");
        let o = Value::new_object(r.new_plain_object());
        assert!(truthy(&r, o));
    }

    #[test]
    fn typeof_table() {
        let mut r = realm();
        assert_eq!(typeof_str(&r, Value::new_int(1)), "number");
        assert_eq!(typeof_str(&r, Value::TRUE), "boolean");
        assert_eq!(typeof_str(&r, Value::NULL), "object");
        assert_eq!(typeof_str(&r, Value::UNDEFINED), "undefined");
        let s = r.heap.alloc_string("s");
        assert_eq!(typeof_str(&r, s), "string");
        let o = Value::new_object(r.new_plain_object());
        assert_eq!(typeof_str(&r, o), "object");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(3.5), "3.5");
        assert_eq!(format_number(-0.0), "0");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(f64::INFINITY), "Infinity");
        assert_eq!(format_number(f64::NEG_INFINITY), "-Infinity");
        assert_eq!(format_number(1e6), "1000000");
    }

    #[test]
    fn parse_number_cases() {
        assert_eq!(parse_number(b"42"), 42.0);
        assert_eq!(parse_number(b"  3.5  "), 3.5);
        assert_eq!(parse_number(b""), 0.0);
        assert_eq!(parse_number(b"0x10"), 16.0);
        assert!(parse_number(b"zebra").is_nan());
        assert_eq!(parse_number(b"-Infinity"), f64::NEG_INFINITY);
    }

    #[test]
    fn to_display_objects() {
        let mut r = realm();
        let arr = r.new_array(3);
        r.heap.object_mut(arr).set_element(0, Value::new_int(1));
        r.heap.object_mut(arr).set_element(2, Value::new_int(3));
        assert_eq!(to_display(&mut r, Value::new_object(arr)), "1,,3");
        let o = Value::new_object(r.new_plain_object());
        assert_eq!(to_display(&mut r, o), "[object Object]");
    }
}
