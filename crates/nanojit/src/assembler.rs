//! LIR → virtual-ISA assembly with greedy register allocation (§5.2).
//!
//! The paper uses "a simple greedy register allocator that makes a single
//! backward pass over the trace", spilling the value whose last mention is
//! furthest in the past. We implement the same greedy policy as a forward
//! emission pass driven by a precomputed backward liveness pass (the two
//! passes the paper's pipeline structure prescribes): when no register is
//! free, the **oldest register-carried value** (least recently touched) is
//! spilled — the paper's "minimum vm" heuristic.

use tm_lir::{Lir, LirId, LirTrace};

use crate::machinst::{Fragment, MachInst, Reg, NREGS};

/// Assembles an optimized LIR trace into a fragment.
///
/// # Panics
///
/// Panics on malformed traces (operands referencing effect-only
/// instructions).
pub fn assemble(trace: &LirTrace) -> Fragment {
    let n = trace.code.len();

    // Backward pass: last use of every SSA value.
    let mut last_use: Vec<u32> = vec![0; n];
    let mut operands = Vec::with_capacity(4);
    for i in (0..n).rev() {
        operands.clear();
        trace.code[i].operands(&mut operands);
        for &op in &operands {
            if last_use[op as usize] == 0 {
                last_use[op as usize] = i as u32;
            }
        }
    }

    let mut asm = Assembler {
        code: Vec::with_capacity(n + 8),
        reg_of: vec![None; n],
        spill_of: vec![None; n],
        contents: [None; NREGS],
        last_touch: [0; NREGS],
        tick: 0,
        num_spills: 0,
        last_use,
    };

    for (i, inst) in trace.code.iter().enumerate() {
        asm.tick += 1;
        asm.lower(i as LirId, inst);
        // Free registers whose values die here.
        for r in 0..NREGS {
            if let Some(v) = asm.contents[r] {
                if asm.last_use[v as usize] <= i as u32 && v != i as LirId {
                    asm.contents[r] = None;
                    asm.reg_of[v as usize] = None;
                }
            }
        }
    }

    Fragment::new(asm.code, asm.num_spills, trace.num_exits as usize)
}

struct Assembler {
    code: Vec<MachInst>,
    reg_of: Vec<Option<Reg>>,
    spill_of: Vec<Option<u16>>,
    contents: [Option<LirId>; NREGS],
    last_touch: [u64; NREGS],
    tick: u64,
    num_spills: u16,
    last_use: Vec<u32>,
}

impl Assembler {
    /// Returns a register currently holding `v`, reloading from its spill
    /// slot if needed. `pinned` registers are not eviction candidates.
    fn use_reg(&mut self, v: LirId, pinned: &mut Vec<Reg>) -> Reg {
        if let Some(r) = self.reg_of[v as usize] {
            self.last_touch[r as usize] = self.tick;
            pinned.push(r);
            return r;
        }
        let r = self.alloc_reg(pinned);
        let slot = self.spill_of[v as usize]
            .expect("value neither in a register nor spilled — allocator invariant broken");
        self.code.push(MachInst::LoadSpill { d: r, slot });
        self.bind(v, r);
        pinned.push(r);
        r
    }

    /// Allocates a destination register for the value `v` being defined.
    fn def_reg(&mut self, v: LirId, pinned: &mut Vec<Reg>) -> Reg {
        let r = self.alloc_reg(pinned);
        self.bind(v, r);
        r
    }

    fn bind(&mut self, v: LirId, r: Reg) {
        debug_assert!(
            (r as usize) < NREGS,
            "allocator produced out-of-range register r{r} (NREGS = {NREGS})"
        );
        self.reg_of[v as usize] = Some(r);
        self.contents[r as usize] = Some(v);
        self.last_touch[r as usize] = self.tick;
    }

    /// Picks a free register, or evicts the oldest register-carried value
    /// (the paper's spill heuristic).
    fn alloc_reg(&mut self, pinned: &[Reg]) -> Reg {
        if let Some(r) = (0..NREGS as Reg).find(|r| {
            self.contents[*r as usize].is_none() && !pinned.contains(r)
        }) {
            return r;
        }
        let victim_reg = (0..NREGS as Reg)
            .filter(|r| !pinned.contains(r))
            .min_by_key(|&r| self.last_touch[r as usize])
            .expect("more pinned registers than NREGS");
        debug_assert!((victim_reg as usize) < NREGS);
        let victim = self.contents[victim_reg as usize].expect("occupied");
        // Spill only if the victim is still needed and not already saved.
        if self.spill_of[victim as usize].is_none() {
            let slot = self.num_spills;
            self.num_spills += 1;
            self.spill_of[victim as usize] = Some(slot);
            self.code.push(MachInst::StoreSpill { slot, s: victim_reg });
        }
        self.reg_of[victim as usize] = None;
        self.contents[victim_reg as usize] = None;
        victim_reg
    }

    #[allow(clippy::too_many_lines)]
    fn lower(&mut self, id: LirId, inst: &Lir) {
        use Lir::*;
        let mut pinned: Vec<Reg> = Vec::with_capacity(4);
        macro_rules! bin {
            ($mk:ident, $a:expr, $b:expr) => {{
                let a = self.use_reg(*$a, &mut pinned);
                let b = self.use_reg(*$b, &mut pinned);
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::$mk { d, a, b });
            }};
        }
        macro_rules! bin_chk {
            ($mk:ident, $a:expr, $b:expr, $e:expr) => {{
                let a = self.use_reg(*$a, &mut pinned);
                let b = self.use_reg(*$b, &mut pinned);
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::$mk { d, a, b, exit: $e.0 });
            }};
        }
        macro_rules! un {
            ($mk:ident, $a:expr) => {{
                let a = self.use_reg(*$a, &mut pinned);
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::$mk { d, a });
            }};
        }
        macro_rules! un_chk {
            ($mk:ident, $a:expr, $e:expr) => {{
                let a = self.use_reg(*$a, &mut pinned);
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::$mk { d, a, exit: $e.0 });
            }};
        }

        match inst {
            ConstI(v) => {
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::ConstW { d, w: i64::from(*v) as u64 });
            }
            ConstD(bits) => {
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::ConstW { d, w: *bits });
            }
            ConstObj(h) | ConstStr(h) => {
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::ConstW { d, w: u64::from(*h) });
            }
            ConstBool(v) => {
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::ConstW { d, w: u64::from(*v) });
            }
            ConstBoxed(w) => {
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::ConstW { d, w: *w });
            }
            Import { slot, .. } => {
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::ReadAr { d, slot: *slot });
            }
            WriteAr { slot, v } => {
                let s = self.use_reg(*v, &mut pinned);
                self.code.push(MachInst::WriteAr { slot: *slot, s });
            }
            AddI(a, b) => bin!(AddI, a, b),
            SubI(a, b) => bin!(SubI, a, b),
            MulI(a, b) => bin!(MulI, a, b),
            AndI(a, b) => bin!(AndI, a, b),
            OrI(a, b) => bin!(OrI, a, b),
            XorI(a, b) => bin!(XorI, a, b),
            ShlI(a, b) => bin!(ShlI, a, b),
            ShrI(a, b) => bin!(ShrI, a, b),
            UShrI(a, b) => bin!(UShrI, a, b),
            NotI(a) => un!(NotI, a),
            NegI(a) => un!(NegI, a),
            AddIChk(a, b, e) => bin_chk!(AddIChk, a, b, e),
            SubIChk(a, b, e) => bin_chk!(SubIChk, a, b, e),
            MulIChk(a, b, e) => bin_chk!(MulIChk, a, b, e),
            NegIChk(a, e) => un_chk!(NegIChk, a, e),
            ModIChk(a, b, e) => bin_chk!(ModIChk, a, b, e),
            ShlIChk(a, b, e) => bin_chk!(ShlIChk, a, b, e),
            UShrIChk(a, b, e) => bin_chk!(UShrIChk, a, b, e),
            AddD(a, b) => bin!(AddD, a, b),
            SubD(a, b) => bin!(SubD, a, b),
            MulD(a, b) => bin!(MulD, a, b),
            DivD(a, b) => bin!(DivD, a, b),
            ModD(a, b) => bin!(ModD, a, b),
            NegD(a) => un!(NegD, a),
            EqI(a, b) => bin!(EqI, a, b),
            LtI(a, b) => bin!(LtI, a, b),
            LeI(a, b) => bin!(LeI, a, b),
            GtI(a, b) => bin!(GtI, a, b),
            GeI(a, b) => bin!(GeI, a, b),
            EqD(a, b) => bin!(EqD, a, b),
            LtD(a, b) => bin!(LtD, a, b),
            LeD(a, b) => bin!(LeD, a, b),
            GtD(a, b) => bin!(GtD, a, b),
            GeD(a, b) => bin!(GeD, a, b),
            NotB(a) => un!(NotB, a),
            I2D(a) => un!(I2D, a),
            U2D(a) => un!(U2D, a),
            D2IChk(a, e) => un_chk!(D2IChk, a, e),
            D2I32(a) => un!(D2I32, a),
            ChkRangeI(a, e) => un_chk!(ChkRangeI, a, e),
            BoxI(a) => un!(BoxI, a),
            BoxD(a) => un!(BoxD, a),
            BoxB(a) => un!(BoxB, a),
            BoxObj(a) => un!(BoxObj, a),
            BoxStr(a) => un!(BoxStr, a),
            UnboxI(a, e) => un_chk!(UnboxI, a, e),
            UnboxD(a, e) => un_chk!(UnboxD, a, e),
            UnboxNumD(a, e) => un_chk!(UnboxNumD, a, e),
            UnboxObj(a, e) => un_chk!(UnboxObj, a, e),
            UnboxStr(a, e) => un_chk!(UnboxStr, a, e),
            UnboxBool(a, e) => un_chk!(UnboxBool, a, e),
            GuardTrue(a, e) => {
                let s = self.use_reg(*a, &mut pinned);
                self.code.push(MachInst::GuardTrue { s, exit: e.0 });
            }
            GuardFalse(a, e) => {
                let s = self.use_reg(*a, &mut pinned);
                self.code.push(MachInst::GuardFalse { s, exit: e.0 });
            }
            GuardShape { obj, shape, exit } => {
                let o = self.use_reg(*obj, &mut pinned);
                self.code.push(MachInst::GuardShape { obj: o, shape: *shape, exit: exit.0 });
            }
            GuardClass { obj, class, exit } => {
                let o = self.use_reg(*obj, &mut pinned);
                self.code.push(MachInst::GuardClass { obj: o, class: *class, exit: exit.0 });
            }
            GuardBoxedEq(a, w, e) => {
                let s = self.use_reg(*a, &mut pinned);
                self.code.push(MachInst::GuardBoxedEq { s, w: *w, exit: e.0 });
            }
            GuardBound { arr, idx, exit } => {
                let a = self.use_reg(*arr, &mut pinned);
                let i = self.use_reg(*idx, &mut pinned);
                self.code.push(MachInst::GuardBound { arr: a, idx: i, exit: exit.0 });
            }
            LoadSlot(o, slot) => {
                let o = self.use_reg(*o, &mut pinned);
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::LoadSlot { d, o, slot: *slot });
            }
            StoreSlot(o, slot, v) => {
                let o = self.use_reg(*o, &mut pinned);
                let s = self.use_reg(*v, &mut pinned);
                self.code.push(MachInst::StoreSlot { o, slot: *slot, s });
            }
            LoadProto(o) => {
                let o = self.use_reg(*o, &mut pinned);
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::LoadProto { d, o });
            }
            LoadElem(a, i) => {
                let a = self.use_reg(*a, &mut pinned);
                let i = self.use_reg(*i, &mut pinned);
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::LoadElem { d, a, i });
            }
            StoreElem(a, i, v) => {
                let a = self.use_reg(*a, &mut pinned);
                let i = self.use_reg(*i, &mut pinned);
                let s = self.use_reg(*v, &mut pinned);
                self.code.push(MachInst::StoreElem { a, i, s });
            }
            ArrayLen(a) => un!(ArrayLen, a),
            StrLen(a) => un!(StrLen, a),
            Call { helper, args, exit, .. } => {
                let regs: Vec<Reg> =
                    args.iter().map(|&a| self.use_reg(a, &mut pinned)).collect();
                let d = self.def_reg(id, &mut pinned);
                self.code.push(MachInst::CallHelper {
                    d,
                    helper: *helper,
                    args: regs.into_boxed_slice(),
                    exit: exit.0,
                });
            }
            CallTree { tree, exit } => {
                self.code.push(MachInst::CallTree { tree: *tree, exit: exit.0 });
            }
            LoopBack(e) => self.code.push(MachInst::LoopBack { exit: e.0 }),
            End(e) => self.code.push(MachInst::End { exit: e.0 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_lir::{ExitId, FilterOptions, LirBuffer, LirType};

    #[test]
    fn straight_line_assembly() {
        let mut b = LirBuffer::new(FilterOptions { fold: false, ..Default::default() });
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e = b.alloc_exit();
        let sum = b.emit(Lir::AddIChk(x, one, e));
        b.emit(Lir::WriteAr { slot: 0, v: sum });
        let le = b.alloc_exit();
        b.emit(Lir::LoopBack(le));
        let frag = assemble(b.trace());
        assert!(matches!(frag.code[0], MachInst::ReadAr { slot: 0, .. }));
        assert!(frag.code.iter().any(|i| matches!(i, MachInst::AddIChk { .. })));
        assert!(matches!(frag.code.last(), Some(MachInst::LoopBack { .. })));
        assert_eq!(frag.num_spills, 0);
        assert_eq!(frag.exit_targets.len(), 2);
    }

    #[test]
    fn spills_when_register_pressure_exceeds_nregs() {
        // Create NREGS+4 live values, then consume them in order — forces
        // the oldest-value spill heuristic to fire.
        let mut b = LirBuffer::new(FilterOptions {
            fold: false,
            cse: false,
            ..Default::default()
        });
        let n = NREGS + 4;
        let vals: Vec<_> = (0..n)
            .map(|i| b.emit(Lir::Import { slot: i as u16, ty: LirType::Int }))
            .collect();
        // Sum all of them pairwise, keeping everything live to the end.
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.emit(Lir::AddI(acc, v));
        }
        b.emit(Lir::WriteAr { slot: 0, v: acc });
        let le = b.alloc_exit();
        b.emit(Lir::LoopBack(le));
        let frag = assemble(b.trace());
        assert!(frag.num_spills > 0, "register pressure must cause spills");
        let stores = frag.code.iter().filter(|i| matches!(i, MachInst::StoreSpill { .. })).count();
        let loads = frag.code.iter().filter(|i| matches!(i, MachInst::LoadSpill { .. })).count();
        assert!(stores > 0 && loads > 0);
    }

    #[test]
    fn spilled_values_are_reloaded_correctly() {
        // Structural check: every LoadSpill slot was previously stored.
        let mut b = LirBuffer::new(FilterOptions { cse: false, fold: false, ..Default::default() });
        let n = NREGS + 8;
        let vals: Vec<_> = (0..n)
            .map(|i| b.emit(Lir::Import { slot: i as u16, ty: LirType::Int }))
            .collect();
        // Use them in reverse so early values must be reloaded late.
        let mut acc = vals[n - 1];
        for &v in vals.iter().rev().skip(1) {
            acc = b.emit(Lir::AddI(acc, v));
        }
        b.emit(Lir::WriteAr { slot: 0, v: acc });
        let le = b.alloc_exit();
        b.emit(Lir::LoopBack(le));
        let frag = assemble(b.trace());
        let mut stored = std::collections::HashSet::new();
        for inst in &frag.code {
            match inst {
                MachInst::StoreSpill { slot, .. } => {
                    stored.insert(*slot);
                }
                MachInst::LoadSpill { slot, .. } => {
                    assert!(stored.contains(slot), "reload of never-stored spill slot {slot}");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn exit_ids_preserved() {
        let mut b = LirBuffer::new(FilterOptions::default());
        let c = b.emit(Lir::Import { slot: 0, ty: LirType::Bool });
        let e0 = b.alloc_exit();
        let e1 = b.alloc_exit();
        b.emit(Lir::GuardTrue(c, e0));
        b.emit(Lir::GuardFalse(c, e1));
        let le = b.alloc_exit();
        b.emit(Lir::End(le));
        let frag = assemble(b.trace());
        assert!(frag.code.iter().any(|i| matches!(i, MachInst::GuardTrue { exit: 0, .. })));
        assert!(frag.code.iter().any(|i| matches!(i, MachInst::GuardFalse { exit: 1, .. })));
        let _ = ExitId(0);
    }
}
