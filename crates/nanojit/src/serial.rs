//! Binary serialization of compiled fragments (the persistent trace
//! cache's `tm-nanojit` layer; format spec in `docs/PERSISTENCE.md` §4).
//!
//! ## Design rules
//!
//! * **Exhaustive by construction.** The [`machinst_codec!`] table below
//!   names every [`MachInst`] variant with an explicit opcode byte; the
//!   generated encoder is an exhaustive `match`, so adding a variant
//!   without extending the table is a compile error — the codec cannot
//!   silently drop instructions.
//! * **Bit-exact round trips.** `decode(encode(f)) == f` for every
//!   well-formed fragment, and `encode(decode(bytes)) == bytes` for every
//!   accepted byte string (there are no redundant encodings). The
//!   round-trip property tests in `tests/persistence.rs` pin this over
//!   fuzzer-recorded trees.
//! * **Hostile input is rejected, never trusted.** Decoding validates
//!   opcode bytes, enum discriminants, and length prefixes; everything
//!   *semantic* (register ranges, exit-table coverage, terminator
//!   placement, stitch consistency) is deliberately left to
//!   `tm-verifier`, which every loaded fragment must pass before
//!   installation. The codec's job is only to guarantee that arbitrary
//!   bytes produce either `Err` or a structurally well-typed `Fragment`.
//!
//! Opcode bytes are part of the on-disk format: renumbering them is a
//! format-version bump (see `docs/PERSISTENCE.md` §7).

use crate::machinst::{ExitTarget, Fragment, FuseStats, MachInst, Reg, EXIT_UNSTITCHED};
use tm_lir::{AluOp, ChkOp, CmpOp};
use tm_runtime::{Helper, NativeId};
use tm_support::binio::{BinError, ByteReader, ByteWriter};

/// A field type that knows how to write itself to / read itself from the
/// cache byte stream. Implemented for exactly the types that occur as
/// [`MachInst`] fields.
pub trait Codec: Sized {
    /// Appends the encoded form to `w`.
    fn enc(&self, w: &mut ByteWriter);
    /// Decodes one value, validating discriminants and lengths.
    fn dec(r: &mut ByteReader) -> Result<Self, BinError>;
}

impl Codec for u8 {
    fn enc(&self, w: &mut ByteWriter) {
        w.u8(*self);
    }
    fn dec(r: &mut ByteReader) -> Result<u8, BinError> {
        r.u8()
    }
}

impl Codec for u16 {
    fn enc(&self, w: &mut ByteWriter) {
        w.u16(*self);
    }
    fn dec(r: &mut ByteReader) -> Result<u16, BinError> {
        r.u16()
    }
}

impl Codec for u32 {
    fn enc(&self, w: &mut ByteWriter) {
        w.u32(*self);
    }
    fn dec(r: &mut ByteReader) -> Result<u32, BinError> {
        r.u32()
    }
}

impl Codec for u64 {
    fn enc(&self, w: &mut ByteWriter) {
        w.u64(*self);
    }
    fn dec(r: &mut ByteReader) -> Result<u64, BinError> {
        r.u64()
    }
}

impl Codec for i32 {
    fn enc(&self, w: &mut ByteWriter) {
        w.i32(*self);
    }
    fn dec(r: &mut ByteReader) -> Result<i32, BinError> {
        r.i32()
    }
}

impl Codec for bool {
    fn enc(&self, w: &mut ByteWriter) {
        w.bool(*self);
    }
    fn dec(r: &mut ByteReader) -> Result<bool, BinError> {
        r.bool()
    }
}

impl Codec for Box<[Reg]> {
    fn enc(&self, w: &mut ByteWriter) {
        w.bytes_u32(self);
    }
    fn dec(r: &mut ByteReader) -> Result<Box<[Reg]>, BinError> {
        Ok(r.bytes_u32()?.into())
    }
}

/// Generates a `Codec` impl for a fieldless enum from an explicit
/// `discriminant => Variant` table (exhaustive encode match; decode
/// rejects unknown discriminants with [`BinError::BadTag`]).
macro_rules! enum_codec {
    ($ty:ident, $what:literal, { $($idx:literal => $name:ident),* $(,)? }) => {
        impl Codec for $ty {
            fn enc(&self, w: &mut ByteWriter) {
                w.u8(match self { $( $ty::$name => $idx, )* });
            }
            fn dec(r: &mut ByteReader) -> Result<$ty, BinError> {
                let at = r.pos();
                match r.u8()? {
                    $( $idx => Ok($ty::$name), )*
                    t => Err(BinError::BadTag { at, tag: u64::from(t), what: $what }),
                }
            }
        }
    };
}

enum_codec!(AluOp, "AluOp", {
    0 => Add, 1 => Sub, 2 => Mul, 3 => And, 4 => Or, 5 => Xor,
    6 => Shl, 7 => Shr, 8 => UShr,
});

enum_codec!(CmpOp, "CmpOp", {
    0 => Eq, 1 => Lt, 2 => Le, 3 => Gt, 4 => Ge,
});

enum_codec!(ChkOp, "ChkOp", {
    0 => Add, 1 => Sub, 2 => Mul, 3 => Shl, 4 => UShr,
});

/// [`Helper`] codec: fieldless variants get a one-byte index from the
/// table; `CallNative(id)` is `0xff` followed by the id. Exhaustive
/// encode match — a new helper variant fails to compile until it gets a
/// table entry (and a format-version bump).
macro_rules! helper_codec {
    ($( $idx:literal => $name:ident ),* $(,)?) => {
        impl Codec for Helper {
            fn enc(&self, w: &mut ByteWriter) {
                match self {
                    $( Helper::$name => w.u8($idx), )*
                    Helper::CallNative(id) => {
                        w.u8(0xff);
                        w.u32(id.0);
                    }
                }
            }
            fn dec(r: &mut ByteReader) -> Result<Helper, BinError> {
                let at = r.pos();
                match r.u8()? {
                    $( $idx => Ok(Helper::$name), )*
                    0xff => Ok(Helper::CallNative(NativeId(r.u32()?))),
                    t => Err(BinError::BadTag { at, tag: u64::from(t), what: "Helper" }),
                }
            }
        }
    };
}

helper_codec!(
    0 => Sin, 1 => Cos, 2 => Tan, 3 => Asin, 4 => Acos, 5 => Atan,
    6 => Exp, 7 => Log, 8 => Sqrt, 9 => Floor, 10 => Ceil, 11 => Round,
    12 => AbsD, 13 => Atan2, 14 => Pow, 15 => MinD, 16 => MaxD, 17 => ModD,
    18 => SoftAdd, 19 => SoftSub, 20 => SoftMul, 21 => SoftDiv, 22 => Random,
    23 => NumberToString, 24 => IntToString, 25 => ConcatStrings,
    26 => StrEq, 27 => StrCmp, 28 => CharCodeAt, 29 => CharAt,
    30 => StrLength, 31 => StrIndexOf, 32 => Substring, 33 => FromCharCode,
    34 => StrToNum, 35 => ToLowerCase, 36 => ToUpperCase,
    37 => ArraySetElem, 38 => ArrayGetElem, 39 => ArrayLength,
    40 => ArrayPush, 41 => ArrayPop, 42 => NewArray, 43 => NewObject,
    44 => LoadSlot, 45 => StoreSlot, 46 => SetPropSlow,
    47 => BoxDouble, 48 => BoxInt,
    49 => AddAny, 50 => SubAny, 51 => MulAny, 52 => DivAny, 53 => ModAny,
    54 => NegAny, 55 => BitAndAny, 56 => BitOrAny, 57 => BitXorAny,
    58 => ShlAny, 59 => ShrAny, 60 => UShrAny, 61 => BitNotAny,
    62 => LtAny, 63 => LeAny, 64 => GtAny, 65 => GeAny,
    66 => EqAny, 67 => NeAny, 68 => StrictEqAny, 69 => StrictNeAny,
    70 => NotAny, 71 => TruthyAny, 72 => TypeofAny,
    73 => GetPropAny, 74 => SetPropAny, 75 => GetElemAny, 76 => SetElemAny,
);

/// Generates [`encode_inst`]/[`decode_inst`] from the opcode table. Each
/// entry is `opcode Variant { field: Type, ... }`; the encoder is an
/// exhaustive match over [`MachInst`], the decoder dispatches on the
/// opcode byte and rejects unknown opcodes.
macro_rules! machinst_codec {
    ($( $op:literal $name:ident { $( $f:ident : $t:ty ),* $(,)? } )*) => {
        /// Appends the one-byte opcode and the fields of `inst` to `w`.
        pub fn encode_inst(inst: &MachInst, w: &mut ByteWriter) {
            match inst {
                $( MachInst::$name { $( $f ),* } => {
                    w.u8($op);
                    $( Codec::enc($f, w); )*
                } )*
            }
        }

        /// Decodes one instruction. Unknown opcodes and invalid enum
        /// discriminants are [`BinError::BadTag`].
        pub fn decode_inst(r: &mut ByteReader) -> Result<MachInst, BinError> {
            let at = r.pos();
            let op = r.u8()?;
            match op {
                $( $op => Ok(MachInst::$name { $( $f: <$t as Codec>::dec(r)? ),* }), )*
                t => Err(BinError::BadTag { at, tag: u64::from(t), what: "MachInst opcode" }),
            }
        }
    };
}

machinst_codec! {
    0x00 ConstW { d: Reg, w: u64 }
    0x01 Mov { d: Reg, s: Reg }
    0x02 LoadSpill { d: Reg, slot: u16 }
    0x03 StoreSpill { slot: u16, s: Reg }
    0x04 ReadAr { d: Reg, slot: u16 }
    0x05 WriteAr { slot: u16, s: Reg }
    0x06 AddI { d: Reg, a: Reg, b: Reg }
    0x07 SubI { d: Reg, a: Reg, b: Reg }
    0x08 MulI { d: Reg, a: Reg, b: Reg }
    0x09 AndI { d: Reg, a: Reg, b: Reg }
    0x0a OrI { d: Reg, a: Reg, b: Reg }
    0x0b XorI { d: Reg, a: Reg, b: Reg }
    0x0c ShlI { d: Reg, a: Reg, b: Reg }
    0x0d ShrI { d: Reg, a: Reg, b: Reg }
    0x0e UShrI { d: Reg, a: Reg, b: Reg }
    0x0f NotI { d: Reg, a: Reg }
    0x10 NegI { d: Reg, a: Reg }
    0x11 AddIChk { d: Reg, a: Reg, b: Reg, exit: u16 }
    0x12 SubIChk { d: Reg, a: Reg, b: Reg, exit: u16 }
    0x13 MulIChk { d: Reg, a: Reg, b: Reg, exit: u16 }
    0x14 NegIChk { d: Reg, a: Reg, exit: u16 }
    0x15 ModIChk { d: Reg, a: Reg, b: Reg, exit: u16 }
    0x16 ShlIChk { d: Reg, a: Reg, b: Reg, exit: u16 }
    0x17 UShrIChk { d: Reg, a: Reg, b: Reg, exit: u16 }
    0x18 AddD { d: Reg, a: Reg, b: Reg }
    0x19 SubD { d: Reg, a: Reg, b: Reg }
    0x1a MulD { d: Reg, a: Reg, b: Reg }
    0x1b DivD { d: Reg, a: Reg, b: Reg }
    0x1c ModD { d: Reg, a: Reg, b: Reg }
    0x1d NegD { d: Reg, a: Reg }
    0x1e EqI { d: Reg, a: Reg, b: Reg }
    0x1f LtI { d: Reg, a: Reg, b: Reg }
    0x20 LeI { d: Reg, a: Reg, b: Reg }
    0x21 GtI { d: Reg, a: Reg, b: Reg }
    0x22 GeI { d: Reg, a: Reg, b: Reg }
    0x23 EqD { d: Reg, a: Reg, b: Reg }
    0x24 LtD { d: Reg, a: Reg, b: Reg }
    0x25 LeD { d: Reg, a: Reg, b: Reg }
    0x26 GtD { d: Reg, a: Reg, b: Reg }
    0x27 GeD { d: Reg, a: Reg, b: Reg }
    0x28 NotB { d: Reg, a: Reg }
    0x29 I2D { d: Reg, a: Reg }
    0x2a U2D { d: Reg, a: Reg }
    0x2b D2IChk { d: Reg, a: Reg, exit: u16 }
    0x2c D2I32 { d: Reg, a: Reg }
    0x2d ChkRangeI { d: Reg, a: Reg, exit: u16 }
    0x2e BoxI { d: Reg, a: Reg }
    0x2f BoxD { d: Reg, a: Reg }
    0x30 BoxB { d: Reg, a: Reg }
    0x31 BoxObj { d: Reg, a: Reg }
    0x32 BoxStr { d: Reg, a: Reg }
    0x33 UnboxI { d: Reg, a: Reg, exit: u16 }
    0x34 UnboxD { d: Reg, a: Reg, exit: u16 }
    0x35 UnboxNumD { d: Reg, a: Reg, exit: u16 }
    0x36 UnboxObj { d: Reg, a: Reg, exit: u16 }
    0x37 UnboxStr { d: Reg, a: Reg, exit: u16 }
    0x38 UnboxBool { d: Reg, a: Reg, exit: u16 }
    0x39 GuardTrue { s: Reg, exit: u16 }
    0x3a GuardFalse { s: Reg, exit: u16 }
    0x3b GuardShape { obj: Reg, shape: u32, exit: u16 }
    0x3c GuardClass { obj: Reg, class: u8, exit: u16 }
    0x3d GuardBoxedEq { s: Reg, w: u64, exit: u16 }
    0x3e GuardBound { arr: Reg, idx: Reg, exit: u16 }
    0x3f LoadSlot { d: Reg, o: Reg, slot: u32 }
    0x40 StoreSlot { o: Reg, slot: u32, s: Reg }
    0x41 LoadProto { d: Reg, o: Reg }
    0x42 LoadElem { d: Reg, a: Reg, i: Reg }
    0x43 StoreElem { a: Reg, i: Reg, s: Reg }
    0x44 ArrayLen { d: Reg, a: Reg }
    0x45 StrLen { d: Reg, a: Reg }
    0x46 CallHelper { d: Reg, helper: Helper, args: Box<[Reg]>, exit: u16 }
    0x47 CallTree { tree: u32, exit: u16 }
    0x48 LoopBack { exit: u16 }
    0x49 End { exit: u16 }
    0x4a CmpBranchI { op: CmpOp, want: bool, a: Reg, b: Reg, exit: u16 }
    0x4b CmpBranchD { op: CmpOp, want: bool, a: Reg, b: Reg, exit: u16 }
    0x4c CmpBranchLoopI { op: CmpOp, want: bool, a: Reg, b: Reg, exit: u16, loop_exit: u16 }
    0x4d CmpBranchLoopD { op: CmpOp, want: bool, a: Reg, b: Reg, exit: u16, loop_exit: u16 }
    0x4e AluImmI { op: AluOp, d: Reg, a: Reg, imm: i32 }
    0x4f AluArI { op: AluOp, d: Reg, slot: u16, b: Reg }
    0x50 AluWrI { op: AluOp, d: Reg, a: Reg, b: Reg, slot: u16 }
    0x51 AluImmWrI { op: AluOp, d: Reg, a: Reg, imm: i32, slot: u16 }
    0x52 ChkAluImmI { op: ChkOp, d: Reg, a: Reg, imm: i32, exit: u16 }
    0x53 ChkAluWrI { op: ChkOp, d: Reg, a: Reg, b: Reg, exit: u16, slot: u16 }
    0x54 ChkAluImmWrI { op: ChkOp, d: Reg, a: Reg, imm: i32, exit: u16, slot: u16 }
    0x55 ChkAluImmWrLoopI { op: ChkOp, d: Reg, a: Reg, imm: i32, slot: u16, exit: u16, loop_exit: u16 }
    0x56 ConstWrAr { d: Reg, w: u64, slot: u16 }
    0x57 MovAr { d: Reg, src: u16, dst: u16 }
    0x58 WriteAr2 { slot_a: u16, s_a: Reg, slot_b: u16, s_b: Reg }
    0x59 WriteAr3 { slot_a: u16, s_a: Reg, slot_b: u16, s_b: Reg, slot_c: u16, s_c: Reg }
    0x5a AluArWrI { op: AluOp, d: Reg, slot_a: u16, b: Reg, slot_d: u16 }
    0x5b CmpImmI { op: CmpOp, d: Reg, a: Reg, imm: i32 }
    0x5c CmpWrI { op: CmpOp, d: Reg, a: Reg, b: Reg, slot: u16 }
    0x5d CmpWrD { op: CmpOp, d: Reg, a: Reg, b: Reg, slot: u16 }
    0x5e CmpImmWrI { op: CmpOp, d: Reg, a: Reg, imm: i32, slot: u16 }
    0x5f CmpBranchImmI { op: CmpOp, want: bool, a: Reg, imm: i32, exit: u16 }
    0x60 CmpWrBranchI { op: CmpOp, want: bool, d: Reg, a: Reg, b: Reg, slot: u16, exit: u16 }
    0x61 CmpWrBranchD { op: CmpOp, want: bool, d: Reg, a: Reg, b: Reg, slot: u16, exit: u16 }
    0x62 CmpImmWrBranchI { op: CmpOp, want: bool, d: Reg, a: Reg, imm: i32, slot: u16, exit: u16 }
}

/// Appends the encoded form of `frag` to `w` (PERSISTENCE.md §4:
/// instruction stream, spill count, exit-target table, fuse stats).
///
/// The `stitch` mirror is *not* written — it is redundant with
/// `exit_targets` and is rebuilt on decode, so a cache file cannot carry
/// an inconsistent pair.
pub fn encode_fragment(frag: &Fragment, w: &mut ByteWriter) {
    w.u32(frag.code.len() as u32);
    for inst in &frag.code {
        encode_inst(inst, w);
    }
    w.u16(frag.num_spills);
    w.u32(frag.exit_targets.len() as u32);
    for t in &frag.exit_targets {
        w.u32(match *t {
            ExitTarget::Return => EXIT_UNSTITCHED,
            ExitTarget::Fragment(idx) => idx,
        });
    }
    let fs = frag.fuse_stats;
    w.u32(fs.raw_insts);
    w.u32(fs.fused_insts);
    w.u32(fs.superinsts);
    w.u32(fs.dce_removed);
}

/// Decodes one fragment, rebuilding the `stitch` mirror from the
/// exit-target table. Structural validation only — callers must run
/// `tm-verifier` on the result before installing it.
pub fn decode_fragment(r: &mut ByteReader) -> Result<Fragment, BinError> {
    let n_code = r.seq_len(1)?;
    let mut code = Vec::with_capacity(n_code);
    for _ in 0..n_code {
        code.push(decode_inst(r)?);
    }
    let num_spills = r.u16()?;
    let n_exits = r.seq_len(4)?;
    let mut exit_targets = Vec::with_capacity(n_exits);
    let mut stitch = Vec::with_capacity(n_exits);
    for _ in 0..n_exits {
        let v = r.u32()?;
        exit_targets.push(if v == EXIT_UNSTITCHED {
            ExitTarget::Return
        } else {
            ExitTarget::Fragment(v)
        });
        stitch.push(v);
    }
    let fuse_stats = FuseStats {
        raw_insts: r.u32()?,
        fused_insts: r.u32()?,
        superinsts: r.u32()?,
        dce_removed: r.u32()?,
    };
    Ok(Fragment { code, num_spills, exit_targets, stitch, fuse_stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insts() -> Vec<MachInst> {
        use MachInst::*;
        vec![
            ConstW { d: 0, w: u64::MAX },
            Mov { d: 1, s: 0 },
            LoadSpill { d: 2, slot: 7 },
            StoreSpill { slot: 7, s: 2 },
            ReadAr { d: 3, slot: 1 },
            WriteAr { slot: 2, s: 3 },
            AddI { d: 0, a: 1, b: 2 },
            MulIChk { d: 0, a: 1, b: 2, exit: 4 },
            NegIChk { d: 5, a: 5, exit: 0 },
            DivD { d: 6, a: 7, b: 8 },
            GeD { d: 0, a: 1, b: 2 },
            D2IChk { d: 1, a: 2, exit: 9 },
            GuardShape { obj: 3, shape: 0xdead_beef, exit: 2 },
            GuardClass { obj: 3, class: 5, exit: 2 },
            GuardBoxedEq { s: 4, w: 0x8000_0000_0000_0001, exit: 3 },
            GuardBound { arr: 1, idx: 2, exit: 6 },
            LoadSlot { d: 0, o: 1, slot: 123_456 },
            StoreSlot { o: 1, slot: 3, s: 2 },
            CallHelper {
                d: 0,
                helper: Helper::StrToNum,
                args: vec![1, 2, 3].into(),
                exit: 1,
            },
            CallHelper {
                d: 1,
                helper: Helper::CallNative(NativeId(42)),
                args: Box::from([] as [Reg; 0]),
                exit: 0,
            },
            CallTree { tree: 17, exit: 5 },
            CmpBranchLoopD { op: CmpOp::Lt, want: true, a: 0, b: 1, exit: 2, loop_exit: 3 },
            AluImmI { op: AluOp::Xor, d: 0, a: 1, imm: -123 },
            ChkAluImmWrLoopI { op: ChkOp::Add, d: 0, a: 0, imm: 1, slot: 4, exit: 1, loop_exit: 2 },
            ConstWrAr { d: 2, w: 0x3ff0_0000_0000_0000, slot: 9 },
            MovAr { d: 1, src: 3, dst: 4 },
            WriteAr3 { slot_a: 0, s_a: 1, slot_b: 2, s_b: 3, slot_c: 4, s_c: 5 },
            AluArWrI { op: AluOp::UShr, d: 1, slot_a: 2, b: 3, slot_d: 4 },
            CmpImmWrBranchI { op: CmpOp::Ge, want: false, d: 0, a: 1, imm: 100, slot: 2, exit: 3 },
            End { exit: 0 },
        ]
    }

    fn sample_fragment() -> Fragment {
        let mut f = Fragment::new(sample_insts(), 3, 10);
        f.set_exit_target(4, ExitTarget::Fragment(2));
        f.set_exit_target(9, ExitTarget::Fragment(0));
        f.fuse_stats = FuseStats { raw_insts: 40, fused_insts: 30, superinsts: 6, dce_removed: 4 };
        f
    }

    #[test]
    fn inst_round_trip() {
        for inst in sample_insts() {
            let mut w = ByteWriter::new();
            encode_inst(&inst, &mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(decode_inst(&mut r).unwrap(), inst);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn fragment_round_trip_is_bit_exact() {
        let frag = sample_fragment();
        let mut w = ByteWriter::new();
        encode_fragment(&frag, &mut w);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        let back = decode_fragment(&mut r).unwrap();
        assert!(r.is_at_end());
        assert_eq!(back.code, frag.code);
        assert_eq!(back.num_spills, frag.num_spills);
        assert_eq!(back.exit_targets, frag.exit_targets);
        assert_eq!(back.stitch, frag.stitch);
        assert_eq!(back.fuse_stats, frag.fuse_stats);

        // Re-encoding the decoded fragment reproduces the bytes exactly.
        let mut w2 = ByteWriter::new();
        encode_fragment(&back, &mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut r = ByteReader::new(&[0xf0]);
        assert!(matches!(
            decode_inst(&mut r),
            Err(BinError::BadTag { what: "MachInst opcode", .. })
        ));
    }

    #[test]
    fn bad_enum_discriminants_rejected() {
        // CmpBranchI with an out-of-range CmpOp.
        let mut r = ByteReader::new(&[0x4a, 0x09]);
        assert!(matches!(decode_inst(&mut r), Err(BinError::BadTag { what: "CmpOp", .. })));
        // CallHelper with an unknown helper index (77 is past the table,
        // not the CallNative escape).
        let mut w = ByteWriter::new();
        w.u8(0x46); // CallHelper opcode
        w.u8(0); // d
        w.u8(77); // invalid helper
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(decode_inst(&mut r), Err(BinError::BadTag { what: "Helper", .. })));
    }

    #[test]
    fn every_truncation_of_a_fragment_fails_cleanly() {
        let frag = sample_fragment();
        let mut w = ByteWriter::new();
        encode_fragment(&frag, &mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                decode_fragment(&mut r).is_err(),
                "truncation at {cut}/{} decoded successfully",
                bytes.len()
            );
        }
    }

    #[test]
    fn stitch_mirror_rebuilt_from_exit_targets() {
        let frag = sample_fragment();
        let mut w = ByteWriter::new();
        encode_fragment(&frag, &mut w);
        let bytes = w.into_bytes();
        let back = decode_fragment(&mut ByteReader::new(&bytes)).unwrap();
        for (t, &s) in back.exit_targets.iter().zip(&back.stitch) {
            match t {
                ExitTarget::Return => assert_eq!(s, EXIT_UNSTITCHED),
                ExitTarget::Fragment(idx) => assert_eq!(s, *idx),
            }
        }
    }
}
