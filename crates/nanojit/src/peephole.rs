//! Peephole superinstruction fusion over assembled fragments.
//!
//! Runs between register allocation ([`crate::assembler::assemble`]) and
//! fragment installation. Three rewrites iterate to a fixpoint:
//!
//! 1. **Immediate folding** — an int ALU/checked op whose operand register
//!    provably holds a 32-bit constant (tracked forward from `ConstW`)
//!    becomes an immediate form (`AluImmI`/`ChkAluImmI`); the `ConstW`
//!    dies and is collected by pass 3.
//! 2. **Adjacent-pair fusion** — compare + guard → `CmpBranch*`,
//!    compare-branch + `LoopBack` → `CmpBranchLoop*` (the loop-edge
//!    triple), `ReadAr` + ALU → `AluArI`, and ALU/checked-ALU +
//!    `WriteAr` → `*WrI` forms.
//! 3. **Dead-code removal** — pure instructions whose destination register
//!    is never read again are deleted.
//!
//! Both the deadness scans and DCE rely on an invariant of assembled
//! fragments: **no register is live across the back edge or across a
//! stitched-fragment transfer** — all loop-carried and cross-fragment
//! state flows through the trace activation record, and every register
//! read is preceded by a write earlier in the same fragment. A
//! straight-line scan to the end of the fragment is therefore a complete
//! liveness analysis.
//!
//! The pass is semantics-preserving by construction: every fused form
//! performs exactly the reads, writes, checks and exits of the raw
//! sequence it replaces, in the same order ([`crate::machinst`] documents
//! each). `tm-verifier::verify_fragment` re-checks the structural
//! invariants after fusion.

use tm_lir::{AluOp, ChkOp, CmpOp};

use crate::machinst::{Fragment, FuseStats, MachInst, Reg, REG_FILE_WORDS, REG_MASK};

/// Fuses a fragment in place and fills in its [`FuseStats`].
pub fn fuse(mut frag: Fragment) -> Fragment {
    let raw_insts = frag.code.len() as u32;
    let mut dce_removed = 0;
    loop {
        let folded = fold_immediates(&mut frag.code);
        let paired = fuse_pairs(&mut frag.code);
        let removed = remove_dead(&mut frag.code);
        dce_removed += removed;
        if !folded && !paired && removed == 0 {
            break;
        }
    }
    frag.fuse_stats = FuseStats {
        raw_insts,
        fused_insts: frag.code.len() as u32,
        superinsts: frag.code.iter().filter(|i| i.is_fused()).count() as u32,
        dce_removed,
    };
    frag
}

fn reg_idx(r: Reg) -> usize {
    (r & REG_MASK) as usize
}

/// Whether `w` (a `ConstW` payload) is a sign-extended 32-bit integer,
/// i.e. usable verbatim as an `i32` immediate.
fn as_imm(w: u64) -> Option<i32> {
    let v = w as i32;
    if i64::from(v) as u64 == w {
        Some(v)
    } else {
        None
    }
}

/// True when register `r`'s current value is never read in `tail` (which
/// must be the rest of the fragment). Sound because no register is live
/// across the back edge or a stitched transfer.
fn reg_dead(tail: &[MachInst], r: Reg) -> bool {
    for inst in tail {
        let mut read = false;
        inst.for_each_src(|s| read |= s == r);
        if read {
            return false;
        }
        if inst.dest() == Some(r) {
            return true;
        }
    }
    true
}

fn alu_parts(inst: &MachInst) -> Option<(AluOp, Reg, Reg, Reg)> {
    use MachInst::*;
    match *inst {
        AddI { d, a, b } => Some((AluOp::Add, d, a, b)),
        SubI { d, a, b } => Some((AluOp::Sub, d, a, b)),
        MulI { d, a, b } => Some((AluOp::Mul, d, a, b)),
        AndI { d, a, b } => Some((AluOp::And, d, a, b)),
        OrI { d, a, b } => Some((AluOp::Or, d, a, b)),
        XorI { d, a, b } => Some((AluOp::Xor, d, a, b)),
        ShlI { d, a, b } => Some((AluOp::Shl, d, a, b)),
        ShrI { d, a, b } => Some((AluOp::Shr, d, a, b)),
        UShrI { d, a, b } => Some((AluOp::UShr, d, a, b)),
        _ => None,
    }
}

fn chk_parts(inst: &MachInst) -> Option<(ChkOp, Reg, Reg, Reg, u16)> {
    use MachInst::*;
    match *inst {
        AddIChk { d, a, b, exit } => Some((ChkOp::Add, d, a, b, exit)),
        SubIChk { d, a, b, exit } => Some((ChkOp::Sub, d, a, b, exit)),
        MulIChk { d, a, b, exit } => Some((ChkOp::Mul, d, a, b, exit)),
        ShlIChk { d, a, b, exit } => Some((ChkOp::Shl, d, a, b, exit)),
        UShrIChk { d, a, b, exit } => Some((ChkOp::UShr, d, a, b, exit)),
        _ => None,
    }
}

fn cmp_i_parts(inst: &MachInst) -> Option<(CmpOp, Reg, Reg, Reg)> {
    use MachInst::*;
    match *inst {
        EqI { d, a, b } => Some((CmpOp::Eq, d, a, b)),
        LtI { d, a, b } => Some((CmpOp::Lt, d, a, b)),
        LeI { d, a, b } => Some((CmpOp::Le, d, a, b)),
        GtI { d, a, b } => Some((CmpOp::Gt, d, a, b)),
        GeI { d, a, b } => Some((CmpOp::Ge, d, a, b)),
        _ => None,
    }
}

fn cmp_d_parts(inst: &MachInst) -> Option<(CmpOp, Reg, Reg, Reg)> {
    use MachInst::*;
    match *inst {
        EqD { d, a, b } => Some((CmpOp::Eq, d, a, b)),
        LtD { d, a, b } => Some((CmpOp::Lt, d, a, b)),
        LeD { d, a, b } => Some((CmpOp::Le, d, a, b)),
        GtD { d, a, b } => Some((CmpOp::Gt, d, a, b)),
        GeD { d, a, b } => Some((CmpOp::Ge, d, a, b)),
        _ => None,
    }
}

/// Pass 1: rewrite register operands that provably hold constants into
/// immediate forms. The defining `ConstW` is left for DCE to collect.
fn fold_immediates(code: &mut [MachInst]) -> bool {
    use MachInst::*;
    let mut known: [Option<i32>; REG_FILE_WORDS] = [None; REG_FILE_WORDS];
    let mut changed = false;
    for inst in code.iter_mut() {
        let replacement = if let Some((op, d, a, b)) = alu_parts(inst) {
            match (known[reg_idx(a)], known[reg_idx(b)]) {
                // Both constant is left to the b-side fold (a stays a reg
                // read; LIR-level folding already handles const⊕const).
                (_, Some(imm)) => Some(AluImmI { op, d, a, imm }),
                (Some(imm), None) if op.commutative() => Some(AluImmI { op, d, a: b, imm }),
                _ => None,
            }
        } else if let Some((op, d, a, b, exit)) = chk_parts(inst) {
            match (known[reg_idx(a)], known[reg_idx(b)]) {
                (_, Some(imm)) => Some(ChkAluImmI { op, d, a, imm, exit }),
                (Some(imm), None) if op.commutative() => {
                    Some(ChkAluImmI { op, d, a: b, imm, exit })
                }
                _ => None,
            }
        } else if let Some((op, d, a, b)) = cmp_i_parts(inst) {
            // Compares are not commutative, but every CmpOp has a swapped
            // twin, so a constant on either side folds.
            match (known[reg_idx(a)], known[reg_idx(b)]) {
                (_, Some(imm)) => Some(CmpImmI { op, d, a, imm }),
                (Some(imm), None) => Some(CmpImmI { op: op.swapped(), d, a: b, imm }),
                _ => None,
            }
        } else {
            None
        };
        if let Some(new) = replacement {
            *inst = new;
            changed = true;
        }
        match inst {
            ConstW { d, w } | ConstWrAr { d, w, .. } => known[reg_idx(*d)] = as_imm(*w),
            _ => {
                if let Some(d) = inst.dest() {
                    known[reg_idx(d)] = None;
                }
            }
        }
    }
    changed
}

/// Pass 2: left fold over the instruction stream, fusing each instruction
/// with the previously emitted one where a superinstruction exists.
/// Chains compose in a single scan (`LtI`,`GuardTrue`,`LoopBack` →
/// `CmpBranchI`,`LoopBack` → `CmpBranchLoopI`).
fn fuse_pairs(code: &mut Vec<MachInst>) -> bool {
    let old = std::mem::take(code);
    let mut out: Vec<MachInst> = Vec::with_capacity(old.len());
    let mut changed = false;
    for (j, inst) in old.iter().enumerate() {
        if let Some(prev) = out.last() {
            if let Some(fused) = try_fuse(prev, inst, &old[j + 1..]) {
                out.pop();
                out.push(fused);
                changed = true;
                continue;
            }
        }
        out.push(inst.clone());
    }
    *code = out;
    changed
}

/// Attempts to fuse adjacent `prev`,`next` into one superinstruction.
/// `tail` is the rest of the fragment after `next` (for deadness checks).
fn try_fuse(prev: &MachInst, next: &MachInst, tail: &[MachInst]) -> Option<MachInst> {
    use MachInst::*;

    // compare + guard → compare-branch (when the 0/1 result is unused
    // beyond the guard).
    if let (Some((op, d, a, b)), &GuardTrue { s, exit }) = (cmp_i_parts(prev), next) {
        if s == d && reg_dead(tail, d) {
            return Some(CmpBranchI { op, want: true, a, b, exit });
        }
    }
    if let (Some((op, d, a, b)), &GuardFalse { s, exit }) = (cmp_i_parts(prev), next) {
        if s == d && reg_dead(tail, d) {
            return Some(CmpBranchI { op, want: false, a, b, exit });
        }
    }
    if let (Some((op, d, a, b)), &GuardTrue { s, exit }) = (cmp_d_parts(prev), next) {
        if s == d && reg_dead(tail, d) {
            return Some(CmpBranchD { op, want: true, a, b, exit });
        }
    }
    if let (Some((op, d, a, b)), &GuardFalse { s, exit }) = (cmp_d_parts(prev), next) {
        if s == d && reg_dead(tail, d) {
            return Some(CmpBranchD { op, want: false, a, b, exit });
        }
    }
    if let (&CmpImmI { op, d, a, imm }, &GuardTrue { s, exit }) = (prev, next) {
        if s == d && reg_dead(tail, d) {
            return Some(CmpBranchImmI { op, want: true, a, imm, exit });
        }
    }
    if let (&CmpImmI { op, d, a, imm }, &GuardFalse { s, exit }) = (prev, next) {
        if s == d && reg_dead(tail, d) {
            return Some(CmpBranchImmI { op, want: false, a, imm, exit });
        }
    }

    // boolean-not + guard → the opposite guard on the un-negated value.
    // `NotB` is exactly `d = (a == 0)`, so guarding `d` true is guarding
    // `a` false (and vice versa) for every u64 payload; the `NotB` write
    // is elided, hence the deadness requirement.
    if let (&NotB { d, a }, &GuardTrue { s, exit }) = (prev, next) {
        if s == d && reg_dead(tail, d) {
            return Some(GuardFalse { s: a, exit });
        }
    }
    if let (&NotB { d, a }, &GuardFalse { s, exit }) = (prev, next) {
        if s == d && reg_dead(tail, d) {
            return Some(GuardTrue { s: a, exit });
        }
    }

    // compare-write-through + guard → compare-write-branch. The register
    // and the AR slot are still written (before the exit check, exactly
    // the raw order), so no deadness requirement.
    if let (&CmpWrI { op, d, a, b, slot }, &GuardTrue { s, exit }) = (prev, next) {
        if s == d {
            return Some(CmpWrBranchI { op, want: true, d, a, b, slot, exit });
        }
    }
    if let (&CmpWrI { op, d, a, b, slot }, &GuardFalse { s, exit }) = (prev, next) {
        if s == d {
            return Some(CmpWrBranchI { op, want: false, d, a, b, slot, exit });
        }
    }
    if let (&CmpWrD { op, d, a, b, slot }, &GuardTrue { s, exit }) = (prev, next) {
        if s == d {
            return Some(CmpWrBranchD { op, want: true, d, a, b, slot, exit });
        }
    }
    if let (&CmpWrD { op, d, a, b, slot }, &GuardFalse { s, exit }) = (prev, next) {
        if s == d {
            return Some(CmpWrBranchD { op, want: false, d, a, b, slot, exit });
        }
    }
    if let (&CmpImmWrI { op, d, a, imm, slot }, &GuardTrue { s, exit }) = (prev, next) {
        if s == d {
            return Some(CmpImmWrBranchI { op, want: true, d, a, imm, slot, exit });
        }
    }
    if let (&CmpImmWrI { op, d, a, imm, slot }, &GuardFalse { s, exit }) = (prev, next) {
        if s == d {
            return Some(CmpImmWrBranchI { op, want: false, d, a, imm, slot, exit });
        }
    }

    // compare-branch + loop edge → the loop-edge triple.
    if let (&CmpBranchI { op, want, a, b, exit }, &LoopBack { exit: loop_exit }) = (prev, next) {
        return Some(CmpBranchLoopI { op, want, a, b, exit, loop_exit });
    }
    if let (&CmpBranchD { op, want, a, b, exit }, &LoopBack { exit: loop_exit }) = (prev, next) {
        return Some(CmpBranchLoopD { op, want, a, b, exit, loop_exit });
    }
    // checked-increment write-through + loop edge → the whole canonical
    // loop tail (`i = i ⊕ imm (checked); store i; jump back`) in one
    // dispatch. The overflow check happens before the writes, exactly as
    // in the raw sequence.
    if let (&ChkAluImmWrI { op, d, a, imm, exit, slot }, &LoopBack { exit: loop_exit }) =
        (prev, next)
    {
        return Some(ChkAluImmWrLoopI { op, d, a, imm, slot, exit, loop_exit });
    }

    // ReadAr + ALU → AR-operand ALU. The loaded register must die at the
    // ALU (it is either overwritten by it or never read again), and must
    // not feed the ALU's *other* operand, which would still read it.
    if let (&ReadAr { d: r, slot }, Some((op, d, a, b))) = (prev, alu_parts(next)) {
        let dead = d == r || reg_dead(tail, r);
        if a == r && b != r && dead {
            return Some(AluArI { op, d, slot, b });
        }
        if b == r && a != r && op.commutative() && dead {
            return Some(AluArI { op, d, slot, b: a });
        }
    }

    // ALU + WriteAr of its result → combined write-through forms. The
    // destination register is still written, so later uses are unaffected.
    if let &WriteAr { slot, s } = next {
        if let Some((op, d, a, b)) = alu_parts(prev) {
            if s == d {
                return Some(AluWrI { op, d, a, b, slot });
            }
        }
        if let &AluImmI { op, d, a, imm } = prev {
            if s == d {
                return Some(AluImmWrI { op, d, a, imm, slot });
            }
        }
        if let Some((op, d, a, b, exit)) = chk_parts(prev) {
            if s == d {
                return Some(ChkAluWrI { op, d, a, b, exit, slot });
            }
        }
        if let &ChkAluImmI { op, d, a, imm, exit } = prev {
            if s == d {
                return Some(ChkAluImmWrI { op, d, a, imm, exit, slot });
            }
        }
        // Compare + store of its 0/1 result (the recorder stores every
        // branch condition to the AR before guarding on it).
        if let Some((op, d, a, b)) = cmp_i_parts(prev) {
            if s == d {
                return Some(CmpWrI { op, d, a, b, slot });
            }
        }
        if let Some((op, d, a, b)) = cmp_d_parts(prev) {
            if s == d {
                return Some(CmpWrD { op, d, a, b, slot });
            }
        }
        if let &CmpImmI { op, d, a, imm } = prev {
            if s == d {
                return Some(CmpImmWrI { op, d, a, imm, slot });
            }
        }
        // Constant materialization + store (constants re-written to the
        // AR every iteration by the recorder).
        if let &ConstW { d, w } = prev {
            if s == d {
                return Some(ConstWrAr { d, w, slot });
            }
        }
        // AR-to-AR shuffle through a register; the register copy
        // survives for later readers.
        if let &ReadAr { d, slot: src } = prev {
            if s == d {
                return Some(MovAr { d, src, dst: slot });
            }
        }
        if let &AluArI { op, d, slot: slot_a, b } = prev {
            if s == d {
                return Some(AluArWrI { op, d, slot_a, b, slot_d: slot });
            }
        }
        // Adjacent AR stores → one grouped store (order preserved; a
        // repeated slot keeps only the last store, which is all the raw
        // pair made visible anyway).
        if let &WriteAr { slot: slot_a, s: s_a } = prev {
            if slot_a == slot {
                return Some(WriteAr { slot, s });
            }
            return Some(WriteAr2 { slot_a, s_a, slot_b: slot, s_b: s });
        }
        if let &WriteAr2 { slot_a, s_a, slot_b, s_b } = prev {
            return Some(WriteAr3 { slot_a, s_a, slot_b, s_b, slot_c: slot, s_c: s });
        }
    }

    None
}

/// Pass 3: backward liveness; deletes pure instructions whose destination
/// is dead. The live set starts empty at the end of the fragment (the
/// back-edge/stitch invariant again).
fn remove_dead(code: &mut Vec<MachInst>) -> u32 {
    let mut live = [false; REG_FILE_WORDS];
    let mut keep = vec![true; code.len()];
    let mut removed = 0;
    for (i, inst) in code.iter().enumerate().rev() {
        if let Some(d) = inst.dest() {
            if !live[reg_idx(d)] && inst.is_pure() {
                keep[i] = false;
                removed += 1;
                continue;
            }
            live[reg_idx(d)] = false;
        }
        inst.for_each_src(|s| live[reg_idx(s)] = true);
    }
    if removed > 0 {
        let mut it = keep.iter();
        code.retain(|_| *it.next().unwrap());
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machinst::MachInst::*;

    fn frag(code: Vec<MachInst>, num_exits: usize) -> Fragment {
        Fragment::new(code, 0, num_exits)
    }

    /// The counting-loop body: 8 raw instructions fuse to 4.
    #[test]
    fn counting_loop_halves() {
        let f = frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                ConstW { d: 2, w: 1 },
                AddIChk { d: 3, a: 0, b: 2, exit: 0 },
                WriteAr { slot: 0, s: 3 },
                LtI { d: 4, a: 3, b: 1 },
                GuardTrue { s: 4, exit: 1 },
                LoopBack { exit: 2 },
            ],
            3,
        );
        let f = fuse(f);
        assert_eq!(
            f.code,
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                ChkAluImmWrI { op: ChkOp::Add, d: 3, a: 0, imm: 1, exit: 0, slot: 0 },
                CmpBranchLoopI { op: CmpOp::Lt, want: true, a: 3, b: 1, exit: 1, loop_exit: 2 },
            ]
        );
        assert_eq!(f.fuse_stats.raw_insts, 8);
        assert_eq!(f.fuse_stats.fused_insts, 4);
        assert_eq!(f.fuse_stats.superinsts, 2);
        assert_eq!(f.fuse_stats.dce_removed, 1);
    }

    #[test]
    fn cmp_guard_false_fuses_with_want_false() {
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                EqI { d: 2, a: 0, b: 1 },
                GuardFalse { s: 2, exit: 0 },
                End { exit: 1 },
            ],
            2,
        ));
        assert!(f
            .code
            .iter()
            .any(|i| matches!(i, CmpBranchI { op: CmpOp::Eq, want: false, .. })));
    }

    #[test]
    fn cmp_result_still_used_blocks_fusion() {
        // The compare's 0/1 result is written to the AR after the guard,
        // so it stays a separate instruction.
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                LtI { d: 2, a: 0, b: 1 },
                GuardTrue { s: 2, exit: 0 },
                WriteAr { slot: 2, s: 2 },
                End { exit: 1 },
            ],
            2,
        ));
        assert!(f.code.iter().any(|i| matches!(i, LtI { .. })));
        assert!(f.code.iter().any(|i| matches!(i, GuardTrue { .. })));
    }

    #[test]
    fn readar_alu_fuses_unless_other_operand_aliases() {
        // r0 feeds both operands: must not fuse (the fused form would
        // read a stale register for the second operand).
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                SubI { d: 1, a: 0, b: 0 },
                WriteAr { slot: 1, s: 1 },
                End { exit: 0 },
            ],
            1,
        ));
        assert!(f.code.iter().any(|i| matches!(i, ReadAr { .. })));
        assert!(!f.code.iter().any(|i| matches!(i, AluArI { .. })));

        // Distinct operand: fuses, and the trailing WriteAr collapses
        // into the AR-to-AR write-through form.
        let f = fuse(frag(
            vec![
                ReadAr { d: 1, slot: 1 },
                ReadAr { d: 0, slot: 0 },
                SubI { d: 2, a: 0, b: 1 },
                WriteAr { slot: 1, s: 2 },
                End { exit: 0 },
            ],
            1,
        ));
        assert_eq!(
            f.code,
            vec![
                ReadAr { d: 1, slot: 1 },
                AluArWrI { op: AluOp::Sub, d: 2, slot_a: 0, b: 1, slot_d: 1 },
                End { exit: 0 },
            ]
        );
    }

    #[test]
    fn commutative_swap_folds_a_side_constant() {
        let f = fuse(frag(
            vec![
                ConstW { d: 0, w: 7 },
                ReadAr { d: 1, slot: 0 },
                MulI { d: 2, a: 0, b: 1 },
                WriteAr { slot: 0, s: 2 },
                End { exit: 0 },
            ],
            1,
        ));
        assert_eq!(
            f.code,
            vec![
                ReadAr { d: 1, slot: 0 },
                AluImmWrI { op: AluOp::Mul, d: 2, a: 1, imm: 7, slot: 0 },
                End { exit: 0 },
            ]
        );
    }

    #[test]
    fn non_i32_constw_is_not_an_immediate() {
        // A double bit-pattern constant must not fold into an int ALU imm.
        let bits = 1.5f64.to_bits();
        let f = fuse(frag(
            vec![
                ConstW { d: 0, w: bits },
                ReadAr { d: 1, slot: 0 },
                AddI { d: 2, a: 1, b: 0 },
                WriteAr { slot: 0, s: 2 },
                End { exit: 0 },
            ],
            1,
        ));
        assert!(f.code.iter().any(|i| matches!(i, ConstW { .. })));
        assert!(!f.code.iter().any(|i| matches!(i, AluImmI { .. } | AluImmWrI { .. })));
    }

    #[test]
    fn shared_constant_keeps_constw_for_other_reader() {
        // The constant register also feeds a non-foldable consumer
        // (a guard), so ConstW must survive DCE.
        let f = fuse(frag(
            vec![
                ConstW { d: 0, w: 1 },
                ReadAr { d: 1, slot: 0 },
                AddI { d: 2, a: 1, b: 0 },
                WriteAr { slot: 0, s: 2 },
                GuardTrue { s: 0, exit: 0 },
                End { exit: 1 },
            ],
            2,
        ));
        assert!(f.code.iter().any(|i| matches!(i, ConstW { .. })));
    }

    /// The recorder's canonical branch shape — compare, store the 0/1
    /// result to the AR, then guard on it — collapses to one
    /// compare-write-branch superinstruction.
    #[test]
    fn cmp_store_guard_triple_fuses() {
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                LtI { d: 2, a: 0, b: 1 },
                WriteAr { slot: 2, s: 2 },
                GuardTrue { s: 2, exit: 0 },
                End { exit: 1 },
            ],
            2,
        ));
        assert_eq!(
            f.code,
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                CmpWrBranchI { op: CmpOp::Lt, want: true, d: 2, a: 0, b: 1, slot: 2, exit: 0 },
                End { exit: 1 },
            ]
        );
    }

    /// A constant compare operand folds through `swapped()` even though
    /// compares are not commutative, and the folded form still fuses
    /// with the store and the guard.
    #[test]
    fn compare_immediate_folds_on_either_side() {
        // Constant on the right: `x < 100`.
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ConstW { d: 1, w: 100 },
                LtI { d: 2, a: 0, b: 1 },
                GuardTrue { s: 2, exit: 0 },
                End { exit: 1 },
            ],
            2,
        ));
        assert_eq!(
            f.code,
            vec![
                ReadAr { d: 0, slot: 0 },
                CmpBranchImmI { op: CmpOp::Lt, want: true, a: 0, imm: 100, exit: 0 },
                End { exit: 1 },
            ]
        );

        // Constant on the left: `100 < x` becomes `x > 100`.
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ConstW { d: 1, w: 100 },
                LtI { d: 2, a: 1, b: 0 },
                WriteAr { slot: 1, s: 2 },
                GuardTrue { s: 2, exit: 0 },
                End { exit: 1 },
            ],
            2,
        ));
        assert_eq!(
            f.code,
            vec![
                ReadAr { d: 0, slot: 0 },
                CmpImmWrBranchI {
                    op: CmpOp::Gt,
                    want: true,
                    d: 2,
                    a: 0,
                    imm: 100,
                    slot: 1,
                    exit: 0,
                },
                End { exit: 1 },
            ]
        );
    }

    /// `EqI; NotB; Guard` — the boolean negation flips the guard's sense
    /// and the compare then fuses into the flipped guard.
    #[test]
    fn notb_guard_flips_and_fuses_into_compare() {
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                EqI { d: 2, a: 0, b: 1 },
                NotB { d: 3, a: 2 },
                GuardTrue { s: 3, exit: 0 },
                End { exit: 1 },
            ],
            2,
        ));
        assert_eq!(
            f.code,
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                CmpBranchI { op: CmpOp::Eq, want: false, a: 0, b: 1, exit: 0 },
                End { exit: 1 },
            ]
        );
    }

    /// AR-to-AR shuffles and constant rematerializations collapse.
    #[test]
    fn ar_shuffle_and_const_store_fuse() {
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 3 },
                WriteAr { slot: 5, s: 0 },
                ConstW { d: 1, w: 7 },
                WriteAr { slot: 6, s: 1 },
                End { exit: 0 },
            ],
            1,
        ));
        assert_eq!(
            f.code,
            vec![
                MovAr { d: 0, src: 3, dst: 5 },
                ConstWrAr { d: 1, w: 7, slot: 6 },
                End { exit: 0 },
            ]
        );
    }

    /// Clusters of adjacent AR stores group into WriteAr2/WriteAr3.
    #[test]
    fn adjacent_writear_cluster_groups() {
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                ReadAr { d: 2, slot: 2 },
                AddI { d: 3, a: 0, b: 1 },
                WriteAr { slot: 3, s: 0 },
                WriteAr { slot: 4, s: 1 },
                WriteAr { slot: 5, s: 2 },
                WriteAr { slot: 6, s: 3 },
                End { exit: 0 },
            ],
            1,
        ));
        // The first three stores group into a WriteAr3; the fourth stays
        // a lone WriteAr (grouping caps at three).
        assert!(f.code.iter().any(|i| matches!(i, WriteAr3 { .. })));
        assert_eq!(f.code.iter().filter(|i| matches!(i, WriteAr { .. })).count(), 1);
        assert_eq!(f.code.len(), 7, "9 raw -> 7 fused: {:?}", f.code);
    }

    /// Two stores to the *same* slot keep only the last one.
    #[test]
    fn same_slot_double_store_keeps_last() {
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                WriteAr { slot: 4, s: 0 },
                WriteAr { slot: 4, s: 1 },
                End { exit: 0 },
            ],
            1,
        ));
        // Only the second store survives, and it folds all the way down
        // to a single AR-to-AR move (both ReadArs die: slot 1 is re-read
        // by the MovAr itself).
        assert_eq!(f.code, vec![MovAr { d: 1, src: 1, dst: 4 }, End { exit: 0 }]);
    }

    /// The canonical loop tail — checked increment, write-through, loop
    /// edge — becomes a single terminator superinstruction.
    #[test]
    fn checked_increment_loop_tail_fuses_to_one_terminator() {
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ConstW { d: 1, w: 1 },
                AddIChk { d: 2, a: 0, b: 1, exit: 0 },
                WriteAr { slot: 0, s: 2 },
                LoopBack { exit: 1 },
            ],
            2,
        ));
        assert_eq!(
            f.code,
            vec![
                ReadAr { d: 0, slot: 0 },
                ChkAluImmWrLoopI {
                    op: ChkOp::Add,
                    d: 2,
                    a: 0,
                    imm: 1,
                    slot: 0,
                    exit: 0,
                    loop_exit: 1,
                },
            ]
        );
        assert!(f.code.last().unwrap().is_terminator());
    }

    /// Checked shifts fold immediates like the other checked ops.
    #[test]
    fn checked_shift_folds_immediate() {
        let f = fuse(frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ConstW { d: 1, w: 2 },
                ShlIChk { d: 2, a: 0, b: 1, exit: 0 },
                WriteAr { slot: 0, s: 2 },
                End { exit: 1 },
            ],
            2,
        ));
        assert_eq!(
            f.code,
            vec![
                ReadAr { d: 0, slot: 0 },
                ChkAluImmWrI { op: ChkOp::Shl, d: 2, a: 0, imm: 2, exit: 0, slot: 0 },
                End { exit: 1 },
            ]
        );
    }

    #[test]
    fn fusion_is_stable_at_fixpoint() {
        let f = frag(
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                ConstW { d: 2, w: 1 },
                AddIChk { d: 3, a: 0, b: 2, exit: 0 },
                WriteAr { slot: 0, s: 3 },
                LtI { d: 4, a: 3, b: 1 },
                GuardTrue { s: 4, exit: 1 },
                LoopBack { exit: 2 },
            ],
            3,
        );
        let once = fuse(f);
        let twice = fuse(once.clone());
        assert_eq!(once.code, twice.code);
    }
}
