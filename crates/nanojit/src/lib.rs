//! # tm-nanojit
//!
//! The trace compilation backend of the TraceMonkey reproduction — the
//! NanoJIT stand-in (§5): greedy one-pass register allocation onto a small
//! virtual register ISA, plus the executor that runs compiled fragments.
//!
//! "The trace compilation subsystem ... is separate from the VM and can be
//! used for other applications" — this crate depends only on `tm-lir` and
//! `tm-runtime` (for helper calls); the tracing policy lives in `tm-core`
//! and the method JIT reuses the same ISA.
//!
//! See DESIGN.md for the virtual-ISA substitution rationale (real x86
//! emission → decode-loop ISA preserving the no-boxing/no-dispatch
//! execution profile the paper measures).

pub mod assembler;
pub mod executor;
pub mod machinst;
pub mod peephole;
pub mod serial;
pub mod x64;

pub use assembler::assemble;
pub use executor::{execute, NoNesting, TraceExit, TreeHost};
pub use x64::{emit_tree, emit_tree_annotated, native_supported, NativeTree, Unsupported};
pub use machinst::{
    ExitTarget, Fragment, FuseStats, MachInst, Reg, EXIT_UNSTITCHED, NREGS, REG_FILE_WORDS,
    REG_MASK,
};
pub use peephole::fuse;
