//! Native x86-64 backend: emits real machine code for compiled trace trees.
//!
//! This is the second execution tier behind the decoded virtual-ISA
//! executor ([`crate::executor`]). Post-peephole [`Fragment`]s — raw
//! instructions plus every fused superinstruction — are translated to an
//! executable W^X buffer, one buffer per trace tree, entered through a
//! tiny JIT calling convention ([`NativeCtx`] in the platform module):
//! the activation record, register file, spill area, and realm travel as
//! raw pointers; guards compile to compare-and-branch against per-exit
//! trampolines that materialize the exit index; stitched exits compile to
//! direct jumps between fragment bodies (re-emitted when the tree grows a
//! branch, so stitch targets are always baked in).
//!
//! The decoded executor remains the portable reference implementation and
//! the differential oracle: a native tree must produce byte-identical AR
//! contents *and* an identical [`TraceExit`] record — including the
//! `insts`/`fused_insts`/`iterations` counters, which the emitter
//! reconstructs by accumulating static per-exit-path counts — for every
//! program.
//!
//! Every `MachInst` family is covered. Pure int/double arithmetic,
//! guards, and AR traffic emit inline; ops that walk realm heap
//! structures (shape/class/bound guards, slot/element/proto loads and
//! stores, `ArrayLen`/`StrLen`) call tiny `extern "sysv64"` shims whose
//! bodies are the exact decoded-executor match arms — the heap's arenas
//! are growable `Vec`s, so baking their data pointers into code would go
//! stale on reallocation; a call through a stable shim address is the
//! reliable form. `CallHelper` marshals its arguments into a ctx-inline
//! buffer and dispatches through a per-tree [`Helper`] side table;
//! `CallTree` re-enters the monitor's [`TreeHost`] through a type-erased
//! trampoline, which selects the inner tree's own native buffer when one
//! is installed (native→native) or bridges to the decoded tier when it
//! isn't. Helper/nested-tree errors land in an out-of-band slot and
//! unwind the buffer through the epilogue, so [`NativeTree::execute`]
//! returns `Result` exactly like the decoded [`crate::executor::execute`].
//! The only remaining whole-tree fallback is a `CallHelper` whose arity
//! exceeds the inline argument buffer ([`unsupported_op`]).
//!
//! On non-x86-64 or non-Linux targets the stub module below reports
//! native support as unavailable and the tier disables itself.

use crate::machinst::MachInst;

/// Why a tree could not be translated to native code. Carried as an
/// `Err` from [`emit_tree`]; the monitor falls back to the decoded
/// executor for the whole tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unsupported {
    /// Mnemonic of the first op the emitter does not translate (or
    /// `"mmap"` when the OS refused an executable mapping).
    pub what: &'static str,
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "native backend: unsupported {}", self.what)
    }
}

/// Capacity of the per-run inline `CallHelper` argument buffer in the
/// JIT calling convention's ctx struct. No recorded helper call comes
/// close (the recorder builds at most a handful of operands), but the
/// pre-scan still rejects wider calls so emitted stores can never run
/// off the end of the buffer.
pub const MAX_HELPER_ARGS: usize = 8;

/// The ops [`emit_tree`] refuses. Since the full-coverage tier landed
/// this is only a `CallHelper` whose arity exceeds the inline argument
/// buffer ([`MAX_HELPER_ARGS`]); every other `MachInst` family emits.
/// Returns the mnemonic for diagnostics.
pub fn unsupported_op(inst: &MachInst) -> Option<&'static str> {
    match inst {
        MachInst::CallHelper { args, .. } if args.len() > MAX_HELPER_ARGS => {
            Some("CallHelper arity")
        }
        _ => None,
    }
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use std::collections::HashMap;
    use std::mem::offset_of;

    use tm_lir::{AluOp, ChkOp, CmpOp};
    use tm_runtime::trace_helpers::{call_helper, f64_from_word, word_from_f64, Helper};
    use tm_runtime::{ObjectId, Realm, RuntimeError, StringId, Value};

    use super::{unsupported_op, Unsupported, MAX_HELPER_ARGS};
    use crate::executor::{TraceExit, TreeHost};
    use crate::machinst::{Fragment, MachInst, Reg, EXIT_UNSTITCHED, REG_FILE_WORDS, REG_MASK};

    /// Whether this build can emit and run native code.
    pub fn native_supported() -> bool {
        true
    }

    // ---- JIT calling convention ----------------------------------------

    /// Everything native code needs, passed by pointer in `rdi`. Pinned
    /// callee-saved registers cache the hot fields: `r15` = ctx, `r14` =
    /// `ar`, `r13` = `regs`, `r12` = `spill`; `rbx`/`rbp` accumulate the
    /// `insts`/`fused` counters and are flushed to the ctx on exit.
    #[repr(C)]
    struct NativeCtx {
        /// Trace activation record base.
        ar: *mut u64,
        /// Register file base (`REG_FILE_WORDS` words, zeroed per run).
        regs: *mut u64,
        /// Spill area base (max spills over all fragments, zeroed).
        spill: *mut u64,
        /// The realm, for the few ops that allocate or read heap numbers.
        realm: *mut Realm,
        /// `&realm.interrupt`, polled at loop edges (§6.4).
        interrupt: *const bool,
        /// `&realm.heap.gc_pending`, polled at loop edges.
        gc_pending: *const bool,
        /// Instruction budget: loop edges exit once `insts >= fuel`.
        fuel: u64,
        /// Fragment index to enter at.
        start: u32,
        _pad: u32,
        /// Out: completed loop-edge crossings.
        iterations: u64,
        /// Out: instructions dispatched (fused counts once).
        insts: u64,
        /// Out: of `insts`, fused superinstructions.
        fused: u64,
        /// Out: fragment that took the final (unstitched) exit.
        exit_fragment: u32,
        /// Out: exit id taken.
        exit_id: u32,
        /// Per-tree `CallHelper` side table base ([`NativeTree::helpers`]).
        /// `Helper` carries a payload variant (`CallNative`), so sites
        /// index this table instead of baking an immediate.
        helpers: *const Helper,
        /// `CallHelper` argument scratch; emitted code stores the operand
        /// vregs here before calling [`helper_shim`]. The pre-scan caps
        /// arity at `MAX_HELPER_ARGS` so the stores stay in bounds.
        helper_args: [u64; MAX_HELPER_ARGS],
        /// Out from [`helper_shim`]: the helper's result word.
        helper_result: u64,
        /// Number of AR slots, so [`call_tree_shim`] can rebuild the
        /// `&mut [u64]` slice the nested tree executes against.
        ar_len: u64,
        /// Type-erased [`TreeHost`]: a thin pointer to the `&mut dyn
        /// TreeHost` living on [`NativeTree::execute`]'s stack (a raw fat
        /// pointer has no stable `repr(C)` layout, so it stays behind one
        /// more indirection and only Rust shim code dereferences it).
        host: *mut core::ffi::c_void,
        /// Out: error raised by a helper or nested tree. Points at an
        /// `Option<RuntimeError>` on `execute`'s stack; when a shim
        /// reports status 2 the native code unwinds through the epilogue
        /// and `execute` returns `Err` instead of a `TraceExit`.
        error: *mut Option<RuntimeError>,
    }

    const CTX_AR: i32 = offset_of!(NativeCtx, ar) as i32;
    const CTX_REGS: i32 = offset_of!(NativeCtx, regs) as i32;
    const CTX_SPILL: i32 = offset_of!(NativeCtx, spill) as i32;
    const CTX_REALM: i32 = offset_of!(NativeCtx, realm) as i32;
    const CTX_INTERRUPT: i32 = offset_of!(NativeCtx, interrupt) as i32;
    const CTX_GC: i32 = offset_of!(NativeCtx, gc_pending) as i32;
    const CTX_FUEL: i32 = offset_of!(NativeCtx, fuel) as i32;
    const CTX_START: i32 = offset_of!(NativeCtx, start) as i32;
    const CTX_ITER: i32 = offset_of!(NativeCtx, iterations) as i32;
    const CTX_INSTS: i32 = offset_of!(NativeCtx, insts) as i32;
    const CTX_FUSED: i32 = offset_of!(NativeCtx, fused) as i32;
    const CTX_EXIT_FRAG: i32 = offset_of!(NativeCtx, exit_fragment) as i32;
    const CTX_EXIT_ID: i32 = offset_of!(NativeCtx, exit_id) as i32;
    const CTX_HARGS: i32 = offset_of!(NativeCtx, helper_args) as i32;
    const CTX_HRESULT: i32 = offset_of!(NativeCtx, helper_result) as i32;

    // ---- runtime shims --------------------------------------------------
    //
    // Each shim is the exact body of the corresponding decoded-executor
    // match arm (or the slow half of it); native code calls them with the
    // System V convention, so the pinned callee-saved registers survive.

    extern "sysv64" fn fmod_shim(a: u64, b: u64) -> u64 {
        word_from_f64(f64_from_word(a) % f64_from_word(b))
    }

    extern "sysv64" fn d2i32_shim(a: u64) -> u64 {
        i64::from(tm_runtime::ops::double_to_int32(f64_from_word(a))) as u64
    }

    /// `BoxI` slow path: the value is outside the boxable 31-bit range,
    /// so boxing allocates a heap double (`Heap::number_i32`).
    extern "sysv64" fn boxi_slow_shim(realm: *mut Realm, i: u32) -> u64 {
        let realm = unsafe { &mut *realm };
        realm.heap.number_i32(i as i32).raw()
    }

    extern "sysv64" fn boxd_shim(realm: *mut Realm, bits: u64) -> u64 {
        let realm = unsafe { &mut *realm };
        let v = realm.heap.number(f64_from_word(bits));
        if realm.heap.should_collect() {
            realm.heap.gc_pending = true;
        }
        v.raw()
    }

    /// Reads the heap double behind an already-tag-checked boxed value.
    extern "sysv64" fn unbox_double_shim(realm: *const Realm, raw: u64) -> u64 {
        let realm = unsafe { &*realm };
        let id = Value::from_raw(raw).as_double_id().expect("tag checked by native code");
        word_from_f64(realm.heap.double(id))
    }

    // Heap-walking ops (shape/class/bound guards, slot/element/proto
    // access, lengths). The heap's object and string arenas are growable
    // `Vec`s whose data pointers move on reallocation, so the emitter
    // calls these stable shims instead of baking arena addresses into
    // code; surrounding arithmetic still runs fully native, and the shim
    // bodies mirror the decoded-executor arms verbatim.

    /// `GuardShape` probe: the guarded object's current shape id.
    extern "sysv64" fn shape_of_shim(realm: *const Realm, obj: u64) -> u64 {
        let realm = unsafe { &*realm };
        u64::from(realm.heap.object(ObjectId(obj as u32)).shape.0)
    }

    /// `GuardClass` probe: the guarded object's class discriminant.
    extern "sysv64" fn class_of_shim(realm: *const Realm, obj: u64) -> u64 {
        let realm = unsafe { &*realm };
        realm.heap.object(ObjectId(obj as u32)).class as u64
    }

    /// `GuardBound` probe: the dense element count (also `ArrayLen`'s
    /// value, but kept separate so the guard compares `usize` length
    /// while `ArrayLen` produces the decoded tier's `u32` result).
    extern "sysv64" fn elems_len_shim(realm: *const Realm, obj: u64) -> u64 {
        let realm = unsafe { &*realm };
        realm.heap.object(ObjectId(obj as u32)).elements.len() as u64
    }

    extern "sysv64" fn load_slot_shim(realm: *const Realm, obj: u64, slot: u64) -> u64 {
        let realm = unsafe { &*realm };
        realm.heap.object(ObjectId(obj as u32)).slots[slot as usize].raw()
    }

    extern "sysv64" fn store_slot_shim(realm: *mut Realm, obj: u64, slot: u64, v: u64) {
        let realm = unsafe { &mut *realm };
        realm.heap.object_mut(ObjectId(obj as u32)).slots[slot as usize] =
            Value::from_raw(v);
    }

    extern "sysv64" fn load_proto_shim(realm: *const Realm, obj: u64) -> u64 {
        let realm = unsafe { &*realm };
        let proto = realm
            .heap
            .object(ObjectId(obj as u32))
            .proto
            .expect("proto guarded by recording");
        u64::from(proto.0)
    }

    /// `idx` arrives sign-extended from the i32 vreg; the `as usize`
    /// wrap below matches the decoded arm (a negative index panics out
    /// of range there too — `GuardBound` precedes every access).
    extern "sysv64" fn load_elem_shim(realm: *const Realm, obj: u64, idx: i64) -> u64 {
        let realm = unsafe { &*realm };
        realm.heap.object(ObjectId(obj as u32)).elements[idx as usize].raw()
    }

    extern "sysv64" fn store_elem_shim(realm: *mut Realm, obj: u64, idx: i64, v: u64) {
        let realm = unsafe { &mut *realm };
        realm
            .heap
            .object_mut(ObjectId(obj as u32))
            .set_element(idx as u32, Value::from_raw(v));
    }

    extern "sysv64" fn array_len_shim(realm: *const Realm, obj: u64) -> u64 {
        let realm = unsafe { &*realm };
        u64::from(realm.heap.object(ObjectId(obj as u32)).array_length())
    }

    extern "sysv64" fn str_len_shim(realm: *const Realm, s: u64) -> u64 {
        let realm = unsafe { &*realm };
        realm.heap.string(StringId(s as u32)).len() as u64
    }

    // Runtime re-entry (helper calls, nested trees). Both return a
    // status word the emitted code branches on; errors are parked in
    // `ctx.error` and the buffer unwinds through the epilogue.

    /// `helper_shim` status: continue straight-line execution.
    const ST_OK: u32 = 0;
    /// Take the instruction's side exit (helper re-entered the VM §6.5,
    /// or the nested tree reported a guard mismatch).
    const ST_EXIT: u32 = 1;
    /// A `RuntimeError` was stored through `ctx.error`; abandon the run.
    const ST_ERR: u32 = 2;

    /// `CallHelper`: dispatches through the per-tree helper table with
    /// the arguments the emitted code marshalled into `ctx.helper_args`.
    extern "sysv64" fn helper_shim(ctx: *mut NativeCtx, helper: u32, argc: u32) -> u32 {
        let ctx = unsafe { &mut *ctx };
        let realm = unsafe { &mut *ctx.realm };
        let h = unsafe { *ctx.helpers.add(helper as usize) };
        match call_helper(realm, h, &ctx.helper_args[..argc as usize]) {
            Ok(w) => {
                ctx.helper_result = w;
                if realm.reentered_during_trace {
                    realm.reentered_during_trace = false;
                    ST_EXIT
                } else {
                    ST_OK
                }
            }
            Err(e) => {
                unsafe { *ctx.error = Some(e) };
                ST_ERR
            }
        }
    }

    /// Monomorphic trampoline stored behind `ctx.host`: recovers the
    /// `&mut dyn TreeHost` and forwards. Kept out of line so the shim
    /// below never names the trait object's fat-pointer layout.
    unsafe fn call_host(
        host: *mut core::ffi::c_void,
        site: u32,
        ar: &mut [u64],
        realm: &mut Realm,
    ) -> Result<bool, RuntimeError> {
        let host = unsafe { &mut **(host as *mut &mut dyn TreeHost) };
        host.call_tree(site, ar, realm)
    }

    /// `CallTree`: re-enters the monitor's [`TreeHost`] for nested-tree
    /// site `site`. The host marshals the AR, runs the inner tree — its
    /// *own* native buffer when one is installed, the decoded executor
    /// otherwise (the native→decoded bridge) — and reports whether the
    /// call completed on the expected exit.
    extern "sysv64" fn call_tree_shim(ctx: *mut NativeCtx, site: u32) -> u32 {
        let ctx = unsafe { &mut *ctx };
        let realm = unsafe { &mut *ctx.realm };
        let ar = unsafe { std::slice::from_raw_parts_mut(ctx.ar, ctx.ar_len as usize) };
        match unsafe { call_host(ctx.host, site, ar, realm) } {
            Ok(true) => ST_OK,
            Ok(false) => ST_EXIT,
            Err(e) => {
                unsafe { *ctx.error = Some(e) };
                ST_ERR
            }
        }
    }

    // ---- executable buffer ----------------------------------------------

    const SYS_MMAP: isize = 9;
    const SYS_MPROTECT: isize = 10;
    const SYS_MUNMAP: isize = 11;
    const PROT_RW: usize = 0x3;
    const PROT_RX: usize = 0x5;
    const MAP_PRIVATE_ANON: usize = 0x22;

    unsafe fn syscall3(n: isize, a1: usize, a2: usize, a3: usize) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    unsafe fn sys_mmap_rw(len: usize) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MMAP => ret,
                in("rdi") 0usize,
                in("rsi") len,
                in("rdx") PROT_RW,
                in("r10") MAP_PRIVATE_ANON,
                in("r8") -1isize,
                in("r9") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// A page-rounded executable mapping holding one tree's code.
    /// Installed write-then-protect: the pages are `rw-` while the code
    /// is copied in, then flipped to `r-x` — never writable+executable.
    struct ExecBuf {
        ptr: *mut u8,
        len: usize,
    }

    // The buffer is immutable after install; executing it from any thread
    // is safe (the code itself only touches memory through the ctx).
    unsafe impl Send for ExecBuf {}
    unsafe impl Sync for ExecBuf {}

    impl ExecBuf {
        fn install(code: &[u8]) -> Option<ExecBuf> {
            let len = code.len().max(1).div_ceil(4096) * 4096;
            let addr = unsafe { sys_mmap_rw(len) };
            if (-4095..0).contains(&addr) {
                return None;
            }
            let ptr = addr as *mut u8;
            unsafe {
                std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len());
                if syscall3(SYS_MPROTECT, ptr as usize, len, PROT_RX) != 0 {
                    syscall3(SYS_MUNMAP, ptr as usize, len, 0);
                    return None;
                }
            }
            Some(ExecBuf { ptr, len })
        }

        fn entry(&self) -> extern "sysv64" fn(*mut NativeCtx) {
            unsafe { std::mem::transmute::<*mut u8, extern "sysv64" fn(*mut NativeCtx)>(self.ptr) }
        }
    }

    impl Drop for ExecBuf {
        fn drop(&mut self) {
            unsafe {
                syscall3(SYS_MUNMAP, self.ptr as usize, self.len, 0);
            }
        }
    }

    // ---- assembler ------------------------------------------------------

    const RAX: u8 = 0;
    const RCX: u8 = 1;
    const RDX: u8 = 2;
    const RBX: u8 = 3;
    const RBP: u8 = 5;
    const RSI: u8 = 6;
    const RDI: u8 = 7;
    const R12: u8 = 12;
    const R13: u8 = 13;
    const R14: u8 = 14;
    const R15: u8 = 15;
    const XMM0: u8 = 0;
    const XMM1: u8 = 1;

    /// Condition codes for `jcc`/`setcc`. `cc ^ 1` is the inverse.
    const CC_AE: u8 = 0x3;
    const CC_E: u8 = 0x4;
    const CC_NE: u8 = 0x5;
    const CC_A: u8 = 0x7;
    const CC_S: u8 = 0x8;
    const CC_P: u8 = 0xA;
    const CC_NP: u8 = 0xB;
    const CC_L: u8 = 0xC;
    const CC_GE: u8 = 0xD;
    const CC_LE: u8 = 0xE;
    const CC_G: u8 = 0xF;

    /// A branch target resolved at finalize time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    enum Label {
        /// Entry of fragment body `k`.
        Frag(u32),
        /// Exit site `n` (see `SiteInfo`).
        Site(u32),
        /// An emitter-local label inside one instruction's expansion.
        Local(u32),
        /// The common function epilogue.
        Epilogue,
    }

    /// Byte-buffer assembler with rel32 label fixups and offset-keyed
    /// annotations (consumed by the hexdump disassembler). Annotations
    /// are only collected when `annotate` is set — formatting every
    /// virtual instruction is far too expensive for the monitor's
    /// (re-)emission path, which never reads them.
    #[derive(Default)]
    struct Asm {
        code: Vec<u8>,
        labels: HashMap<Label, usize>,
        fixups: Vec<(usize, Label)>,
        notes: Vec<(usize, String)>,
        annotate: bool,
    }

    impl Asm {
        fn here(&self) -> usize {
            self.code.len()
        }

        fn note(&mut self, text: impl FnOnce() -> String) {
            if self.annotate {
                let t = text();
                self.notes.push((self.here(), t));
            }
        }

        fn byte(&mut self, b: u8) {
            self.code.push(b);
        }

        fn bytes(&mut self, bs: &[u8]) {
            self.code.extend_from_slice(bs);
        }

        fn imm32(&mut self, v: i32) {
            self.code.extend_from_slice(&v.to_le_bytes());
        }

        fn imm64(&mut self, v: u64) {
            self.code.extend_from_slice(&v.to_le_bytes());
        }

        /// REX prefix for `reg`/`rm` (or base), omitted when empty.
        fn rex_if(&mut self, w: bool, reg: u8, rm: u8) {
            let rex = 0x40 | (u8::from(w) << 3) | (((reg >> 3) & 1) << 2) | ((rm >> 3) & 1);
            if rex != 0x40 {
                self.byte(rex);
            }
        }

        /// ModRM for `[base + disp32]` (mod=10; SIB when base is r12/rsp).
        fn modrm_mem(&mut self, reg: u8, base: u8, disp: i32) {
            self.byte(0b1000_0000 | ((reg & 7) << 3) | (base & 7));
            if base & 7 == 4 {
                self.byte(0x24);
            }
            self.imm32(disp);
        }

        fn modrm_reg(&mut self, reg: u8, rm: u8) {
            self.byte(0b1100_0000 | ((reg & 7) << 3) | (rm & 7));
        }

        fn op_mem(&mut self, w: bool, opc: &[u8], reg: u8, base: u8, disp: i32) {
            self.rex_if(w, reg, base);
            self.bytes(opc);
            self.modrm_mem(reg, base, disp);
        }

        fn op_reg(&mut self, w: bool, opc: &[u8], reg: u8, rm: u8) {
            self.rex_if(w, reg, rm);
            self.bytes(opc);
            self.modrm_reg(reg, rm);
        }

        /// SSE op with a mandatory prefix byte (F2/66) before REX.
        fn sse_mem(&mut self, prefix: u8, w: bool, opc: &[u8], xmm: u8, base: u8, disp: i32) {
            self.byte(prefix);
            self.rex_if(w, xmm, base);
            self.bytes(opc);
            self.modrm_mem(xmm, base, disp);
        }

        fn sse_reg(&mut self, prefix: u8, w: bool, opc: &[u8], reg: u8, rm: u8) {
            self.byte(prefix);
            self.rex_if(w, reg, rm);
            self.bytes(opc);
            self.modrm_reg(reg, rm);
        }

        // -- moves --

        /// `mov r32, [base+disp]` (zero-extends to 64 bits).
        fn mov_r32_mem(&mut self, dst: u8, base: u8, disp: i32) {
            self.op_mem(false, &[0x8B], dst, base, disp);
        }

        fn mov_r64_mem(&mut self, dst: u8, base: u8, disp: i32) {
            self.op_mem(true, &[0x8B], dst, base, disp);
        }

        fn mov_mem_r64(&mut self, base: u8, disp: i32, src: u8) {
            self.op_mem(true, &[0x89], src, base, disp);
        }

        /// `mov dword [base+disp], imm32`.
        fn mov_mem32_imm(&mut self, base: u8, disp: i32, imm: i32) {
            self.op_mem(false, &[0xC7], 0, base, disp);
            self.imm32(imm);
        }

        /// `movsxd r64, dword [base+disp]`.
        fn movsxd_r64_mem(&mut self, dst: u8, base: u8, disp: i32) {
            self.op_mem(true, &[0x63], dst, base, disp);
        }

        /// `movsxd r64, r32`.
        fn movsxd_r64_r32(&mut self, dst: u8, src: u8) {
            self.op_reg(true, &[0x63], dst, src);
        }

        fn mov_rr64(&mut self, dst: u8, src: u8) {
            self.op_reg(true, &[0x89], src, dst);
        }

        /// `mov r32, r32` (zero-extends; also truncates to u32).
        fn mov_rr32(&mut self, dst: u8, src: u8) {
            self.op_reg(false, &[0x89], src, dst);
        }

        /// `mov r32, imm32` (zero-extends).
        fn mov_r32_imm(&mut self, dst: u8, imm: u32) {
            self.rex_if(false, 0, dst);
            self.byte(0xB8 | (dst & 7));
            self.imm32(imm as i32);
        }

        /// `mov r64, imm32` (sign-extends).
        fn mov_r64_imm32(&mut self, dst: u8, imm: i32) {
            self.op_reg(true, &[0xC7], 0, dst);
            self.imm32(imm);
        }

        /// `movabs r64, imm64`.
        fn movabs(&mut self, dst: u8, imm: u64) {
            self.rex_if(true, 0, dst);
            self.byte(0xB8 | (dst & 7));
            self.imm64(imm);
        }

        // -- integer ALU --

        /// 32-bit `op dst, src` for the MR-form opcodes (add 01, or 09,
        /// and 21, sub 29, xor 31, cmp 39, test 85, mov 89).
        fn alu_rr32(&mut self, opc: u8, dst: u8, src: u8) {
            self.op_reg(false, &[opc], src, dst);
        }

        fn alu_rr64(&mut self, opc: u8, dst: u8, src: u8) {
            self.op_reg(true, &[opc], src, dst);
        }

        /// 32-bit `op rm, imm32` (group-1 opcode 81; ext selects the op).
        fn alu_r32_imm32(&mut self, ext: u8, rm: u8, imm: i32) {
            self.op_reg(false, &[0x81], ext, rm);
            self.imm32(imm);
        }

        fn alu_r64_imm32(&mut self, ext: u8, rm: u8, imm: i32) {
            self.op_reg(true, &[0x81], ext, rm);
            self.imm32(imm);
        }

        fn imul_rr32(&mut self, dst: u8, src: u8) {
            self.op_reg(false, &[0x0F, 0xAF], dst, src);
        }

        fn imul_rr64(&mut self, dst: u8, src: u8) {
            self.op_reg(true, &[0x0F, 0xAF], dst, src);
        }

        /// `imul r64, r64, imm32`.
        fn imul_r64_imm32(&mut self, dst: u8, src: u8, imm: i32) {
            self.op_reg(true, &[0x69], dst, src);
            self.imm32(imm);
        }

        /// `imul r32, r32, imm32`.
        fn imul_r32_imm32(&mut self, dst: u8, src: u8, imm: i32) {
            self.op_reg(false, &[0x69], dst, src);
            self.imm32(imm);
        }

        /// 32-bit shift by `cl` (ext: shl 4, shr 5, sar 7).
        fn shift_cl32(&mut self, ext: u8, rm: u8) {
            self.op_reg(false, &[0xD3], ext, rm);
        }

        /// 32-bit shift by immediate.
        fn shift_imm32(&mut self, ext: u8, rm: u8, imm: u8) {
            self.op_reg(false, &[0xC1], ext, rm);
            self.byte(imm);
        }

        /// 64-bit shift by immediate.
        fn shift_imm64(&mut self, ext: u8, rm: u8, imm: u8) {
            self.op_reg(true, &[0xC1], ext, rm);
            self.byte(imm);
        }

        fn test_rr32(&mut self, a: u8, b: u8) {
            self.alu_rr32(0x85, a, b);
        }

        fn test_rr64(&mut self, a: u8, b: u8) {
            self.alu_rr64(0x85, a, b);
        }

        /// `test al, imm8`.
        fn test_al_imm8(&mut self, imm: u8) {
            self.bytes(&[0xA8, imm]);
        }

        fn cmp_rr32(&mut self, a: u8, b: u8) {
            self.alu_rr32(0x39, a, b);
        }

        fn cmp_rr64(&mut self, a: u8, b: u8) {
            self.alu_rr64(0x39, a, b);
        }

        fn cmp_r32_imm32(&mut self, rm: u8, imm: i32) {
            self.alu_r32_imm32(7, rm, imm);
        }

        fn cmp_r64_imm32(&mut self, rm: u8, imm: i32) {
            self.alu_r64_imm32(7, rm, imm);
        }

        /// `cmp r64, [base+disp]`.
        fn cmp_r64_mem(&mut self, reg: u8, base: u8, disp: i32) {
            self.op_mem(true, &[0x3B], reg, base, disp);
        }

        /// `cmp byte [rax], 0`.
        fn cmp_byte_at_rax_0(&mut self) {
            self.bytes(&[0x80, 0x38, 0x00]);
        }

        /// `setcc r8` (low byte; only rax..rdx used).
        fn setcc(&mut self, cc: u8, rm: u8) {
            self.op_reg(false, &[0x0F, 0x90 | cc], 0, rm);
        }

        /// `movzx r32, r8`.
        fn movzx_r32_r8(&mut self, dst: u8, src: u8) {
            self.op_reg(false, &[0x0F, 0xB6], dst, src);
        }

        /// `and dst8, src8`.
        fn and_r8_r8(&mut self, dst: u8, src: u8) {
            self.op_reg(false, &[0x20], src, dst);
        }

        /// Group-3 unary (ext: not 2, neg 3) on r32.
        fn unary32(&mut self, ext: u8, rm: u8) {
            self.op_reg(false, &[0xF7], ext, rm);
        }

        fn neg64(&mut self, rm: u8) {
            self.op_reg(true, &[0xF7], 3, rm);
        }

        fn cdq(&mut self) {
            self.byte(0x99);
        }

        /// `idiv r32` (divides edx:eax).
        fn idiv32(&mut self, rm: u8) {
            self.op_reg(false, &[0xF7], 7, rm);
        }

        /// `inc qword [base+disp]`.
        fn inc_mem64(&mut self, base: u8, disp: i32) {
            self.op_mem(true, &[0xFF], 0, base, disp);
        }

        /// `btc r64, imm8` (used to flip the f64 sign bit).
        fn btc_r64_imm8(&mut self, rm: u8, imm: u8) {
            self.op_reg(true, &[0x0F, 0xBA], 7, rm);
            self.byte(imm);
        }

        /// `or r64, imm8` (sign-extended).
        fn or_r64_imm8(&mut self, rm: u8, imm: i8) {
            self.op_reg(true, &[0x83], 1, rm);
            self.byte(imm as u8);
        }

        /// `add r64, imm8` (sign-extended).
        fn add_r64_imm8(&mut self, rm: u8, imm: i8) {
            self.op_reg(true, &[0x83], 0, rm);
            self.byte(imm as u8);
        }

        fn xor_rr32(&mut self, rm: u8) {
            self.alu_rr32(0x31, rm, rm);
        }

        // -- SSE --

        /// `movsd xmm, [base+disp]`.
        fn movsd_load(&mut self, xmm: u8, base: u8, disp: i32) {
            self.sse_mem(0xF2, false, &[0x0F, 0x10], xmm, base, disp);
        }

        /// `movsd [base+disp], xmm`.
        fn movsd_store(&mut self, base: u8, disp: i32, xmm: u8) {
            self.sse_mem(0xF2, false, &[0x0F, 0x11], xmm, base, disp);
        }

        /// `addsd`/`subsd`/`mulsd`/`divsd xmm, [base+disp]` by opcode.
        fn sse_arith_mem(&mut self, opc: u8, xmm: u8, base: u8, disp: i32) {
            self.sse_mem(0xF2, false, &[0x0F, opc], xmm, base, disp);
        }

        /// `ucomisd xmm, [base+disp]`.
        fn ucomisd_mem(&mut self, xmm: u8, base: u8, disp: i32) {
            self.sse_mem(0x66, false, &[0x0F, 0x2E], xmm, base, disp);
        }

        /// `ucomisd xmm, xmm`.
        fn ucomisd_reg(&mut self, a: u8, b: u8) {
            self.sse_reg(0x66, false, &[0x0F, 0x2E], a, b);
        }

        /// `cvtsi2sd xmm, dword [base+disp]` (32-bit source).
        fn cvtsi2sd_mem32(&mut self, xmm: u8, base: u8, disp: i32) {
            self.sse_mem(0xF2, false, &[0x0F, 0x2A], xmm, base, disp);
        }

        /// `cvtsi2sd xmm, r32/r64`.
        fn cvtsi2sd_reg(&mut self, xmm: u8, gpr: u8, wide: bool) {
            self.sse_reg(0xF2, wide, &[0x0F, 0x2A], xmm, gpr);
        }

        /// `cvttsd2si r64, xmm`.
        fn cvttsd2si_r64(&mut self, gpr: u8, xmm: u8) {
            self.sse_reg(0xF2, true, &[0x0F, 0x2C], gpr, xmm);
        }

        // -- control flow --

        fn push(&mut self, reg: u8) {
            self.rex_if(false, 0, reg);
            self.byte(0x50 | (reg & 7));
        }

        fn pop(&mut self, reg: u8) {
            self.rex_if(false, 0, reg);
            self.byte(0x58 | (reg & 7));
        }

        fn ret(&mut self) {
            self.byte(0xC3);
        }

        fn ud2(&mut self) {
            self.bytes(&[0x0F, 0x0B]);
        }

        fn call_rax(&mut self) {
            self.bytes(&[0xFF, 0xD0]);
        }

        fn bind(&mut self, label: Label) {
            let pos = self.here();
            let prev = self.labels.insert(label, pos);
            debug_assert!(prev.is_none(), "label {label:?} bound twice");
        }

        fn jmp(&mut self, label: Label) {
            self.byte(0xE9);
            self.fixups.push((self.here(), label));
            self.imm32(0);
        }

        fn jcc(&mut self, cc: u8, label: Label) {
            self.bytes(&[0x0F, 0x80 | cc]);
            self.fixups.push((self.here(), label));
            self.imm32(0);
        }

        /// Patches every rel32 fixup against the bound labels.
        fn finalize(&mut self) {
            for &(pos, label) in &self.fixups {
                let target = *self
                    .labels
                    .get(&label)
                    .unwrap_or_else(|| panic!("unbound label {label:?}"));
                let rel = i32::try_from(target as i64 - (pos as i64 + 4))
                    .expect("jump displacement exceeds rel32");
                self.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
            }
            self.fixups.clear();
        }
    }

    // ---- tree emitter ---------------------------------------------------

    /// Static instruction counts along the path from fragment entry to
    /// (and including) the current instruction. Exits flush these into
    /// the `rbx`/`rbp` accumulators so the native counters replay the
    /// decoded executor's exactly.
    #[derive(Clone, Copy)]
    struct Path {
        insts: u32,
        fused: u32,
    }

    /// One guard's exit trampoline: flush the path counts, then either
    /// jump straight into the stitched fragment or store the exit record
    /// and return.
    struct SiteInfo {
        frag: u32,
        exit: u16,
        add_insts: u32,
        add_fused: u32,
    }

    struct Emitter<'a> {
        asm: Asm,
        frags: &'a [Fragment],
        sites: Vec<SiteInfo>,
        next_local: u32,
        /// Per-tree `CallHelper` side table, interned in emission order;
        /// emitted sites pass an index into it to [`helper_shim`].
        helpers: Vec<Helper>,
    }

    /// Register-file byte offset of virtual register `v` (off `r13`).
    fn vdisp(v: Reg) -> i32 {
        i32::from(v & REG_MASK) * 8
    }

    fn ar_disp(slot: u16) -> i32 {
        i32::from(slot) * 8
    }

    /// Integer compare condition code for a signed 32-bit `cmp a, b`.
    fn int_cc(op: CmpOp) -> u8 {
        match op {
            CmpOp::Eq => CC_E,
            CmpOp::Lt => CC_L,
            CmpOp::Le => CC_LE,
            CmpOp::Gt => CC_G,
            CmpOp::Ge => CC_GE,
        }
    }

    impl<'a> Emitter<'a> {
        fn local(&mut self) -> Label {
            self.next_local += 1;
            Label::Local(self.next_local - 1)
        }

        /// Registers an exit trampoline carrying `path`'s counts.
        fn site(&mut self, frag: u32, exit: u16, path: Path) -> Label {
            self.sites.push(SiteInfo {
                frag,
                exit,
                add_insts: path.insts,
                add_fused: path.fused,
            });
            Label::Site(self.sites.len() as u32 - 1)
        }

        /// A site whose counts were already flushed inline (loop edges).
        fn site_flushed(&mut self, frag: u32, exit: u16) -> Label {
            self.site(frag, exit, Path { insts: 0, fused: 0 })
        }

        /// Index of `h` in the per-tree helper side table, interning it
        /// on first use.
        fn helper_index(&mut self, h: Helper) -> u32 {
            if let Some(i) = self.helpers.iter().position(|&x| x == h) {
                return i as u32;
            }
            self.helpers.push(h);
            self.helpers.len() as u32 - 1
        }

        fn flush_counts(&mut self, path: Path) {
            if path.insts != 0 {
                self.asm.alu_r64_imm32(0, RBX, path.insts as i32);
            }
            if path.fused != 0 {
                self.asm.alu_r64_imm32(0, RBP, path.fused as i32);
            }
        }

        // -- operand helpers --

        fn load_vreg32(&mut self, gpr: u8, v: Reg) {
            self.asm.mov_r32_mem(gpr, R13, vdisp(v));
        }

        fn load_vreg64(&mut self, gpr: u8, v: Reg) {
            self.asm.mov_r64_mem(gpr, R13, vdisp(v));
        }

        fn store_vreg64(&mut self, v: Reg, gpr: u8) {
            self.asm.mov_mem_r64(R13, vdisp(v), gpr);
        }

        /// `movsxd gpr, vreg` — exactly `i64::from(i32_from_word(w))`.
        fn movsxd_vreg(&mut self, gpr: u8, v: Reg) {
            self.asm.movsxd_r64_mem(gpr, R13, vdisp(v));
        }

        fn load_ar32(&mut self, gpr: u8, slot: u16) {
            self.asm.mov_r32_mem(gpr, R14, ar_disp(slot));
        }

        fn load_ar64(&mut self, gpr: u8, slot: u16) {
            self.asm.mov_r64_mem(gpr, R14, ar_disp(slot));
        }

        fn store_ar64(&mut self, slot: u16, gpr: u8) {
            self.asm.mov_mem_r64(R14, ar_disp(slot), gpr);
        }

        /// Materializes word `w` into `gpr` with the shortest encoding.
        fn const_word(&mut self, gpr: u8, w: u64) {
            if let Ok(u) = u32::try_from(w) {
                self.asm.mov_r32_imm(gpr, u);
            } else if let Ok(i) = i32::try_from(w as i64) {
                self.asm.mov_r64_imm32(gpr, i);
            } else {
                self.asm.movabs(gpr, w);
            }
        }

        /// `call shim(rdi, rsi)` — clobbers only caller-saved registers;
        /// the pinned r12–r15/rbx/rbp survive per the System V ABI.
        fn call_shim(&mut self, addr: usize) {
            self.asm.movabs(RAX, addr as u64);
            self.asm.call_rax();
        }

        /// Exits to `site` unless `rax` (any i64) is in the boxable
        /// 31-bit range `[-2^30, 2^30)`: `(rax + 2^30) mod 2^64 < 2^31`.
        /// Clobbers rcx/rdx. The half-open upper bound is exact because
        /// integer results are produced from i64 arithmetic whose only
        /// out-of-range-by-one case (`2^30`) must exit anyway.
        fn range_check_i31(&mut self, site: Label) {
            self.asm.mov_rr64(RCX, RAX);
            self.asm.alu_r64_imm32(0, RCX, 0x4000_0000);
            self.asm.mov_r32_imm(RDX, 0x8000_0000);
            self.asm.cmp_rr64(RCX, RDX);
            self.asm.jcc(CC_AE, site);
        }

        // -- grouped op bodies --

        /// Unchecked 32-bit ALU: `eax = alu_i(op, eax, ecx-or-imm)`,
        /// then sign-extend into rax (the executor stores
        /// `i64::from(result)`).
        fn alu_i_rr(&mut self, op: AluOp) {
            match op {
                AluOp::Add => self.asm.alu_rr32(0x01, RAX, RCX),
                AluOp::Sub => self.asm.alu_rr32(0x29, RAX, RCX),
                AluOp::And => self.asm.alu_rr32(0x21, RAX, RCX),
                AluOp::Or => self.asm.alu_rr32(0x09, RAX, RCX),
                AluOp::Xor => self.asm.alu_rr32(0x31, RAX, RCX),
                AluOp::Mul => self.asm.imul_rr32(RAX, RCX),
                // Hardware masks the count by 31 for 32-bit shifts —
                // exactly the executor's `& 31`.
                AluOp::Shl => self.asm.shift_cl32(4, RAX),
                AluOp::Shr => self.asm.shift_cl32(7, RAX),
                AluOp::UShr => self.asm.shift_cl32(5, RAX),
            }
            self.asm.movsxd_r64_r32(RAX, RAX);
        }

        fn alu_i_imm(&mut self, op: AluOp, imm: i32) {
            match op {
                AluOp::Add => self.asm.alu_r32_imm32(0, RAX, imm),
                AluOp::Sub => self.asm.alu_r32_imm32(5, RAX, imm),
                AluOp::And => self.asm.alu_r32_imm32(4, RAX, imm),
                AluOp::Or => self.asm.alu_r32_imm32(1, RAX, imm),
                AluOp::Xor => self.asm.alu_r32_imm32(6, RAX, imm),
                AluOp::Mul => self.asm.imul_r32_imm32(RAX, RAX, imm),
                AluOp::Shl => self.asm.shift_imm32(4, RAX, (imm & 31) as u8),
                AluOp::Shr => self.asm.shift_imm32(7, RAX, (imm & 31) as u8),
                AluOp::UShr => self.asm.shift_imm32(5, RAX, (imm & 31) as u8),
            }
            self.asm.movsxd_r64_r32(RAX, RAX);
        }

        /// Checked ALU, register-register: result in rax (sign-extended,
        /// range-checked); exits to `site` per `chk_alu_i`. Clobbers
        /// rcx/rdx/rsi.
        fn chk_alu_rr(&mut self, op: ChkOp, a: Reg, b: Reg, site: Label) {
            match op {
                ChkOp::Add => {
                    self.movsxd_vreg(RAX, a);
                    self.movsxd_vreg(RCX, b);
                    self.asm.alu_rr64(0x01, RAX, RCX);
                    self.range_check_i31(site);
                }
                ChkOp::Sub => {
                    self.movsxd_vreg(RAX, a);
                    self.movsxd_vreg(RCX, b);
                    self.asm.alu_rr64(0x29, RAX, RCX);
                    self.range_check_i31(site);
                }
                ChkOp::Mul => {
                    self.movsxd_vreg(RAX, a);
                    self.movsxd_vreg(RCX, b);
                    // Save x: a -0 result (res == 0 with a negative
                    // factor) must exit to the double path.
                    self.asm.mov_rr64(RSI, RAX);
                    self.asm.imul_rr64(RAX, RCX);
                    let l_range = self.local();
                    self.asm.test_rr64(RAX, RAX);
                    self.asm.jcc(CC_NE, l_range);
                    self.asm.test_rr64(RSI, RSI);
                    self.asm.jcc(CC_S, site);
                    self.asm.test_rr64(RCX, RCX);
                    self.asm.jcc(CC_S, site);
                    self.asm.bind(l_range);
                    self.range_check_i31(site);
                }
                ChkOp::Shl => {
                    self.load_vreg32(RCX, b);
                    self.load_vreg32(RAX, a);
                    self.asm.shift_cl32(4, RAX);
                    self.asm.movsxd_r64_r32(RAX, RAX);
                    self.range_check_i31(site);
                }
                ChkOp::UShr => {
                    self.load_vreg32(RCX, b);
                    self.load_vreg32(RAX, a);
                    self.asm.shift_cl32(5, RAX);
                    // Unsigned result: exit when above INT_MAX; the
                    // stored word is the zero-extended u32.
                    self.asm.cmp_r32_imm32(RAX, 0x3FFF_FFFF);
                    self.asm.jcc(CC_A, site);
                }
            }
        }

        /// Checked ALU with an immediate operand; result in rax.
        fn chk_alu_imm(&mut self, op: ChkOp, a: Reg, imm: i32, site: Label) {
            match op {
                ChkOp::Add => {
                    self.movsxd_vreg(RAX, a);
                    self.asm.alu_r64_imm32(0, RAX, imm);
                    self.range_check_i31(site);
                }
                ChkOp::Sub => {
                    self.movsxd_vreg(RAX, a);
                    self.asm.alu_r64_imm32(5, RAX, imm);
                    self.range_check_i31(site);
                }
                ChkOp::Mul => {
                    self.movsxd_vreg(RAX, a);
                    self.asm.mov_rr64(RSI, RAX);
                    self.asm.imul_r64_imm32(RAX, RAX, imm);
                    // -0 check, constant-folded on the immediate's sign:
                    // imm < 0 makes any zero result a -0 candidate;
                    // imm >= 0 needs x < 0 as well.
                    if imm < 0 {
                        self.asm.test_rr64(RAX, RAX);
                        self.asm.jcc(CC_E, site);
                    } else {
                        let l_range = self.local();
                        self.asm.test_rr64(RAX, RAX);
                        self.asm.jcc(CC_NE, l_range);
                        self.asm.test_rr64(RSI, RSI);
                        self.asm.jcc(CC_S, site);
                        self.asm.bind(l_range);
                    }
                    self.range_check_i31(site);
                }
                ChkOp::Shl => {
                    self.load_vreg32(RAX, a);
                    self.asm.shift_imm32(4, RAX, (imm & 31) as u8);
                    self.asm.movsxd_r64_r32(RAX, RAX);
                    self.range_check_i31(site);
                }
                ChkOp::UShr => {
                    self.load_vreg32(RAX, a);
                    self.asm.shift_imm32(5, RAX, (imm & 31) as u8);
                    self.asm.cmp_r32_imm32(RAX, 0x3FFF_FFFF);
                    self.asm.jcc(CC_A, site);
                }
            }
        }

        /// Loads double operands and sets flags for `cmp_d(op, x, y)`.
        /// Returns the condition code under which the compare is TRUE;
        /// NaN operands leave A/AE false (and set PF for Eq, which the
        /// callers handle explicitly).
        fn cmp_d_flags(&mut self, op: CmpOp, a: Reg, b: Reg) -> u8 {
            match op {
                // x < y  ⇔  y above x (ucomisd's unordered ⇒ not-above).
                CmpOp::Lt => {
                    self.asm.movsd_load(XMM0, R13, vdisp(b));
                    self.asm.ucomisd_mem(XMM0, R13, vdisp(a));
                    CC_A
                }
                CmpOp::Le => {
                    self.asm.movsd_load(XMM0, R13, vdisp(b));
                    self.asm.ucomisd_mem(XMM0, R13, vdisp(a));
                    CC_AE
                }
                CmpOp::Gt => {
                    self.asm.movsd_load(XMM0, R13, vdisp(a));
                    self.asm.ucomisd_mem(XMM0, R13, vdisp(b));
                    CC_A
                }
                CmpOp::Ge => {
                    self.asm.movsd_load(XMM0, R13, vdisp(a));
                    self.asm.ucomisd_mem(XMM0, R13, vdisp(b));
                    CC_AE
                }
                CmpOp::Eq => {
                    self.asm.movsd_load(XMM0, R13, vdisp(a));
                    self.asm.ucomisd_mem(XMM0, R13, vdisp(b));
                    CC_E
                }
            }
        }

        /// `eax = cmp_d(op, a, b) as u64` (0 or 1; NaN compares false).
        fn cmp_d_set(&mut self, op: CmpOp, a: Reg, b: Reg) {
            let cc = self.cmp_d_flags(op, a, b);
            if op == CmpOp::Eq {
                // Equal ⇔ ZF=1 ∧ PF=0 (PF flags the unordered case).
                self.asm.setcc(CC_E, RAX);
                self.asm.setcc(CC_NP, RCX);
                self.asm.and_r8_r8(RAX, RCX);
            } else {
                self.asm.setcc(cc, RAX);
            }
            self.asm.movzx_r32_r8(RAX, RAX);
        }

        /// Guard: exit to `site` when `cmp_d(op, a, b) != want`.
        fn cmp_d_branch(&mut self, op: CmpOp, want: bool, a: Reg, b: Reg, site: Label) {
            let cc = self.cmp_d_flags(op, a, b);
            if op == CmpOp::Eq {
                if want {
                    self.asm.jcc(CC_P, site);
                    self.asm.jcc(CC_NE, site);
                } else {
                    let skip = self.local();
                    self.asm.jcc(CC_P, skip);
                    self.asm.jcc(CC_E, site);
                    self.asm.bind(skip);
                }
            } else if want {
                // Exit when the compare is false; unordered makes BE/B
                // fire, which is correct (NaN compares false).
                self.asm.jcc(cc ^ 1, site);
            } else {
                self.asm.jcc(cc, site);
            }
        }

        /// `eax = cmp_i(op, a, b) as u64` with `b` preloaded into ecx.
        fn cmp_i_set_rr(&mut self, op: CmpOp, a: Reg, b: Reg) {
            self.load_vreg32(RAX, a);
            self.load_vreg32(RCX, b);
            self.asm.cmp_rr32(RAX, RCX);
            let cc = int_cc(op);
            self.asm.setcc(cc, RAX);
            self.asm.movzx_r32_r8(RAX, RAX);
        }

        fn cmp_i_set_imm(&mut self, op: CmpOp, a: Reg, imm: i32) {
            self.load_vreg32(RAX, a);
            self.asm.cmp_r32_imm32(RAX, imm);
            let cc = int_cc(op);
            self.asm.setcc(cc, RAX);
            self.asm.movzx_r32_r8(RAX, RAX);
        }

        /// The §6.4 loop edge: counts flushed, iteration recorded, then
        /// interrupt/GC/fuel polls (each exits through a zero-add site)
        /// before jumping back to the tree anchor.
        fn loop_edge(&mut self, frag: u32, loop_exit: u16, path: Path) {
            self.flush_counts(path);
            let site = self.site_flushed(frag, loop_exit);
            self.asm.inc_mem64(R15, CTX_ITER);
            self.asm.mov_r64_mem(RAX, R15, CTX_INTERRUPT);
            self.asm.cmp_byte_at_rax_0();
            self.asm.jcc(CC_NE, site);
            self.asm.mov_r64_mem(RAX, R15, CTX_GC);
            self.asm.cmp_byte_at_rax_0();
            self.asm.jcc(CC_NE, site);
            self.asm.cmp_r64_mem(RBX, R15, CTX_FUEL);
            self.asm.jcc(CC_AE, site);
            self.asm.jmp(Label::Frag(0));
        }

        /// Emits one virtual-ISA instruction of fragment `k`. `path`
        /// includes this instruction (dispatch counts before execution).
        #[allow(clippy::too_many_lines)]
        fn emit_inst(&mut self, k: u32, inst: &MachInst, path: Path) {
            match *inst {
                MachInst::ConstW { d, w } => {
                    self.const_word(RAX, w);
                    self.store_vreg64(d, RAX);
                }
                MachInst::Mov { d, s } => {
                    self.load_vreg64(RAX, s);
                    self.store_vreg64(d, RAX);
                }
                MachInst::LoadSpill { d, slot } => {
                    self.asm.mov_r64_mem(RAX, R12, i32::from(slot) * 8);
                    self.store_vreg64(d, RAX);
                }
                MachInst::StoreSpill { slot, s } => {
                    self.load_vreg64(RAX, s);
                    self.asm.mov_mem_r64(R12, i32::from(slot) * 8, RAX);
                }
                MachInst::ReadAr { d, slot } => {
                    self.load_ar64(RAX, slot);
                    self.store_vreg64(d, RAX);
                }
                MachInst::WriteAr { slot, s } => {
                    self.load_vreg64(RAX, s);
                    self.store_ar64(slot, RAX);
                }

                MachInst::AddI { d, a, b }
                | MachInst::SubI { d, a, b }
                | MachInst::MulI { d, a, b }
                | MachInst::AndI { d, a, b }
                | MachInst::OrI { d, a, b }
                | MachInst::XorI { d, a, b }
                | MachInst::ShlI { d, a, b }
                | MachInst::ShrI { d, a, b }
                | MachInst::UShrI { d, a, b } => {
                    let op = match inst {
                        MachInst::AddI { .. } => AluOp::Add,
                        MachInst::SubI { .. } => AluOp::Sub,
                        MachInst::MulI { .. } => AluOp::Mul,
                        MachInst::AndI { .. } => AluOp::And,
                        MachInst::OrI { .. } => AluOp::Or,
                        MachInst::XorI { .. } => AluOp::Xor,
                        MachInst::ShlI { .. } => AluOp::Shl,
                        MachInst::ShrI { .. } => AluOp::Shr,
                        _ => AluOp::UShr,
                    };
                    self.load_vreg32(RCX, b);
                    self.load_vreg32(RAX, a);
                    self.alu_i_rr(op);
                    self.store_vreg64(d, RAX);
                }
                MachInst::NotI { d, a } => {
                    self.load_vreg32(RAX, a);
                    self.asm.unary32(2, RAX);
                    self.asm.movsxd_r64_r32(RAX, RAX);
                    self.store_vreg64(d, RAX);
                }
                MachInst::NegI { d, a } => {
                    self.load_vreg32(RAX, a);
                    self.asm.unary32(3, RAX);
                    self.asm.movsxd_r64_r32(RAX, RAX);
                    self.store_vreg64(d, RAX);
                }

                MachInst::AddIChk { d, a, b, exit } => {
                    let site = self.site(k, exit, path);
                    self.chk_alu_rr(ChkOp::Add, a, b, site);
                    self.store_vreg64(d, RAX);
                }
                MachInst::SubIChk { d, a, b, exit } => {
                    let site = self.site(k, exit, path);
                    self.chk_alu_rr(ChkOp::Sub, a, b, site);
                    self.store_vreg64(d, RAX);
                }
                MachInst::MulIChk { d, a, b, exit } => {
                    let site = self.site(k, exit, path);
                    self.chk_alu_rr(ChkOp::Mul, a, b, site);
                    self.store_vreg64(d, RAX);
                }
                MachInst::ShlIChk { d, a, b, exit } => {
                    let site = self.site(k, exit, path);
                    self.chk_alu_rr(ChkOp::Shl, a, b, site);
                    self.store_vreg64(d, RAX);
                }
                MachInst::UShrIChk { d, a, b, exit } => {
                    let site = self.site(k, exit, path);
                    self.chk_alu_rr(ChkOp::UShr, a, b, site);
                    self.store_vreg64(d, RAX);
                }
                MachInst::NegIChk { d, a, exit } => {
                    let site = self.site(k, exit, path);
                    self.movsxd_vreg(RAX, a);
                    self.asm.test_rr64(RAX, RAX);
                    self.asm.jcc(CC_E, site);
                    self.asm.neg64(RAX);
                    self.range_check_i31(site);
                    self.store_vreg64(d, RAX);
                }
                MachInst::ModIChk { d, a, b, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg32(RCX, b);
                    self.load_vreg32(RAX, a);
                    self.asm.test_rr32(RCX, RCX);
                    self.asm.jcc(CC_E, site);
                    // y == -1 would trap on INT32_MIN / -1; the result is
                    // always 0, exiting only when x < 0 (a -0 result).
                    let l_div = self.local();
                    let l_store = self.local();
                    let l_done = self.local();
                    self.asm.cmp_r32_imm32(RCX, -1);
                    self.asm.jcc(CC_NE, l_div);
                    self.asm.test_rr32(RAX, RAX);
                    self.asm.jcc(CC_S, site);
                    self.asm.xor_rr32(RAX);
                    self.asm.jmp(l_done);
                    self.asm.bind(l_div);
                    self.asm.mov_rr32(RSI, RAX);
                    self.asm.cdq();
                    self.asm.idiv32(RCX);
                    // Remainder 0 from a negative dividend is -0.
                    self.asm.test_rr32(RDX, RDX);
                    self.asm.jcc(CC_NE, l_store);
                    self.asm.test_rr32(RSI, RSI);
                    self.asm.jcc(CC_S, site);
                    self.asm.bind(l_store);
                    self.asm.mov_rr32(RAX, RDX);
                    self.asm.bind(l_done);
                    self.asm.movsxd_r64_r32(RAX, RAX);
                    self.store_vreg64(d, RAX);
                }

                MachInst::AddD { d, a, b }
                | MachInst::SubD { d, a, b }
                | MachInst::MulD { d, a, b }
                | MachInst::DivD { d, a, b } => {
                    let opc = match inst {
                        MachInst::AddD { .. } => 0x58,
                        MachInst::SubD { .. } => 0x5C,
                        MachInst::MulD { .. } => 0x59,
                        _ => 0x5E,
                    };
                    self.asm.movsd_load(XMM0, R13, vdisp(a));
                    self.asm.sse_arith_mem(opc, XMM0, R13, vdisp(b));
                    self.asm.movsd_store(R13, vdisp(d), XMM0);
                }
                MachInst::ModD { d, a, b } => {
                    self.load_vreg64(RDI, a);
                    self.load_vreg64(RSI, b);
                    self.call_shim(fmod_shim as extern "sysv64" fn(u64, u64) -> u64 as usize);
                    self.store_vreg64(d, RAX);
                }
                MachInst::NegD { d, a } => {
                    self.load_vreg64(RAX, a);
                    self.asm.btc_r64_imm8(RAX, 63);
                    self.store_vreg64(d, RAX);
                }

                MachInst::EqI { d, a, b }
                | MachInst::LtI { d, a, b }
                | MachInst::LeI { d, a, b }
                | MachInst::GtI { d, a, b }
                | MachInst::GeI { d, a, b } => {
                    let op = match inst {
                        MachInst::EqI { .. } => CmpOp::Eq,
                        MachInst::LtI { .. } => CmpOp::Lt,
                        MachInst::LeI { .. } => CmpOp::Le,
                        MachInst::GtI { .. } => CmpOp::Gt,
                        _ => CmpOp::Ge,
                    };
                    self.cmp_i_set_rr(op, a, b);
                    self.store_vreg64(d, RAX);
                }
                MachInst::EqD { d, a, b }
                | MachInst::LtD { d, a, b }
                | MachInst::LeD { d, a, b }
                | MachInst::GtD { d, a, b }
                | MachInst::GeD { d, a, b } => {
                    let op = match inst {
                        MachInst::EqD { .. } => CmpOp::Eq,
                        MachInst::LtD { .. } => CmpOp::Lt,
                        MachInst::LeD { .. } => CmpOp::Le,
                        MachInst::GtD { .. } => CmpOp::Gt,
                        _ => CmpOp::Ge,
                    };
                    self.cmp_d_set(op, a, b);
                    self.store_vreg64(d, RAX);
                }
                MachInst::NotB { d, a } => {
                    self.load_vreg64(RAX, a);
                    self.asm.test_rr64(RAX, RAX);
                    self.asm.setcc(CC_E, RAX);
                    self.asm.movzx_r32_r8(RAX, RAX);
                    self.store_vreg64(d, RAX);
                }

                MachInst::I2D { d, a } => {
                    self.asm.cvtsi2sd_mem32(XMM0, R13, vdisp(a));
                    self.asm.movsd_store(R13, vdisp(d), XMM0);
                }
                MachInst::U2D { d, a } => {
                    // f64::from(u32): zero-extend then convert as i64.
                    self.load_vreg32(RAX, a);
                    self.asm.cvtsi2sd_reg(XMM0, RAX, true);
                    self.asm.movsd_store(R13, vdisp(d), XMM0);
                }
                MachInst::D2IChk { d, a, exit } => {
                    let site = self.site(k, exit, path);
                    self.asm.movsd_load(XMM0, R13, vdisp(a));
                    self.asm.cvttsd2si_r64(RAX, XMM0);
                    self.asm.cvtsi2sd_reg(XMM1, RAX, true);
                    // Round trip differs ⇔ fractional / NaN / out of i64
                    // range (the cvttsd2si sentinel never converts back).
                    self.asm.ucomisd_reg(XMM0, XMM1);
                    self.asm.jcc(CC_P, site);
                    self.asm.jcc(CC_NE, site);
                    let l_range = self.local();
                    self.asm.test_rr64(RAX, RAX);
                    self.asm.jcc(CC_NE, l_range);
                    // rax == 0 with nonzero bits ⇔ -0.0.
                    self.load_vreg64(RCX, a);
                    self.asm.test_rr64(RCX, RCX);
                    self.asm.jcc(CC_NE, site);
                    self.asm.bind(l_range);
                    self.range_check_i31(site);
                    self.store_vreg64(d, RAX);
                }
                MachInst::D2I32 { d, a } => {
                    self.load_vreg64(RDI, a);
                    self.call_shim(d2i32_shim as extern "sysv64" fn(u64) -> u64 as usize);
                    self.store_vreg64(d, RAX);
                }
                MachInst::ChkRangeI { d, a, exit } => {
                    let site = self.site(k, exit, path);
                    self.movsxd_vreg(RAX, a);
                    self.range_check_i31(site);
                    self.store_vreg64(d, RAX);
                }

                MachInst::BoxI { d, a } => {
                    // Fast path: in-range ints box inline (tag bit 0 = 1);
                    // out-of-range values allocate a heap double.
                    self.load_vreg32(RAX, a);
                    let l_slow = self.local();
                    let l_done = self.local();
                    self.asm.mov_rr32(RCX, RAX);
                    self.asm.alu_r32_imm32(0, RCX, 0x4000_0000);
                    self.asm.test_rr32(RCX, RCX);
                    self.asm.jcc(CC_S, l_slow);
                    self.asm.shift_imm64(4, RAX, 1);
                    self.asm.or_r64_imm8(RAX, 1);
                    self.asm.jmp(l_done);
                    self.asm.bind(l_slow);
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.asm.mov_rr32(RSI, RAX);
                    self.call_shim(
                        boxi_slow_shim as extern "sysv64" fn(*mut Realm, u32) -> u64 as usize,
                    );
                    self.asm.bind(l_done);
                    self.store_vreg64(d, RAX);
                }
                MachInst::BoxD { d, a } => {
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg64(RSI, a);
                    self.call_shim(
                        boxd_shim as extern "sysv64" fn(*mut Realm, u64) -> u64 as usize,
                    );
                    self.store_vreg64(d, RAX);
                }
                MachInst::BoxB { d, a } => {
                    // (b as u64) << 3 | SPECIAL tag: false → 6, true → 14.
                    self.load_vreg64(RAX, a);
                    self.asm.test_rr64(RAX, RAX);
                    self.asm.setcc(CC_NE, RAX);
                    self.asm.movzx_r32_r8(RAX, RAX);
                    self.asm.shift_imm64(4, RAX, 3);
                    self.asm.add_r64_imm8(RAX, 6);
                    self.store_vreg64(d, RAX);
                }
                MachInst::BoxObj { d, a } => {
                    self.load_vreg32(RAX, a);
                    self.asm.shift_imm64(4, RAX, 3);
                    self.store_vreg64(d, RAX);
                }
                MachInst::BoxStr { d, a } => {
                    self.load_vreg32(RAX, a);
                    self.asm.shift_imm64(4, RAX, 3);
                    self.asm.or_r64_imm8(RAX, 4);
                    self.store_vreg64(d, RAX);
                }

                MachInst::UnboxI { d, a, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg64(RAX, a);
                    self.asm.test_al_imm8(1);
                    self.asm.jcc(CC_E, site);
                    // ((raw as u32) as i32) >> 1, stored sign-extended.
                    self.asm.shift_imm32(7, RAX, 1);
                    self.asm.movsxd_r64_r32(RAX, RAX);
                    self.store_vreg64(d, RAX);
                }
                MachInst::UnboxD { d, a, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg64(RAX, a);
                    self.asm.mov_rr32(RCX, RAX);
                    self.asm.alu_r32_imm32(4, RCX, 7);
                    self.asm.cmp_r32_imm32(RCX, 2);
                    self.asm.jcc(CC_NE, site);
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.asm.mov_rr64(RSI, RAX);
                    self.call_shim(
                        unbox_double_shim as extern "sysv64" fn(*const Realm, u64) -> u64 as usize,
                    );
                    self.store_vreg64(d, RAX);
                }
                MachInst::UnboxNumD { d, a, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg64(RAX, a);
                    let l_notint = self.local();
                    let l_done = self.local();
                    self.asm.test_al_imm8(1);
                    self.asm.jcc(CC_E, l_notint);
                    self.asm.shift_imm32(7, RAX, 1);
                    self.asm.cvtsi2sd_reg(XMM0, RAX, false);
                    self.asm.movsd_store(R13, vdisp(d), XMM0);
                    self.asm.jmp(l_done);
                    self.asm.bind(l_notint);
                    self.asm.mov_rr32(RCX, RAX);
                    self.asm.alu_r32_imm32(4, RCX, 7);
                    self.asm.cmp_r32_imm32(RCX, 2);
                    self.asm.jcc(CC_NE, site);
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.asm.mov_rr64(RSI, RAX);
                    self.call_shim(
                        unbox_double_shim as extern "sysv64" fn(*const Realm, u64) -> u64 as usize,
                    );
                    self.store_vreg64(d, RAX);
                    self.asm.bind(l_done);
                }
                MachInst::UnboxObj { d, a, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg64(RAX, a);
                    self.asm.test_al_imm8(7);
                    self.asm.jcc(CC_NE, site);
                    self.asm.shift_imm64(5, RAX, 3);
                    // Object ids are u32: truncate like `(raw >> 3) as u32`.
                    self.asm.mov_rr32(RAX, RAX);
                    self.store_vreg64(d, RAX);
                }
                MachInst::UnboxStr { d, a, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg64(RAX, a);
                    self.asm.mov_rr32(RCX, RAX);
                    self.asm.alu_r32_imm32(4, RCX, 7);
                    self.asm.cmp_r32_imm32(RCX, 4);
                    self.asm.jcc(CC_NE, site);
                    self.asm.shift_imm64(5, RAX, 3);
                    self.asm.mov_rr32(RAX, RAX);
                    self.store_vreg64(d, RAX);
                }
                MachInst::UnboxBool { d, a, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg64(RAX, a);
                    let l_nottrue = self.local();
                    let l_done = self.local();
                    self.asm.cmp_r64_imm32(RAX, 14);
                    self.asm.jcc(CC_NE, l_nottrue);
                    self.asm.mov_r32_imm(RAX, 1);
                    self.asm.jmp(l_done);
                    self.asm.bind(l_nottrue);
                    self.asm.cmp_r64_imm32(RAX, 6);
                    self.asm.jcc(CC_NE, site);
                    self.asm.xor_rr32(RAX);
                    self.asm.bind(l_done);
                    self.store_vreg64(d, RAX);
                }

                MachInst::GuardTrue { s, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg64(RAX, s);
                    self.asm.test_rr64(RAX, RAX);
                    self.asm.jcc(CC_E, site);
                }
                MachInst::GuardFalse { s, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg64(RAX, s);
                    self.asm.test_rr64(RAX, RAX);
                    self.asm.jcc(CC_NE, site);
                }
                MachInst::GuardBoxedEq { s, w, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg64(RAX, s);
                    if let Ok(i) = i32::try_from(w as i64) {
                        self.asm.cmp_r64_imm32(RAX, i);
                    } else {
                        self.const_word(RCX, w);
                        self.asm.cmp_rr64(RAX, RCX);
                    }
                    self.asm.jcc(CC_NE, site);
                }

                MachInst::LoopBack { exit } => self.loop_edge(k, exit, path),
                MachInst::End { exit } => {
                    let site = self.site(k, exit, path);
                    self.asm.jmp(site);
                }

                // ----- fused superinstructions -----
                MachInst::CmpBranchI { op, want, a, b, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg32(RAX, a);
                    self.load_vreg32(RCX, b);
                    self.asm.cmp_rr32(RAX, RCX);
                    let cc = int_cc(op);
                    self.asm.jcc(if want { cc ^ 1 } else { cc }, site);
                }
                MachInst::CmpBranchD { op, want, a, b, exit } => {
                    let site = self.site(k, exit, path);
                    self.cmp_d_branch(op, want, a, b, site);
                }
                MachInst::CmpBranchLoopI { op, want, a, b, exit, loop_exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg32(RAX, a);
                    self.load_vreg32(RCX, b);
                    self.asm.cmp_rr32(RAX, RCX);
                    let cc = int_cc(op);
                    self.asm.jcc(if want { cc ^ 1 } else { cc }, site);
                    self.loop_edge(k, loop_exit, path);
                }
                MachInst::CmpBranchLoopD { op, want, a, b, exit, loop_exit } => {
                    let site = self.site(k, exit, path);
                    self.cmp_d_branch(op, want, a, b, site);
                    self.loop_edge(k, loop_exit, path);
                }
                MachInst::AluImmI { op, d, a, imm } => {
                    self.load_vreg32(RAX, a);
                    self.alu_i_imm(op, imm);
                    self.store_vreg64(d, RAX);
                }
                MachInst::AluArI { op, d, slot, b } => {
                    self.load_vreg32(RCX, b);
                    self.load_ar32(RAX, slot);
                    self.alu_i_rr(op);
                    self.store_vreg64(d, RAX);
                }
                MachInst::AluWrI { op, d, a, b, slot } => {
                    self.load_vreg32(RCX, b);
                    self.load_vreg32(RAX, a);
                    self.alu_i_rr(op);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                }
                MachInst::AluImmWrI { op, d, a, imm, slot } => {
                    self.load_vreg32(RAX, a);
                    self.alu_i_imm(op, imm);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                }
                MachInst::ChkAluImmI { op, d, a, imm, exit } => {
                    let site = self.site(k, exit, path);
                    self.chk_alu_imm(op, a, imm, site);
                    self.store_vreg64(d, RAX);
                }
                MachInst::ChkAluWrI { op, d, a, b, exit, slot } => {
                    let site = self.site(k, exit, path);
                    self.chk_alu_rr(op, a, b, site);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                }
                MachInst::ChkAluImmWrI { op, d, a, imm, exit, slot } => {
                    let site = self.site(k, exit, path);
                    self.chk_alu_imm(op, a, imm, site);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                }
                MachInst::ChkAluImmWrLoopI { op, d, a, imm, slot, exit, loop_exit } => {
                    let site = self.site(k, exit, path);
                    self.chk_alu_imm(op, a, imm, site);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                    self.loop_edge(k, loop_exit, path);
                }
                MachInst::ConstWrAr { d, w, slot } => {
                    self.const_word(RAX, w);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                }
                MachInst::MovAr { d, src, dst } => {
                    self.load_ar64(RAX, src);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(dst, RAX);
                }
                MachInst::WriteAr2 { slot_a, s_a, slot_b, s_b } => {
                    self.load_vreg64(RAX, s_a);
                    self.store_ar64(slot_a, RAX);
                    self.load_vreg64(RAX, s_b);
                    self.store_ar64(slot_b, RAX);
                }
                MachInst::WriteAr3 { slot_a, s_a, slot_b, s_b, slot_c, s_c } => {
                    self.load_vreg64(RAX, s_a);
                    self.store_ar64(slot_a, RAX);
                    self.load_vreg64(RAX, s_b);
                    self.store_ar64(slot_b, RAX);
                    self.load_vreg64(RAX, s_c);
                    self.store_ar64(slot_c, RAX);
                }
                MachInst::AluArWrI { op, d, slot_a, b, slot_d } => {
                    self.load_vreg32(RCX, b);
                    self.load_ar32(RAX, slot_a);
                    self.alu_i_rr(op);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot_d, RAX);
                }
                MachInst::CmpImmI { op, d, a, imm } => {
                    self.cmp_i_set_imm(op, a, imm);
                    self.store_vreg64(d, RAX);
                }
                MachInst::CmpWrI { op, d, a, b, slot } => {
                    self.cmp_i_set_rr(op, a, b);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                }
                MachInst::CmpWrD { op, d, a, b, slot } => {
                    self.cmp_d_set(op, a, b);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                }
                MachInst::CmpImmWrI { op, d, a, imm, slot } => {
                    self.cmp_i_set_imm(op, a, imm);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                }
                MachInst::CmpBranchImmI { op, want, a, imm, exit } => {
                    let site = self.site(k, exit, path);
                    self.load_vreg32(RAX, a);
                    self.asm.cmp_r32_imm32(RAX, imm);
                    let cc = int_cc(op);
                    self.asm.jcc(if want { cc ^ 1 } else { cc }, site);
                }
                MachInst::CmpWrBranchI { op, want, d, a, b, slot, exit } => {
                    let site = self.site(k, exit, path);
                    self.cmp_i_set_rr(op, a, b);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                    self.asm.test_rr32(RAX, RAX);
                    self.asm.jcc(if want { CC_E } else { CC_NE }, site);
                }
                MachInst::CmpWrBranchD { op, want, d, a, b, slot, exit } => {
                    let site = self.site(k, exit, path);
                    self.cmp_d_set(op, a, b);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                    self.asm.test_rr32(RAX, RAX);
                    self.asm.jcc(if want { CC_E } else { CC_NE }, site);
                }
                MachInst::CmpImmWrBranchI { op, want, d, a, imm, slot, exit } => {
                    let site = self.site(k, exit, path);
                    self.cmp_i_set_imm(op, a, imm);
                    self.store_vreg64(d, RAX);
                    self.store_ar64(slot, RAX);
                    self.asm.test_rr32(RAX, RAX);
                    self.asm.jcc(if want { CC_E } else { CC_NE }, site);
                }

                // -- heap-walking ops: realm in rdi, operands in
                // rsi/rdx/rcx, result back in rax. Calls go through the
                // shim block above (arena data pointers are not stable
                // enough to bake into code); the pinned r12–r15/rbx/rbp
                // survive the System V call, so only the current
                // instruction's scratch is live across it.

                MachInst::GuardShape { obj, shape, exit } => {
                    let site = self.site(k, exit, path);
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg32(RSI, obj);
                    self.call_shim(
                        shape_of_shim as extern "sysv64" fn(*const Realm, u64) -> u64 as usize,
                    );
                    self.asm.cmp_r32_imm32(RAX, shape as i32);
                    self.asm.jcc(CC_NE, site);
                }
                MachInst::GuardClass { obj, class, exit } => {
                    let site = self.site(k, exit, path);
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg32(RSI, obj);
                    self.call_shim(
                        class_of_shim as extern "sysv64" fn(*const Realm, u64) -> u64 as usize,
                    );
                    self.asm.cmp_r32_imm32(RAX, i32::from(class));
                    self.asm.jcc(CC_NE, site);
                }
                MachInst::GuardBound { arr, idx, exit } => {
                    let site = self.site(k, exit, path);
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg32(RSI, arr);
                    self.call_shim(
                        elems_len_shim as extern "sysv64" fn(*const Realm, u64) -> u64 as usize,
                    );
                    // i64 index < 0, or >= the element count, exits.
                    self.movsxd_vreg(RCX, idx);
                    self.asm.test_rr64(RCX, RCX);
                    self.asm.jcc(CC_S, site);
                    self.asm.cmp_rr64(RCX, RAX);
                    self.asm.jcc(CC_AE, site);
                }
                MachInst::LoadSlot { d, o, slot } => {
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg32(RSI, o);
                    self.asm.mov_r32_imm(RDX, slot);
                    self.call_shim(
                        load_slot_shim as extern "sysv64" fn(*const Realm, u64, u64) -> u64
                            as usize,
                    );
                    self.store_vreg64(d, RAX);
                }
                MachInst::StoreSlot { o, slot, s } => {
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg32(RSI, o);
                    self.asm.mov_r32_imm(RDX, slot);
                    self.load_vreg64(RCX, s);
                    self.call_shim(
                        store_slot_shim as extern "sysv64" fn(*mut Realm, u64, u64, u64)
                            as usize,
                    );
                }
                MachInst::LoadProto { d, o } => {
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg32(RSI, o);
                    self.call_shim(
                        load_proto_shim as extern "sysv64" fn(*const Realm, u64) -> u64 as usize,
                    );
                    self.store_vreg64(d, RAX);
                }
                MachInst::LoadElem { d, a, i } => {
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg32(RSI, a);
                    self.movsxd_vreg(RDX, i);
                    self.call_shim(
                        load_elem_shim as extern "sysv64" fn(*const Realm, u64, i64) -> u64
                            as usize,
                    );
                    self.store_vreg64(d, RAX);
                }
                MachInst::StoreElem { a, i, s } => {
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg32(RSI, a);
                    self.movsxd_vreg(RDX, i);
                    self.load_vreg64(RCX, s);
                    self.call_shim(
                        store_elem_shim as extern "sysv64" fn(*mut Realm, u64, i64, u64)
                            as usize,
                    );
                }
                MachInst::ArrayLen { d, a } => {
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg32(RSI, a);
                    self.call_shim(
                        array_len_shim as extern "sysv64" fn(*const Realm, u64) -> u64 as usize,
                    );
                    self.store_vreg64(d, RAX);
                }
                MachInst::StrLen { d, a } => {
                    self.asm.mov_r64_mem(RDI, R15, CTX_REALM);
                    self.load_vreg32(RSI, a);
                    self.call_shim(
                        str_len_shim as extern "sysv64" fn(*const Realm, u64) -> u64 as usize,
                    );
                    self.store_vreg64(d, RAX);
                }

                // -- runtime re-entry --

                MachInst::CallHelper { d, helper, ref args, exit } => {
                    let site = self.site(k, exit, path);
                    let idx = self.helper_index(helper);
                    self.asm.note(|| format!("; helper table[{idx}] = {helper:?}"));
                    for (n, &s) in args.iter().enumerate() {
                        self.load_vreg64(RAX, s);
                        self.asm.mov_mem_r64(R15, CTX_HARGS + n as i32 * 8, RAX);
                    }
                    self.asm.mov_rr64(RDI, R15);
                    self.asm.mov_r32_imm(RSI, idx);
                    self.asm.mov_r32_imm(RDX, args.len() as u32);
                    self.call_shim(
                        helper_shim as extern "sysv64" fn(*mut NativeCtx, u32, u32) -> u32
                            as usize,
                    );
                    // The result store on the exit/error paths writes a
                    // stale scratch word into a dead vreg — harmless,
                    // and it keeps the status dispatch branch-light.
                    self.asm.mov_rr32(RCX, RAX);
                    self.asm.mov_r64_mem(RAX, R15, CTX_HRESULT);
                    self.store_vreg64(d, RAX);
                    self.asm.cmp_r32_imm32(RCX, ST_ERR as i32);
                    self.asm.jcc(CC_E, Label::Epilogue);
                    self.asm.test_rr32(RCX, RCX);
                    self.asm.jcc(CC_NE, site);
                }
                MachInst::CallTree { tree, exit } => {
                    let site = self.site(k, exit, path);
                    self.asm.mov_rr64(RDI, R15);
                    self.asm.mov_r32_imm(RSI, tree);
                    self.call_shim(
                        call_tree_shim as extern "sysv64" fn(*mut NativeCtx, u32) -> u32 as usize,
                    );
                    self.asm.cmp_r32_imm32(RAX, ST_ERR as i32);
                    self.asm.jcc(CC_E, Label::Epilogue);
                    // ST_EXIT: the inner call left on an unexpected
                    // exit; take this instruction's side exit.
                    self.asm.test_rr32(RAX, RAX);
                    self.asm.jcc(CC_NE, site);
                }
            }
        }

        /// Function prologue: save callee-saved registers, align the
        /// stack for shim calls, pin the ctx/AR/regs/spill pointers, zero
        /// the counters, and dispatch on `ctx.start`.
        fn prologue(&mut self) {
            self.asm.note(|| "; prologue".into());
            for reg in [RBX, RBP, R12, R13, R14, R15] {
                self.asm.push(reg);
            }
            self.asm.bytes(&[0x48, 0x83, 0xEC, 0x08]); // sub rsp, 8
            self.asm.mov_rr64(R15, RDI);
            self.asm.mov_r64_mem(R14, R15, CTX_AR);
            self.asm.mov_r64_mem(R13, R15, CTX_REGS);
            self.asm.mov_r64_mem(R12, R15, CTX_SPILL);
            self.asm.xor_rr32(RBX);
            self.asm.xor_rr32(RBP);
            self.asm.note(|| "; entry dispatch on ctx.start".into());
            self.asm.mov_r32_mem(RAX, R15, CTX_START);
            for key in 0..self.frags.len() as u32 {
                self.asm.cmp_r32_imm32(RAX, key as i32);
                self.asm.jcc(CC_E, Label::Frag(key));
            }
            self.asm.ud2();
        }

        /// Emits every registered exit trampoline. Stitched exits jump
        /// straight into the target fragment (counts carried in the
        /// pinned accumulators); unstitched exits record the exit and
        /// leave through the epilogue.
        fn emit_sites(&mut self) {
            for n in 0..self.sites.len() {
                let SiteInfo { frag, exit, add_insts, add_fused } = self.sites[n];
                let target = self.frags[frag as usize].stitch[exit as usize];
                self.asm.note(|| {
                    let resolved = if target == EXIT_UNSTITCHED {
                        "return".to_string()
                    } else {
                        format!("jmp fragment {target}")
                    };
                    format!("; exit site: fragment {frag} exit {exit} -> {resolved}")
                });
                self.asm.bind(Label::Site(n as u32));
                self.flush_counts(Path { insts: add_insts, fused: add_fused });
                if target == EXIT_UNSTITCHED {
                    self.asm.mov_mem32_imm(R15, CTX_EXIT_FRAG, frag as i32);
                    self.asm.mov_mem32_imm(R15, CTX_EXIT_ID, i32::from(exit));
                    self.asm.jmp(Label::Epilogue);
                } else {
                    self.asm.jmp(Label::Frag(target));
                }
            }
        }

        fn epilogue(&mut self) {
            self.asm.note(|| "; epilogue".into());
            self.asm.bind(Label::Epilogue);
            self.asm.mov_mem_r64(R15, CTX_INSTS, RBX);
            self.asm.mov_mem_r64(R15, CTX_FUSED, RBP);
            self.asm.bytes(&[0x48, 0x83, 0xC4, 0x08]); // add rsp, 8
            for reg in [R15, R14, R13, R12, RBP, RBX] {
                self.asm.pop(reg);
            }
            self.asm.ret();
        }
    }

    /// Translates a whole trace tree (trunk fragment 0 plus stitched
    /// branch fragments) into one executable buffer.
    ///
    /// # Errors
    ///
    /// [`Unsupported`] when any fragment contains an op outside the
    /// native subset, or when the OS refuses an executable mapping. The
    /// caller falls back to the decoded executor for the whole tree.
    pub fn emit_tree(fragments: &[Fragment]) -> Result<NativeTree, Unsupported> {
        emit_tree_with(fragments, false)
    }

    /// [`emit_tree`], additionally collecting the per-instruction and
    /// exit-trampoline annotations [`NativeTree::hexdump`] interleaves
    /// with the code bytes. Diagnostics only: formatting the annotations
    /// costs more than the emission itself.
    pub fn emit_tree_annotated(fragments: &[Fragment]) -> Result<NativeTree, Unsupported> {
        emit_tree_with(fragments, true)
    }

    fn emit_tree_with(fragments: &[Fragment], annotate: bool) -> Result<NativeTree, Unsupported> {
        for frag in fragments {
            for inst in &frag.code {
                if let Some(what) = unsupported_op(inst) {
                    return Err(Unsupported { what });
                }
            }
        }
        let mut e = Emitter {
            asm: Asm { annotate, ..Asm::default() },
            frags: fragments,
            sites: Vec::new(),
            next_local: 0,
            helpers: Vec::new(),
        };
        e.prologue();
        for (k, frag) in fragments.iter().enumerate() {
            let k = k as u32;
            e.asm.note(|| format!("; fragment {k}"));
            e.asm.bind(Label::Frag(k));
            let mut fused_so_far: u32 = 0;
            for (i, inst) in frag.code.iter().enumerate() {
                if inst.is_fused() {
                    fused_so_far += 1;
                }
                let path = Path { insts: i as u32 + 1, fused: fused_so_far };
                e.asm.note(|| format!("f{k} {i:4}: {inst:?}"));
                e.emit_inst(k, inst, path);
            }
            // Fragments end in LoopBack/End; anything past is a bug.
            e.asm.ud2();
        }
        e.emit_sites();
        e.epilogue();
        e.asm.finalize();

        let max_spills = fragments.iter().map(|f| f.num_spills as usize).max().unwrap_or(0);
        let code_len = e.asm.code.len();
        let buf = ExecBuf::install(&e.asm.code).ok_or(Unsupported { what: "mmap" })?;
        Ok(NativeTree {
            buf,
            max_spills,
            notes: e.asm.notes,
            code_len,
            num_frags: fragments.len(),
            helpers: e.helpers,
        })
    }

    /// A trace tree compiled to native x86-64 code.
    ///
    /// Executing it is semantically identical to running the decoded
    /// executor over the same fragments: same AR effects, same realm
    /// effects, same [`TraceExit`] including all counters.
    pub struct NativeTree {
        buf: ExecBuf,
        max_spills: usize,
        notes: Vec<(usize, String)>,
        code_len: usize,
        num_frags: usize,
        /// `CallHelper` side table; emitted sites index into it (the
        /// `Helper` enum carries a payload variant, so it cannot be an
        /// immediate in the code stream).
        helpers: Vec<Helper>,
    }

    impl std::fmt::Debug for NativeTree {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("NativeTree")
                .field("code_len", &self.code_len)
                .field("num_frags", &self.num_frags)
                .finish_non_exhaustive()
        }
    }

    impl NativeTree {
        /// Runs the tree from fragment `start` until an unstitched exit.
        ///
        /// Mirrors `executor::execute` — same signature shape, same
        /// semantics: fresh zeroed register file and spill area, loop
        /// edges poll `realm.interrupt` / `realm.heap.gc_pending` and
        /// the `fuel` budget, `CallTree` sites re-enter `host`.
        ///
        /// # Errors
        ///
        /// A `RuntimeError` raised by a helper call or a nested tree
        /// (reported out-of-band through the ctx error slot) is returned
        /// exactly as the decoded executor would return it.
        pub fn execute(
            &self,
            start: u32,
            ar: &mut [u64],
            realm: &mut Realm,
            host: &mut dyn TreeHost,
            fuel: u64,
        ) -> Result<TraceExit, RuntimeError> {
            assert!((start as usize) < self.num_frags, "start fragment out of range");
            let mut regs = [0u64; REG_FILE_WORDS];
            let mut spill = vec![0u64; self.max_spills];
            let mut error: Option<RuntimeError> = None;
            let mut host: &mut dyn TreeHost = host;
            let realm_ptr: *mut Realm = realm;
            let mut ctx = NativeCtx {
                ar: ar.as_mut_ptr(),
                regs: regs.as_mut_ptr(),
                spill: spill.as_mut_ptr(),
                realm: realm_ptr,
                interrupt: unsafe { &raw const (*realm_ptr).interrupt },
                gc_pending: unsafe { &raw const (*realm_ptr).heap.gc_pending },
                fuel,
                start,
                _pad: 0,
                iterations: 0,
                insts: 0,
                fused: 0,
                exit_fragment: 0,
                exit_id: 0,
                helpers: self.helpers.as_ptr(),
                helper_args: [0u64; MAX_HELPER_ARGS],
                helper_result: 0,
                ar_len: ar.len() as u64,
                host: (&raw mut host).cast::<core::ffi::c_void>(),
                error: &raw mut error,
            };
            self.buf.entry()(&mut ctx);
            if let Some(e) = error {
                return Err(e);
            }
            Ok(TraceExit {
                fragment: ctx.exit_fragment,
                exit: ctx.exit_id as u16,
                insts: ctx.insts,
                fused_insts: ctx.fused,
                iterations: ctx.iterations,
            })
        }

        /// Emitted code size in bytes.
        pub fn code_size(&self) -> usize {
            self.code_len
        }

        /// Base address of the executable mapping (diagnostics only).
        pub fn code_ptr(&self) -> *const u8 {
            self.buf.ptr
        }

        /// Number of fragment bodies in the buffer.
        pub fn num_fragments(&self) -> usize {
            self.num_frags
        }

        /// Annotated hexdump of the emitted buffer: each virtual-ISA
        /// instruction / exit trampoline line followed by the machine
        /// bytes it compiled to.
        pub fn hexdump(&self) -> String {
            let code = unsafe { std::slice::from_raw_parts(self.buf.ptr, self.code_len) };
            let mut out = String::new();
            for (n, (off, text)) in self.notes.iter().enumerate() {
                let end = self.notes.get(n + 1).map_or(self.code_len, |(o, _)| *o);
                out.push_str(&format!("{off:08x}  {text}\n"));
                for line in code[*off..end].chunks(16) {
                    let hex: Vec<String> = line.iter().map(|b| format!("{b:02x}")).collect();
                    out.push_str(&format!("          {}\n", hex.join(" ")));
                }
            }
            out
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod imp {
    use tm_runtime::{Realm, RuntimeError};

    use super::Unsupported;
    use crate::executor::{TraceExit, TreeHost};
    use crate::machinst::Fragment;

    /// Whether this build can emit and run native code (it cannot; the
    /// monitor auto-disables the native tier).
    pub fn native_supported() -> bool {
        false
    }

    /// Stub for non-x86-64 targets: native emission always fails, so
    /// callers uniformly fall back to the decoded executor.
    #[derive(Debug)]
    pub struct NativeTree {
        never: std::convert::Infallible,
    }

    impl NativeTree {
        /// Unreachable: a stub `NativeTree` cannot be constructed.
        #[allow(clippy::missing_errors_doc)]
        pub fn execute(
            &self,
            _start: u32,
            _ar: &mut [u64],
            _realm: &mut Realm,
            _host: &mut dyn TreeHost,
            _fuel: u64,
        ) -> Result<TraceExit, RuntimeError> {
            match self.never {}
        }

        /// Unreachable: a stub `NativeTree` cannot be constructed.
        pub fn code_size(&self) -> usize {
            match self.never {}
        }

        /// Unreachable: a stub `NativeTree` cannot be constructed.
        pub fn code_ptr(&self) -> *const u8 {
            match self.never {}
        }

        /// Unreachable: a stub `NativeTree` cannot be constructed.
        pub fn num_fragments(&self) -> usize {
            match self.never {}
        }

        /// Unreachable: a stub `NativeTree` cannot be constructed.
        pub fn hexdump(&self) -> String {
            match self.never {}
        }
    }

    /// Native code generation is unavailable on this target.
    ///
    /// # Errors
    ///
    /// Always returns [`Unsupported`].
    pub fn emit_tree(_fragments: &[Fragment]) -> Result<NativeTree, Unsupported> {
        Err(Unsupported { what: "target (requires x86-64 linux)" })
    }

    /// Native code generation is unavailable on this target.
    ///
    /// # Errors
    ///
    /// Always returns [`Unsupported`].
    pub fn emit_tree_annotated(_fragments: &[Fragment]) -> Result<NativeTree, Unsupported> {
        Err(Unsupported { what: "target (requires x86-64 linux)" })
    }
}

pub use imp::{emit_tree, emit_tree_annotated, native_supported, NativeTree};

#[cfg(all(test, target_arch = "x86_64", target_os = "linux"))]
mod tests {
    use tm_lir::{AluOp, ChkOp, CmpOp, FilterOptions, Lir, LirBuffer, LirType};
    use tm_runtime::trace_helpers::{word_from_f64, word_from_i32};
    use tm_runtime::{
        Helper, NativeEffects, Object, ObjectClass, ObjectId, Realm, RuntimeError, Value,
    };

    use super::{emit_tree, native_supported, unsupported_op, MAX_HELPER_ARGS};
    use crate::assembler::assemble;
    use crate::executor::{execute, NoNesting, TraceExit, TreeHost};
    use crate::machinst::{ExitTarget, Fragment, MachInst};
    use crate::peephole::fuse;

    /// Runs `fragments` through the decoded executor and the native
    /// backend with identical inputs and asserts byte-identical ARs and
    /// identical exit records (including every counter).
    fn run_both(fragments: &[Fragment], ar_init: &[u64], start: u32, fuel: u64) -> TraceExit {
        run_both_with(fragments, ar_init, start, fuel, |_| {})
    }

    /// [`run_both`] with a realm-setup hook applied identically to both
    /// tiers' realms (heap ops need the same objects/strings on each
    /// side; fresh realms allocate deterministically, so ids agree).
    fn run_both_with(
        fragments: &[Fragment],
        ar_init: &[u64],
        start: u32,
        fuel: u64,
        setup: impl Fn(&mut Realm),
    ) -> TraceExit {
        let mut realm_dec = Realm::new();
        setup(&mut realm_dec);
        let mut ar_dec = ar_init.to_vec();
        let dec = execute(fragments, start, &mut ar_dec, &mut realm_dec, &mut NoNesting, fuel)
            .expect("decoded execution failed");

        let mut realm_nat = Realm::new();
        setup(&mut realm_nat);
        let mut ar_nat = ar_init.to_vec();
        let nt = emit_tree(fragments).expect("native emission failed");
        let nat = nt
            .execute(start, &mut ar_nat, &mut realm_nat, &mut NoNesting, fuel)
            .expect("native execution failed");

        assert_eq!(dec, nat, "exit records diverge");
        assert_eq!(ar_dec, ar_nat, "activation records diverge");
        dec
    }

    /// One-fragment tree: load AR slots into r0/r1, run `mk`'s ops, end.
    /// `num_exits` exits all return to the monitor.
    fn frag(ops: Vec<MachInst>, num_exits: usize) -> Vec<Fragment> {
        vec![Fragment::new(ops, 0, num_exits)]
    }

    /// AR-in/AR-out harness around a single binary op: r0 = ar[0],
    /// r1 = ar[1], op writes r2, ar[2] = r2, End(0). Exit 1 is the guard.
    fn binop_tree(op: MachInst) -> Vec<Fragment> {
        frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::ReadAr { d: 1, slot: 1 },
                op,
                MachInst::WriteAr { slot: 2, s: 2 },
                MachInst::End { exit: 0 },
            ],
            2,
        )
    }

    fn unop_tree(op: MachInst) -> Vec<Fragment> {
        frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                op,
                MachInst::WriteAr { slot: 2, s: 2 },
                MachInst::End { exit: 0 },
            ],
            2,
        )
    }

    fn w(i: i32) -> u64 {
        word_from_i32(i)
    }

    fn d(x: f64) -> u64 {
        word_from_f64(x)
    }

    #[test]
    fn supported_on_this_target() {
        assert!(native_supported());
    }

    #[test]
    fn int_alu_all_ops_all_edges() {
        let cases: &[i32] = &[
            0, 1, -1, 2, -2, 31, 32, 33, -31, -32, 0x3FFF_FFFF, -0x4000_0000, i32::MAX,
            i32::MIN, 12345, -9876,
        ];
        for op in [
            MachInst::AddI { d: 2, a: 0, b: 1 },
            MachInst::SubI { d: 2, a: 0, b: 1 },
            MachInst::MulI { d: 2, a: 0, b: 1 },
            MachInst::AndI { d: 2, a: 0, b: 1 },
            MachInst::OrI { d: 2, a: 0, b: 1 },
            MachInst::XorI { d: 2, a: 0, b: 1 },
            MachInst::ShlI { d: 2, a: 0, b: 1 },
            MachInst::ShrI { d: 2, a: 0, b: 1 },
            MachInst::UShrI { d: 2, a: 0, b: 1 },
        ] {
            let tree = binop_tree(op);
            for &x in cases {
                for &y in cases {
                    run_both(&tree, &[w(x), w(y), 0], 0, u64::MAX);
                }
            }
        }
    }

    #[test]
    fn int_unary_and_checked_neg() {
        let cases: &[i32] =
            &[0, 1, -1, 0x3FFF_FFFF, -0x4000_0000, i32::MAX, i32::MIN, 77, -77];
        for op in [
            MachInst::NotI { d: 2, a: 0 },
            MachInst::NegI { d: 2, a: 0 },
            MachInst::NegIChk { d: 2, a: 0, exit: 1 },
            MachInst::ChkRangeI { d: 2, a: 0, exit: 1 },
        ] {
            let tree = unop_tree(op.clone());
            for &x in cases {
                run_both(&tree, &[w(x), 0, 0], 0, u64::MAX);
            }
        }
    }

    #[test]
    fn checked_alu_overflow_and_minus_zero() {
        let cases: &[i32] = &[
            0, 1, -1, 2, -2, 3, 0x3FFF_FFFF, -0x4000_0000, 0x2000_0000, -0x2000_0000,
            46341, -46341, i32::MAX, i32::MIN, 31, 33,
        ];
        for op in [
            MachInst::AddIChk { d: 2, a: 0, b: 1, exit: 1 },
            MachInst::SubIChk { d: 2, a: 0, b: 1, exit: 1 },
            MachInst::MulIChk { d: 2, a: 0, b: 1, exit: 1 },
            MachInst::ShlIChk { d: 2, a: 0, b: 1, exit: 1 },
            MachInst::UShrIChk { d: 2, a: 0, b: 1, exit: 1 },
            MachInst::ModIChk { d: 2, a: 0, b: 1, exit: 1 },
        ] {
            let tree = binop_tree(op);
            for &x in cases {
                for &y in cases {
                    run_both(&tree, &[w(x), w(y), 0], 0, u64::MAX);
                }
            }
        }
    }

    #[test]
    fn double_arith_and_compares() {
        let cases: &[f64] = &[
            0.0, -0.0, 1.0, -1.5, 2.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY,
            1e300, -1e300, 0.1, 1073741824.0, -1073741825.0,
        ];
        for op in [
            MachInst::AddD { d: 2, a: 0, b: 1 },
            MachInst::SubD { d: 2, a: 0, b: 1 },
            MachInst::MulD { d: 2, a: 0, b: 1 },
            MachInst::DivD { d: 2, a: 0, b: 1 },
            MachInst::ModD { d: 2, a: 0, b: 1 },
            MachInst::EqD { d: 2, a: 0, b: 1 },
            MachInst::LtD { d: 2, a: 0, b: 1 },
            MachInst::LeD { d: 2, a: 0, b: 1 },
            MachInst::GtD { d: 2, a: 0, b: 1 },
            MachInst::GeD { d: 2, a: 0, b: 1 },
        ] {
            let tree = binop_tree(op);
            for &x in cases {
                for &y in cases {
                    run_both(&tree, &[d(x), d(y), 0], 0, u64::MAX);
                }
            }
        }
    }

    #[test]
    fn int_compares_and_conversions() {
        let ints: &[i32] = &[0, 1, -1, 5, -5, i32::MAX, i32::MIN];
        for op in [
            MachInst::EqI { d: 2, a: 0, b: 1 },
            MachInst::LtI { d: 2, a: 0, b: 1 },
            MachInst::LeI { d: 2, a: 0, b: 1 },
            MachInst::GtI { d: 2, a: 0, b: 1 },
            MachInst::GeI { d: 2, a: 0, b: 1 },
        ] {
            let tree = binop_tree(op);
            for &x in ints {
                for &y in ints {
                    run_both(&tree, &[w(x), w(y), 0], 0, u64::MAX);
                }
            }
        }
        for op in [MachInst::I2D { d: 2, a: 0 }, MachInst::U2D { d: 2, a: 0 }] {
            let tree = unop_tree(op.clone());
            for &x in ints {
                run_both(&tree, &[w(x), 0, 0], 0, u64::MAX);
            }
        }
        // NotB over boolean-ish words.
        let tree = unop_tree(MachInst::NotB { d: 2, a: 0 });
        for v in [0u64, 1, 2, u64::MAX] {
            run_both(&tree, &[v, 0, 0], 0, u64::MAX);
        }
    }

    #[test]
    fn double_to_int_paths() {
        let cases: &[f64] = &[
            0.0, -0.0, 1.0, -1.0, 1.5, -2.5, 1073741823.0, 1073741824.0, -1073741824.0,
            -1073741825.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e40, -1e40,
            9.2233720368547758e18, -9.2233720368547758e18, 4294967296.0, 0.25,
        ];
        for op in [MachInst::D2IChk { d: 2, a: 0, exit: 1 }, MachInst::D2I32 { d: 2, a: 0 }] {
            let tree = unop_tree(op.clone());
            for &x in cases {
                run_both(&tree, &[d(x), 0, 0], 0, u64::MAX);
            }
        }
    }

    #[test]
    fn box_unbox_all_tags() {
        // BoxI across the full i32 range: out-of-range values allocate a
        // heap double in both tiers (fresh realms allocate the same id,
        // so the raw words still match).
        let tree = unop_tree(MachInst::BoxI { d: 2, a: 0 });
        for x in [0, 1, -1, 0x3FFF_FFFF, 0x4000_0000, -0x4000_0000, -0x4000_0001, i32::MAX, i32::MIN]
        {
            run_both(&tree, &[w(x), 0, 0], 0, u64::MAX);
        }
        let tree = unop_tree(MachInst::BoxD { d: 2, a: 0 });
        for x in [0.0, -0.5, f64::NAN, 1e300] {
            run_both(&tree, &[d(x), 0, 0], 0, u64::MAX);
        }
        let tree = unop_tree(MachInst::BoxB { d: 2, a: 0 });
        for v in [0u64, 1, 7, u64::MAX] {
            run_both(&tree, &[v, 0, 0], 0, u64::MAX);
        }
        for op in [MachInst::BoxObj { d: 2, a: 0 }, MachInst::BoxStr { d: 2, a: 0 }] {
            let tree = unop_tree(op.clone());
            for v in [0u64, 1, 42, u64::from(u32::MAX)] {
                run_both(&tree, &[v, 0, 0], 0, u64::MAX);
            }
        }

        // Unbox ops over every tag class: ints, specials, handles.
        let raws: Vec<u64> = vec![
            Value::new_int(0).raw(),
            Value::new_int(5).raw(),
            Value::new_int(-7).raw(),
            Value::TRUE.raw(),
            Value::FALSE.raw(),
            Value::NULL.raw(),
            Value::UNDEFINED.raw(),
            0,  // object id 0
            8,  // object id 1
            4,  // string id 0
            12, // string id 1
        ];
        for op in [
            MachInst::UnboxI { d: 2, a: 0, exit: 1 },
            MachInst::UnboxObj { d: 2, a: 0, exit: 1 },
            MachInst::UnboxStr { d: 2, a: 0, exit: 1 },
            MachInst::UnboxBool { d: 2, a: 0, exit: 1 },
        ] {
            let tree = unop_tree(op.clone());
            for &raw in &raws {
                run_both(&tree, &[raw, 0, 0], 0, u64::MAX);
            }
        }
    }

    #[test]
    fn unbox_double_reads_the_heap() {
        // UnboxD/UnboxNumD read a heap double, so the double must exist:
        // allocate it in each realm, then unbox the boxed value.
        for op in [
            MachInst::UnboxD { d: 2, a: 0, exit: 1 },
            MachInst::UnboxNumD { d: 2, a: 0, exit: 1 },
        ] {
            let ops = vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                op.clone(),
                MachInst::WriteAr { slot: 2, s: 2 },
                MachInst::End { exit: 0 },
            ];
            let fragments = frag(ops, 2);
            for x in [2.5f64, -0.0, f64::NAN] {
                let mut realm_dec = Realm::new();
                let boxed = realm_dec.heap.number(x).raw();
                let mut ar_dec = vec![boxed, 0, 0];
                let dec = execute(&fragments, 0, &mut ar_dec, &mut realm_dec, &mut NoNesting, u64::MAX)
                    .unwrap();
                let mut realm_nat = Realm::new();
                let boxed_n = realm_nat.heap.number(x).raw();
                assert_eq!(boxed, boxed_n);
                let mut ar_nat = vec![boxed_n, 0, 0];
                let nt = emit_tree(&fragments).unwrap();
                let nat = nt
                    .execute(0, &mut ar_nat, &mut realm_nat, &mut NoNesting, u64::MAX)
                    .unwrap();
                assert_eq!(dec, nat);
                assert_eq!(ar_dec, ar_nat);
            }
            // Int input: UnboxNumD converts, UnboxD exits.
            let fragments = frag(
                vec![
                    MachInst::ReadAr { d: 0, slot: 0 },
                    op,
                    MachInst::WriteAr { slot: 2, s: 2 },
                    MachInst::End { exit: 0 },
                ],
                2,
            );
            run_both(&fragments, &[Value::new_int(41).raw(), 0, 0], 0, u64::MAX);
            run_both(&fragments, &[Value::TRUE.raw(), 0, 0], 0, u64::MAX);
        }
    }

    #[test]
    fn guards_and_boxed_eq() {
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::GuardTrue { s: 0, exit: 1 },
                MachInst::End { exit: 0 },
            ],
            2,
        );
        run_both(&tree, &[0], 0, u64::MAX);
        run_both(&tree, &[1], 0, u64::MAX);
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::GuardFalse { s: 0, exit: 1 },
                MachInst::End { exit: 0 },
            ],
            2,
        );
        run_both(&tree, &[0], 0, u64::MAX);
        run_both(&tree, &[u64::MAX], 0, u64::MAX);
        for wv in [0u64, 6, 14, 0x8000_0000, u64::MAX, 0xFFFF_FFFF_8000_0000] {
            let tree = frag(
                vec![
                    MachInst::ReadAr { d: 0, slot: 0 },
                    MachInst::GuardBoxedEq { s: 0, w: wv, exit: 1 },
                    MachInst::End { exit: 0 },
                ],
                2,
            );
            run_both(&tree, &[wv], 0, u64::MAX);
            run_both(&tree, &[wv.wrapping_add(1)], 0, u64::MAX);
        }
    }

    #[test]
    fn spills_and_moves_and_consts() {
        let mut fr = Fragment::new(
            vec![
                MachInst::ConstW { d: 0, w: 0xDEAD_BEEF_CAFE_F00D },
                MachInst::StoreSpill { slot: 3, s: 0 },
                MachInst::ConstW { d: 0, w: 7 },
                MachInst::Mov { d: 1, s: 0 },
                MachInst::LoadSpill { d: 2, slot: 3 },
                MachInst::WriteAr { slot: 0, s: 1 },
                MachInst::WriteAr { slot: 1, s: 2 },
                MachInst::ConstW { d: 3, w: u64::from(u32::MAX) },
                MachInst::ConstW { d: 4, w: 0xFFFF_FFFF_FFFF_FFFF },
                MachInst::WriteAr2 { slot_a: 2, s_a: 3, slot_b: 3, s_b: 4 },
                MachInst::End { exit: 0 },
            ],
            4,
            1,
        );
        fr.num_spills = 4;
        run_both(&[fr], &[0, 0, 0, 0], 0, u64::MAX);
    }

    #[test]
    fn fused_forms_differential() {
        // Exercise every fused form the LIR pipeline emits by building a
        // real counting loop and fusing it (mirrors executor tests).
        let mut b = LirBuffer::new(FilterOptions::default());
        let i = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let limit = b.emit(Lir::Import { slot: 1, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::AddIChk(i, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let cont = b.emit(Lir::LtI(next, limit));
        let e_done = b.alloc_exit();
        b.emit(Lir::GuardTrue(cont, e_done));
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        let raw = assemble(b.trace());
        let fused = fuse(raw.clone());

        for fragments in [vec![raw], vec![fused]] {
            run_both(&fragments, &[w(0), w(100)], 0, u64::MAX);
            // Fuel exhaustion exits at the loop edge.
            run_both(&fragments, &[w(0), w(1000)], 0, 50);
        }
    }

    #[test]
    fn fused_ar_and_imm_forms() {
        for op in [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Xor, AluOp::Shl, AluOp::UShr] {
            let tree = frag(
                vec![
                    MachInst::ReadAr { d: 1, slot: 1 },
                    MachInst::AluImmI { op, d: 2, a: 1, imm: -3 },
                    MachInst::AluArI { op, d: 3, slot: 0, b: 1 },
                    MachInst::AluWrI { op, d: 4, a: 1, b: 1, slot: 2 },
                    MachInst::AluImmWrI { op, d: 5, a: 1, imm: 40, slot: 3 },
                    MachInst::AluArWrI { op, d: 6, slot_a: 0, b: 1, slot_d: 4 },
                    MachInst::WriteAr3 { slot_a: 5, s_a: 2, slot_b: 6, s_b: 3, slot_c: 7, s_c: 6 },
                    MachInst::End { exit: 0 },
                ],
                1,
            );
            for x in [0, 5, -17, i32::MAX, i32::MIN] {
                run_both(&tree, &[w(x), w(x ^ 3), 0, 0, 0, 0, 0, 0], 0, u64::MAX);
            }
        }
        for op in [ChkOp::Add, ChkOp::Sub, ChkOp::Mul, ChkOp::Shl, ChkOp::UShr] {
            for imm in [-5i32, 0, 3, 29] {
                let tree = frag(
                    vec![
                        MachInst::ReadAr { d: 1, slot: 0 },
                        MachInst::ChkAluImmI { op, d: 2, a: 1, imm, exit: 0 },
                        MachInst::ChkAluWrI { op, d: 3, a: 1, b: 1, exit: 0, slot: 1 },
                        MachInst::ChkAluImmWrI { op, d: 4, a: 1, imm, exit: 0, slot: 2 },
                        MachInst::WriteAr { slot: 3, s: 2 },
                        MachInst::End { exit: 1 },
                    ],
                    2,
                );
                for x in [0, 1, -1, 1000, 0x3FFF_FFFF, -0x4000_0000, i32::MIN] {
                    run_both(&tree, &[w(x), 0, 0, 0], 0, u64::MAX);
                }
            }
        }
        let tree = frag(
            vec![
                MachInst::ConstWrAr { d: 0, w: 0x1234_5678_9ABC_DEF0, slot: 0 },
                MachInst::MovAr { d: 1, src: 0, dst: 1 },
                MachInst::End { exit: 0 },
            ],
            1,
        );
        run_both(&tree, &[0, 0], 0, u64::MAX);
    }

    #[test]
    fn fused_compare_forms() {
        let ints: &[i32] = &[0, 1, -1, 9, i32::MAX, i32::MIN];
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for want in [true, false] {
                let tree = frag(
                    vec![
                        MachInst::ReadAr { d: 0, slot: 0 },
                        MachInst::ReadAr { d: 1, slot: 1 },
                        MachInst::CmpBranchI { op, want, a: 0, b: 1, exit: 0 },
                        MachInst::CmpBranchImmI { op, want, a: 0, imm: 4, exit: 0 },
                        MachInst::CmpWrBranchI { op, want, d: 2, a: 0, b: 1, slot: 2, exit: 0 },
                        MachInst::CmpImmWrBranchI { op, want, d: 3, a: 0, imm: -2, slot: 3, exit: 0 },
                        MachInst::End { exit: 1 },
                    ],
                    2,
                );
                for &x in ints {
                    for &y in ints {
                        run_both(&tree, &[w(x), w(y), 0, 0], 0, u64::MAX);
                    }
                }
            }
            let tree = frag(
                vec![
                    MachInst::ReadAr { d: 0, slot: 0 },
                    MachInst::ReadAr { d: 1, slot: 1 },
                    MachInst::CmpImmI { op, d: 2, a: 0, imm: 3 },
                    MachInst::CmpWrI { op, d: 3, a: 0, b: 1, slot: 2 },
                    MachInst::CmpImmWrI { op, d: 4, a: 0, imm: -1, slot: 3 },
                    MachInst::End { exit: 0 },
                ],
                1,
            );
            for &x in ints {
                run_both(&tree, &[w(x), w(1), 0, 0], 0, u64::MAX);
            }
        }
        // Double compare-write and compare-branch, NaN included.
        let doubles: &[f64] = &[0.0, -0.0, 1.5, -2.0, f64::NAN, f64::INFINITY];
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for want in [true, false] {
                let tree = frag(
                    vec![
                        MachInst::ReadAr { d: 0, slot: 0 },
                        MachInst::ReadAr { d: 1, slot: 1 },
                        MachInst::CmpBranchD { op, want, a: 0, b: 1, exit: 0 },
                        MachInst::CmpWrBranchD { op, want, d: 2, a: 0, b: 1, slot: 2, exit: 0 },
                        MachInst::End { exit: 1 },
                    ],
                    2,
                );
                for &x in doubles {
                    for &y in doubles {
                        run_both(&tree, &[d(x), d(y), 0], 0, u64::MAX);
                    }
                }
            }
            let tree = frag(
                vec![
                    MachInst::ReadAr { d: 0, slot: 0 },
                    MachInst::ReadAr { d: 1, slot: 1 },
                    MachInst::CmpWrD { op, d: 2, a: 0, b: 1, slot: 2 },
                    MachInst::End { exit: 0 },
                ],
                1,
            );
            for &x in doubles {
                run_both(&tree, &[d(x), d(1.5), 0], 0, u64::MAX);
            }
        }
    }

    #[test]
    fn stitched_fragments_transfer_registers_and_counts() {
        // Fragment 0 guards r0 and exits to fragment 1 through a stitched
        // exit; fragment 1 continues with the register file intact.
        let mut f0 = Fragment::new(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::ConstW { d: 3, w: 17 },
                MachInst::GuardTrue { s: 0, exit: 1 },
                MachInst::End { exit: 0 },
            ],
            0,
            2,
        );
        f0.set_exit_target(1, ExitTarget::Fragment(1));
        let f1 = Fragment::new(
            vec![
                // Reads r3 written by fragment 0: registers persist
                // across stitched transfers.
                MachInst::WriteAr { slot: 1, s: 3 },
                MachInst::End { exit: 0 },
            ],
            0,
            1,
        );
        let fragments = vec![f0, f1];
        let taken = run_both(&fragments, &[0, 0], 0, u64::MAX);
        assert_eq!(taken.fragment, 1);
        let not_taken = run_both(&fragments, &[1, 0], 0, u64::MAX);
        assert_eq!(not_taken.fragment, 0);
        // Entering at fragment 1 directly also works (side-exit starts).
        run_both(&fragments, &[5, 0], 1, u64::MAX);
    }

    #[test]
    fn loop_edge_interrupt_and_gc_pending_exit() {
        let mut b = LirBuffer::new(FilterOptions::default());
        let i = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let limit = b.emit(Lir::Import { slot: 1, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::AddIChk(i, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let cont = b.emit(Lir::LtI(next, limit));
        let e_done = b.alloc_exit();
        b.emit(Lir::GuardTrue(cont, e_done));
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        let fragments = vec![fuse(assemble(b.trace()))];

        for set_interrupt in [true, false] {
            let mut realm_dec = Realm::new();
            let mut realm_nat = Realm::new();
            if set_interrupt {
                realm_dec.interrupt = true;
                realm_nat.interrupt = true;
            } else {
                realm_dec.heap.gc_pending = true;
                realm_nat.heap.gc_pending = true;
            }
            let mut ar_dec = vec![w(0), w(100)];
            let mut ar_nat = ar_dec.clone();
            let dec = execute(&fragments, 0, &mut ar_dec, &mut realm_dec, &mut NoNesting, u64::MAX)
                .unwrap();
            let nt = emit_tree(&fragments).unwrap();
            let nat = nt
                .execute(0, &mut ar_nat, &mut realm_nat, &mut NoNesting, u64::MAX)
                .unwrap();
            assert_eq!(dec, nat);
            assert_eq!(ar_dec, ar_nat);
            assert_eq!(dec.iterations, 1, "first loop edge must take the exit");
        }
    }

    #[test]
    fn only_oversized_helper_calls_fail_emission() {
        // Every heap/helper/nested-tree family now emits.
        assert!(unsupported_op(&MachInst::GuardShape { obj: 0, shape: 3, exit: 1 }).is_none());
        assert!(unsupported_op(&MachInst::CallTree { tree: 0, exit: 0 }).is_none());
        assert!(unsupported_op(&MachInst::ConstW { d: 0, w: 0 }).is_none());
        // The one residual rejection: arity beyond the inline arg buffer.
        let wide = MachInst::CallHelper {
            d: 2,
            helper: Helper::Pow,
            args: vec![0; MAX_HELPER_ARGS + 1].into(),
            exit: 1,
        };
        assert_eq!(unsupported_op(&wide), Some("CallHelper arity"));
        let tree = frag(vec![MachInst::ReadAr { d: 0, slot: 0 }, wide], 2);
        let err = emit_tree(&tree).unwrap_err();
        assert_eq!(err.what, "CallHelper arity");
    }

    #[test]
    fn hexdump_annotates_exit_trampolines() {
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::GuardTrue { s: 0, exit: 1 },
                MachInst::End { exit: 0 },
            ],
            2,
        );
        // The monitor's emission path skips annotations entirely.
        assert!(emit_tree(&tree).unwrap().hexdump().is_empty());
        let nt = super::emit_tree_annotated(&tree).unwrap();
        let dump = nt.hexdump();
        assert!(dump.contains("; fragment 0"));
        assert!(dump.contains("GuardTrue"));
        assert!(dump.contains("exit site: fragment 0 exit 1 -> return"));
        assert!(dump.contains("; epilogue"));
        assert!(nt.code_size() > 0);
        assert_eq!(nt.num_fragments(), 1);
    }

    #[test]
    fn wx_mapping_is_never_writable_and_executable() {
        let tree = frag(vec![MachInst::End { exit: 0 }], 1);
        let nt = emit_tree(&tree).unwrap();
        let maps = std::fs::read_to_string("/proc/self/maps").unwrap();
        let mut found = false;
        for line in maps.lines() {
            let mut parts = line.split_whitespace();
            let (Some(range), Some(perms)) = (parts.next(), parts.next()) else { continue };
            assert!(
                !(perms.contains('w') && perms.contains('x')),
                "RWX mapping present: {line}"
            );
            let (lo, hi) = range.split_once('-').unwrap();
            let lo = usize::from_str_radix(lo, 16).unwrap();
            let hi = usize::from_str_radix(hi, 16).unwrap();
            let entry = nt.code_ptr() as usize;
            if (lo..hi).contains(&entry) {
                assert!(perms.starts_with("r-x"), "JIT buffer not r-x: {line}");
                found = true;
            }
        }
        assert!(found, "JIT buffer not found in /proc/self/maps");
    }

    // ---- full-coverage tier: heap ops, helper calls, nested trees ----

    /// Allocates, identically in any fresh realm: a 2-slot plain object
    /// with a prototype, a 3-element array, and a string. Returns the
    /// (object, array, string-id) AR-ready words.
    fn setup_heap(realm: &mut Realm) -> (u64, u64, u64) {
        let proto = realm.new_plain_object();
        let mut o = Object::new_plain(Some(proto));
        o.slots = vec![Value::new_int(7), Value::new_int(-3)];
        let obj = realm.heap.alloc_object(o);
        let arr = realm.heap.alloc_object(Object::new_array(3, None));
        for (i, v) in [10, 20, 30].into_iter().enumerate() {
            realm.heap.object_mut(arr).elements[i] = Value::new_int(v);
        }
        let sv = realm.heap.alloc_string("hello, trace");
        let sid = sv.as_string().expect("string value");
        (u64::from(obj.0), u64::from(arr.0), u64::from(sid.0))
    }

    /// `setup_heap` on a throwaway realm, to learn the ids/shape the
    /// differential runs will see.
    fn probe_heap() -> (Realm, u64, u64, u64) {
        let mut probe = Realm::new();
        let (o, a, st) = setup_heap(&mut probe);
        (probe, o, a, st)
    }

    #[test]
    fn guard_shape_differential_hit_and_miss() {
        let (probe, obj_w, _, _) = probe_heap();
        let shape = probe.heap.object(ObjectId(obj_w as u32)).shape.0;
        let tree = |shape| {
            frag(
                vec![
                    MachInst::ReadAr { d: 0, slot: 0 },
                    MachInst::GuardShape { obj: 0, shape, exit: 1 },
                    MachInst::ConstW { d: 1, w: 99 },
                    MachInst::WriteAr { slot: 1, s: 1 },
                    MachInst::End { exit: 0 },
                ],
                2,
            )
        };
        let hit = run_both_with(&tree(shape), &[obj_w, 0], 0, u64::MAX, |r| {
            setup_heap(r);
        });
        assert_eq!(hit.exit, 0, "matching shape falls through");
        let miss = run_both_with(&tree(shape + 1), &[obj_w, 0], 0, u64::MAX, |r| {
            setup_heap(r);
        });
        assert_eq!(miss.exit, 1, "shape-guard miss takes the side exit");
    }

    #[test]
    fn guard_class_differential() {
        let (_, obj_w, arr_w, _) = probe_heap();
        let tree = |class: u8| {
            frag(
                vec![
                    MachInst::ReadAr { d: 0, slot: 0 },
                    MachInst::GuardClass { obj: 0, class, exit: 1 },
                    MachInst::End { exit: 0 },
                ],
                2,
            )
        };
        for (objw, class, want) in [
            (obj_w, ObjectClass::Plain as u8, 0),
            (obj_w, ObjectClass::Array as u8, 1),
            (arr_w, ObjectClass::Array as u8, 0),
            (arr_w, ObjectClass::Function as u8, 1),
        ] {
            let e = run_both_with(&tree(class), &[objw], 0, u64::MAX, |r| {
                setup_heap(r);
            });
            assert_eq!(e.exit, want);
        }
    }

    #[test]
    fn guard_bound_differential() {
        let (_, _, arr_w, _) = probe_heap();
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::ReadAr { d: 1, slot: 1 },
                MachInst::GuardBound { arr: 0, idx: 1, exit: 1 },
                MachInst::End { exit: 0 },
            ],
            2,
        );
        for (i, want) in [(0, 0), (2, 0), (3, 1), (-1, 1)] {
            let e = run_both_with(&tree, &[arr_w, w(i)], 0, u64::MAX, |r| {
                setup_heap(r);
            });
            assert_eq!(e.exit, want, "index {i}");
        }
    }

    #[test]
    fn slot_load_store_differential() {
        let (_, obj_w, _, _) = probe_heap();
        // Read slot 1, overwrite slot 0 with it, read slot 0 back.
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::LoadSlot { d: 1, o: 0, slot: 1 },
                MachInst::StoreSlot { o: 0, slot: 0, s: 1 },
                MachInst::LoadSlot { d: 2, o: 0, slot: 0 },
                MachInst::WriteAr { slot: 1, s: 2 },
                MachInst::End { exit: 0 },
            ],
            1,
        );
        run_both_with(&tree, &[obj_w, 0], 0, u64::MAX, |r| {
            setup_heap(r);
        });
    }

    #[test]
    fn elem_load_store_and_growth_differential() {
        let (_, _, arr_w, _) = probe_heap();
        // elements[2] -> elements[0]; then a growing store at index 5
        // (set_element extends the dense array) observed via ArrayLen.
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::ReadAr { d: 1, slot: 1 },
                MachInst::ReadAr { d: 2, slot: 2 },
                MachInst::LoadElem { d: 3, a: 0, i: 1 },
                MachInst::StoreElem { a: 0, i: 2, s: 3 },
                MachInst::ArrayLen { d: 4, a: 0 },
                MachInst::WriteAr { slot: 1, s: 3 },
                MachInst::WriteAr { slot: 2, s: 4 },
                MachInst::End { exit: 0 },
            ],
            1,
        );
        run_both_with(&tree, &[arr_w, w(2), w(0)], 0, u64::MAX, |r| {
            setup_heap(r);
        });
        run_both_with(&tree, &[arr_w, w(1), w(5)], 0, u64::MAX, |r| {
            setup_heap(r);
        });
    }

    #[test]
    fn proto_array_len_str_len_differential() {
        let (_, obj_w, arr_w, str_w) = probe_heap();
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::ReadAr { d: 1, slot: 1 },
                MachInst::ReadAr { d: 2, slot: 2 },
                MachInst::LoadProto { d: 3, o: 0 },
                MachInst::ArrayLen { d: 4, a: 1 },
                MachInst::StrLen { d: 5, a: 2 },
                MachInst::WriteAr { slot: 0, s: 3 },
                MachInst::WriteAr { slot: 1, s: 4 },
                MachInst::WriteAr { slot: 2, s: 5 },
                MachInst::End { exit: 0 },
            ],
            1,
        );
        run_both_with(&tree, &[obj_w, arr_w, str_w], 0, u64::MAX, |r| {
            setup_heap(r);
        });
    }

    #[test]
    fn call_helper_differential_pure_and_allocating() {
        // Pure 1-arg and 2-arg math helpers.
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::ReadAr { d: 1, slot: 1 },
                MachInst::CallHelper { d: 2, helper: Helper::Sin, args: vec![0].into(), exit: 1 },
                MachInst::CallHelper {
                    d: 3,
                    helper: Helper::Pow,
                    args: vec![0, 1].into(),
                    exit: 1,
                },
                MachInst::WriteAr { slot: 0, s: 2 },
                MachInst::WriteAr { slot: 1, s: 3 },
                MachInst::End { exit: 0 },
            ],
            2,
        );
        let e = run_both_with(&tree, &[d(0.5), d(3.0)], 0, u64::MAX, |_| {});
        assert_eq!(e.exit, 0, "pure helpers never take the reenter exit");

        // An allocating string helper: both realms allocate identically.
        let (_, _, _, str_w) = probe_heap();
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::CallHelper {
                    d: 1,
                    helper: Helper::ConcatStrings,
                    args: vec![0, 0].into(),
                    exit: 1,
                },
                MachInst::StrLen { d: 2, a: 1 },
                MachInst::WriteAr { slot: 0, s: 2 },
                MachInst::End { exit: 0 },
            ],
            2,
        );
        run_both_with(&tree, &[str_w], 0, u64::MAX, |r| {
            setup_heap(r);
        });
    }

    fn reentering_native(realm: &mut Realm, _args: &[Value]) -> Result<Value, RuntimeError> {
        realm.output.push('.');
        Ok(Value::new_int(5))
    }

    fn failing_native(_realm: &mut Realm, _args: &[Value]) -> Result<Value, RuntimeError> {
        Err(RuntimeError::Other("native failure".into()))
    }

    #[test]
    fn call_helper_reenter_takes_exit_on_both_tiers() {
        let register = |realm: &mut Realm| {
            realm.register_native(
                "test.reenter",
                reentering_native,
                NativeEffects { may_reenter: true, ..NativeEffects::default() },
                None,
            )
        };
        let id = register(&mut Realm::new());
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::CallHelper {
                    d: 1,
                    helper: Helper::CallNative(id),
                    args: vec![0].into(),
                    exit: 1,
                },
                MachInst::WriteAr { slot: 0, s: 1 },
                MachInst::End { exit: 0 },
            ],
            2,
        );
        let e = run_both_with(&tree, &[Value::new_int(1).raw()], 0, u64::MAX, |r| {
            register(r);
        });
        assert_eq!(e.exit, 1, "§6.5: reentrant native forces the side exit");
    }

    #[test]
    fn call_helper_error_propagates_from_native_code() {
        let register = |realm: &mut Realm| {
            realm.register_native(
                "test.fail",
                failing_native,
                NativeEffects::default(),
                None,
            )
        };
        let id = register(&mut Realm::new());
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::CallHelper {
                    d: 1,
                    helper: Helper::CallNative(id),
                    args: vec![0].into(),
                    exit: 1,
                },
                MachInst::End { exit: 0 },
            ],
            2,
        );
        let mut realm_dec = Realm::new();
        register(&mut realm_dec);
        let mut ar_dec = vec![Value::new_int(1).raw()];
        let dec =
            execute(&tree, 0, &mut ar_dec, &mut realm_dec, &mut NoNesting, u64::MAX)
                .unwrap_err();
        let mut realm_nat = Realm::new();
        register(&mut realm_nat);
        let mut ar_nat = vec![Value::new_int(1).raw()];
        let nt = emit_tree(&tree).unwrap();
        let nat = nt
            .execute(0, &mut ar_nat, &mut realm_nat, &mut NoNesting, u64::MAX)
            .unwrap_err();
        assert_eq!(dec, nat, "both tiers surface the helper's RuntimeError");
    }

    #[test]
    fn call_helper_sites_annotate_helper_names() {
        let tree = frag(
            vec![
                MachInst::ReadAr { d: 0, slot: 0 },
                MachInst::CallHelper { d: 1, helper: Helper::Sqrt, args: vec![0].into(), exit: 1 },
                MachInst::End { exit: 0 },
            ],
            2,
        );
        let dump = super::emit_tree_annotated(&tree).unwrap().hexdump();
        assert!(
            dump.contains("; helper table[0] = Sqrt"),
            "hexdump resolves the helper name, not just a table index:\n{dump}"
        );
    }

    #[test]
    fn call_tree_reenters_host_and_bridges() {
        let fragments = frag(
            vec![
                MachInst::CallTree { tree: 3, exit: 1 },
                MachInst::ConstW { d: 0, w: 1 },
                MachInst::WriteAr { slot: 0, s: 0 },
                MachInst::End { exit: 0 },
            ],
            2,
        );
        struct Scripted {
            cont: bool,
            seen_site: u32,
        }
        impl TreeHost for Scripted {
            fn call_tree(
                &mut self,
                tree: u32,
                ar: &mut [u64],
                _realm: &mut Realm,
            ) -> Result<bool, RuntimeError> {
                self.seen_site = tree;
                ar[1] = 7;
                Ok(self.cont)
            }
        }
        for cont in [false, true] {
            let mut realm_dec = Realm::new();
            let mut ar_dec = vec![0u64, 0];
            let mut h_dec = Scripted { cont, seen_site: u32::MAX };
            let dec = execute(&fragments, 0, &mut ar_dec, &mut realm_dec, &mut h_dec, u64::MAX)
                .unwrap();
            let mut realm_nat = Realm::new();
            let mut ar_nat = vec![0u64, 0];
            let mut h_nat = Scripted { cont, seen_site: u32::MAX };
            let nt = emit_tree(&fragments).unwrap();
            let nat = nt
                .execute(0, &mut ar_nat, &mut realm_nat, &mut h_nat, u64::MAX)
                .unwrap();
            assert_eq!(dec, nat, "exit records diverge");
            assert_eq!(ar_dec, ar_nat, "activation records diverge");
            assert_eq!(h_nat.seen_site, 3, "nested-site id passes through the shim");
            assert_eq!(ar_nat[1], 7, "host AR writes visible after native CallTree");
            assert_eq!(dec.exit, u16::from(!cont), "Ok(false) takes the call's exit");
        }
        // An erroring host (NoNesting included) propagates Err out of
        // the native buffer, matching the decoded tier.
        let nt = emit_tree(&fragments).unwrap();
        let mut ar = vec![0u64, 0];
        let err = nt
            .execute(0, &mut ar, &mut Realm::new(), &mut NoNesting, u64::MAX)
            .unwrap_err();
        let mut ar = vec![0u64, 0];
        let dec_err =
            execute(&fragments, 0, &mut ar, &mut Realm::new(), &mut NoNesting, u64::MAX)
                .unwrap_err();
        assert_eq!(dec_err, err);
    }
}
