//! Executor for compiled trace fragments.
//!
//! Executes the virtual ISA against a trace activation record and the
//! realm. Guards that fail consult the fragment's exit-target table: a
//! stitched exit transfers directly into a branch fragment (the paper's
//! trace stitching, §6.2 — values pass through the activation record,
//! which is exactly what the exiting trace's live `WriteAr`s populated);
//! an unstitched exit returns control to the trace monitor.

use tm_lir::{AluOp, ChkOp, CmpOp};
use tm_runtime::trace_helpers::{call_helper, f64_from_word, i32_from_word, word_from_f64};
use tm_runtime::value::{INT_MAX, INT_MIN};
use tm_runtime::{ObjectId, Realm, RuntimeError, StringId, Value};

use crate::machinst::{Fragment, MachInst, Reg, EXIT_UNSTITCHED, NREGS, REG_FILE_WORDS, REG_MASK};

/// Host callback for nested-tree calls (§4). Implemented by the trace
/// monitor, which owns the tree registry and the interpreter state needed
/// to transfer between activation records.
pub trait TreeHost {
    /// Executes inner tree `tree` to completion.
    ///
    /// Returns `Ok(true)` when the inner tree exited through its expected
    /// loop-edge exit (the nesting guard holds), `Ok(false)` for any other
    /// inner side exit (the outer trace must side-exit).
    ///
    /// # Errors
    ///
    /// Propagates guest errors raised while running the inner tree.
    fn call_tree(
        &mut self,
        tree: u32,
        ar: &mut [u64],
        realm: &mut Realm,
    ) -> Result<bool, RuntimeError>;
}

/// A no-op host for trees without nested calls.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoNesting;

impl TreeHost for NoNesting {
    fn call_tree(
        &mut self,
        _tree: u32,
        _ar: &mut [u64],
        _realm: &mut Realm,
    ) -> Result<bool, RuntimeError> {
        Err(RuntimeError::Other("unexpected nested tree call".into()))
    }
}

/// Why trace execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceExit {
    /// Fragment index (within the executed tree) that exited.
    pub fragment: u32,
    /// The exit id taken.
    pub exit: u16,
    /// Machine instructions dispatched during this run (a fused
    /// superinstruction counts once).
    pub insts: u64,
    /// Of `insts`, how many were fused superinstructions.
    pub fused_insts: u64,
    /// Completed loop-edge crossings (LoopBack executions).
    pub iterations: u64,
}

/// Register-file index for `reg`. In-range registers make the mask a
/// no-op; the `debug_assert!` catches allocator bugs that would otherwise
/// silently alias registers through the mask.
#[inline(always)]
fn r(reg: Reg) -> usize {
    debug_assert!(
        (reg as usize) < NREGS,
        "register r{reg} out of range (NREGS = {NREGS}) — regalloc bug"
    );
    (reg & REG_MASK) as usize
}

#[inline]
fn fits_i31(v: i64) -> bool {
    (INT_MIN..=INT_MAX).contains(&v)
}

/// Unchecked integer ALU shared by the fused immediate/AR/write-through
/// forms; semantics identical to the raw per-op match arms.
#[inline]
fn alu_i(op: AluOp, x: i32, y: i32) -> i32 {
    match op {
        AluOp::Add => x.wrapping_add(y),
        AluOp::Sub => x.wrapping_sub(y),
        AluOp::Mul => x.wrapping_mul(y),
        AluOp::And => x & y,
        AluOp::Or => x | y,
        AluOp::Xor => x ^ y,
        AluOp::Shl => x.wrapping_shl((y & 31) as u32),
        AluOp::Shr => x.wrapping_shr((y & 31) as u32),
        AluOp::UShr => (x as u32).wrapping_shr((y & 31) as u32) as i32,
    }
}

/// Checked integer arithmetic: `None` means the guard fails (result
/// outside the boxable 31-bit range, or a `-0` multiply).
#[inline]
fn chk_alu_i(op: ChkOp, x: i32, y: i32) -> Option<i64> {
    let res = match op {
        ChkOp::Add => i64::from(x) + i64::from(y),
        ChkOp::Sub => i64::from(x) - i64::from(y),
        ChkOp::Mul => {
            let res = i64::from(x) * i64::from(y);
            // -0 results need the double path.
            if res == 0 && (x < 0 || y < 0) {
                return None;
            }
            res
        }
        // The shifts operate on the 32-bit value, then range-check the
        // result — identical to the raw ShlIChk/UShrIChk arms (a u32
        // result is never below INT_MIN, so fits_i31 is exactly the
        // raw upper-bound check).
        ChkOp::Shl => i64::from(x.wrapping_shl((y & 31) as u32)),
        ChkOp::UShr => i64::from((x as u32).wrapping_shr((y & 31) as u32)),
    };
    fits_i31(res).then_some(res)
}

#[inline]
fn cmp_i(op: CmpOp, x: i32, y: i32) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

#[inline]
fn cmp_d(op: CmpOp, x: f64, y: f64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// Builds the monitor-facing exit record. Unstitched exits are rare
/// relative to dispatched instructions, so keep the construction (and the
/// return-path register shuffle it forces) out of the dispatch loop. This
/// is the **only** place a [`TraceExit`] is constructed.
#[cold]
#[inline(never)]
fn trace_exit(fragment: u32, exit: u16, insts: u64, fused_insts: u64, iterations: u64) -> TraceExit {
    TraceExit { fragment, exit, insts, fused_insts, iterations }
}

/// Executes `fragments[start]` (and any fragments reachable through
/// stitched exits and loop-backs) until an unstitched exit is taken.
///
/// `ar` is the trace activation record: unboxed words per the tree's slot
/// layout, already populated by the monitor.
///
/// # Errors
///
/// Propagates [`RuntimeError`]s raised by helper calls; such errors abort
/// the whole guest program (the interpreter state cannot be reconstructed
/// mid-trace, and the error terminates execution anyway).
#[allow(clippy::too_many_lines)]
pub fn execute(
    fragments: &[Fragment],
    start: u32,
    ar: &mut [u64],
    realm: &mut Realm,
    host: &mut dyn TreeHost,
    fuel: u64,
) -> Result<TraceExit, RuntimeError> {
    let mut frag_idx = start;
    let mut frag = &fragments[frag_idx as usize];
    // Decoded exit-resolution table, hoisted out of the dispatch loop and
    // refreshed only on fragment switch (no per-exit `ExitTarget` match).
    let mut stitch: &[u32] = &frag.stitch;
    let mut pc = 0usize;
    // NREGS rounded up to a power of two so masked indexing elides bounds
    // checks in the hot dispatch loop.
    let mut regs = [0u64; REG_FILE_WORDS];
    let mut spill = vec![0u64; frag.num_spills as usize];
    let mut insts: u64 = 0;
    let mut fused: u64 = 0;
    let mut iterations: u64 = 0;
    let mut helper_args: Vec<u64> = Vec::with_capacity(8);

    macro_rules! take_exit {
        ($exit:expr) => {{
            let e = $exit;
            let target = stitch[e as usize];
            if target == EXIT_UNSTITCHED {
                return Ok(trace_exit(frag_idx, e, insts, fused, iterations));
            }
            // Trace stitching fast path: continue in the branch fragment
            // (resolved to a fragment index at link time) without leaving
            // the dispatch loop.
            frag_idx = target;
            frag = &fragments[frag_idx as usize];
            stitch = &frag.stitch;
            if spill.len() < frag.num_spills as usize {
                spill.resize(frag.num_spills as usize, 0);
            }
            pc = 0;
            continue;
        }};
    }

    // The loop edge (raw `LoopBack` and the fused loop-edge triples):
    // preemption flag guard at every crossing (§6.4), the deferred-GC safe
    // point, then back to the tree anchor (fragment 0, pc 0).
    macro_rules! loop_edge {
        ($exit:expr) => {{
            iterations += 1;
            if realm.interrupt || realm.heap.gc_pending || insts >= fuel {
                take_exit!($exit);
            }
            frag_idx = 0;
            frag = &fragments[0];
            stitch = &frag.stitch;
            if spill.len() < frag.num_spills as usize {
                spill.resize(frag.num_spills as usize, 0);
            }
            pc = 0;
        }};
    }

    loop {
        let inst = &frag.code[pc];
        pc += 1;
        insts += 1;
        match *inst {
            MachInst::ConstW { d, w } => regs[r(d)] = w,
            MachInst::Mov { d, s } => regs[r(d)] = regs[r(s)],
            MachInst::LoadSpill { d, slot } => regs[r(d)] = spill[slot as usize],
            MachInst::StoreSpill { slot, s } => spill[slot as usize] = regs[r(s)],
            MachInst::ReadAr { d, slot } => regs[r(d)] = ar[slot as usize],
            MachInst::WriteAr { slot, s } => ar[slot as usize] = regs[r(s)],

            MachInst::AddI { d, a, b } => {
                regs[r(d)] = i64::from(
                    i32_from_word(regs[r(a)]).wrapping_add(i32_from_word(regs[r(b)])),
                ) as u64;
            }
            MachInst::SubI { d, a, b } => {
                regs[r(d)] = i64::from(
                    i32_from_word(regs[r(a)]).wrapping_sub(i32_from_word(regs[r(b)])),
                ) as u64;
            }
            MachInst::MulI { d, a, b } => {
                regs[r(d)] = i64::from(
                    i32_from_word(regs[r(a)]).wrapping_mul(i32_from_word(regs[r(b)])),
                ) as u64;
            }
            MachInst::AndI { d, a, b } => {
                regs[r(d)] =
                    i64::from(i32_from_word(regs[r(a)]) & i32_from_word(regs[r(b)]))
                        as u64;
            }
            MachInst::OrI { d, a, b } => {
                regs[r(d)] =
                    i64::from(i32_from_word(regs[r(a)]) | i32_from_word(regs[r(b)]))
                        as u64;
            }
            MachInst::XorI { d, a, b } => {
                regs[r(d)] =
                    i64::from(i32_from_word(regs[r(a)]) ^ i32_from_word(regs[r(b)]))
                        as u64;
            }
            MachInst::ShlI { d, a, b } => {
                let sh = (i32_from_word(regs[r(b)]) & 31) as u32;
                regs[r(d)] =
                    i64::from(i32_from_word(regs[r(a)]).wrapping_shl(sh)) as u64;
            }
            MachInst::ShrI { d, a, b } => {
                let sh = (i32_from_word(regs[r(b)]) & 31) as u32;
                regs[r(d)] =
                    i64::from(i32_from_word(regs[r(a)]).wrapping_shr(sh)) as u64;
            }
            MachInst::UShrI { d, a, b } => {
                let sh = (i32_from_word(regs[r(b)]) & 31) as u32;
                regs[r(d)] =
                    i64::from((i32_from_word(regs[r(a)]) as u32).wrapping_shr(sh) as i32)
                        as u64;
            }
            MachInst::NotI { d, a } => {
                regs[r(d)] = i64::from(!i32_from_word(regs[r(a)])) as u64;
            }
            MachInst::NegI { d, a } => {
                regs[r(d)] =
                    i64::from(i32_from_word(regs[r(a)]).wrapping_neg()) as u64;
            }

            MachInst::AddIChk { d, a, b, exit } => {
                let res = i64::from(i32_from_word(regs[r(a)]))
                    + i64::from(i32_from_word(regs[r(b)]));
                if !fits_i31(res) {
                    take_exit!(exit);
                }
                regs[r(d)] = res as u64;
            }
            MachInst::SubIChk { d, a, b, exit } => {
                let res = i64::from(i32_from_word(regs[r(a)]))
                    - i64::from(i32_from_word(regs[r(b)]));
                if !fits_i31(res) {
                    take_exit!(exit);
                }
                regs[r(d)] = res as u64;
            }
            MachInst::MulIChk { d, a, b, exit } => {
                let x = i64::from(i32_from_word(regs[r(a)]));
                let y = i64::from(i32_from_word(regs[r(b)]));
                let res = x * y;
                // -0 results need the double path.
                if !fits_i31(res) || (res == 0 && (x < 0 || y < 0)) {
                    take_exit!(exit);
                }
                regs[r(d)] = res as u64;
            }
            MachInst::NegIChk { d, a, exit } => {
                let x = i64::from(i32_from_word(regs[r(a)]));
                let res = -x;
                if x == 0 || !fits_i31(res) {
                    take_exit!(exit);
                }
                regs[r(d)] = res as u64;
            }
            MachInst::ModIChk { d, a, b, exit } => {
                let x = i32_from_word(regs[r(a)]);
                let y = i32_from_word(regs[r(b)]);
                if y == 0 {
                    take_exit!(exit);
                }
                let res = x.wrapping_rem(y);
                if res == 0 && x < 0 {
                    take_exit!(exit);
                }
                regs[r(d)] = i64::from(res) as u64;
            }
            MachInst::ShlIChk { d, a, b, exit } => {
                let sh = (i32_from_word(regs[r(b)]) & 31) as u32;
                let res = i32_from_word(regs[r(a)]).wrapping_shl(sh);
                if !fits_i31(i64::from(res)) {
                    take_exit!(exit);
                }
                regs[r(d)] = i64::from(res) as u64;
            }
            MachInst::UShrIChk { d, a, b, exit } => {
                let sh = (i32_from_word(regs[r(b)]) & 31) as u32;
                let res = (i32_from_word(regs[r(a)]) as u32).wrapping_shr(sh);
                if i64::from(res) > INT_MAX {
                    take_exit!(exit);
                }
                regs[r(d)] = u64::from(res);
            }

            MachInst::AddD { d, a, b } => {
                regs[r(d)] = word_from_f64(
                    f64_from_word(regs[r(a)]) + f64_from_word(regs[r(b)]),
                );
            }
            MachInst::SubD { d, a, b } => {
                regs[r(d)] = word_from_f64(
                    f64_from_word(regs[r(a)]) - f64_from_word(regs[r(b)]),
                );
            }
            MachInst::MulD { d, a, b } => {
                regs[r(d)] = word_from_f64(
                    f64_from_word(regs[r(a)]) * f64_from_word(regs[r(b)]),
                );
            }
            MachInst::DivD { d, a, b } => {
                regs[r(d)] = word_from_f64(
                    f64_from_word(regs[r(a)]) / f64_from_word(regs[r(b)]),
                );
            }
            MachInst::ModD { d, a, b } => {
                regs[r(d)] = word_from_f64(
                    f64_from_word(regs[r(a)]) % f64_from_word(regs[r(b)]),
                );
            }
            MachInst::NegD { d, a } => {
                regs[r(d)] = word_from_f64(-f64_from_word(regs[r(a)]));
            }

            MachInst::EqI { d, a, b } => {
                regs[r(d)] =
                    u64::from(i32_from_word(regs[r(a)]) == i32_from_word(regs[r(b)]));
            }
            MachInst::LtI { d, a, b } => {
                regs[r(d)] =
                    u64::from(i32_from_word(regs[r(a)]) < i32_from_word(regs[r(b)]));
            }
            MachInst::LeI { d, a, b } => {
                regs[r(d)] =
                    u64::from(i32_from_word(regs[r(a)]) <= i32_from_word(regs[r(b)]));
            }
            MachInst::GtI { d, a, b } => {
                regs[r(d)] =
                    u64::from(i32_from_word(regs[r(a)]) > i32_from_word(regs[r(b)]));
            }
            MachInst::GeI { d, a, b } => {
                regs[r(d)] =
                    u64::from(i32_from_word(regs[r(a)]) >= i32_from_word(regs[r(b)]));
            }
            MachInst::EqD { d, a, b } => {
                regs[r(d)] =
                    u64::from(f64_from_word(regs[r(a)]) == f64_from_word(regs[r(b)]));
            }
            MachInst::LtD { d, a, b } => {
                regs[r(d)] =
                    u64::from(f64_from_word(regs[r(a)]) < f64_from_word(regs[r(b)]));
            }
            MachInst::LeD { d, a, b } => {
                regs[r(d)] =
                    u64::from(f64_from_word(regs[r(a)]) <= f64_from_word(regs[r(b)]));
            }
            MachInst::GtD { d, a, b } => {
                regs[r(d)] =
                    u64::from(f64_from_word(regs[r(a)]) > f64_from_word(regs[r(b)]));
            }
            MachInst::GeD { d, a, b } => {
                regs[r(d)] =
                    u64::from(f64_from_word(regs[r(a)]) >= f64_from_word(regs[r(b)]));
            }
            MachInst::NotB { d, a } => {
                regs[r(d)] = u64::from(regs[r(a)] == 0);
            }

            MachInst::I2D { d, a } => {
                regs[r(d)] =
                    word_from_f64(f64::from(i32_from_word(regs[r(a)])));
            }
            MachInst::U2D { d, a } => {
                regs[r(d)] =
                    word_from_f64(f64::from(i32_from_word(regs[r(a)]) as u32));
            }
            MachInst::D2IChk { d, a, exit } => {
                let x = f64_from_word(regs[r(a)]);
                if x.fract() != 0.0
                    || !fits_i31(x as i64)
                    || x.is_nan()
                    || (x == 0.0 && x.is_sign_negative())
                {
                    take_exit!(exit);
                }
                regs[r(d)] = i64::from(x as i32) as u64;
            }
            MachInst::D2I32 { d, a } => {
                regs[r(d)] = i64::from(tm_runtime::ops::double_to_int32(f64_from_word(
                    regs[r(a)],
                ))) as u64;
            }

            MachInst::ChkRangeI { d, a, exit } => {
                let x = i64::from(i32_from_word(regs[r(a)]));
                if !fits_i31(x) {
                    take_exit!(exit);
                }
                regs[r(d)] = x as u64;
            }
            MachInst::BoxI { d, a } => {
                regs[r(d)] =
                    realm.heap.number_i32(i32_from_word(regs[r(a)])).raw();
            }
            MachInst::BoxD { d, a } => {
                let v = realm.heap.number(f64_from_word(regs[r(a)]));
                if realm.heap.should_collect() {
                    realm.heap.gc_pending = true;
                }
                regs[r(d)] = v.raw();
            }
            MachInst::BoxB { d, a } => {
                regs[r(d)] = Value::new_bool(regs[r(a)] != 0).raw();
            }
            MachInst::BoxObj { d, a } => {
                regs[r(d)] = Value::new_object(ObjectId(regs[r(a)] as u32)).raw();
            }
            MachInst::BoxStr { d, a } => {
                regs[r(d)] = Value::new_string(StringId(regs[r(a)] as u32)).raw();
            }
            MachInst::UnboxI { d, a, exit } => {
                match Value::from_raw(regs[r(a)]).as_int() {
                    Some(i) => regs[r(d)] = i64::from(i) as u64,
                    None => take_exit!(exit),
                }
            }
            MachInst::UnboxD { d, a, exit } => {
                let v = Value::from_raw(regs[r(a)]);
                match v.as_double_id() {
                    Some(id) => regs[r(d)] = word_from_f64(realm.heap.double(id)),
                    None => take_exit!(exit),
                }
            }
            MachInst::UnboxNumD { d, a, exit } => {
                let v = Value::from_raw(regs[r(a)]);
                match realm.heap.number_value(v) {
                    Some(x) => regs[r(d)] = word_from_f64(x),
                    None => take_exit!(exit),
                }
            }
            MachInst::UnboxObj { d, a, exit } => {
                match Value::from_raw(regs[r(a)]).as_object() {
                    Some(id) => regs[r(d)] = u64::from(id.0),
                    None => take_exit!(exit),
                }
            }
            MachInst::UnboxStr { d, a, exit } => {
                match Value::from_raw(regs[r(a)]).as_string() {
                    Some(id) => regs[r(d)] = u64::from(id.0),
                    None => take_exit!(exit),
                }
            }
            MachInst::UnboxBool { d, a, exit } => {
                match Value::from_raw(regs[r(a)]).as_bool() {
                    Some(b) => regs[r(d)] = u64::from(b),
                    None => take_exit!(exit),
                }
            }

            MachInst::GuardTrue { s, exit } => {
                if regs[r(s)] == 0 {
                    take_exit!(exit);
                }
            }
            MachInst::GuardFalse { s, exit } => {
                if regs[r(s)] != 0 {
                    take_exit!(exit);
                }
            }
            MachInst::GuardShape { obj, shape, exit } => {
                let o = ObjectId(regs[r(obj)] as u32);
                if realm.heap.object(o).shape.0 != shape {
                    take_exit!(exit);
                }
            }
            MachInst::GuardClass { obj, class, exit } => {
                let o = ObjectId(regs[r(obj)] as u32);
                if realm.heap.object(o).class as u8 != class {
                    take_exit!(exit);
                }
            }
            MachInst::GuardBoxedEq { s, w, exit } => {
                if regs[r(s)] != w {
                    take_exit!(exit);
                }
            }
            MachInst::GuardBound { arr, idx, exit } => {
                let o = ObjectId(regs[r(arr)] as u32);
                let i = i32_from_word(regs[r(idx)]);
                if i < 0 || i as usize >= realm.heap.object(o).elements.len() {
                    take_exit!(exit);
                }
            }

            MachInst::LoadSlot { d, o, slot } => {
                let oid = ObjectId(regs[r(o)] as u32);
                regs[r(d)] = realm.heap.object(oid).slots[slot as usize].raw();
            }
            MachInst::StoreSlot { o, slot, s } => {
                let oid = ObjectId(regs[r(o)] as u32);
                realm.heap.object_mut(oid).slots[slot as usize] =
                    Value::from_raw(regs[r(s)]);
            }
            MachInst::LoadProto { d, o } => {
                let oid = ObjectId(regs[r(o)] as u32);
                let proto = realm.heap.object(oid).proto.expect("proto guarded by recording");
                regs[r(d)] = u64::from(proto.0);
            }
            MachInst::LoadElem { d, a, i } => {
                let oid = ObjectId(regs[r(a)] as u32);
                let idx = i32_from_word(regs[r(i)]) as usize;
                regs[r(d)] = realm.heap.object(oid).elements[idx].raw();
            }
            MachInst::StoreElem { a, i, s } => {
                let oid = ObjectId(regs[r(a)] as u32);
                let idx = i32_from_word(regs[r(i)]) as u32;
                let v = Value::from_raw(regs[r(s)]);
                realm.heap.object_mut(oid).set_element(idx, v);
            }
            MachInst::ArrayLen { d, a } => {
                let oid = ObjectId(regs[r(a)] as u32);
                regs[r(d)] = u64::from(realm.heap.object(oid).array_length());
            }
            MachInst::StrLen { d, a } => {
                let sid = StringId(regs[r(a)] as u32);
                regs[r(d)] = realm.heap.string(sid).len() as u64;
            }

            MachInst::CallHelper { d, helper, ref args, exit } => {
                helper_args.clear();
                helper_args.extend(args.iter().map(|&s| regs[r(s)]));
                let result = call_helper(realm, helper, &helper_args)?;
                regs[r(d)] = result;
                if realm.reentered_during_trace {
                    // §6.5: a reentrant external call forces the trace to
                    // exit immediately after the call returns.
                    realm.reentered_during_trace = false;
                    take_exit!(exit);
                }
            }
            MachInst::CallTree { tree, exit } => {
                if !host.call_tree(tree, ar, realm)? {
                    take_exit!(exit);
                }
            }
            MachInst::LoopBack { exit } => loop_edge!(exit),
            MachInst::End { exit } => take_exit!(exit),

            // ----- fused superinstructions (emitted by the peephole pass) -----
            MachInst::CmpBranchI { op, want, a, b, exit } => {
                fused += 1;
                if cmp_i(op, i32_from_word(regs[r(a)]), i32_from_word(regs[r(b)])) != want {
                    take_exit!(exit);
                }
            }
            MachInst::CmpBranchD { op, want, a, b, exit } => {
                fused += 1;
                if cmp_d(op, f64_from_word(regs[r(a)]), f64_from_word(regs[r(b)])) != want {
                    take_exit!(exit);
                }
            }
            MachInst::CmpBranchLoopI { op, want, a, b, exit, loop_exit } => {
                fused += 1;
                if cmp_i(op, i32_from_word(regs[r(a)]), i32_from_word(regs[r(b)])) != want {
                    take_exit!(exit);
                }
                loop_edge!(loop_exit);
            }
            MachInst::CmpBranchLoopD { op, want, a, b, exit, loop_exit } => {
                fused += 1;
                if cmp_d(op, f64_from_word(regs[r(a)]), f64_from_word(regs[r(b)])) != want {
                    take_exit!(exit);
                }
                loop_edge!(loop_exit);
            }
            MachInst::AluImmI { op, d, a, imm } => {
                fused += 1;
                regs[r(d)] = i64::from(alu_i(op, i32_from_word(regs[r(a)]), imm)) as u64;
            }
            MachInst::AluArI { op, d, slot, b } => {
                fused += 1;
                let x = i32_from_word(ar[slot as usize]);
                regs[r(d)] = i64::from(alu_i(op, x, i32_from_word(regs[r(b)]))) as u64;
            }
            MachInst::AluWrI { op, d, a, b, slot } => {
                fused += 1;
                let v =
                    i64::from(alu_i(op, i32_from_word(regs[r(a)]), i32_from_word(regs[r(b)])))
                        as u64;
                regs[r(d)] = v;
                ar[slot as usize] = v;
            }
            MachInst::AluImmWrI { op, d, a, imm, slot } => {
                fused += 1;
                let v = i64::from(alu_i(op, i32_from_word(regs[r(a)]), imm)) as u64;
                regs[r(d)] = v;
                ar[slot as usize] = v;
            }
            MachInst::ChkAluImmI { op, d, a, imm, exit } => {
                fused += 1;
                match chk_alu_i(op, i32_from_word(regs[r(a)]), imm) {
                    Some(res) => regs[r(d)] = res as u64,
                    None => take_exit!(exit),
                }
            }
            MachInst::ChkAluWrI { op, d, a, b, exit, slot } => {
                fused += 1;
                match chk_alu_i(op, i32_from_word(regs[r(a)]), i32_from_word(regs[r(b)])) {
                    Some(res) => {
                        regs[r(d)] = res as u64;
                        ar[slot as usize] = res as u64;
                    }
                    None => take_exit!(exit),
                }
            }
            MachInst::ChkAluImmWrI { op, d, a, imm, exit, slot } => {
                fused += 1;
                match chk_alu_i(op, i32_from_word(regs[r(a)]), imm) {
                    Some(res) => {
                        regs[r(d)] = res as u64;
                        ar[slot as usize] = res as u64;
                    }
                    None => take_exit!(exit),
                }
            }
            MachInst::ChkAluImmWrLoopI { op, d, a, imm, slot, exit, loop_exit } => {
                fused += 1;
                match chk_alu_i(op, i32_from_word(regs[r(a)]), imm) {
                    Some(res) => {
                        regs[r(d)] = res as u64;
                        ar[slot as usize] = res as u64;
                    }
                    None => take_exit!(exit),
                }
                loop_edge!(loop_exit);
            }
            MachInst::ConstWrAr { d, w, slot } => {
                fused += 1;
                regs[r(d)] = w;
                ar[slot as usize] = w;
            }
            MachInst::MovAr { d, src, dst } => {
                fused += 1;
                let v = ar[src as usize];
                regs[r(d)] = v;
                ar[dst as usize] = v;
            }
            MachInst::WriteAr2 { slot_a, s_a, slot_b, s_b } => {
                fused += 1;
                ar[slot_a as usize] = regs[r(s_a)];
                ar[slot_b as usize] = regs[r(s_b)];
            }
            MachInst::WriteAr3 { slot_a, s_a, slot_b, s_b, slot_c, s_c } => {
                fused += 1;
                ar[slot_a as usize] = regs[r(s_a)];
                ar[slot_b as usize] = regs[r(s_b)];
                ar[slot_c as usize] = regs[r(s_c)];
            }
            MachInst::AluArWrI { op, d, slot_a, b, slot_d } => {
                fused += 1;
                let x = i32_from_word(ar[slot_a as usize]);
                let v = i64::from(alu_i(op, x, i32_from_word(regs[r(b)]))) as u64;
                regs[r(d)] = v;
                ar[slot_d as usize] = v;
            }
            MachInst::CmpImmI { op, d, a, imm } => {
                fused += 1;
                regs[r(d)] = u64::from(cmp_i(op, i32_from_word(regs[r(a)]), imm));
            }
            MachInst::CmpWrI { op, d, a, b, slot } => {
                fused += 1;
                let v = u64::from(cmp_i(
                    op,
                    i32_from_word(regs[r(a)]),
                    i32_from_word(regs[r(b)]),
                ));
                regs[r(d)] = v;
                ar[slot as usize] = v;
            }
            MachInst::CmpWrD { op, d, a, b, slot } => {
                fused += 1;
                let v = u64::from(cmp_d(
                    op,
                    f64_from_word(regs[r(a)]),
                    f64_from_word(regs[r(b)]),
                ));
                regs[r(d)] = v;
                ar[slot as usize] = v;
            }
            MachInst::CmpImmWrI { op, d, a, imm, slot } => {
                fused += 1;
                let v = u64::from(cmp_i(op, i32_from_word(regs[r(a)]), imm));
                regs[r(d)] = v;
                ar[slot as usize] = v;
            }
            MachInst::CmpBranchImmI { op, want, a, imm, exit } => {
                fused += 1;
                if cmp_i(op, i32_from_word(regs[r(a)]), imm) != want {
                    take_exit!(exit);
                }
            }
            // The Wr-branch forms write the register and the AR slot
            // *before* the exit check, matching the raw order (a failing
            // exit must see the stored condition).
            MachInst::CmpWrBranchI { op, want, d, a, b, slot, exit } => {
                fused += 1;
                let c = cmp_i(op, i32_from_word(regs[r(a)]), i32_from_word(regs[r(b)]));
                regs[r(d)] = u64::from(c);
                ar[slot as usize] = u64::from(c);
                if c != want {
                    take_exit!(exit);
                }
            }
            MachInst::CmpWrBranchD { op, want, d, a, b, slot, exit } => {
                fused += 1;
                let c = cmp_d(op, f64_from_word(regs[r(a)]), f64_from_word(regs[r(b)]));
                regs[r(d)] = u64::from(c);
                ar[slot as usize] = u64::from(c);
                if c != want {
                    take_exit!(exit);
                }
            }
            MachInst::CmpImmWrBranchI { op, want, d, a, imm, slot, exit } => {
                fused += 1;
                let c = cmp_i(op, i32_from_word(regs[r(a)]), imm);
                regs[r(d)] = u64::from(c);
                ar[slot as usize] = u64::from(c);
                if c != want {
                    take_exit!(exit);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;
    use crate::machinst::ExitTarget;
    use crate::peephole::fuse;
    use tm_lir::{FilterOptions, Lir, LirBuffer, LirType};

    /// Builds the classic counting loop: slot0 += 1 until slot0 >= slot1.
    fn counting_tree() -> Vec<Fragment> {
        let mut b = LirBuffer::new(FilterOptions::default());
        let i = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let limit = b.emit(Lir::Import { slot: 1, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::AddIChk(i, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let cond = b.emit(Lir::LtI(next, limit));
        let e_done = b.alloc_exit();
        b.emit(Lir::GuardTrue(cond, e_done));
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        vec![assemble(b.trace())]
    }

    #[test]
    fn loop_executes_to_exit() {
        let frags = counting_tree();
        let mut realm = Realm::new();
        let mut ar = vec![0u64, 100u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 1, "loop-done guard exit");
        assert_eq!(ar[0] as i64, 100);
        assert_eq!(exit.iterations, 99);
        assert!(exit.insts > 300, "about 7 insts x 100 iterations");
    }

    #[test]
    fn overflow_guard_exits() {
        // An unconditional increment loop: the only way out is the
        // 31-bit overflow guard (§3.1's integer overflow speculation).
        let mut b = LirBuffer::new(FilterOptions::default());
        let i = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::AddIChk(i, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        let frags = vec![assemble(b.trace())];

        let mut realm = Realm::new();
        let start = INT_MAX - 5;
        let mut ar = vec![start as u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 0, "overflow guard exit");
        // The AR still holds the last in-range value.
        assert_eq!(ar[0] as i64, INT_MAX);
        assert_eq!(exit.iterations, 5);
    }

    #[test]
    fn preemption_exits_at_loop_edge() {
        let frags = counting_tree();
        let mut realm = Realm::new();
        realm.interrupt = true;
        let mut ar = vec![0u64, 1000u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 2, "interrupt takes the loop-edge exit");
        assert_eq!(exit.iterations, 1);
    }

    #[test]
    fn trace_stitching_transfers_to_branch_fragment() {
        // Trunk: guard slot0 < 10 else exit0; slot0 += 1; loop.
        let mut b = LirBuffer::new(FilterOptions::default());
        let i = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let ten = b.emit(Lir::ConstI(10));
        let cond = b.emit(Lir::LtI(i, ten));
        let e_branch = b.alloc_exit();
        b.emit(Lir::GuardTrue(cond, e_branch));
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::AddIChk(i, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        let mut trunk = assemble(b.trace());

        // Branch (taken when slot0 >= 10): slot1 = slot0 * 2; end.
        let mut b2 = LirBuffer::new(FilterOptions::default());
        let i2 = b2.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let two = b2.emit(Lir::ConstI(2));
        let e2 = b2.alloc_exit();
        let dbl = b2.emit(Lir::MulIChk(i2, two, e2));
        b2.emit(Lir::WriteAr { slot: 1, v: dbl });
        let e_end = b2.alloc_exit();
        b2.emit(Lir::End(e_end));
        let branch = assemble(b2.trace());

        // Stitch trunk exit 0 to the branch fragment.
        trunk.set_exit_target(0, ExitTarget::Fragment(1));
        let frags = vec![trunk, branch];

        let mut realm = Realm::new();
        let mut ar = vec![0u64, 0u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.fragment, 1, "ended in the branch fragment");
        assert_eq!(exit.exit, 1, "the branch's End exit");
        assert_eq!(ar[0] as i64, 10);
        assert_eq!(ar[1] as i64, 20);
    }

    #[test]
    fn double_loop_with_boxing() {
        // slot0 (double) += 0.5 until >= slot1 (double).
        let mut b = LirBuffer::new(FilterOptions::default());
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Double });
        let limit = b.emit(Lir::Import { slot: 1, ty: LirType::Double });
        let half = b.emit(Lir::ConstD(0.5f64.to_bits()));
        let next = b.emit(Lir::AddD(x, half));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let cond = b.emit(Lir::LtD(next, limit));
        let e_done = b.alloc_exit();
        b.emit(Lir::GuardTrue(cond, e_done));
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        let frags = vec![assemble(b.trace())];
        let mut realm = Realm::new();
        let mut ar = vec![0.0f64.to_bits(), 10.0f64.to_bits()];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 0);
        assert_eq!(f64::from_bits(ar[0]), 10.0);
    }

    #[test]
    fn helper_call_from_trace() {
        // slot1 = sqrt(slot0) via the Sqrt helper; end.
        let mut b = LirBuffer::new(FilterOptions::default());
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Double });
        let e = b.alloc_exit();
        let r = b.emit(Lir::Call {
            helper: tm_runtime::Helper::Sqrt,
            args: vec![x].into_boxed_slice(),
            ret: LirType::Double,
            exit: e,
        });
        b.emit(Lir::WriteAr { slot: 1, v: r });
        let e_end = b.alloc_exit();
        b.emit(Lir::End(e_end));
        let frags = vec![assemble(b.trace())];
        let mut realm = Realm::new();
        let mut ar = vec![81.0f64.to_bits(), 0];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 1);
        assert_eq!(f64::from_bits(ar[1]), 9.0);
    }

    #[test]
    fn unbox_guard_takes_exit_on_wrong_tag() {
        let mut b = LirBuffer::new(FilterOptions::default());
        let v = b.emit(Lir::Import { slot: 0, ty: LirType::Boxed });
        let e_tag = b.alloc_exit();
        let i = b.emit(Lir::UnboxI(v, e_tag));
        b.emit(Lir::WriteAr { slot: 1, v: i });
        let e_end = b.alloc_exit();
        b.emit(Lir::End(e_end));
        let frags = vec![assemble(b.trace())];
        let mut realm = Realm::new();
        // An int-tagged word unboxes fine.
        let mut ar = vec![Value::new_int(5).raw(), 0];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 1);
        assert_eq!(ar[1] as i64, 5);
        // A string-tagged word takes the type guard exit.
        let s = realm.heap.alloc_string("x");
        let mut ar = vec![s.raw(), 0];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 0);
    }

    #[test]
    fn array_element_access() {
        // slot1 = arr[slot0-as-int] with bounds guard.
        let mut b = LirBuffer::new(FilterOptions::default());
        let arr = b.emit(Lir::Import { slot: 0, ty: LirType::Object });
        let idx = b.emit(Lir::Import { slot: 1, ty: LirType::Int });
        let e_bound = b.alloc_exit();
        b.emit(Lir::GuardBound { arr, idx, exit: e_bound });
        let v = b.emit(Lir::LoadElem(arr, idx));
        b.emit(Lir::WriteAr { slot: 2, v });
        let e_end = b.alloc_exit();
        b.emit(Lir::End(e_end));
        let frags = vec![assemble(b.trace())];
        let mut realm = Realm::new();
        let a = realm.new_array(3);
        realm.heap.object_mut(a).set_element(2, Value::new_int(42));
        let mut ar = vec![u64::from(a.0), 2, 0];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 1);
        assert_eq!(Value::from_raw(ar[2]).as_int(), Some(42));
        // Out of bounds takes the guard exit.
        let mut ar = vec![u64::from(a.0), 7, 0];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 0);
    }

    #[test]
    fn fused_counting_loop_same_result_fewer_dispatches() {
        let raw = counting_tree();
        let fused: Vec<Fragment> = raw.iter().cloned().map(fuse).collect();

        let mut realm = Realm::new();
        let mut ar = vec![0u64, 100u64];
        let raw_exit =
            execute(&raw, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();

        let mut realm = Realm::new();
        let mut ar2 = vec![0u64, 100u64];
        let fused_exit =
            execute(&fused, 0, &mut ar2, &mut realm, &mut NoNesting, u64::MAX).unwrap();

        assert_eq!(fused_exit.exit, raw_exit.exit);
        assert_eq!(fused_exit.iterations, raw_exit.iterations);
        assert_eq!(ar2, ar, "fusion must preserve the activation record");
        assert!(fused_exit.fused_insts > 0, "superinstructions were dispatched");
        assert!(
            fused_exit.insts * 2 <= raw_exit.insts + 8,
            "counting loop should dispatch about half the instructions \
             (raw {} vs fused {})",
            raw_exit.insts,
            fused_exit.insts
        );
        assert_eq!(raw_exit.fused_insts, 0, "unfused code dispatches no superinsts");
    }

    #[test]
    fn spill_store_reload_round_trip_executes_correctly() {
        // More live values than registers: the allocator must spill, and
        // the executed result must still be the exact sum.
        let mut b = LirBuffer::new(FilterOptions { cse: false, fold: false, ..Default::default() });
        let n = crate::machinst::NREGS + 8;
        let vals: Vec<_> = (0..n)
            .map(|i| b.emit(Lir::Import { slot: i as u16, ty: LirType::Int }))
            .collect();
        // Consume in reverse so early values must be reloaded from spill.
        let mut acc = vals[n - 1];
        for &v in vals.iter().rev().skip(1) {
            acc = b.emit(Lir::AddI(acc, v));
        }
        b.emit(Lir::WriteAr { slot: 0, v: acc });
        let e_end = b.alloc_exit();
        b.emit(Lir::End(e_end));
        let raw = assemble(b.trace());
        assert!(raw.num_spills > 0, "test requires spill traffic");

        let expected: i64 = (1..=n as i64).sum();
        for frag in [raw.clone(), fuse(raw)] {
            let mut realm = Realm::new();
            let mut ar: Vec<u64> = (1..=n as u64).collect();
            let exit =
                execute(&[frag], 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
            assert_eq!(exit.exit, 0);
            assert_eq!(ar[0] as i64, expected);
        }
    }

    #[test]
    fn i31_overflow_guard_boundary_values() {
        assert!(fits_i31(INT_MAX as i64));
        assert!(!fits_i31(INT_MAX as i64 + 1));
        assert!(fits_i31(INT_MIN as i64));
        assert!(!fits_i31(INT_MIN as i64 - 1));

        // slot0 += 1 with overflow check, then end.
        let mut b = LirBuffer::new(FilterOptions::default());
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::AddIChk(x, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let e_end = b.alloc_exit();
        b.emit(Lir::End(e_end));
        let raw = assemble(b.trace());

        for frag in [raw.clone(), fuse(raw)] {
            let frags = vec![frag];
            // INT_MAX - 1 + 1 == INT_MAX: still in range.
            let mut realm = Realm::new();
            let mut ar = vec![(INT_MAX - 1) as u64];
            let exit =
                execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
            assert_eq!(exit.exit, 1);
            assert_eq!(ar[0] as i64, i64::from(INT_MAX));
            // INT_MAX + 1: exactly one past the boundary takes the guard.
            let mut ar = vec![INT_MAX as u64];
            let exit =
                execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
            assert_eq!(exit.exit, 0, "overflow guard fires exactly at the boundary");
            assert_eq!(ar[0] as i64, i64::from(INT_MAX), "AR unchanged on guard exit");
        }

        // slot0 -= 1 checked: underflow boundary.
        let mut b = LirBuffer::new(FilterOptions::default());
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::SubIChk(x, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let e_end = b.alloc_exit();
        b.emit(Lir::End(e_end));
        let raw = assemble(b.trace());
        for frag in [raw.clone(), fuse(raw)] {
            let frags = vec![frag];
            let mut realm = Realm::new();
            let mut ar = vec![INT_MIN as i64 as u64];
            let exit =
                execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
            assert_eq!(exit.exit, 0, "underflow guard fires exactly at the boundary");
        }
    }

    #[test]
    fn stitched_exit_transfers_values_through_ar_when_fused() {
        // Same shape as trace_stitching_transfers_to_branch_fragment, but
        // both fragments run through the peephole pass: the stitched
        // transfer must still see every trunk WriteAr in the AR.
        let mut b = LirBuffer::new(FilterOptions::default());
        let i = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let ten = b.emit(Lir::ConstI(10));
        let cond = b.emit(Lir::LtI(i, ten));
        let e_branch = b.alloc_exit();
        b.emit(Lir::GuardTrue(cond, e_branch));
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::AddIChk(i, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        let mut trunk = fuse(assemble(b.trace()));

        let mut b2 = LirBuffer::new(FilterOptions::default());
        let i2 = b2.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let two = b2.emit(Lir::ConstI(2));
        let e2 = b2.alloc_exit();
        let dbl = b2.emit(Lir::MulIChk(i2, two, e2));
        b2.emit(Lir::WriteAr { slot: 1, v: dbl });
        let e_end = b2.alloc_exit();
        b2.emit(Lir::End(e_end));
        let branch = fuse(assemble(b2.trace()));

        trunk.set_exit_target(0, ExitTarget::Fragment(1));
        let frags = vec![trunk, branch];

        let mut realm = Realm::new();
        let mut ar = vec![0u64, 0u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.fragment, 1);
        assert_eq!(exit.exit, 1);
        assert_eq!(ar[0] as i64, 10, "trunk's final WriteAr visible across the stitch");
        assert_eq!(ar[1] as i64, 20, "branch computed from the transferred value");
    }

    #[test]
    fn call_tree_false_takes_the_attached_exit() {
        struct Scripted(bool);
        impl TreeHost for Scripted {
            fn call_tree(
                &mut self,
                _tree: u32,
                ar: &mut [u64],
                _realm: &mut Realm,
            ) -> Result<bool, RuntimeError> {
                ar[1] = 7;
                Ok(self.0)
            }
        }

        let mut b = LirBuffer::new(FilterOptions::default());
        let e_nest = b.alloc_exit();
        b.emit(Lir::CallTree { tree: 3, exit: e_nest });
        let x = b.emit(Lir::Import { slot: 1, ty: LirType::Int });
        b.emit(Lir::WriteAr { slot: 0, v: x });
        let e_end = b.alloc_exit();
        b.emit(Lir::End(e_end));
        let frags = vec![assemble(b.trace())];

        // Ok(false): the nesting guard fails — the outer trace must take
        // the CallTree's side exit without running the rest.
        let mut realm = Realm::new();
        let mut ar = vec![0u64, 0u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut Scripted(false), u64::MAX)
            .unwrap();
        assert_eq!(exit.exit, 0, "Ok(false) takes the CallTree exit");
        assert_eq!(ar[0], 0, "code after the call must not run");

        // Ok(true): execution continues past the nested call.
        let mut ar = vec![0u64, 0u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut Scripted(true), u64::MAX)
            .unwrap();
        assert_eq!(exit.exit, 1);
        assert_eq!(ar[0], 7, "inner tree's AR writes visible to the outer trace");
    }
}
