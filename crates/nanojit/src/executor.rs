//! Executor for compiled trace fragments.
//!
//! Executes the virtual ISA against a trace activation record and the
//! realm. Guards that fail consult the fragment's exit-target table: a
//! stitched exit transfers directly into a branch fragment (the paper's
//! trace stitching, §6.2 — values pass through the activation record,
//! which is exactly what the exiting trace's live `WriteAr`s populated);
//! an unstitched exit returns control to the trace monitor.

use tm_runtime::trace_helpers::{call_helper, f64_from_word, i32_from_word, word_from_f64};
use tm_runtime::value::{INT_MAX, INT_MIN};
use tm_runtime::{ObjectId, Realm, RuntimeError, StringId, Value};

use crate::machinst::{ExitTarget, Fragment, MachInst};

/// Host callback for nested-tree calls (§4). Implemented by the trace
/// monitor, which owns the tree registry and the interpreter state needed
/// to transfer between activation records.
pub trait TreeHost {
    /// Executes inner tree `tree` to completion.
    ///
    /// Returns `Ok(true)` when the inner tree exited through its expected
    /// loop-edge exit (the nesting guard holds), `Ok(false)` for any other
    /// inner side exit (the outer trace must side-exit).
    ///
    /// # Errors
    ///
    /// Propagates guest errors raised while running the inner tree.
    fn call_tree(
        &mut self,
        tree: u32,
        ar: &mut [u64],
        realm: &mut Realm,
    ) -> Result<bool, RuntimeError>;
}

/// A no-op host for trees without nested calls.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoNesting;

impl TreeHost for NoNesting {
    fn call_tree(
        &mut self,
        _tree: u32,
        _ar: &mut [u64],
        _realm: &mut Realm,
    ) -> Result<bool, RuntimeError> {
        Err(RuntimeError::Other("unexpected nested tree call".into()))
    }
}

/// Why trace execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceExit {
    /// Fragment index (within the executed tree) that exited.
    pub fragment: u32,
    /// The exit id taken.
    pub exit: u16,
    /// Machine instructions executed during this run.
    pub insts: u64,
    /// Completed loop-edge crossings (LoopBack executions).
    pub iterations: u64,
}

#[inline]
fn fits_i31(v: i64) -> bool {
    (INT_MIN..=INT_MAX).contains(&v)
}

/// Builds the monitor-facing exit record. Unstitched exits are rare
/// relative to dispatched instructions, so keep the construction (and the
/// return-path register shuffle it forces) out of the dispatch loop.
#[cold]
#[inline(never)]
fn trace_exit(fragment: u32, exit: u16, insts: u64, iterations: u64) -> TraceExit {
    TraceExit { fragment, exit, insts, iterations }
}

/// Executes `fragments[start]` (and any fragments reachable through
/// stitched exits and loop-backs) until an unstitched exit is taken.
///
/// `ar` is the trace activation record: unboxed words per the tree's slot
/// layout, already populated by the monitor.
///
/// # Errors
///
/// Propagates [`RuntimeError`]s raised by helper calls; such errors abort
/// the whole guest program (the interpreter state cannot be reconstructed
/// mid-trace, and the error terminates execution anyway).
#[allow(clippy::too_many_lines)]
pub fn execute(
    fragments: &[Fragment],
    start: u32,
    ar: &mut [u64],
    realm: &mut Realm,
    host: &mut dyn TreeHost,
    fuel: u64,
) -> Result<TraceExit, RuntimeError> {
    let mut frag_idx = start;
    let mut frag = &fragments[frag_idx as usize];
    // Hoisted out of the dispatch loop; refreshed only on fragment switch.
    let mut exit_targets: &[ExitTarget] = &frag.exit_targets;
    let mut pc = 0usize;
    // One past NREGS so masked indexing (`& 15`) elides bounds checks in
    // the hot dispatch loop.
    let mut regs = [0u64; 16];
    let mut spill = vec![0u64; frag.num_spills as usize];
    let mut insts: u64 = 0;
    let mut iterations: u64 = 0;
    let mut helper_args: Vec<u64> = Vec::with_capacity(8);

    macro_rules! take_exit {
        ($exit:expr) => {{
            let e = $exit;
            match exit_targets[e as usize] {
                ExitTarget::Return => {
                    return Ok(trace_exit(frag_idx, e, insts, iterations));
                }
                ExitTarget::Fragment(f) => {
                    // Trace stitching: continue in the branch fragment
                    // (resolved to a fragment index at link time).
                    frag_idx = f;
                    frag = &fragments[frag_idx as usize];
                    exit_targets = &frag.exit_targets;
                    if spill.len() < frag.num_spills as usize {
                        spill.resize(frag.num_spills as usize, 0);
                    }
                    pc = 0;
                    continue;
                }
            }
        }};
    }

    loop {
        let inst = &frag.code[pc];
        pc += 1;
        insts += 1;
        match *inst {
            MachInst::ConstW { d, w } => regs[(d & 15) as usize] = w,
            MachInst::Mov { d, s } => regs[(d & 15) as usize] = regs[(s & 15) as usize],
            MachInst::LoadSpill { d, slot } => regs[(d & 15) as usize] = spill[slot as usize],
            MachInst::StoreSpill { slot, s } => spill[slot as usize] = regs[(s & 15) as usize],
            MachInst::ReadAr { d, slot } => regs[(d & 15) as usize] = ar[slot as usize],
            MachInst::WriteAr { slot, s } => ar[slot as usize] = regs[(s & 15) as usize],

            MachInst::AddI { d, a, b } => {
                regs[(d & 15) as usize] = i64::from(
                    i32_from_word(regs[(a & 15) as usize]).wrapping_add(i32_from_word(regs[(b & 15) as usize])),
                ) as u64;
            }
            MachInst::SubI { d, a, b } => {
                regs[(d & 15) as usize] = i64::from(
                    i32_from_word(regs[(a & 15) as usize]).wrapping_sub(i32_from_word(regs[(b & 15) as usize])),
                ) as u64;
            }
            MachInst::MulI { d, a, b } => {
                regs[(d & 15) as usize] = i64::from(
                    i32_from_word(regs[(a & 15) as usize]).wrapping_mul(i32_from_word(regs[(b & 15) as usize])),
                ) as u64;
            }
            MachInst::AndI { d, a, b } => {
                regs[(d & 15) as usize] =
                    i64::from(i32_from_word(regs[(a & 15) as usize]) & i32_from_word(regs[(b & 15) as usize]))
                        as u64;
            }
            MachInst::OrI { d, a, b } => {
                regs[(d & 15) as usize] =
                    i64::from(i32_from_word(regs[(a & 15) as usize]) | i32_from_word(regs[(b & 15) as usize]))
                        as u64;
            }
            MachInst::XorI { d, a, b } => {
                regs[(d & 15) as usize] =
                    i64::from(i32_from_word(regs[(a & 15) as usize]) ^ i32_from_word(regs[(b & 15) as usize]))
                        as u64;
            }
            MachInst::ShlI { d, a, b } => {
                let sh = (i32_from_word(regs[(b & 15) as usize]) & 31) as u32;
                regs[(d & 15) as usize] =
                    i64::from(i32_from_word(regs[(a & 15) as usize]).wrapping_shl(sh)) as u64;
            }
            MachInst::ShrI { d, a, b } => {
                let sh = (i32_from_word(regs[(b & 15) as usize]) & 31) as u32;
                regs[(d & 15) as usize] =
                    i64::from(i32_from_word(regs[(a & 15) as usize]).wrapping_shr(sh)) as u64;
            }
            MachInst::UShrI { d, a, b } => {
                let sh = (i32_from_word(regs[(b & 15) as usize]) & 31) as u32;
                regs[(d & 15) as usize] =
                    i64::from((i32_from_word(regs[(a & 15) as usize]) as u32).wrapping_shr(sh) as i32)
                        as u64;
            }
            MachInst::NotI { d, a } => {
                regs[(d & 15) as usize] = i64::from(!i32_from_word(regs[(a & 15) as usize])) as u64;
            }
            MachInst::NegI { d, a } => {
                regs[(d & 15) as usize] =
                    i64::from(i32_from_word(regs[(a & 15) as usize]).wrapping_neg()) as u64;
            }

            MachInst::AddIChk { d, a, b, exit } => {
                let r = i64::from(i32_from_word(regs[(a & 15) as usize]))
                    + i64::from(i32_from_word(regs[(b & 15) as usize]));
                if !fits_i31(r) {
                    take_exit!(exit);
                }
                regs[(d & 15) as usize] = r as u64;
            }
            MachInst::SubIChk { d, a, b, exit } => {
                let r = i64::from(i32_from_word(regs[(a & 15) as usize]))
                    - i64::from(i32_from_word(regs[(b & 15) as usize]));
                if !fits_i31(r) {
                    take_exit!(exit);
                }
                regs[(d & 15) as usize] = r as u64;
            }
            MachInst::MulIChk { d, a, b, exit } => {
                let x = i64::from(i32_from_word(regs[(a & 15) as usize]));
                let y = i64::from(i32_from_word(regs[(b & 15) as usize]));
                let r = x * y;
                // -0 results need the double path.
                if !fits_i31(r) || (r == 0 && (x < 0 || y < 0)) {
                    take_exit!(exit);
                }
                regs[(d & 15) as usize] = r as u64;
            }
            MachInst::NegIChk { d, a, exit } => {
                let x = i64::from(i32_from_word(regs[(a & 15) as usize]));
                let r = -x;
                if x == 0 || !fits_i31(r) {
                    take_exit!(exit);
                }
                regs[(d & 15) as usize] = r as u64;
            }
            MachInst::ModIChk { d, a, b, exit } => {
                let x = i32_from_word(regs[(a & 15) as usize]);
                let y = i32_from_word(regs[(b & 15) as usize]);
                if y == 0 {
                    take_exit!(exit);
                }
                let r = x.wrapping_rem(y);
                if r == 0 && x < 0 {
                    take_exit!(exit);
                }
                regs[(d & 15) as usize] = i64::from(r) as u64;
            }
            MachInst::ShlIChk { d, a, b, exit } => {
                let sh = (i32_from_word(regs[(b & 15) as usize]) & 31) as u32;
                let r = i32_from_word(regs[(a & 15) as usize]).wrapping_shl(sh);
                if !fits_i31(i64::from(r)) {
                    take_exit!(exit);
                }
                regs[(d & 15) as usize] = i64::from(r) as u64;
            }
            MachInst::UShrIChk { d, a, b, exit } => {
                let sh = (i32_from_word(regs[(b & 15) as usize]) & 31) as u32;
                let r = (i32_from_word(regs[(a & 15) as usize]) as u32).wrapping_shr(sh);
                if i64::from(r) > INT_MAX {
                    take_exit!(exit);
                }
                regs[(d & 15) as usize] = u64::from(r);
            }

            MachInst::AddD { d, a, b } => {
                regs[(d & 15) as usize] = word_from_f64(
                    f64_from_word(regs[(a & 15) as usize]) + f64_from_word(regs[(b & 15) as usize]),
                );
            }
            MachInst::SubD { d, a, b } => {
                regs[(d & 15) as usize] = word_from_f64(
                    f64_from_word(regs[(a & 15) as usize]) - f64_from_word(regs[(b & 15) as usize]),
                );
            }
            MachInst::MulD { d, a, b } => {
                regs[(d & 15) as usize] = word_from_f64(
                    f64_from_word(regs[(a & 15) as usize]) * f64_from_word(regs[(b & 15) as usize]),
                );
            }
            MachInst::DivD { d, a, b } => {
                regs[(d & 15) as usize] = word_from_f64(
                    f64_from_word(regs[(a & 15) as usize]) / f64_from_word(regs[(b & 15) as usize]),
                );
            }
            MachInst::ModD { d, a, b } => {
                regs[(d & 15) as usize] = word_from_f64(
                    f64_from_word(regs[(a & 15) as usize]) % f64_from_word(regs[(b & 15) as usize]),
                );
            }
            MachInst::NegD { d, a } => {
                regs[(d & 15) as usize] = word_from_f64(-f64_from_word(regs[(a & 15) as usize]));
            }

            MachInst::EqI { d, a, b } => {
                regs[(d & 15) as usize] =
                    u64::from(i32_from_word(regs[(a & 15) as usize]) == i32_from_word(regs[(b & 15) as usize]));
            }
            MachInst::LtI { d, a, b } => {
                regs[(d & 15) as usize] =
                    u64::from(i32_from_word(regs[(a & 15) as usize]) < i32_from_word(regs[(b & 15) as usize]));
            }
            MachInst::LeI { d, a, b } => {
                regs[(d & 15) as usize] =
                    u64::from(i32_from_word(regs[(a & 15) as usize]) <= i32_from_word(regs[(b & 15) as usize]));
            }
            MachInst::GtI { d, a, b } => {
                regs[(d & 15) as usize] =
                    u64::from(i32_from_word(regs[(a & 15) as usize]) > i32_from_word(regs[(b & 15) as usize]));
            }
            MachInst::GeI { d, a, b } => {
                regs[(d & 15) as usize] =
                    u64::from(i32_from_word(regs[(a & 15) as usize]) >= i32_from_word(regs[(b & 15) as usize]));
            }
            MachInst::EqD { d, a, b } => {
                regs[(d & 15) as usize] =
                    u64::from(f64_from_word(regs[(a & 15) as usize]) == f64_from_word(regs[(b & 15) as usize]));
            }
            MachInst::LtD { d, a, b } => {
                regs[(d & 15) as usize] =
                    u64::from(f64_from_word(regs[(a & 15) as usize]) < f64_from_word(regs[(b & 15) as usize]));
            }
            MachInst::LeD { d, a, b } => {
                regs[(d & 15) as usize] =
                    u64::from(f64_from_word(regs[(a & 15) as usize]) <= f64_from_word(regs[(b & 15) as usize]));
            }
            MachInst::GtD { d, a, b } => {
                regs[(d & 15) as usize] =
                    u64::from(f64_from_word(regs[(a & 15) as usize]) > f64_from_word(regs[(b & 15) as usize]));
            }
            MachInst::GeD { d, a, b } => {
                regs[(d & 15) as usize] =
                    u64::from(f64_from_word(regs[(a & 15) as usize]) >= f64_from_word(regs[(b & 15) as usize]));
            }
            MachInst::NotB { d, a } => {
                regs[(d & 15) as usize] = u64::from(regs[(a & 15) as usize] == 0);
            }

            MachInst::I2D { d, a } => {
                regs[(d & 15) as usize] =
                    word_from_f64(f64::from(i32_from_word(regs[(a & 15) as usize])));
            }
            MachInst::U2D { d, a } => {
                regs[(d & 15) as usize] =
                    word_from_f64(f64::from(i32_from_word(regs[(a & 15) as usize]) as u32));
            }
            MachInst::D2IChk { d, a, exit } => {
                let x = f64_from_word(regs[(a & 15) as usize]);
                if x.fract() != 0.0
                    || !fits_i31(x as i64)
                    || x.is_nan()
                    || (x == 0.0 && x.is_sign_negative())
                {
                    take_exit!(exit);
                }
                regs[(d & 15) as usize] = i64::from(x as i32) as u64;
            }
            MachInst::D2I32 { d, a } => {
                regs[(d & 15) as usize] = i64::from(tm_runtime::ops::double_to_int32(f64_from_word(
                    regs[(a & 15) as usize],
                ))) as u64;
            }

            MachInst::ChkRangeI { d, a, exit } => {
                let x = i64::from(i32_from_word(regs[(a & 15) as usize]));
                if !fits_i31(x) {
                    take_exit!(exit);
                }
                regs[(d & 15) as usize] = x as u64;
            }
            MachInst::BoxI { d, a } => {
                regs[(d & 15) as usize] =
                    realm.heap.number_i32(i32_from_word(regs[(a & 15) as usize])).raw();
            }
            MachInst::BoxD { d, a } => {
                let v = realm.heap.number(f64_from_word(regs[(a & 15) as usize]));
                if realm.heap.should_collect() {
                    realm.heap.gc_pending = true;
                }
                regs[(d & 15) as usize] = v.raw();
            }
            MachInst::BoxB { d, a } => {
                regs[(d & 15) as usize] = Value::new_bool(regs[(a & 15) as usize] != 0).raw();
            }
            MachInst::BoxObj { d, a } => {
                regs[(d & 15) as usize] = Value::new_object(ObjectId(regs[(a & 15) as usize] as u32)).raw();
            }
            MachInst::BoxStr { d, a } => {
                regs[(d & 15) as usize] = Value::new_string(StringId(regs[(a & 15) as usize] as u32)).raw();
            }
            MachInst::UnboxI { d, a, exit } => {
                match Value::from_raw(regs[(a & 15) as usize]).as_int() {
                    Some(i) => regs[(d & 15) as usize] = i64::from(i) as u64,
                    None => take_exit!(exit),
                }
            }
            MachInst::UnboxD { d, a, exit } => {
                let v = Value::from_raw(regs[(a & 15) as usize]);
                match v.as_double_id() {
                    Some(id) => regs[(d & 15) as usize] = word_from_f64(realm.heap.double(id)),
                    None => take_exit!(exit),
                }
            }
            MachInst::UnboxNumD { d, a, exit } => {
                let v = Value::from_raw(regs[(a & 15) as usize]);
                match realm.heap.number_value(v) {
                    Some(x) => regs[(d & 15) as usize] = word_from_f64(x),
                    None => take_exit!(exit),
                }
            }
            MachInst::UnboxObj { d, a, exit } => {
                match Value::from_raw(regs[(a & 15) as usize]).as_object() {
                    Some(id) => regs[(d & 15) as usize] = u64::from(id.0),
                    None => take_exit!(exit),
                }
            }
            MachInst::UnboxStr { d, a, exit } => {
                match Value::from_raw(regs[(a & 15) as usize]).as_string() {
                    Some(id) => regs[(d & 15) as usize] = u64::from(id.0),
                    None => take_exit!(exit),
                }
            }
            MachInst::UnboxBool { d, a, exit } => {
                match Value::from_raw(regs[(a & 15) as usize]).as_bool() {
                    Some(b) => regs[(d & 15) as usize] = u64::from(b),
                    None => take_exit!(exit),
                }
            }

            MachInst::GuardTrue { s, exit } => {
                if regs[(s & 15) as usize] == 0 {
                    take_exit!(exit);
                }
            }
            MachInst::GuardFalse { s, exit } => {
                if regs[(s & 15) as usize] != 0 {
                    take_exit!(exit);
                }
            }
            MachInst::GuardShape { obj, shape, exit } => {
                let o = ObjectId(regs[(obj & 15) as usize] as u32);
                if realm.heap.object(o).shape.0 != shape {
                    take_exit!(exit);
                }
            }
            MachInst::GuardClass { obj, class, exit } => {
                let o = ObjectId(regs[(obj & 15) as usize] as u32);
                if realm.heap.object(o).class as u8 != class {
                    take_exit!(exit);
                }
            }
            MachInst::GuardBoxedEq { s, w, exit } => {
                if regs[(s & 15) as usize] != w {
                    take_exit!(exit);
                }
            }
            MachInst::GuardBound { arr, idx, exit } => {
                let o = ObjectId(regs[(arr & 15) as usize] as u32);
                let i = i32_from_word(regs[(idx & 15) as usize]);
                if i < 0 || i as usize >= realm.heap.object(o).elements.len() {
                    take_exit!(exit);
                }
            }

            MachInst::LoadSlot { d, o, slot } => {
                let oid = ObjectId(regs[(o & 15) as usize] as u32);
                regs[(d & 15) as usize] = realm.heap.object(oid).slots[slot as usize].raw();
            }
            MachInst::StoreSlot { o, slot, s } => {
                let oid = ObjectId(regs[(o & 15) as usize] as u32);
                realm.heap.object_mut(oid).slots[slot as usize] =
                    Value::from_raw(regs[(s & 15) as usize]);
            }
            MachInst::LoadProto { d, o } => {
                let oid = ObjectId(regs[(o & 15) as usize] as u32);
                let proto = realm.heap.object(oid).proto.expect("proto guarded by recording");
                regs[(d & 15) as usize] = u64::from(proto.0);
            }
            MachInst::LoadElem { d, a, i } => {
                let oid = ObjectId(regs[(a & 15) as usize] as u32);
                let idx = i32_from_word(regs[(i & 15) as usize]) as usize;
                regs[(d & 15) as usize] = realm.heap.object(oid).elements[idx].raw();
            }
            MachInst::StoreElem { a, i, s } => {
                let oid = ObjectId(regs[(a & 15) as usize] as u32);
                let idx = i32_from_word(regs[(i & 15) as usize]) as u32;
                let v = Value::from_raw(regs[(s & 15) as usize]);
                realm.heap.object_mut(oid).set_element(idx, v);
            }
            MachInst::ArrayLen { d, a } => {
                let oid = ObjectId(regs[(a & 15) as usize] as u32);
                regs[(d & 15) as usize] = u64::from(realm.heap.object(oid).array_length());
            }
            MachInst::StrLen { d, a } => {
                let sid = StringId(regs[(a & 15) as usize] as u32);
                regs[(d & 15) as usize] = realm.heap.string(sid).len() as u64;
            }

            MachInst::CallHelper { d, helper, ref args, exit } => {
                helper_args.clear();
                helper_args.extend(args.iter().map(|&r| regs[(r & 15) as usize]));
                let result = call_helper(realm, helper, &helper_args)?;
                regs[(d & 15) as usize] = result;
                if realm.reentered_during_trace {
                    // §6.5: a reentrant external call forces the trace to
                    // exit immediately after the call returns.
                    realm.reentered_during_trace = false;
                    take_exit!(exit);
                }
            }
            MachInst::CallTree { tree, exit } => {
                if !host.call_tree(tree, ar, realm)? {
                    take_exit!(exit);
                }
            }
            MachInst::LoopBack { exit } => {
                iterations += 1;
                if realm.interrupt || realm.heap.gc_pending || insts >= fuel {
                    // Preemption flag guard at every loop edge (§6.4) and
                    // the deferred-GC safe point.
                    take_exit!(exit);
                }
                frag_idx = 0;
                frag = &fragments[0];
                exit_targets = &frag.exit_targets;
                if spill.len() < frag.num_spills as usize {
                    spill.resize(frag.num_spills as usize, 0);
                }
                pc = 0;
            }
            MachInst::End { exit } => take_exit!(exit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;
    use tm_lir::{FilterOptions, Lir, LirBuffer, LirType};

    /// Builds the classic counting loop: slot0 += 1 until slot0 >= slot1.
    fn counting_tree() -> Vec<Fragment> {
        let mut b = LirBuffer::new(FilterOptions::default());
        let i = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let limit = b.emit(Lir::Import { slot: 1, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::AddIChk(i, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let cond = b.emit(Lir::LtI(next, limit));
        let e_done = b.alloc_exit();
        b.emit(Lir::GuardTrue(cond, e_done));
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        vec![assemble(b.trace())]
    }

    #[test]
    fn loop_executes_to_exit() {
        let frags = counting_tree();
        let mut realm = Realm::new();
        let mut ar = vec![0u64, 100u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 1, "loop-done guard exit");
        assert_eq!(ar[0] as i64, 100);
        assert_eq!(exit.iterations, 99);
        assert!(exit.insts > 300, "about 7 insts x 100 iterations");
    }

    #[test]
    fn overflow_guard_exits() {
        // An unconditional increment loop: the only way out is the
        // 31-bit overflow guard (§3.1's integer overflow speculation).
        let mut b = LirBuffer::new(FilterOptions::default());
        let i = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::AddIChk(i, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        let frags = vec![assemble(b.trace())];

        let mut realm = Realm::new();
        let start = INT_MAX - 5;
        let mut ar = vec![start as u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 0, "overflow guard exit");
        // The AR still holds the last in-range value.
        assert_eq!(ar[0] as i64, INT_MAX);
        assert_eq!(exit.iterations, 5);
    }

    #[test]
    fn preemption_exits_at_loop_edge() {
        let frags = counting_tree();
        let mut realm = Realm::new();
        realm.interrupt = true;
        let mut ar = vec![0u64, 1000u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 2, "interrupt takes the loop-edge exit");
        assert_eq!(exit.iterations, 1);
    }

    #[test]
    fn trace_stitching_transfers_to_branch_fragment() {
        // Trunk: guard slot0 < 10 else exit0; slot0 += 1; loop.
        let mut b = LirBuffer::new(FilterOptions::default());
        let i = b.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let ten = b.emit(Lir::ConstI(10));
        let cond = b.emit(Lir::LtI(i, ten));
        let e_branch = b.alloc_exit();
        b.emit(Lir::GuardTrue(cond, e_branch));
        let one = b.emit(Lir::ConstI(1));
        let e_ovf = b.alloc_exit();
        let next = b.emit(Lir::AddIChk(i, one, e_ovf));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        let mut trunk = assemble(b.trace());

        // Branch (taken when slot0 >= 10): slot1 = slot0 * 2; end.
        let mut b2 = LirBuffer::new(FilterOptions::default());
        let i2 = b2.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let two = b2.emit(Lir::ConstI(2));
        let e2 = b2.alloc_exit();
        let dbl = b2.emit(Lir::MulIChk(i2, two, e2));
        b2.emit(Lir::WriteAr { slot: 1, v: dbl });
        let e_end = b2.alloc_exit();
        b2.emit(Lir::End(e_end));
        let branch = assemble(b2.trace());

        // Stitch trunk exit 0 to the branch fragment.
        trunk.exit_targets[0] = ExitTarget::Fragment(1);
        let frags = vec![trunk, branch];

        let mut realm = Realm::new();
        let mut ar = vec![0u64, 0u64];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.fragment, 1, "ended in the branch fragment");
        assert_eq!(exit.exit, 1, "the branch's End exit");
        assert_eq!(ar[0] as i64, 10);
        assert_eq!(ar[1] as i64, 20);
    }

    #[test]
    fn double_loop_with_boxing() {
        // slot0 (double) += 0.5 until >= slot1 (double).
        let mut b = LirBuffer::new(FilterOptions::default());
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Double });
        let limit = b.emit(Lir::Import { slot: 1, ty: LirType::Double });
        let half = b.emit(Lir::ConstD(0.5f64.to_bits()));
        let next = b.emit(Lir::AddD(x, half));
        b.emit(Lir::WriteAr { slot: 0, v: next });
        let cond = b.emit(Lir::LtD(next, limit));
        let e_done = b.alloc_exit();
        b.emit(Lir::GuardTrue(cond, e_done));
        let e_loop = b.alloc_exit();
        b.emit(Lir::LoopBack(e_loop));
        let frags = vec![assemble(b.trace())];
        let mut realm = Realm::new();
        let mut ar = vec![0.0f64.to_bits(), 10.0f64.to_bits()];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 0);
        assert_eq!(f64::from_bits(ar[0]), 10.0);
    }

    #[test]
    fn helper_call_from_trace() {
        // slot1 = sqrt(slot0) via the Sqrt helper; end.
        let mut b = LirBuffer::new(FilterOptions::default());
        let x = b.emit(Lir::Import { slot: 0, ty: LirType::Double });
        let e = b.alloc_exit();
        let r = b.emit(Lir::Call {
            helper: tm_runtime::Helper::Sqrt,
            args: vec![x].into_boxed_slice(),
            ret: LirType::Double,
            exit: e,
        });
        b.emit(Lir::WriteAr { slot: 1, v: r });
        let e_end = b.alloc_exit();
        b.emit(Lir::End(e_end));
        let frags = vec![assemble(b.trace())];
        let mut realm = Realm::new();
        let mut ar = vec![81.0f64.to_bits(), 0];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 1);
        assert_eq!(f64::from_bits(ar[1]), 9.0);
    }

    #[test]
    fn unbox_guard_takes_exit_on_wrong_tag() {
        let mut b = LirBuffer::new(FilterOptions::default());
        let v = b.emit(Lir::Import { slot: 0, ty: LirType::Boxed });
        let e_tag = b.alloc_exit();
        let i = b.emit(Lir::UnboxI(v, e_tag));
        b.emit(Lir::WriteAr { slot: 1, v: i });
        let e_end = b.alloc_exit();
        b.emit(Lir::End(e_end));
        let frags = vec![assemble(b.trace())];
        let mut realm = Realm::new();
        // An int-tagged word unboxes fine.
        let mut ar = vec![Value::new_int(5).raw(), 0];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 1);
        assert_eq!(ar[1] as i64, 5);
        // A string-tagged word takes the type guard exit.
        let s = realm.heap.alloc_string("x");
        let mut ar = vec![s.raw(), 0];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 0);
    }

    #[test]
    fn array_element_access() {
        // slot1 = arr[slot0-as-int] with bounds guard.
        let mut b = LirBuffer::new(FilterOptions::default());
        let arr = b.emit(Lir::Import { slot: 0, ty: LirType::Object });
        let idx = b.emit(Lir::Import { slot: 1, ty: LirType::Int });
        let e_bound = b.alloc_exit();
        b.emit(Lir::GuardBound { arr, idx, exit: e_bound });
        let v = b.emit(Lir::LoadElem(arr, idx));
        b.emit(Lir::WriteAr { slot: 2, v });
        let e_end = b.alloc_exit();
        b.emit(Lir::End(e_end));
        let frags = vec![assemble(b.trace())];
        let mut realm = Realm::new();
        let a = realm.new_array(3);
        realm.heap.object_mut(a).set_element(2, Value::new_int(42));
        let mut ar = vec![u64::from(a.0), 2, 0];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 1);
        assert_eq!(Value::from_raw(ar[2]).as_int(), Some(42));
        // Out of bounds takes the guard exit.
        let mut ar = vec![u64::from(a.0), 7, 0];
        let exit = execute(&frags, 0, &mut ar, &mut realm, &mut NoNesting, u64::MAX).unwrap();
        assert_eq!(exit.exit, 0);
    }
}
