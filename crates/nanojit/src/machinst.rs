//! The virtual machine ISA that compiled traces execute.
//!
//! **Substitution note (see DESIGN.md):** the paper's NanoJIT emits real
//! x86/ARM machine code. We target a fixed virtual register ISA executed by
//! a tight decode loop instead. What the evaluation depends on is
//! preserved: compiled trace instructions operate on **unboxed words in
//! registers**, with no type dispatch, no interpreter decode, no operand
//! stack traffic, and guards compiled to single compare-and-exit
//! operations — the Figure 4 profile ("most LIR instructions compile to a
//! single x86 instruction").

use tm_runtime::Helper;

/// A virtual register index.
pub type Reg = u8;

/// Number of general registers the allocator may use (deliberately small,
/// x86-like, so the spill logic of §5.2 is actually exercised).
pub const NREGS: usize = 12;

/// A machine instruction of the virtual ISA. `d` = destination register,
/// `a`/`b`/`s` = source registers; doubles travel as IEEE-754 bit patterns
/// in the same registers. `exit` fields are indexes into the fragment's
/// exit-target table.
#[derive(Debug, Clone, PartialEq)]
pub enum MachInst {
    /// Load a constant word.
    ConstW {
        /// Destination.
        d: Reg,
        /// The word.
        w: u64,
    },
    /// Register move (emitted by the allocator).
    Mov {
        /// Destination.
        d: Reg,
        /// Source.
        s: Reg,
    },
    /// Reload from a spill slot.
    LoadSpill {
        /// Destination.
        d: Reg,
        /// Spill slot index.
        slot: u16,
    },
    /// Store to a spill slot.
    StoreSpill {
        /// Spill slot index.
        slot: u16,
        /// Source.
        s: Reg,
    },
    /// Read a trace-activation-record slot.
    ReadAr {
        /// Destination.
        d: Reg,
        /// AR slot.
        slot: u16,
    },
    /// Write a trace-activation-record slot.
    WriteAr {
        /// AR slot.
        slot: u16,
        /// Source.
        s: Reg,
    },

    /// `d = a + b` (wrapping i32).
    AddI { d: Reg, a: Reg, b: Reg },
    /// `d = a - b` (wrapping i32).
    SubI { d: Reg, a: Reg, b: Reg },
    /// `d = a * b` (wrapping i32).
    MulI { d: Reg, a: Reg, b: Reg },
    /// `d = a & b`.
    AndI { d: Reg, a: Reg, b: Reg },
    /// `d = a | b`.
    OrI { d: Reg, a: Reg, b: Reg },
    /// `d = a ^ b`.
    XorI { d: Reg, a: Reg, b: Reg },
    /// `d = a << (b & 31)`.
    ShlI { d: Reg, a: Reg, b: Reg },
    /// `d = a >> (b & 31)` (arithmetic).
    ShrI { d: Reg, a: Reg, b: Reg },
    /// `d = a >>> (b & 31)` (logical, u32).
    UShrI { d: Reg, a: Reg, b: Reg },
    /// `d = !a` (bitwise).
    NotI { d: Reg, a: Reg },
    /// `d = -a` (wrapping).
    NegI { d: Reg, a: Reg },

    /// Checked add: exit when the exact result leaves the boxable 31-bit
    /// integer range.
    AddIChk { d: Reg, a: Reg, b: Reg, exit: u16 },
    /// Checked subtract.
    SubIChk { d: Reg, a: Reg, b: Reg, exit: u16 },
    /// Checked multiply.
    MulIChk { d: Reg, a: Reg, b: Reg, exit: u16 },
    /// Checked negate (exits on -0 and range overflow).
    NegIChk { d: Reg, a: Reg, exit: u16 },
    /// Checked remainder (exits on zero divisor / -0 result).
    ModIChk { d: Reg, a: Reg, b: Reg, exit: u16 },
    /// Checked shift left.
    ShlIChk { d: Reg, a: Reg, b: Reg, exit: u16 },
    /// Checked unsigned shift right.
    UShrIChk { d: Reg, a: Reg, b: Reg, exit: u16 },

    /// Double add.
    AddD { d: Reg, a: Reg, b: Reg },
    /// Double subtract.
    SubD { d: Reg, a: Reg, b: Reg },
    /// Double multiply.
    MulD { d: Reg, a: Reg, b: Reg },
    /// Double divide.
    DivD { d: Reg, a: Reg, b: Reg },
    /// Double remainder (fmod).
    ModD { d: Reg, a: Reg, b: Reg },
    /// Double negate.
    NegD { d: Reg, a: Reg },

    /// Integer compares producing 0/1.
    EqI { d: Reg, a: Reg, b: Reg },
    /// `<` (i32).
    LtI { d: Reg, a: Reg, b: Reg },
    /// `<=` (i32).
    LeI { d: Reg, a: Reg, b: Reg },
    /// `>` (i32).
    GtI { d: Reg, a: Reg, b: Reg },
    /// `>=` (i32).
    GeI { d: Reg, a: Reg, b: Reg },
    /// `==` (double; NaN false).
    EqD { d: Reg, a: Reg, b: Reg },
    /// `<` (double).
    LtD { d: Reg, a: Reg, b: Reg },
    /// `<=` (double).
    LeD { d: Reg, a: Reg, b: Reg },
    /// `>` (double).
    GtD { d: Reg, a: Reg, b: Reg },
    /// `>=` (double).
    GeD { d: Reg, a: Reg, b: Reg },
    /// Boolean not.
    NotB { d: Reg, a: Reg },

    /// Exact i32 → double.
    I2D { d: Reg, a: Reg },
    /// u32 bits → double.
    U2D { d: Reg, a: Reg },
    /// Double → i32 with integrality/range guard.
    D2IChk { d: Reg, a: Reg, exit: u16 },
    /// JS ToInt32 wrap.
    D2I32 { d: Reg, a: Reg },
    /// Guard an i32 fits the boxable 31-bit range (result = input).
    ChkRangeI { d: Reg, a: Reg, exit: u16 },

    /// Box an int (inline tagging, never allocates).
    BoxI { d: Reg, a: Reg },
    /// Box a double (allocates when non-integral).
    BoxD { d: Reg, a: Reg },
    /// Box a bool.
    BoxB { d: Reg, a: Reg },
    /// Box an object handle (bit tagging).
    BoxObj { d: Reg, a: Reg },
    /// Box a string handle (bit tagging).
    BoxStr { d: Reg, a: Reg },
    /// Unbox with tag guard.
    UnboxI { d: Reg, a: Reg, exit: u16 },
    /// Unbox a double (strict tag).
    UnboxD { d: Reg, a: Reg, exit: u16 },
    /// Unbox any number as double.
    UnboxNumD { d: Reg, a: Reg, exit: u16 },
    /// Unbox an object handle.
    UnboxObj { d: Reg, a: Reg, exit: u16 },
    /// Unbox a string handle.
    UnboxStr { d: Reg, a: Reg, exit: u16 },
    /// Unbox a boolean.
    UnboxBool { d: Reg, a: Reg, exit: u16 },

    /// Exit unless `s` is true (1).
    GuardTrue { s: Reg, exit: u16 },
    /// Exit unless `s` is false (0).
    GuardFalse { s: Reg, exit: u16 },
    /// Exit unless the object's shape matches.
    GuardShape { obj: Reg, shape: u32, exit: u16 },
    /// Exit unless the object's class matches.
    GuardClass { obj: Reg, class: u8, exit: u16 },
    /// Exit unless the boxed word bit-equals `w`.
    GuardBoxedEq { s: Reg, w: u64, exit: u16 },
    /// Exit unless `0 <= idx < elements.len()`.
    GuardBound { arr: Reg, idx: Reg, exit: u16 },

    /// Property slot load.
    LoadSlot { d: Reg, o: Reg, slot: u32 },
    /// Property slot store.
    StoreSlot { o: Reg, slot: u32, s: Reg },
    /// Prototype link load.
    LoadProto { d: Reg, o: Reg },
    /// Dense element load (pre-guarded).
    LoadElem { d: Reg, a: Reg, i: Reg },
    /// Dense element store (pre-guarded).
    StoreElem { a: Reg, i: Reg, s: Reg },
    /// Array length.
    ArrayLen { d: Reg, a: Reg },
    /// String length.
    StrLen { d: Reg, a: Reg },

    /// Call a runtime helper.
    CallHelper {
        /// Result register.
        d: Reg,
        /// The helper.
        helper: Helper,
        /// Argument registers.
        args: Box<[Reg]>,
        /// Exit taken on deep bail (reentry).
        exit: u16,
    },
    /// Call a nested trace tree (§4) through the host.
    CallTree {
        /// Tree registry key.
        tree: u32,
        /// Exit taken on unexpected inner exit.
        exit: u16,
    },
    /// Loop edge: jump to the tree anchor (fragment 0, pc 0); exits via
    /// `exit` on preemption or pending GC (§6.4).
    LoopBack { exit: u16 },
    /// Unconditional exit.
    End { exit: u16 },
}

/// Where a side exit goes: back to the monitor, or — once a branch trace
/// is attached by **trace stitching** (§6.2) — directly into another
/// fragment of the same tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitTarget {
    /// Return control to the trace monitor with this exit id.
    Return,
    /// Jump into fragment `0`-indexed id (trace stitching).
    Fragment(u32),
}

/// A compiled trace fragment: straight-line machine code whose only
/// control flow is guard exits and the final loop-back/end.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The instructions.
    pub code: Vec<MachInst>,
    /// Number of spill slots used.
    pub num_spills: u16,
    /// Exit targets, indexed by exit id; patched by trace stitching.
    pub exit_targets: Vec<ExitTarget>,
}

impl Fragment {
    /// Renders the fragment as a Figure-4 style listing.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (pc, inst) in self.code.iter().enumerate() {
            out.push_str(&format!("  {pc:4}: {inst:?}\n"));
        }
        out
    }

    /// Number of machine instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the fragment is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}
