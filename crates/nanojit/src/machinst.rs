//! The virtual machine ISA that compiled traces execute.
//!
//! **Substitution note (see DESIGN.md):** the paper's NanoJIT emits real
//! x86/ARM machine code. We target a fixed virtual register ISA with two
//! execution tiers behind it:
//!
//! * the **decoded executor** ([`crate::executor`]) — a tight decode loop,
//!   portable to any target, and the reference semantics;
//! * the **native x86-64 backend** ([`crate::x64`]) — translates the same
//!   post-peephole `MachInst` stream into real machine code in an
//!   executable buffer (on by default on x86-64 Linux, selected per tree
//!   by the monitor, with whole-tree fallback to the decoded executor for
//!   any instruction it doesn't cover).
//!
//! What the evaluation depends on is preserved in both tiers: compiled
//! trace instructions operate on **unboxed words in registers**, with no
//! type dispatch, no interpreter decode, no operand stack traffic, and
//! guards compiled to single compare-and-exit operations — the Figure 4
//! profile ("most LIR instructions compile to a single x86 instruction").
//! The decoded tier keeps that profile observable on every platform and
//! doubles as the differential oracle for the native tier; the native
//! tier restores the paper's actual mechanism on the paper's actual
//! target.
//!
//! The ISA has two layers:
//!
//! * **Raw instructions** — what the assembler emits, one per LIR op (plus
//!   allocator moves/spills).
//! * **Fused superinstructions** — emitted only by the peephole pass
//!   ([`crate::peephole::fuse`]), each standing in for 2–3 adjacent raw
//!   instructions. These model what real NanoJIT gets for free from x86:
//!   immediate operands, memory-operand addressing modes, and macro-fused
//!   compare-and-branch. In the decode-loop tier every dispatched
//!   instruction costs a match arm, so shrinking the dispatched stream is
//!   the direct analogue of emitting denser machine code; the native
//!   backend compiles each fused form to exactly that denser encoding.

use tm_lir::{AluOp, ChkOp, CmpOp};
use tm_runtime::Helper;

/// A virtual register index.
pub type Reg = u8;

/// Number of general registers the allocator may use (deliberately small,
/// x86-like, so the spill logic of §5.2 is actually exercised).
pub const NREGS: usize = 12;

/// Size of the executor's register file: `NREGS` rounded up to a power of
/// two so indexing can be masked instead of bounds-checked.
pub const REG_FILE_WORDS: usize = NREGS.next_power_of_two();

/// Mask deriving a register-file index from a [`Reg`]. Shared by the
/// executor and the allocator's `debug_assert!`s — the only in-range
/// registers are `0..NREGS`, so masking is a no-op on well-formed code.
pub const REG_MASK: u8 = (REG_FILE_WORDS - 1) as Reg;

/// Sentinel in [`Fragment::stitch`]: this exit returns to the monitor
/// rather than jumping to a stitched fragment.
pub const EXIT_UNSTITCHED: u32 = u32::MAX;

/// A machine instruction of the virtual ISA. `d` = destination register,
/// `a`/`b`/`s` = source registers; doubles travel as IEEE-754 bit patterns
/// in the same registers. `exit` fields are indexes into the fragment's
/// exit-target table.
#[derive(Debug, Clone, PartialEq)]
pub enum MachInst {
    /// Load a constant word.
    ConstW {
        /// Destination.
        d: Reg,
        /// The word.
        w: u64,
    },
    /// Register move (emitted by the allocator).
    Mov {
        /// Destination.
        d: Reg,
        /// Source.
        s: Reg,
    },
    /// Reload from a spill slot.
    LoadSpill {
        /// Destination.
        d: Reg,
        /// Spill slot index.
        slot: u16,
    },
    /// Store to a spill slot.
    StoreSpill {
        /// Spill slot index.
        slot: u16,
        /// Source.
        s: Reg,
    },
    /// Read a trace-activation-record slot.
    ReadAr {
        /// Destination.
        d: Reg,
        /// AR slot.
        slot: u16,
    },
    /// Write a trace-activation-record slot.
    WriteAr {
        /// AR slot.
        slot: u16,
        /// Source.
        s: Reg,
    },

    /// `d = a + b` (wrapping i32).
    AddI { d: Reg, a: Reg, b: Reg },
    /// `d = a - b` (wrapping i32).
    SubI { d: Reg, a: Reg, b: Reg },
    /// `d = a * b` (wrapping i32).
    MulI { d: Reg, a: Reg, b: Reg },
    /// `d = a & b`.
    AndI { d: Reg, a: Reg, b: Reg },
    /// `d = a | b`.
    OrI { d: Reg, a: Reg, b: Reg },
    /// `d = a ^ b`.
    XorI { d: Reg, a: Reg, b: Reg },
    /// `d = a << (b & 31)`.
    ShlI { d: Reg, a: Reg, b: Reg },
    /// `d = a >> (b & 31)` (arithmetic).
    ShrI { d: Reg, a: Reg, b: Reg },
    /// `d = a >>> (b & 31)` (logical, u32).
    UShrI { d: Reg, a: Reg, b: Reg },
    /// `d = !a` (bitwise).
    NotI { d: Reg, a: Reg },
    /// `d = -a` (wrapping).
    NegI { d: Reg, a: Reg },

    /// Checked add: exit when the exact result leaves the boxable 31-bit
    /// integer range.
    AddIChk { d: Reg, a: Reg, b: Reg, exit: u16 },
    /// Checked subtract.
    SubIChk { d: Reg, a: Reg, b: Reg, exit: u16 },
    /// Checked multiply.
    MulIChk { d: Reg, a: Reg, b: Reg, exit: u16 },
    /// Checked negate (exits on -0 and range overflow).
    NegIChk { d: Reg, a: Reg, exit: u16 },
    /// Checked remainder (exits on zero divisor / -0 result).
    ModIChk { d: Reg, a: Reg, b: Reg, exit: u16 },
    /// Checked shift left.
    ShlIChk { d: Reg, a: Reg, b: Reg, exit: u16 },
    /// Checked unsigned shift right.
    UShrIChk { d: Reg, a: Reg, b: Reg, exit: u16 },

    /// Double add.
    AddD { d: Reg, a: Reg, b: Reg },
    /// Double subtract.
    SubD { d: Reg, a: Reg, b: Reg },
    /// Double multiply.
    MulD { d: Reg, a: Reg, b: Reg },
    /// Double divide.
    DivD { d: Reg, a: Reg, b: Reg },
    /// Double remainder (fmod).
    ModD { d: Reg, a: Reg, b: Reg },
    /// Double negate.
    NegD { d: Reg, a: Reg },

    /// Integer compares producing 0/1.
    EqI { d: Reg, a: Reg, b: Reg },
    /// `<` (i32).
    LtI { d: Reg, a: Reg, b: Reg },
    /// `<=` (i32).
    LeI { d: Reg, a: Reg, b: Reg },
    /// `>` (i32).
    GtI { d: Reg, a: Reg, b: Reg },
    /// `>=` (i32).
    GeI { d: Reg, a: Reg, b: Reg },
    /// `==` (double; NaN false).
    EqD { d: Reg, a: Reg, b: Reg },
    /// `<` (double).
    LtD { d: Reg, a: Reg, b: Reg },
    /// `<=` (double).
    LeD { d: Reg, a: Reg, b: Reg },
    /// `>` (double).
    GtD { d: Reg, a: Reg, b: Reg },
    /// `>=` (double).
    GeD { d: Reg, a: Reg, b: Reg },
    /// Boolean not.
    NotB { d: Reg, a: Reg },

    /// Exact i32 → double.
    I2D { d: Reg, a: Reg },
    /// u32 bits → double.
    U2D { d: Reg, a: Reg },
    /// Double → i32 with integrality/range guard.
    D2IChk { d: Reg, a: Reg, exit: u16 },
    /// JS ToInt32 wrap.
    D2I32 { d: Reg, a: Reg },
    /// Guard an i32 fits the boxable 31-bit range (result = input).
    ChkRangeI { d: Reg, a: Reg, exit: u16 },

    /// Box an int (inline tagging, never allocates).
    BoxI { d: Reg, a: Reg },
    /// Box a double (allocates when non-integral).
    BoxD { d: Reg, a: Reg },
    /// Box a bool.
    BoxB { d: Reg, a: Reg },
    /// Box an object handle (bit tagging).
    BoxObj { d: Reg, a: Reg },
    /// Box a string handle (bit tagging).
    BoxStr { d: Reg, a: Reg },
    /// Unbox with tag guard.
    UnboxI { d: Reg, a: Reg, exit: u16 },
    /// Unbox a double (strict tag).
    UnboxD { d: Reg, a: Reg, exit: u16 },
    /// Unbox any number as double.
    UnboxNumD { d: Reg, a: Reg, exit: u16 },
    /// Unbox an object handle.
    UnboxObj { d: Reg, a: Reg, exit: u16 },
    /// Unbox a string handle.
    UnboxStr { d: Reg, a: Reg, exit: u16 },
    /// Unbox a boolean.
    UnboxBool { d: Reg, a: Reg, exit: u16 },

    /// Exit unless `s` is true (1).
    GuardTrue { s: Reg, exit: u16 },
    /// Exit unless `s` is false (0).
    GuardFalse { s: Reg, exit: u16 },
    /// Exit unless the object's shape matches.
    GuardShape { obj: Reg, shape: u32, exit: u16 },
    /// Exit unless the object's class matches.
    GuardClass { obj: Reg, class: u8, exit: u16 },
    /// Exit unless the boxed word bit-equals `w`.
    GuardBoxedEq { s: Reg, w: u64, exit: u16 },
    /// Exit unless `0 <= idx < elements.len()`.
    GuardBound { arr: Reg, idx: Reg, exit: u16 },

    /// Property slot load.
    LoadSlot { d: Reg, o: Reg, slot: u32 },
    /// Property slot store.
    StoreSlot { o: Reg, slot: u32, s: Reg },
    /// Prototype link load.
    LoadProto { d: Reg, o: Reg },
    /// Dense element load (pre-guarded).
    LoadElem { d: Reg, a: Reg, i: Reg },
    /// Dense element store (pre-guarded).
    StoreElem { a: Reg, i: Reg, s: Reg },
    /// Array length.
    ArrayLen { d: Reg, a: Reg },
    /// String length.
    StrLen { d: Reg, a: Reg },

    /// Call a runtime helper.
    CallHelper {
        /// Result register.
        d: Reg,
        /// The helper.
        helper: Helper,
        /// Argument registers.
        args: Box<[Reg]>,
        /// Exit taken on deep bail (reentry).
        exit: u16,
    },
    /// Call a nested trace tree (§4) through the host.
    CallTree {
        /// Tree registry key.
        tree: u32,
        /// Exit taken on unexpected inner exit.
        exit: u16,
    },
    /// Loop edge: jump to the tree anchor (fragment 0, pc 0); exits via
    /// `exit` on preemption or pending GC (§6.4).
    LoopBack { exit: u16 },
    /// Unconditional exit.
    End { exit: u16 },

    // ----- fused superinstructions (peephole pass only) -----
    /// Fused compare + guard: exit unless `cmp_i(op, a, b) == want`.
    /// Replaces a compare whose result fed exactly one `GuardTrue`
    /// (`want: true`) / `GuardFalse` (`want: false`).
    CmpBranchI { op: CmpOp, want: bool, a: Reg, b: Reg, exit: u16 },
    /// Fused double compare + guard.
    CmpBranchD { op: CmpOp, want: bool, a: Reg, b: Reg, exit: u16 },
    /// Fused loop-edge triple: compare + guard + `LoopBack`. Exits via
    /// `exit` when the compare misses `want`, via `loop_exit` on
    /// preemption/GC at the loop edge, otherwise jumps to the anchor.
    CmpBranchLoopI { op: CmpOp, want: bool, a: Reg, b: Reg, exit: u16, loop_exit: u16 },
    /// Double-compare flavour of the loop-edge triple.
    CmpBranchLoopD { op: CmpOp, want: bool, a: Reg, b: Reg, exit: u16, loop_exit: u16 },
    /// `d = op(a, imm)` — immediate-operand ALU (`ConstW` folded in).
    AluImmI { op: AluOp, d: Reg, a: Reg, imm: i32 },
    /// `d = op(ar[slot], b)` — AR-operand ALU (`ReadAr` folded in).
    AluArI { op: AluOp, d: Reg, slot: u16, b: Reg },
    /// `d = op(a, b); ar[slot] = d` — ALU + `WriteAr`.
    AluWrI { op: AluOp, d: Reg, a: Reg, b: Reg, slot: u16 },
    /// `d = op(a, imm); ar[slot] = d` — immediate ALU + `WriteAr`.
    AluImmWrI { op: AluOp, d: Reg, a: Reg, imm: i32, slot: u16 },
    /// Checked `d = op(a, imm)`; exits on overflow like the raw checked op.
    ChkAluImmI { op: ChkOp, d: Reg, a: Reg, imm: i32, exit: u16 },
    /// Checked `d = op(a, b); ar[slot] = d`.
    ChkAluWrI { op: ChkOp, d: Reg, a: Reg, b: Reg, exit: u16, slot: u16 },
    /// Checked `d = op(a, imm); ar[slot] = d`.
    ChkAluImmWrI { op: ChkOp, d: Reg, a: Reg, imm: i32, exit: u16, slot: u16 },
    /// Loop-tail quad: checked `d = op(a, imm); ar[slot] = d`, then the
    /// loop edge (`LoopBack` semantics: `loop_exit` on preemption/GC,
    /// otherwise jump to the anchor). The overflow check exits *before*
    /// the register/AR writes, exactly like the raw sequence.
    ChkAluImmWrLoopI { op: ChkOp, d: Reg, a: Reg, imm: i32, slot: u16, exit: u16, loop_exit: u16 },
    /// `d = w; ar[slot] = w` — `ConstW` + `WriteAr` (any word: int,
    /// double bits, or a boxed value).
    ConstWrAr { d: Reg, w: u64, slot: u16 },
    /// `d = ar[src]; ar[dst] = d` — `ReadAr` + `WriteAr`, an AR-to-AR
    /// move through a register (stack shuffles at call boundaries).
    MovAr { d: Reg, src: u16, dst: u16 },
    /// Two consecutive AR stores (performed in order, so duplicate slots
    /// behave exactly like the raw pair).
    WriteAr2 { slot_a: u16, s_a: Reg, slot_b: u16, s_b: Reg },
    /// Three consecutive AR stores (in order).
    WriteAr3 { slot_a: u16, s_a: Reg, slot_b: u16, s_b: Reg, slot_c: u16, s_c: Reg },
    /// `d = op(ar[slot_a], b); ar[slot_d] = d` — `ReadAr` + ALU +
    /// `WriteAr`, the full memory-to-memory x86 addressing-mode analogue.
    AluArWrI { op: AluOp, d: Reg, slot_a: u16, b: Reg, slot_d: u16 },
    /// `d = cmp_i(op, a, imm)` — integer compare with immediate.
    CmpImmI { op: CmpOp, d: Reg, a: Reg, imm: i32 },
    /// `d = cmp_i(op, a, b); ar[slot] = d` — compare + result write-back
    /// (the recorder stores every branch condition to the AR for exits).
    CmpWrI { op: CmpOp, d: Reg, a: Reg, b: Reg, slot: u16 },
    /// Double flavour of [`MachInst::CmpWrI`].
    CmpWrD { op: CmpOp, d: Reg, a: Reg, b: Reg, slot: u16 },
    /// `d = cmp_i(op, a, imm); ar[slot] = d`.
    CmpImmWrI { op: CmpOp, d: Reg, a: Reg, imm: i32, slot: u16 },
    /// Immediate compare + guard (the 0/1 result was dead): exit unless
    /// `cmp_i(op, a, imm) == want`.
    CmpBranchImmI { op: CmpOp, want: bool, a: Reg, imm: i32, exit: u16 },
    /// Compare + result write-back + guard. `d` and `ar[slot]` are
    /// written (in that order) *before* the exit check, exactly like the
    /// raw triple — a failing exit still sees the stored condition.
    CmpWrBranchI { op: CmpOp, want: bool, d: Reg, a: Reg, b: Reg, slot: u16, exit: u16 },
    /// Double flavour of [`MachInst::CmpWrBranchI`].
    CmpWrBranchD { op: CmpOp, want: bool, d: Reg, a: Reg, b: Reg, slot: u16, exit: u16 },
    /// Immediate compare + result write-back + guard.
    CmpImmWrBranchI { op: CmpOp, want: bool, d: Reg, a: Reg, imm: i32, slot: u16, exit: u16 },
}

impl MachInst {
    /// The register this instruction writes, if any.
    pub fn dest(&self) -> Option<Reg> {
        use MachInst::*;
        match self {
            ConstW { d, .. }
            | Mov { d, .. }
            | LoadSpill { d, .. }
            | ReadAr { d, .. }
            | AddI { d, .. }
            | SubI { d, .. }
            | MulI { d, .. }
            | AndI { d, .. }
            | OrI { d, .. }
            | XorI { d, .. }
            | ShlI { d, .. }
            | ShrI { d, .. }
            | UShrI { d, .. }
            | NotI { d, .. }
            | NegI { d, .. }
            | AddIChk { d, .. }
            | SubIChk { d, .. }
            | MulIChk { d, .. }
            | NegIChk { d, .. }
            | ModIChk { d, .. }
            | ShlIChk { d, .. }
            | UShrIChk { d, .. }
            | AddD { d, .. }
            | SubD { d, .. }
            | MulD { d, .. }
            | DivD { d, .. }
            | ModD { d, .. }
            | NegD { d, .. }
            | EqI { d, .. }
            | LtI { d, .. }
            | LeI { d, .. }
            | GtI { d, .. }
            | GeI { d, .. }
            | EqD { d, .. }
            | LtD { d, .. }
            | LeD { d, .. }
            | GtD { d, .. }
            | GeD { d, .. }
            | NotB { d, .. }
            | I2D { d, .. }
            | U2D { d, .. }
            | D2IChk { d, .. }
            | D2I32 { d, .. }
            | ChkRangeI { d, .. }
            | BoxI { d, .. }
            | BoxD { d, .. }
            | BoxB { d, .. }
            | BoxObj { d, .. }
            | BoxStr { d, .. }
            | UnboxI { d, .. }
            | UnboxD { d, .. }
            | UnboxNumD { d, .. }
            | UnboxObj { d, .. }
            | UnboxStr { d, .. }
            | UnboxBool { d, .. }
            | LoadSlot { d, .. }
            | LoadProto { d, .. }
            | LoadElem { d, .. }
            | ArrayLen { d, .. }
            | StrLen { d, .. }
            | CallHelper { d, .. }
            | AluImmI { d, .. }
            | AluArI { d, .. }
            | AluWrI { d, .. }
            | AluImmWrI { d, .. }
            | ChkAluImmI { d, .. }
            | ChkAluWrI { d, .. }
            | ChkAluImmWrI { d, .. }
            | ChkAluImmWrLoopI { d, .. }
            | ConstWrAr { d, .. }
            | MovAr { d, .. }
            | AluArWrI { d, .. }
            | CmpImmI { d, .. }
            | CmpWrI { d, .. }
            | CmpWrD { d, .. }
            | CmpImmWrI { d, .. }
            | CmpWrBranchI { d, .. }
            | CmpWrBranchD { d, .. }
            | CmpImmWrBranchI { d, .. } => Some(*d),
            StoreSpill { .. }
            | WriteAr { .. }
            | WriteAr2 { .. }
            | WriteAr3 { .. }
            | GuardTrue { .. }
            | GuardFalse { .. }
            | GuardShape { .. }
            | GuardClass { .. }
            | GuardBoxedEq { .. }
            | GuardBound { .. }
            | StoreSlot { .. }
            | StoreElem { .. }
            | CallTree { .. }
            | LoopBack { .. }
            | End { .. }
            | CmpBranchI { .. }
            | CmpBranchD { .. }
            | CmpBranchLoopI { .. }
            | CmpBranchLoopD { .. }
            | CmpBranchImmI { .. } => None,
        }
    }

    /// Calls `f` once per source register read (the same register may be
    /// visited more than once).
    pub fn for_each_src(&self, mut f: impl FnMut(Reg)) {
        use MachInst::*;
        match self {
            ConstW { .. } | LoadSpill { .. } | ReadAr { .. } | CallTree { .. }
            | LoopBack { .. } | End { .. } | ConstWrAr { .. } | MovAr { .. } => {}
            Mov { s, .. } | StoreSpill { s, .. } | WriteAr { s, .. } => f(*s),
            AddI { a, b, .. }
            | SubI { a, b, .. }
            | MulI { a, b, .. }
            | AndI { a, b, .. }
            | OrI { a, b, .. }
            | XorI { a, b, .. }
            | ShlI { a, b, .. }
            | ShrI { a, b, .. }
            | UShrI { a, b, .. }
            | AddIChk { a, b, .. }
            | SubIChk { a, b, .. }
            | MulIChk { a, b, .. }
            | ModIChk { a, b, .. }
            | ShlIChk { a, b, .. }
            | UShrIChk { a, b, .. }
            | AddD { a, b, .. }
            | SubD { a, b, .. }
            | MulD { a, b, .. }
            | DivD { a, b, .. }
            | ModD { a, b, .. }
            | EqI { a, b, .. }
            | LtI { a, b, .. }
            | LeI { a, b, .. }
            | GtI { a, b, .. }
            | GeI { a, b, .. }
            | EqD { a, b, .. }
            | LtD { a, b, .. }
            | LeD { a, b, .. }
            | GtD { a, b, .. }
            | GeD { a, b, .. }
            | AluWrI { a, b, .. }
            | ChkAluWrI { a, b, .. }
            | CmpBranchI { a, b, .. }
            | CmpBranchD { a, b, .. }
            | CmpBranchLoopI { a, b, .. }
            | CmpBranchLoopD { a, b, .. }
            | CmpWrI { a, b, .. }
            | CmpWrD { a, b, .. }
            | CmpWrBranchI { a, b, .. }
            | CmpWrBranchD { a, b, .. } => {
                f(*a);
                f(*b);
            }
            NotI { a, .. }
            | NegI { a, .. }
            | NegIChk { a, .. }
            | NegD { a, .. }
            | NotB { a, .. }
            | I2D { a, .. }
            | U2D { a, .. }
            | D2IChk { a, .. }
            | D2I32 { a, .. }
            | ChkRangeI { a, .. }
            | BoxI { a, .. }
            | BoxD { a, .. }
            | BoxB { a, .. }
            | BoxObj { a, .. }
            | BoxStr { a, .. }
            | UnboxI { a, .. }
            | UnboxD { a, .. }
            | UnboxNumD { a, .. }
            | UnboxObj { a, .. }
            | UnboxStr { a, .. }
            | UnboxBool { a, .. }
            | ArrayLen { a, .. }
            | StrLen { a, .. }
            | AluImmI { a, .. }
            | AluImmWrI { a, .. }
            | ChkAluImmI { a, .. }
            | ChkAluImmWrI { a, .. }
            | ChkAluImmWrLoopI { a, .. }
            | CmpImmI { a, .. }
            | CmpImmWrI { a, .. }
            | CmpBranchImmI { a, .. }
            | CmpImmWrBranchI { a, .. } => f(*a),
            GuardTrue { s, .. } | GuardFalse { s, .. } | GuardBoxedEq { s, .. } => f(*s),
            GuardShape { obj, .. } | GuardClass { obj, .. } => f(*obj),
            GuardBound { arr, idx, .. } => {
                f(*arr);
                f(*idx);
            }
            LoadSlot { o, .. } | LoadProto { o, .. } => f(*o),
            StoreSlot { o, s, .. } => {
                f(*o);
                f(*s);
            }
            LoadElem { a, i, .. } => {
                f(*a);
                f(*i);
            }
            StoreElem { a, i, s } => {
                f(*a);
                f(*i);
                f(*s);
            }
            CallHelper { args, .. } => args.iter().copied().for_each(f),
            AluArI { b, .. } | AluArWrI { b, .. } => f(*b),
            WriteAr2 { s_a, s_b, .. } => {
                f(*s_a);
                f(*s_b);
            }
            WriteAr3 { s_a, s_b, s_c, .. } => {
                f(*s_a);
                f(*s_b);
                f(*s_c);
            }
        }
    }

    /// Calls `f` once per exit id this instruction can take.
    pub fn for_each_exit(&self, mut f: impl FnMut(u16)) {
        use MachInst::*;
        match self {
            AddIChk { exit, .. }
            | SubIChk { exit, .. }
            | MulIChk { exit, .. }
            | NegIChk { exit, .. }
            | ModIChk { exit, .. }
            | ShlIChk { exit, .. }
            | UShrIChk { exit, .. }
            | D2IChk { exit, .. }
            | ChkRangeI { exit, .. }
            | UnboxI { exit, .. }
            | UnboxD { exit, .. }
            | UnboxNumD { exit, .. }
            | UnboxObj { exit, .. }
            | UnboxStr { exit, .. }
            | UnboxBool { exit, .. }
            | GuardTrue { exit, .. }
            | GuardFalse { exit, .. }
            | GuardShape { exit, .. }
            | GuardClass { exit, .. }
            | GuardBoxedEq { exit, .. }
            | GuardBound { exit, .. }
            | CallHelper { exit, .. }
            | CallTree { exit, .. }
            | LoopBack { exit }
            | End { exit }
            | CmpBranchI { exit, .. }
            | CmpBranchD { exit, .. }
            | ChkAluImmI { exit, .. }
            | ChkAluWrI { exit, .. }
            | ChkAluImmWrI { exit, .. }
            | CmpBranchImmI { exit, .. }
            | CmpWrBranchI { exit, .. }
            | CmpWrBranchD { exit, .. }
            | CmpImmWrBranchI { exit, .. } => f(*exit),
            CmpBranchLoopI { exit, loop_exit, .. }
            | CmpBranchLoopD { exit, loop_exit, .. }
            | ChkAluImmWrLoopI { exit, loop_exit, .. } => {
                f(*exit);
                f(*loop_exit);
            }
            _ => {}
        }
    }

    /// Whether the instruction has no observable effect beyond writing its
    /// destination register: no stores, no exits, no allocation, no way to
    /// trap. Pure instructions whose destination is dead may be deleted.
    pub fn is_pure(&self) -> bool {
        use MachInst::*;
        matches!(
            self,
            ConstW { .. }
                | Mov { .. }
                | LoadSpill { .. }
                | ReadAr { .. }
                | AddI { .. }
                | SubI { .. }
                | MulI { .. }
                | AndI { .. }
                | OrI { .. }
                | XorI { .. }
                | ShlI { .. }
                | ShrI { .. }
                | UShrI { .. }
                | NotI { .. }
                | NegI { .. }
                | AddD { .. }
                | SubD { .. }
                | MulD { .. }
                | DivD { .. }
                | ModD { .. }
                | NegD { .. }
                | EqI { .. }
                | LtI { .. }
                | LeI { .. }
                | GtI { .. }
                | GeI { .. }
                | EqD { .. }
                | LtD { .. }
                | LeD { .. }
                | GtD { .. }
                | GeD { .. }
                | NotB { .. }
                | I2D { .. }
                | U2D { .. }
                | D2I32 { .. }
                | AluImmI { .. }
                | AluArI { .. }
                | CmpImmI { .. }
        )
    }

    /// Whether this instruction ends the fragment (nothing may follow it).
    pub fn is_terminator(&self) -> bool {
        use MachInst::*;
        matches!(
            self,
            LoopBack { .. }
                | End { .. }
                | CmpBranchLoopI { .. }
                | CmpBranchLoopD { .. }
                | ChkAluImmWrLoopI { .. }
        )
    }

    /// Whether this is a fused superinstruction (never emitted by the
    /// assembler, only by the peephole pass).
    pub fn is_fused(&self) -> bool {
        self.raw_width() > 1
    }

    /// How many raw (pre-fusion) instructions this instruction stands for
    /// (immediate forms count the folded `ConstW`).
    pub fn raw_width(&self) -> u64 {
        use MachInst::*;
        match self {
            ChkAluImmWrLoopI { .. } | CmpImmWrBranchI { .. } => 4,
            CmpBranchLoopI { .. }
            | CmpBranchLoopD { .. }
            | AluImmWrI { .. }
            | ChkAluImmWrI { .. }
            | WriteAr3 { .. }
            | AluArWrI { .. }
            | CmpImmWrI { .. }
            | CmpBranchImmI { .. }
            | CmpWrBranchI { .. }
            | CmpWrBranchD { .. } => 3,
            CmpBranchI { .. }
            | CmpBranchD { .. }
            | AluImmI { .. }
            | AluArI { .. }
            | AluWrI { .. }
            | ChkAluImmI { .. }
            | ChkAluWrI { .. }
            | ConstWrAr { .. }
            | MovAr { .. }
            | WriteAr2 { .. }
            | CmpImmI { .. }
            | CmpWrI { .. }
            | CmpWrD { .. } => 2,
            _ => 1,
        }
    }
}

/// Where a side exit goes: back to the monitor, or — once a branch trace
/// is attached by **trace stitching** (§6.2) — directly into another
/// fragment of the same tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitTarget {
    /// Return control to the trace monitor with this exit id.
    Return,
    /// Jump into fragment `0`-indexed id (trace stitching).
    Fragment(u32),
}

/// Static counters from the peephole pass, kept on the fragment so the
/// disassembler can report how dense the compiled code is.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Instruction count before fusion (as assembled).
    pub raw_insts: u32,
    /// Instruction count after fusion + dead-code removal.
    pub fused_insts: u32,
    /// Fused superinstructions emitted.
    pub superinsts: u32,
    /// Pure instructions deleted because their destination was dead.
    pub dce_removed: u32,
}

/// A compiled trace fragment: straight-line machine code whose only
/// control flow is guard exits and the final loop-back/end.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The instructions.
    pub code: Vec<MachInst>,
    /// Number of spill slots used.
    pub num_spills: u16,
    /// Exit targets, indexed by exit id; patched by trace stitching
    /// (through [`Fragment::set_exit_target`], which keeps [`Fragment::stitch`]
    /// in sync).
    pub exit_targets: Vec<ExitTarget>,
    /// Decoded exit-resolution table: `stitch[e]` is the fragment index a
    /// stitched exit jumps to, or [`EXIT_UNSTITCHED`]. Always mirrors
    /// `exit_targets`; the executor reads only this.
    pub stitch: Vec<u32>,
    /// Peephole statistics (zero until [`crate::peephole::fuse`] runs).
    pub fuse_stats: FuseStats,
}

impl Fragment {
    /// A fragment whose `num_exits` exits all return to the monitor.
    pub fn new(code: Vec<MachInst>, num_spills: u16, num_exits: usize) -> Self {
        Fragment {
            code,
            num_spills,
            exit_targets: vec![ExitTarget::Return; num_exits],
            stitch: vec![EXIT_UNSTITCHED; num_exits],
            fuse_stats: FuseStats::default(),
        }
    }

    /// Retargets exit `exit`, keeping the decoded stitch table in sync
    /// with `exit_targets`. All stitching must go through here.
    pub fn set_exit_target(&mut self, exit: u16, target: ExitTarget) {
        self.exit_targets[exit as usize] = target;
        self.stitch[exit as usize] = match target {
            ExitTarget::Return => EXIT_UNSTITCHED,
            ExitTarget::Fragment(idx) => idx,
        };
    }

    /// Renders the fragment as a Figure-4 style listing. After the
    /// peephole pass has run, a header line reports the raw/fused
    /// instruction counts.
    pub fn listing(&self) -> String {
        let mut out = String::new();
        let fs = &self.fuse_stats;
        if fs.raw_insts != 0 {
            out.push_str(&format!(
                "  ; fuse: {} raw -> {} fused ({} superinsts, {} dce)\n",
                fs.raw_insts, fs.fused_insts, fs.superinsts, fs.dce_removed
            ));
        }
        for (pc, inst) in self.code.iter().enumerate() {
            out.push_str(&format!("  {pc:4}: {inst:?}\n"));
        }
        out
    }

    /// Number of machine instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the fragment is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}
