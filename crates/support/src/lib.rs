//! # `tm-support` — hermetic test & measurement support
//!
//! Zero-dependency stand-ins for the registry crates the workspace used
//! before it went offline-hermetic (`rand`, `serde_json`, `proptest`,
//! `criterion`). Everything here is implemented on `std` alone so that
//!
//! ```sh
//! cargo build --release --offline --locked && cargo test -q --offline --locked
//! ```
//!
//! succeeds on a machine with no network and no cargo registry cache.
//!
//! The modules and what they replace:
//!
//! | module | replaces | used by |
//! |---|---|---|
//! | [`rng`] | `rand` (`StdRng::seed_from_u64`) | `tests/fuzz_differential.rs` |
//! | [`json`] | `serde`/`serde_json` | `tm-bench` `results_json` |
//! | [`prop`] | `proptest` | `tests/property.rs` |
//! | [`mod@bench`] | `criterion` | `tm-bench` `benches/` |
//! | [`binio`] | `bincode`/`byteorder` | the persistent trace cache |
//!
//! Each module's own documentation states its algorithm and its
//! reproducibility contract; the overriding design rule is that **every
//! random choice is derived from an explicit seed**, so any failure is
//! replayable from the numbers printed in its report.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod binio;
pub mod json;
pub mod prop;
pub mod rng;
pub mod sched;

pub use binio::{fnv1a64, BinError, ByteReader, ByteWriter, Fnv1a64};
pub use json::{Json, ParseError};
pub use prop::{Config, Failure};
pub use rng::TmRng;
