//! A compact property-test harness (the workspace's `proptest`
//! replacement).
//!
//! A *property* is a closure `FnMut(&mut TmRng) -> Result<(), String>`:
//! it draws whatever random inputs it needs from the given generator and
//! returns `Err` (usually via [`crate::prop_assert!`]/[`crate::prop_assert_eq!`]) when
//! the invariant is violated. Panics inside the property are caught and
//! reported the same way, so `expect(..)` in test scaffolding still
//! produces a replayable report.
//!
//! # Seeding and replay
//!
//! [`run`] executes `cases` cases. Case *i*'s generator is seeded with
//! the *i*-th output of a SplitMix64 stream over [`Config::seed`], so
//! every case is independently replayable from one `u64`. On failure the
//! harness stops at the first counterexample and reports its case index
//! and case seed.
//!
//! # Failure-reporting format
//!
//! [`check`] panics with exactly this shape (asserted by a meta-test in
//! `tests/`):
//!
//! ```text
//! property `<name>` failed at case <i>/<cases> (case seed 0x<hex>): <message>
//! replay with: TM_PROP_SEED=0x<hex> cargo test <name>
//! ```
//!
//! Setting `TM_PROP_SEED` makes every [`run`]/[`check`] execute a single
//! case with that seed — the replay loop for a reported counterexample.
//! There is no input shrinking: because each case re-derives *all* of its
//! inputs from one seed, the seed itself is the minimal reproducer.
//!
//! ```
//! use tm_support::prop::{self, Config};
//!
//! // Passing property: integer addition is commutative.
//! prop::check("add_commutes", &Config::default(), |g| {
//!     let (a, b) = (g.next_u32(), g.next_u32());
//!     tm_support::prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     Ok(())
//! });
//!
//! // Failing property: `run` returns the counterexample instead of panicking.
//! let failure = prop::run(&Config::default(), |g| {
//!     let n = g.gen_range(0u32..1000);
//!     tm_support::prop_assert!(n < 990, "n = {n}");
//!     Ok(())
//! });
//! assert!(failure.is_err());
//! ```

use crate::rng::{splitmix64, TmRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How many cases to run and from which master seed to derive them.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of cases (proptest's default was 256; so is ours).
    pub cases: u32,
    /// Master seed; each case's generator seed is derived from it.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256, seed: 0x7261_6365_6d6f_6e6b } // "racemonk"
    }
}

impl Config {
    /// A config running `cases` cases off the default master seed.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases, ..Config::default() }
    }
}

/// A counterexample found by [`run`].
#[derive(Debug, Clone)]
pub struct Failure {
    /// Zero-based index of the failing case.
    pub case: u32,
    /// Total cases configured for the run.
    pub cases: u32,
    /// The failing case's generator seed (pass as `TM_PROP_SEED` to replay).
    pub seed: u64,
    /// What the property reported (or the caught panic message).
    pub message: String,
}

impl Failure {
    /// Renders the report `check` panics with (see the module docs).
    pub fn report(&self, name: &str) -> String {
        format!(
            "property `{name}` failed at case {}/{} (case seed {:#x}): {}\n\
             replay with: TM_PROP_SEED={:#x} cargo test {name}",
            self.case, self.cases, self.seed, self.message, self.seed
        )
    }
}

fn run_one<F>(f: &mut F, case: u32, cases: u32, seed: u64) -> Result<(), Failure>
where
    F: FnMut(&mut TmRng) -> Result<(), String>,
{
    let mut rng = TmRng::seed_from_u64(seed);
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
    let message = match outcome {
        Ok(Ok(())) => return Ok(()),
        Ok(Err(msg)) => msg,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_owned());
            format!("panicked: {msg}")
        }
    };
    Err(Failure { case, cases, seed, message })
}

/// Runs the property over `cfg.cases` seeded cases, stopping at the
/// first counterexample. Honors `TM_PROP_SEED` (hex with `0x` prefix, or
/// decimal) by running that single case instead.
pub fn run<F>(cfg: &Config, mut f: F) -> Result<(), Failure>
where
    F: FnMut(&mut TmRng) -> Result<(), String>,
{
    if let Ok(var) = std::env::var("TM_PROP_SEED") {
        let seed = var
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| var.parse())
            .unwrap_or_else(|_| panic!("TM_PROP_SEED must be decimal or 0x-hex, got `{var}`"));
        return run_one(&mut f, 0, 1, seed);
    }
    let mut stream = cfg.seed;
    for case in 0..cfg.cases {
        let seed = splitmix64(&mut stream);
        run_one(&mut f, case, cfg.cases, seed)?;
    }
    Ok(())
}

/// Like [`run`], but panics with [`Failure::report`] on a counterexample
/// — the form tests call.
pub fn check<F>(name: &str, cfg: &Config, f: F)
where
    F: FnMut(&mut TmRng) -> Result<(), String>,
{
    if let Err(failure) = run(cfg, f) {
        panic!("{}", failure.report(name));
    }
}

/// `assert!` for properties: returns `Err(String)` from the enclosing
/// property closure instead of panicking, so the harness can attach the
/// case seed. An optional trailing `format!` message is supported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// `assert_eq!` for properties; see [`crate::prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} (left: {l:?}, right: {r:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        let cfg = Config::with_cases(64);
        run(&cfg, |g| {
            ran += 1;
            let v = g.gen_range(0u64..10);
            prop_assert!(v < 10);
            Ok(())
        })
        .expect("property holds");
        assert_eq!(ran, 64);
    }

    #[test]
    fn counterexample_is_replayable() {
        let cfg = Config::with_cases(512);
        let fail = |g: &mut TmRng| {
            let n = g.gen_range(0u32..100);
            prop_assert!(n < 95, "n = {n}");
            Ok(())
        };
        let failure = run(&cfg, fail).expect_err("must find n >= 95");
        // Re-seeding with the reported case seed reproduces the failure.
        let replay = run_one(&mut { fail }, 0, 1, failure.seed).expect_err("replays");
        assert_eq!(replay.message, failure.message);
    }

    #[test]
    fn panics_are_converted_to_failures() {
        let failure = run(&Config::with_cases(1), |_| {
            let none: Option<u32> = None;
            none.expect("scaffolding panic");
            Ok(())
        })
        .expect_err("panic becomes failure");
        assert!(failure.message.contains("panicked"), "{}", failure.message);
        assert!(failure.message.contains("scaffolding panic"), "{}", failure.message);
    }
}
