//! A minimal JSON value and writer/reader (the workspace's
//! `serde`/`serde_json` replacement for bench results).
//!
//! Only what the bench harnesses need: building a [`Json`] tree,
//! serializing it compactly or pretty-printed, and parsing previously
//! emitted documents back ([`Json::parse`] — the perf-gate harnesses
//! compare a fresh run against a checked-in baseline file). There is no
//! derive machinery, and the writer's job is to stay structurally
//! byte-compatible with what `serde_json::to_string_pretty` produced for
//! the same tree (2-space indent, `"key": value`, object keys in
//! insertion order).
//!
//! # Escaping rules
//!
//! Strings are escaped per RFC 8259 §7:
//!
//! * `"` → `\"` and `\` → `\\`;
//! * the control characters with short forms use them: `\b \f \n \r \t`;
//! * every other control character below U+0020 becomes `\u00XX`;
//! * everything else — including non-ASCII — is written verbatim as
//!   UTF-8 (no `\uXXXX` escaping of printable text).
//!
//! # Number formatting
//!
//! Integers print without a decimal point. Finite floats with zero
//! fractional part print with a trailing `.0` (as `serde_json` does), all
//! other finite floats use Rust's shortest round-trip formatting, and
//! non-finite floats serialize as `null` (matching
//! `JSON.stringify(NaN)`).
//!
//! ```
//! use tm_support::Json;
//!
//! let j = Json::obj([
//!     ("name", Json::from("3d-\"cube\"\n")),
//!     ("ms", Json::from(12.0)),
//!     ("runs", Json::from(3u64)),
//! ]);
//! assert_eq!(
//!     j.to_string(),
//!     r#"{"name":"3d-\"cube\"\n","ms":12.0,"runs":3}"#
//! );
//! ```

use std::fmt;

/// A JSON document tree. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer, printed without a decimal point.
    Int(i64),
    /// An unsigned integer, printed without a decimal point.
    UInt(u64),
    /// A double; non-finite values serialize as `null`.
    Float(f64),
    /// A string (escaped on output; see the module docs).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered fields.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(fields: I) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Parses a JSON document (RFC 8259). Integers without a fractional
    /// part or exponent become [`Json::Int`] / [`Json::UInt`]; everything
    /// else numeric becomes [`Json::Float`]. Errors carry a byte offset.
    ///
    /// ```
    /// use tm_support::Json;
    /// let j = Json::parse(r#"{"runs": 3, "ms": 1.5}"#).unwrap();
    /// assert_eq!(j.get("runs").and_then(Json::as_u64), Some(3));
    /// ```
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after the top-level value"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// A non-negative integer view of `Int`/`UInt` values.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// A double view of any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(f) => Some(f),
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization: 2-space indent, one field/element per line
    /// (the `serde_json::to_string_pretty` layout).
    ///
    /// ```
    /// let j = tm_support::Json::obj([("a", tm_support::Json::Array(vec![1i64.into()]))]);
    /// assert_eq!(j.to_string_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    /// ```
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

/// A parse failure: what was wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_owned(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Combine a surrogate pair; a lone surrogate
                            // becomes U+FFFD (there is no other option in
                            // a Rust `String`).
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xd800) << 10)
                                        + lo.checked_sub(0xdc00).unwrap_or(0);
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => {
                    // Copy a whole UTF-8 scalar (the input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| ParseError {
            message: format!("invalid number '{text}'"),
            offset: start,
        })
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    use fmt::Write;
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(i64::from(v))
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_matches_expected_bytes() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\u{01}f").to_string(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001f\""
        );
        assert_eq!(Json::from("π ≈ 3").to_string(), "\"π ≈ 3\"");
    }

    #[test]
    fn number_forms() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(2.5).to_string(), "2.5");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(u64::MAX).to_string(), u64::MAX.to_string());
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj([
            ("name", Json::from("bitops-\"and\"\n")),
            ("ms", Json::from(12.5)),
            // Writer `UInt` comes back as `Int` when it fits (the
            // accessors bridge the two); i64-range ints round-trip
            // exactly, only > i64::MAX stays `UInt`.
            ("runs", Json::from(3i64)),
            ("neg", Json::from(-7i64)),
            ("big", Json::from(u64::MAX)),
            ("flags", Json::Array(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj([("π", Json::from(3.0))])),
        ]);
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
        assert_eq!(Json::parse(&j.to_string_pretty()).unwrap(), j);
    }

    #[test]
    fn parse_numbers_and_escapes() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(
            Json::parse(&u64::MAX.to_string()).unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Float(-150.0));
        assert_eq!(
            Json::parse(r#""aA😀b""#).unwrap(),
            Json::Str("aA\u{1f600}b".to_owned())
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn accessors_navigate_a_document() {
        let j = Json::parse(r#"{"programs": [{"name": "x", "insts": 10}]}"#).unwrap();
        let first = &j.get("programs").unwrap().as_array().unwrap()[0];
        assert_eq!(first.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(first.get("insts").and_then(Json::as_u64), Some(10));
        assert_eq!(first.get("insts").and_then(Json::as_f64), Some(10.0));
        assert_eq!(first.get("missing"), None);
    }

    #[test]
    fn pretty_layout_matches_serde_style() {
        let j = Json::obj([
            ("a", Json::from(1i64)),
            ("b", Json::Array(vec![Json::from(true), Json::Null])),
            ("empty", Json::obj(Vec::<(String, Json)>::new())),
        ]);
        assert_eq!(
            j.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ],\n  \"empty\": {}\n}"
        );
    }
}
