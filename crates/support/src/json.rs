//! A minimal JSON value and writer (the workspace's `serde`/`serde_json`
//! replacement for emitting bench results).
//!
//! Only what the bench harnesses need: building a [`Json`] tree and
//! serializing it compactly or pretty-printed. There is intentionally no
//! parser and no derive machinery — results are *written*, never read
//! back, and the writer's job is to stay structurally byte-compatible
//! with what `serde_json::to_string_pretty` produced for the same tree
//! (2-space indent, `"key": value`, object keys in insertion order).
//!
//! # Escaping rules
//!
//! Strings are escaped per RFC 8259 §7:
//!
//! * `"` → `\"` and `\` → `\\`;
//! * the control characters with short forms use them: `\b \f \n \r \t`;
//! * every other control character below U+0020 becomes `\u00XX`;
//! * everything else — including non-ASCII — is written verbatim as
//!   UTF-8 (no `\uXXXX` escaping of printable text).
//!
//! # Number formatting
//!
//! Integers print without a decimal point. Finite floats with zero
//! fractional part print with a trailing `.0` (as `serde_json` does), all
//! other finite floats use Rust's shortest round-trip formatting, and
//! non-finite floats serialize as `null` (matching
//! `JSON.stringify(NaN)`).
//!
//! ```
//! use tm_support::Json;
//!
//! let j = Json::obj([
//!     ("name", Json::from("3d-\"cube\"\n")),
//!     ("ms", Json::from(12.0)),
//!     ("runs", Json::from(3u64)),
//! ]);
//! assert_eq!(
//!     j.to_string(),
//!     r#"{"name":"3d-\"cube\"\n","ms":12.0,"runs":3}"#
//! );
//! ```

use std::fmt;

/// A JSON document tree. Object fields keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer, printed without a decimal point.
    Int(i64),
    /// An unsigned integer, printed without a decimal point.
    UInt(u64),
    /// A double; non-finite values serialize as `null`.
    Float(f64),
    /// A string (escaped on output; see the module docs).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered fields.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(fields: I) -> Json {
        Json::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Compact serialization (no whitespace).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization: 2-space indent, one field/element per line
    /// (the `serde_json::to_string_pretty` layout).
    ///
    /// ```
    /// let j = tm_support::Json::obj([("a", tm_support::Json::Array(vec![1i64.into()]))]);
    /// assert_eq!(j.to_string_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    /// ```
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    use fmt::Write;
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Int(i64::from(v))
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_matches_expected_bytes() {
        assert_eq!(
            Json::from("a\"b\\c\nd\te\u{01}f").to_string(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001f\""
        );
        assert_eq!(Json::from("π ≈ 3").to_string(), "\"π ≈ 3\"");
    }

    #[test]
    fn number_forms() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(2.5).to_string(), "2.5");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Int(-3).to_string(), "-3");
        assert_eq!(Json::UInt(u64::MAX).to_string(), u64::MAX.to_string());
    }

    #[test]
    fn pretty_layout_matches_serde_style() {
        let j = Json::obj([
            ("a", Json::from(1i64)),
            ("b", Json::Array(vec![Json::from(true), Json::Null])),
            ("empty", Json::obj(Vec::<(String, Json)>::new())),
        ]);
        assert_eq!(
            j.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ],\n  \"empty\": {}\n}"
        );
    }
}
