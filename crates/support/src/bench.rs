//! A wall-clock benchmark harness (the workspace's `criterion`
//! replacement) for `harness = false` bench targets.
//!
//! Deliberately simple: each benchmark runs `warmup` throwaway
//! iterations, then `samples` timed iterations, and reports **min /
//! median / max** of the per-iteration wall time. Min and median are the
//! robust statistics for "how fast is this loop" on a shared machine;
//! there is no bootstrapping or outlier modeling.
//!
//! Results print one line per benchmark:
//!
//! ```text
//! <name>  min <t>  median <t>  max <t>  (<n> samples)
//! ```
//!
//! Like criterion, a positional command-line argument filters benchmarks
//! by substring (`cargo bench -p tm-bench -- bitops`), and the
//! `TM_BENCH_SAMPLES` / `TM_BENCH_WARMUP` environment variables override
//! the iteration counts.
//!
//! ```
//! use tm_support::bench::Runner;
//!
//! let mut runner = Runner::with_config(1, 5);
//! let stats = runner
//!     .bench("sum_1k", || (0..1000u64).sum::<u64>())
//!     .expect("not filtered out");
//! assert_eq!(stats.samples.len(), 5);
//! assert!(stats.min <= stats.median && stats.median <= stats.max);
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing statistics for one benchmark.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample (lower-middle for even counts).
    pub median: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// All samples, sorted ascending.
    pub samples: Vec<Duration>,
}

/// Runs benchmarks and prints their reports.
#[derive(Debug, Clone)]
pub struct Runner {
    /// Untimed iterations before sampling starts.
    pub warmup: u32,
    /// Timed iterations.
    pub samples: u32,
    /// Substring filter; `None` runs everything.
    pub filter: Option<String>,
}

impl Runner {
    /// A runner configured from the command line and environment: the
    /// first non-flag argument becomes the substring filter (flags such
    /// as cargo's `--bench` are ignored), `TM_BENCH_SAMPLES` and
    /// `TM_BENCH_WARMUP` override the defaults (10 samples, 2 warmup).
    pub fn from_args() -> Runner {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let env_u32 = |key: &str, default: u32| {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        Runner {
            warmup: env_u32("TM_BENCH_WARMUP", 2),
            samples: env_u32("TM_BENCH_SAMPLES", 10).max(1),
            filter,
        }
    }

    /// A runner with explicit warmup/sample counts and no filter.
    pub fn with_config(warmup: u32, samples: u32) -> Runner {
        Runner { warmup, samples: samples.max(1), filter: None }
    }

    /// Runs one benchmark: `warmup` untimed calls, then `samples` timed
    /// calls of `f` (its result is passed through [`black_box`] so the
    /// optimizer cannot delete the work). Prints the report line and
    /// returns the stats, or `None` if `name` does not match the filter.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> Option<Stats> {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        samples.sort();
        let stats = Stats {
            min: samples[0],
            median: samples[samples.len() / 2],
            max: *samples.last().expect("samples >= 1"),
            samples,
        };
        println!(
            "{name:<44} min {:>10}  median {:>10}  max {:>10}  ({} samples)",
            fmt_duration(stats.min),
            fmt_duration(stats.median),
            fmt_duration(stats.max),
            stats.samples.len(),
        );
        Some(stats)
    }
}

/// Formats a duration with an auto-selected unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_counted() {
        let mut r = Runner::with_config(0, 7);
        let s = r.bench("spin", || (0..100u32).fold(0u32, |a, b| a.wrapping_add(b)));
        let s = s.expect("no filter set");
        assert_eq!(s.samples.len(), 7);
        assert!(s.min <= s.median && s.median <= s.max);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut r = Runner::with_config(0, 1);
        r.filter = Some("bitops".into());
        assert!(r.bench("string-base64", || 1).is_none());
        assert!(r.bench("bitops-and", || 1).is_some());
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
