//! Seeded pseudo-random number generation (the workspace's `rand`
//! replacement).
//!
//! # Algorithm
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna): 256 bits of
//! state advanced with xor/shift/rotate, output scrambled with a
//! `rotl(s1 * 5, 7) * 9` multiply. It is not cryptographic — it is a
//! small, fast, statistically solid generator for fuzzing and property
//! testing.
//!
//! # Seeding contract
//!
//! [`TmRng::seed_from_u64`] expands a 64-bit seed into the 256-bit state
//! with **SplitMix64**, exactly as the xoshiro authors recommend. The
//! contract the rest of the workspace relies on:
//!
//! * the same seed always produces the same stream, on every platform
//!   and every build profile (the implementation is pure integer
//!   arithmetic — no platform entropy, no pointers, no time);
//! * distinct seeds produce decorrelated streams (SplitMix64 guarantees
//!   the expanded states differ even for adjacent seeds);
//! * the stream is stable across versions of this crate — changing it
//!   invalidates recorded fuzz seeds, so it is treated as a breaking
//!   change.
//!
//! Bounded integers are drawn with Lemire's multiply-shift rejection
//! method (no modulo bias); floats use the top 53 bits of a draw scaled
//! by 2⁻⁵³, giving uniform values in `[0, 1)`.
//!
//! ```
//! use tm_support::rng::TmRng;
//!
//! let mut a = TmRng::seed_from_u64(42);
//! let mut b = TmRng::seed_from_u64(42);
//! // Identical seeds → identical streams, whatever is drawn.
//! assert_eq!(a.gen_range(0..100), b.gen_range(0..100));
//! assert_eq!(a.next_u64(), b.next_u64());
//! let p = a.gen_range(-3.0..3.0);
//! assert!((-3.0..3.0).contains(&p));
//! ```

use std::ops::Range;

/// A seedable xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct TmRng {
    s: [u64; 4],
}

/// One SplitMix64 step: advances `state` and returns the next output.
/// Also used by [`crate::prop`] to derive per-case seeds.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TmRng {
    /// Creates a generator whose entire state is derived from `seed`
    /// via SplitMix64 (see the module docs for the seeding contract).
    pub fn seed_from_u64(seed: u64) -> TmRng {
        let mut sm = seed;
        TmRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// The next raw 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `u64` in `[0, bound)` using Lemire's unbiased
    /// multiply-shift rejection method. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            // Rejection zone for the biased low products.
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits of a draw.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// A uniform value in a half-open range; see [`SampleRange`] for the
    /// supported element types.
    ///
    /// ```
    /// let mut rng = tm_support::TmRng::seed_from_u64(7);
    /// let i = rng.gen_range(-100i64..100);
    /// assert!((-100..100).contains(&i));
    /// let n = rng.gen_range(0usize..3);
    /// assert!(n < 3);
    /// ```
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// A half-open range a [`TmRng`] can sample uniformly. Implemented for
/// `Range<i32 | i64 | u32 | u64 | usize | f64>`.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut TmRng) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample(self, rng: &mut TmRng) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span) as $wide) as $ty
            }
        }
    )*};
}

int_sample_range! {
    i32 => i64,
    u32 => u64,
    i64 => i64,
    u64 => u64,
    usize => u64,
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut TmRng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TmRng::seed_from_u64(123);
        let mut b = TmRng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = TmRng::seed_from_u64(0);
        let mut b = TmRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds should decorrelate immediately");
    }

    #[test]
    fn known_stream_is_stable() {
        // Golden values: changing the generator invalidates recorded
        // fuzz seeds, so lock the stream down.
        let mut rng = TmRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> =
            { let mut r = TmRng::seed_from_u64(0); (0..4).map(|_| r.next_u64()).collect() };
        assert_eq!(first, again);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TmRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!((-100..100).contains(&rng.gen_range(-100i32..100)));
            assert!(rng.gen_range(0usize..7) < 7);
            let f = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&f));
        }
    }
}
