//! Compact little-endian binary reader/writer for on-disk artifacts.
//!
//! This is the serialization substrate for the persistent trace cache
//! (`docs/PERSISTENCE.md`). It deliberately has no schema knowledge: it
//! provides fixed-width little-endian primitives, length-prefixed byte
//! strings, and an FNV-1a checksum, and the cache layer composes them.
//!
//! ## Contract
//!
//! * **Fixed widths.** Every integer is encoded at its full width,
//!   little-endian. No varints — the format trades a few bytes for a
//!   reader whose every access is bounds-checked and branch-predictable,
//!   and for a spec (`docs/PERSISTENCE.md`) a human can check against a
//!   hex dump.
//! * **Hostile input is expected.** [`ByteReader`] never panics on any
//!   byte sequence: every read returns [`BinError`] on truncation, and
//!   length prefixes are validated against the remaining input *before*
//!   allocation, so a corrupt 4 GiB length cannot OOM the process.
//! * **Determinism.** Encoding the same value twice yields identical
//!   bytes; there is no padding, no alignment, and no platform
//!   dependence.

use std::fmt;

/// Error from a [`ByteReader`] operation.
///
/// Carries the byte offset at which the failure was detected so cache
/// diagnostics can point at the corrupt region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinError {
    /// Input ended before the requested number of bytes.
    Truncated {
        /// Offset at which the read was attempted.
        at: usize,
        /// Bytes requested.
        want: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// A length prefix exceeded the bytes remaining in the input.
    BadLength {
        /// Offset of the length prefix.
        at: usize,
        /// The decoded (invalid) length.
        len: u64,
    },
    /// A decoded discriminant/tag was outside its valid range.
    BadTag {
        /// Offset of the tag byte.
        at: usize,
        /// The invalid tag value.
        tag: u64,
        /// Human-readable name of the thing being decoded.
        what: &'static str,
    },
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BinError::Truncated { at, want, have } => {
                write!(f, "truncated input at byte {at}: want {want} bytes, have {have}")
            }
            BinError::BadLength { at, len } => {
                write!(f, "invalid length prefix {len} at byte {at}")
            }
            BinError::BadTag { at, tag, what } => {
                write!(f, "invalid {what} tag {tag} at byte {at}")
            }
        }
    }
}

impl std::error::Error for BinError {}

/// Append-only little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i32`, little-endian two's complement.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u32` length prefix followed by the bytes.
    pub fn bytes_u32(&mut self, bytes: &[u8]) {
        debug_assert!(bytes.len() <= u32::MAX as usize);
        self.u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a UTF-8 string as [`ByteWriter::bytes_u32`].
    pub fn str(&mut self, s: &str) {
        self.bytes_u32(s.as_bytes());
    }

    /// Reserves a 4-byte slot for a `u32` to be patched later (e.g. a
    /// section length computed after the section body is written).
    /// Returns the slot's offset for [`ByteWriter::patch_u32`].
    pub fn reserve_u32(&mut self) -> usize {
        let at = self.buf.len();
        self.u32(0);
        at
    }

    /// Patches a slot reserved with [`ByteWriter::reserve_u32`].
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Bounds-checked little-endian byte source over a borrowed slice.
#[derive(Debug, Clone, Copy)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader has consumed all input.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::Truncated { at: self.pos, want: n, have: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, BinError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, BinError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, BinError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte; any value other than 0/1 is a [`BinError::BadTag`].
    pub fn bool(&mut self) -> Result<bool, BinError> {
        let at = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(BinError::BadTag { at, tag: u64::from(t), what: "bool" }),
        }
    }

    /// Reads exactly `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed byte string. The length is checked
    /// against the remaining input before any allocation.
    pub fn bytes_u32(&mut self) -> Result<&'a [u8], BinError> {
        let at = self.pos;
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(BinError::BadLength { at, len: len as u64 });
        }
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string; invalid UTF-8 is a
    /// [`BinError::BadTag`].
    pub fn str(&mut self) -> Result<&'a str, BinError> {
        let at = self.pos;
        let bytes = self.bytes_u32()?;
        std::str::from_utf8(bytes).map_err(|_| BinError::BadTag {
            at,
            tag: 0,
            what: "utf-8 string",
        })
    }

    /// Reads a `u32` element count for a sequence whose elements occupy at
    /// least `min_elem_bytes` each, rejecting counts that could not fit in
    /// the remaining input. This is the guard that makes hostile length
    /// prefixes cheap to reject: a corrupt count fails here instead of
    /// after a huge reserve.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, BinError> {
        let at = self.pos;
        let n = self.u32()? as usize;
        let floor = min_elem_bytes.max(1);
        if n > self.remaining() / floor + 1 {
            return Err(BinError::BadLength { at, len: n as u64 });
        }
        Ok(n)
    }
}

/// Incremental FNV-1a 64-bit hasher.
///
/// Used for the cache file's section checksums and the bytecode-program
/// fingerprint. FNV-1a is not cryptographic — it detects corruption and
/// staleness, not adversaries (see the threat model in
/// `docs/PERSISTENCE.md`).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64 {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a64 {
    fn default() -> Fnv1a64 {
        Fnv1a64::new()
    }
}

impl Fnv1a64 {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Fnv1a64 {
        Fnv1a64 { state: FNV_OFFSET }
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as its little-endian bytes.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Absorbs a `u32` as its little-endian bytes.
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(0xab);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(0x0123_4567_89ab_cdef);
        w.i32(-7);
        w.i64(-1);
        w.f64(-0.5);
        w.bool(true);
        w.bool(false);
        w.str("héllo");
        w.bytes_u32(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.i32().unwrap(), -7);
        assert_eq!(r.i64().unwrap(), -1);
        assert_eq!(r.f64().unwrap(), -0.5);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes_u32().unwrap(), &[1, 2, 3]);
        assert!(r.is_at_end());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u16().unwrap(), 0x0201);
        let e = r.u32().unwrap_err();
        assert_eq!(e, BinError::Truncated { at: 2, want: 4, have: 1 });
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        // A length prefix claiming 4 GiB with 0 bytes behind it.
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.bytes_u32(), Err(BinError::BadLength { at: 0, .. })));

        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.seq_len(8), Err(BinError::BadLength { .. })));
    }

    #[test]
    fn bad_bool_and_bad_utf8_are_tag_errors() {
        let mut r = ByteReader::new(&[2u8]);
        assert!(matches!(r.bool(), Err(BinError::BadTag { what: "bool", .. })));

        let mut w = ByteWriter::new();
        w.bytes_u32(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.str(), Err(BinError::BadTag { what: "utf-8 string", .. })));
    }

    #[test]
    fn patch_u32_fills_reserved_slot() {
        let mut w = ByteWriter::new();
        w.u8(9);
        let slot = w.reserve_u32();
        w.str("body");
        w.patch_u32(slot, 0x1234_5678);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 9);
        assert_eq!(r.u32().unwrap(), 0x1234_5678);
        assert_eq!(r.str().unwrap(), "body");
    }

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_incremental_matches_oneshot() {
        let mut h = Fnv1a64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn f64_round_trip_preserves_bit_patterns() {
        for v in [0.0f64, -0.0, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, 1.5e300] {
            let mut w = ByteWriter::new();
            w.f64(v);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
    }
}
