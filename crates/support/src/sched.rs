//! Deterministic thread-interleaving harness (the concurrency test rig).
//!
//! Concurrency bugs in the multi-tenant VM — a fragment published to the
//! shared code cache while another realm evicts, a compiler-pool result
//! installed while the submitting realm re-records — are schedule
//! dependent. Stress tests find them probabilistically; this module makes
//! them *reproducible*: a seeded cooperative scheduler serializes the
//! participating threads so that at most one runs at a time, and at every
//! instrumented **yield point** the next thread to run is chosen by a
//! [`TmRng`] seeded permutation. The observed interleaving is therefore a
//! pure function of the seed, and a failing seed is a regression test,
//! not a flake.
//!
//! ## How product code participates
//!
//! Code under test calls the ambient hooks, which are no-ops (one relaxed
//! atomic load) unless a schedule is armed **and** the calling thread is
//! a registered participant:
//!
//! * [`yield_point`]`("label")` — a possible context switch. Must be
//!   called *outside* any lock the other participants can block on.
//! * [`pre_park`]/[`post_park`] — wrapped around a real `Condvar` wait:
//!   `pre_park` surrenders the turn before blocking (the thread stops
//!   being runnable), `post_park` re-joins the schedule after waking.
//!   Call `post_park` only after releasing the lock the wait used.
//! * [`wake_all`] — called by a notifier right after `Condvar::notify_*`:
//!   marks parked participants runnable at a deterministic point.
//!
//! ## How tests drive it
//!
//! ```
//! use tm_support::sched::Schedule;
//!
//! let sched = Schedule::new(42, 2);
//! let a = {
//!     let s = sched.clone();
//!     std::thread::spawn(move || {
//!         let _p = s.attach(0);
//!         tm_support::sched::yield_point("step");
//!     })
//! };
//! let b = {
//!     let s = sched.clone();
//!     std::thread::spawn(move || {
//!         let _p = s.attach(1);
//!         tm_support::sched::yield_point("step");
//!     })
//! };
//! sched.start();
//! a.join().unwrap();
//! b.join().unwrap();
//! assert_eq!(sched.trace().len(), 6); // 2 attaches, 2 steps, 2 leaves
//! ```
//!
//! Only one schedule can be armed per process at a time ([`Schedule::start`]
//! panics otherwise); tests that use the rig must serialize on a mutex.
//! Unregistered threads (the rest of a concurrently running test binary)
//! never block: the ambient hooks ignore them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::TmRng;

/// How long a participant waits for its turn before declaring the
/// schedule wedged. A real deadlock in the code under test surfaces as a
/// panic naming the blocked label instead of a hung test binary.
const TURN_TIMEOUT: Duration = Duration::from_secs(10);

/// Fast ambient flag: true while some [`Schedule`] is armed. Lets the
/// production-code hooks cost one relaxed load when no rig is active.
static ARMED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// The schedule this thread participates in, if any.
    static PARTICIPANT: std::cell::RefCell<Option<(Arc<Core>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    /// Not yet attached (before [`Schedule::attach`]).
    Unborn,
    /// Eligible to be granted the turn.
    Runnable,
    /// Inside a real `Condvar` wait; not eligible until [`wake_all`].
    Parked,
    /// Left the schedule (normal exit or panic-unwind through the guard).
    Done,
}

#[derive(Debug)]
struct State {
    rng: TmRng,
    threads: Vec<Run>,
    /// Token currently allowed to run, or `None` before [`Schedule::start`]
    /// (and transiently while every live participant is parked).
    turn: Option<usize>,
    started: bool,
    trace: Vec<(usize, &'static str)>,
}

impl State {
    /// Picks the next turn among runnable participants with the seeded
    /// RNG. With no runnable participant the turn goes to `None` until a
    /// [`wake_all`] re-populates the runnable set.
    fn pick_next(&mut self) {
        let runnable: Vec<usize> = (0..self.threads.len())
            .filter(|&t| self.threads[t] == Run::Runnable)
            .collect();
        self.turn = match runnable.len() {
            0 => None,
            1 => Some(runnable[0]),
            n => Some(runnable[self.rng.gen_range(0..n)]),
        };
    }
}

#[derive(Debug)]
struct Core {
    state: Mutex<State>,
    cv: Condvar,
}

impl Core {
    /// Blocks until `tok` holds the turn. Panics after [`TURN_TIMEOUT`].
    fn wait_for_turn(&self, tok: usize, label: &'static str) {
        self.wait_for_turn_inner(tok, label, false);
    }

    /// Like [`Core::wait_for_turn`], but optionally also blocks while the
    /// schedule has not started yet (the attach barrier).
    fn wait_for_turn_inner(&self, tok: usize, label: &'static str, wait_for_start: bool) {
        let mut st = self.state.lock().unwrap();
        if wait_for_start {
            while !st.started {
                st = self.cv.wait(st).unwrap();
            }
        }
        while st.started && st.turn != Some(tok) && st.threads[tok] != Run::Done {
            let (next, timeout) = self.cv.wait_timeout(st, TURN_TIMEOUT).unwrap();
            st = next;
            if timeout.timed_out() && st.started && st.turn != Some(tok) {
                panic!(
                    "sched: thread {tok} starved waiting for its turn at \
                     '{label}' (turn = {:?}; deadlock in the code under test?)",
                    st.turn
                );
            }
        }
    }

    fn yield_point(&self, tok: usize, label: &'static str) {
        {
            let mut st = self.state.lock().unwrap();
            if !st.started {
                return;
            }
            st.trace.push((tok, label));
            st.pick_next();
            self.cv.notify_all();
        }
        self.wait_for_turn(tok, label);
    }
}

/// A seeded deterministic schedule over `nthreads` participants.
///
/// Cloning shares the schedule (it is an `Arc` internally).
#[derive(Debug, Clone)]
pub struct Schedule {
    core: Arc<Core>,
}

/// Participation guard returned by [`Schedule::attach`]: while alive the
/// current thread is scheduled; dropping it (including during a panic
/// unwind) removes the thread from the schedule and passes the turn on,
/// so one participant's failure cannot starve the others.
#[derive(Debug)]
pub struct Participant {
    core: Arc<Core>,
    tok: usize,
}

impl Drop for Participant {
    fn drop(&mut self) {
        PARTICIPANT.with(|p| *p.borrow_mut() = None);
        let mut st = self.core.state.lock().unwrap();
        st.threads[self.tok] = Run::Done;
        st.trace.push((self.tok, "leave"));
        if st.turn == Some(self.tok) || st.turn.is_none() {
            st.pick_next();
        }
        self.core.cv.notify_all();
    }
}

impl Schedule {
    /// Creates a schedule for `nthreads` participants with tokens
    /// `0..nthreads`, driven by `seed`.
    pub fn new(seed: u64, nthreads: usize) -> Schedule {
        Schedule {
            core: Arc::new(Core {
                state: Mutex::new(State {
                    rng: TmRng::seed_from_u64(seed),
                    threads: vec![Run::Unborn; nthreads],
                    turn: None,
                    started: false,
                    trace: Vec::new(),
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Registers the current thread as participant `tok` and blocks until
    /// the schedule grants it the turn for the first time. Call from
    /// inside the spawned thread, before any work under test.
    pub fn attach(&self, tok: usize) -> Participant {
        {
            let mut st = self.core.state.lock().unwrap();
            assert!(st.threads[tok] == Run::Unborn, "token {tok} attached twice");
            st.threads[tok] = Run::Runnable;
            st.trace.push((tok, "attach"));
            self.core.cv.notify_all();
        }
        PARTICIPANT.with(|p| *p.borrow_mut() = Some((Arc::clone(&self.core), tok)));
        self.core.wait_for_turn_inner(tok, "attach", true);
        Participant { core: Arc::clone(&self.core), tok }
    }

    /// Arms the schedule: waits for every participant to attach, picks
    /// the first turn with the seeded RNG, and releases the threads.
    /// Panics if another schedule is already armed in this process.
    pub fn start(&self) {
        assert!(
            !ARMED.swap(true, Ordering::SeqCst),
            "sched: another Schedule is already armed in this process"
        );
        let mut st = self.core.state.lock().unwrap();
        while st.threads.iter().any(|&t| t == Run::Unborn) {
            let (next, timeout) =
                self.core.cv.wait_timeout(st, TURN_TIMEOUT).unwrap();
            st = next;
            if timeout.timed_out() && st.threads.iter().any(|&t| t == Run::Unborn) {
                panic!("sched: not every participant attached");
            }
        }
        st.started = true;
        st.pick_next();
        self.core.cv.notify_all();
    }

    /// Disarms and returns the observed interleaving: the `(token,
    /// label)` sequence of every attach, yield point, park transition,
    /// and leave, in schedule order. Call after joining the threads.
    pub fn finish(&self) -> Vec<(usize, &'static str)> {
        ARMED.store(false, Ordering::SeqCst);
        self.trace()
    }

    /// The interleaving observed so far.
    pub fn trace(&self) -> Vec<(usize, &'static str)> {
        self.core.state.lock().unwrap().trace.clone()
    }
}

/// Ambient yield point. No-op unless a schedule is armed and the calling
/// thread is a registered participant. See the module docs for the
/// locking rule: never call while holding a lock another participant can
/// block on.
pub fn yield_point(label: &'static str) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let part = PARTICIPANT.with(|p| p.borrow().clone());
    if let Some((core, tok)) = part {
        core.yield_point(tok, label);
    }
}

/// Ambient pre-wait hook: the calling participant stops being runnable
/// and passes the turn on. Call immediately before a `Condvar` wait.
pub fn pre_park(label: &'static str) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let part = PARTICIPANT.with(|p| p.borrow().clone());
    if let Some((core, tok)) = part {
        let mut st = core.state.lock().unwrap();
        if !st.started {
            return;
        }
        st.threads[tok] = Run::Parked;
        st.trace.push((tok, label));
        if st.turn == Some(tok) || st.turn.is_none() {
            st.pick_next();
        }
        core.cv.notify_all();
    }
}

/// Ambient post-wait hook: re-joins the schedule after a `Condvar` wait
/// returned. Call only after releasing the lock the wait used.
pub fn post_park(label: &'static str) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let part = PARTICIPANT.with(|p| p.borrow().clone());
    if let Some((core, tok)) = part {
        {
            let mut st = core.state.lock().unwrap();
            if !st.started {
                return;
            }
            st.threads[tok] = Run::Runnable;
            st.trace.push((tok, label));
            if st.turn.is_none() {
                st.pick_next();
            }
            core.cv.notify_all();
        }
        core.wait_for_turn(tok, label);
    }
}

/// Ambient notifier hook: marks every parked participant runnable, at
/// the notifier's (deterministic) program point. Call right after
/// `Condvar::notify_all`/`notify_one` on the condition the participants
/// wait on.
pub fn wake_all() {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let part = PARTICIPANT.with(|p| p.borrow().clone());
    if let Some((core, _tok)) = part {
        let mut st = core.state.lock().unwrap();
        for t in st.threads.iter_mut() {
            if *t == Run::Parked {
                *t = Run::Runnable;
            }
        }
        if st.turn.is_none() {
            st.pick_next();
        }
        core.cv.notify_all();
    }
}

/// Whether a schedule is currently armed (used by blocking code to pick
/// a spin-with-yield wait over a real blocking wait while under test).
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The rig is process-global; unit tests here serialize on this.
    static RIG: StdMutex<()> = StdMutex::new(());

    fn interleave(seed: u64) -> Vec<(usize, &'static str)> {
        let _g = RIG.lock().unwrap_or_else(|e| e.into_inner());
        let sched = Schedule::new(seed, 2);
        let mk = |tok: usize, s: Schedule| {
            std::thread::spawn(move || {
                let _p = s.attach(tok);
                for _ in 0..4 {
                    yield_point("work");
                }
            })
        };
        let a = mk(0, sched.clone());
        let b = mk(1, sched.clone());
        sched.start();
        a.join().unwrap();
        b.join().unwrap();
        sched.finish()
    }

    #[test]
    fn same_seed_same_interleaving() {
        let x = interleave(7);
        let y = interleave(7);
        assert_eq!(x, y);
        // Both threads ran all their yield points.
        assert_eq!(x.iter().filter(|e| e.1 == "work").count(), 8);
    }

    #[test]
    fn seeds_permute_the_schedule() {
        let distinct: std::collections::HashSet<Vec<(usize, &'static str)>> =
            (0..16).map(interleave).collect();
        assert!(distinct.len() > 1, "16 seeds must produce >1 interleaving");
    }

    #[test]
    fn unregistered_threads_ignore_the_hooks() {
        // No schedule armed: all hooks are no-ops.
        yield_point("free");
        pre_park("free");
        post_park("free");
        wake_all();
        assert!(!armed());
    }

    #[test]
    fn park_wake_roundtrip() {
        let _g = RIG.lock().unwrap_or_else(|e| e.into_inner());
        let sched = Schedule::new(3, 2);
        let q: Arc<(StdMutex<Vec<u32>>, Condvar)> =
            Arc::new((StdMutex::new(Vec::new()), Condvar::new()));
        let consumer = {
            let (s, q) = (sched.clone(), Arc::clone(&q));
            std::thread::spawn(move || {
                let _p = s.attach(0);
                let item = loop {
                    let mut g = q.0.lock().unwrap();
                    if let Some(v) = g.pop() {
                        break v;
                    }
                    pre_park("consumer.park");
                    let g2 = q.1.wait(g).unwrap();
                    drop(g2);
                    post_park("consumer.wake");
                };
                assert_eq!(item, 99);
            })
        };
        let producer = {
            let (s, q) = (sched.clone(), Arc::clone(&q));
            std::thread::spawn(move || {
                let _p = s.attach(1);
                yield_point("producer.pre");
                q.0.lock().unwrap().push(99);
                q.1.notify_all();
                wake_all();
                yield_point("producer.post");
            })
        };
        sched.start();
        consumer.join().unwrap();
        producer.join().unwrap();
        sched.finish();
    }
}
