//! Integration tests for `tm-support` itself: the support crate is the
//! foundation the fuzzer, property suite, and bench harnesses stand on,
//! so its own guarantees (determinism, unbiased sampling, exact JSON
//! bytes, replayable failure reports) get direct coverage here.

use tm_support::bench::Runner;
use tm_support::prop::{self, Config};
use tm_support::{prop_assert, prop_assert_eq, Json, TmRng};

// ---------------------------------------------------------------- PRNG

#[test]
fn prng_identical_seeds_identical_streams() {
    for seed in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
        let mut a = TmRng::seed_from_u64(seed);
        let mut b = TmRng::seed_from_u64(seed);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed}");
        }
    }
}

#[test]
fn prng_different_seeds_differ() {
    let mut outputs = std::collections::HashSet::new();
    for seed in 0..64u64 {
        let mut rng = TmRng::seed_from_u64(seed);
        assert!(outputs.insert(rng.next_u64()), "seed {seed} collided");
    }
}

#[test]
fn prng_range_distribution_sanity() {
    // 16 buckets × 16k draws: each bucket expects 1000 hits; a fair
    // sampler stays well within ±20% (the binomial std-dev is ~31).
    let mut rng = TmRng::seed_from_u64(2026);
    let mut buckets = [0u32; 16];
    for _ in 0..16_000 {
        buckets[rng.gen_range(0usize..16)] += 1;
    }
    for (i, &count) in buckets.iter().enumerate() {
        assert!(
            (800..=1200).contains(&count),
            "bucket {i} wildly off: {count}/16000 (expected ~1000)"
        );
    }
}

#[test]
fn prng_float_range_distribution_sanity() {
    let mut rng = TmRng::seed_from_u64(7);
    let draws: Vec<f64> = (0..10_000).map(|_| rng.gen_range(-3.0..3.0)).collect();
    assert!(draws.iter().all(|d| (-3.0..3.0).contains(d)));
    let mean = draws.iter().sum::<f64>() / draws.len() as f64;
    assert!(mean.abs() < 0.1, "mean of uniform(-3,3) should be ~0, got {mean}");
    let below = draws.iter().filter(|d| **d < 0.0).count();
    assert!((4_500..=5_500).contains(&below), "sign split off: {below}/10000");
}

#[test]
fn prng_bool_probability() {
    let mut rng = TmRng::seed_from_u64(11);
    let hits = (0..10_000).filter(|_| rng.gen_bool(0.35)).count();
    assert!((3_000..=4_000).contains(&hits), "gen_bool(0.35) hit {hits}/10000");
}

// ---------------------------------------------------------------- JSON

#[test]
fn json_escaping_against_hand_written_strings() {
    let cases: &[(&str, &str)] = &[
        ("plain", r#""plain""#),
        ("quote\"backslash\\", r#""quote\"backslash\\""#),
        ("tab\tnewline\ncr\r", r#""tab\tnewline\ncr\r""#),
        ("nul\u{0}bell\u{7}", "\"nul\\u0000bell\\u0007\""),
        ("unicode: π ≈ 3.14159", r#""unicode: π ≈ 3.14159""#),
    ];
    for (input, expected) in cases {
        assert_eq!(&Json::from(*input).to_string(), expected, "input {input:?}");
    }
}

#[test]
fn json_numbers_round_trip_through_rust_parsing() {
    // No parser in-tree, but every emitted number must parse back to the
    // exact value with std's (round-trip-accurate) float parsing.
    for v in [0.0, 2.0, -2.5, 0.1, 1.0 / 3.0, 6.25e-4, 1.23456789e300] {
        let s = Json::Float(v).to_string();
        assert_eq!(s.parse::<f64>().expect(&s), v, "emitted {s}");
    }
    for v in [0i64, -1, i64::MIN, i64::MAX] {
        assert_eq!(Json::Int(v).to_string().parse::<i64>().unwrap(), v);
    }
}

#[test]
fn json_results_schema_shape() {
    // The shape `results_json` emits: object → programs array → per-
    // program objects. Guard the exact bytes of a miniature instance.
    let doc = Json::obj([
        ("repeats", Json::from(2u32)),
        (
            "programs",
            Json::Array(vec![Json::obj([
                ("name", Json::from("bitops-bitwise-and")),
                ("tracing_speedup", Json::from(5.5)),
                ("untraceable_by_design", Json::from(false)),
            ])]),
        ),
    ]);
    let expected = "{\n  \"repeats\": 2,\n  \"programs\": [\n    {\n      \
                    \"name\": \"bitops-bitwise-and\",\n      \
                    \"tracing_speedup\": 5.5,\n      \
                    \"untraceable_by_design\": false\n    }\n  ]\n}";
    assert_eq!(doc.to_string_pretty(), expected);
}

// ---------------------------------------------------- property harness

#[test]
fn meta_property_harness_reports_seeded_counterexample() {
    // A property that fails for ~5% of draws: the harness must find a
    // counterexample, and the report must carry the case seed in the
    // documented format.
    let cfg = Config::with_cases(1_000);
    let failure = prop::run(&cfg, |g| {
        let n = g.gen_range(0u32..100);
        prop_assert!(n < 95, "n = {n}");
        Ok(())
    })
    .expect_err("a >= 95 draw must occur within 1000 cases");

    assert!(failure.message.contains("n = 9"), "message: {}", failure.message);
    let report = failure.report("demo_property");
    assert!(report.contains("property `demo_property` failed at case"), "{report}");
    assert!(report.contains(&format!("case seed {:#x}", failure.seed)), "{report}");
    assert!(report.contains(&format!("TM_PROP_SEED={:#x}", failure.seed)), "{report}");

    // Replaying from the reported seed alone reproduces the exact draw.
    let mut replay = TmRng::seed_from_u64(failure.seed);
    let n = replay.gen_range(0u32..100);
    assert!(n >= 95, "replay drew {n}, expected the counterexample");
    assert!(failure.message.contains(&format!("n = {n}")));
}

#[test]
fn meta_property_harness_passes_clean_properties() {
    prop::check("wrapping_add_commutes", &Config::with_cases(128), |g| {
        let (a, b) = (g.next_u32(), g.next_u32());
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        Ok(())
    });
}

// ------------------------------------------------------- bench harness

#[test]
fn bench_runner_samples_and_orders() {
    let mut runner = Runner::with_config(1, 9);
    let stats = runner
        .bench("meta-spin", || {
            let mut acc = 0u64;
            for i in 0..2_000u64 {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            acc
        })
        .expect("unfiltered");
    assert_eq!(stats.samples.len(), 9);
    assert!(stats.min <= stats.median && stats.median <= stats.max);
    assert!(stats.min > std::time::Duration::ZERO);
}
