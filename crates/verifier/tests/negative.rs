//! Negative-path verifier tests: start from a known-good trace, apply one
//! hand-crafted mutation per test (drop a descriptor, swap an operand's
//! type, unbalance an exit's stack map, ...), and assert the verifier
//! rejects it with the *specific* [`VerifyError`] variant — not just any
//! error.

use tm_lir::{ArSlot, ExitId, Lir, LirTrace, LirType};
use tm_verifier::{verify_trace, ExitView, TypeClass, VerifyError};

/// A well-formed single-loop trace shaped like the paper's Figure 3:
/// import the counter, test it (leaving the Bool on an operand-stack
/// slot), guard, bump with an overflow check, store, loop.
///
/// AR layout: slot 0 = the counter (a local), slot 1 = operand-stack
/// entry `(depth 0, idx 0)`.
fn valid() -> (LirTrace, Vec<ExitView>, Vec<(ArSlot, LirType)>) {
    let trace = LirTrace {
        code: vec![
            /* 0 */ Lir::Import { slot: 0, ty: LirType::Int },
            /* 1 */ Lir::ConstI(10),
            /* 2 */ Lir::LtI(0, 1),
            /* 3 */ Lir::WriteAr { slot: 1, v: 2 },
            /* 4 */ Lir::GuardTrue(2, ExitId(0)),
            /* 5 */ Lir::ConstI(1),
            /* 6 */ Lir::AddIChk(0, 5, ExitId(1)),
            /* 7 */ Lir::WriteAr { slot: 0, v: 6 },
            /* 8 */ Lir::LoopBack(ExitId(2)),
        ],
        num_exits: 3,
    };
    // Exit 0 is taken mid-op with the comparison result still on the
    // operand stack; exits 1 and 2 are at stack depth 0.
    let guard_exit = ExitView {
        stack_depths: vec![1],
        stack_writes: vec![(0, 0)],
        write_back: vec![(0, LirType::Int), (1, LirType::Bool)],
        typemap: vec![(0, LirType::Int), (1, LirType::Bool)],
    };
    let bare_exit = ExitView {
        stack_depths: vec![0],
        stack_writes: vec![],
        write_back: vec![(0, LirType::Int)],
        typemap: vec![(0, LirType::Int)],
    };
    let exits = vec![guard_exit, bare_exit.clone(), bare_exit];
    (trace, exits, vec![(0, LirType::Int)])
}

#[test]
fn the_base_trace_is_valid() {
    let (t, e, entry) = valid();
    assert_eq!(verify_trace(&t, &e, &entry), Ok(()));
}

#[test]
fn dropping_an_exit_descriptor_is_a_count_mismatch() {
    let (t, mut e, entry) = valid();
    e.pop();
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::ExitCountMismatch { declared: 3, descriptors: 2 })
    );
}

#[test]
fn guard_referencing_an_undeclared_exit_is_missing() {
    let (mut t, mut e, entry) = valid();
    // Shrink the declared table consistently, leaving the LoopBack's
    // ExitId(2) dangling.
    t.num_exits = 2;
    e.pop();
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::MissingExit { at: 8, exit: 2 })
    );
}

#[test]
fn swapping_an_operand_to_double_is_a_type_mismatch() {
    let (mut t, e, entry) = valid();
    // The AddIChk increment becomes a double constant.
    t.code[5] = Lir::ConstD(0x3FF0000000000000);
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::TypeMismatch {
            at: 6,
            operand: 5,
            expected: TypeClass::IntWord,
            found: LirType::Double,
        })
    );
}

#[test]
fn removing_a_stack_write_unbalances_the_exit() {
    let (t, mut e, entry) = valid();
    // Exit 0 promises stack depth 1 but no longer writes the entry back.
    e[0].stack_writes.clear();
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::UnbalancedExitStack { exit: 0, depth: 0, idx: 0 })
    );
}

#[test]
fn forward_operand_reference_is_use_before_def() {
    let (mut t, e, entry) = valid();
    t.code[2] = Lir::LtI(0, 7);
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::UseBeforeDef { at: 2, operand: 7 })
    );
}

#[test]
fn consuming_a_store_is_use_of_non_value() {
    let (mut t, e, entry) = valid();
    // The guard's operand becomes the WriteAr at index 3, which produces
    // no SSA value.
    t.code[4] = Lir::GuardTrue(3, ExitId(0));
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::UseOfNonValue { at: 4, operand: 3 })
    );
}

#[test]
fn reimporting_a_slot_is_a_duplicate_import() {
    let (mut t, e, entry) = valid();
    t.code[5] = Lir::Import { slot: 0, ty: LirType::Int };
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::DuplicateImport { at: 5, slot: 0 })
    );
}

#[test]
fn import_disagreeing_with_the_entry_map_is_rejected() {
    let (mut t, e, entry) = valid();
    t.code[0] = Lir::Import { slot: 0, ty: LirType::Double };
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::ImportTypeMismatch {
            at: 0,
            slot: 0,
            imported: LirType::Double,
            entry: LirType::Int,
        })
    );
}

#[test]
fn exit_map_claiming_an_impossible_type_is_rejected() {
    let (t, mut e, entry) = valid();
    // Slot 0 only ever holds integers in this trace; an exit claiming it
    // boxes as a double would restore garbage.
    e[1].write_back[0] = (0, LirType::Double);
    e[1].typemap[0] = (0, LirType::Double);
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::ExitTypeMismatch { exit: 1, slot: 0, ty: LirType::Double })
    );
}

#[test]
fn write_back_outside_the_type_map_is_rejected() {
    let (t, mut e, entry) = valid();
    e[1].write_back.push((2, LirType::Int));
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::WriteBackNotInTypeMap { exit: 1, slot: 2 })
    );
}

#[test]
fn exit_without_frames_is_rejected() {
    let (t, mut e, entry) = valid();
    e[0].stack_depths.clear();
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::EmptyExitFrames { exit: 0 })
    );
}

#[test]
fn missing_terminator_is_rejected() {
    let (mut t, e, entry) = valid();
    t.code.pop();
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::BadTerminator { at: 7 })
    );
}

#[test]
fn mid_trace_terminator_is_rejected() {
    let (mut t, e, entry) = valid();
    t.code[4] = Lir::LoopBack(ExitId(0));
    assert_eq!(
        verify_trace(&t, &e, &entry),
        Err(VerifyError::BadTerminator { at: 4 })
    );
}

/// The recorder allocates exit snapshots eagerly, so descriptors with no
/// referencing instruction are legal — and exempt from map checks (dead
/// stores feeding only them are legitimately eliminated).
#[test]
fn unreferenced_exit_maps_are_not_checked() {
    let (mut t, mut e, entry) = valid();
    // Retarget the guard so descriptor 0 dangles, then corrupt it.
    t.code[4] = Lir::GuardTrue(2, ExitId(1));
    e[0].typemap = vec![(0, LirType::Object)];
    e[0].write_back = vec![(0, LirType::Object)];
    e[0].stack_writes.clear();
    e[0].stack_depths.clear();
    assert_eq!(verify_trace(&t, &e, &entry), Ok(()));
}

/// Boxed-word interchangeability: `null`/`undefined`/`Boxed` map entries
/// accept each other's values (they are one tagged-word class), but never
/// an unboxed integer.
#[test]
fn boxed_word_map_entries_interchange() {
    let trace = LirTrace {
        code: vec![
            Lir::ConstBoxed(7),
            Lir::WriteAr { slot: 0, v: 0 },
            Lir::End(ExitId(0)),
        ],
        num_exits: 1,
    };
    let mk = |ty| {
        vec![ExitView {
            stack_depths: vec![0],
            stack_writes: vec![],
            write_back: vec![(0, ty)],
            typemap: vec![(0, ty)],
        }]
    };
    assert_eq!(verify_trace(&trace, &mk(LirType::Null), &[]), Ok(()));
    assert_eq!(verify_trace(&trace, &mk(LirType::Undefined), &[]), Ok(()));
    assert_eq!(verify_trace(&trace, &mk(LirType::Boxed), &[]), Ok(()));
    assert_eq!(
        verify_trace(&trace, &mk(LirType::Int), &[]),
        Err(VerifyError::ExitTypeMismatch { exit: 0, slot: 0, ty: LirType::Int })
    );
}
