//! Structural verification of assembled (and peephole-fused) fragments.
//!
//! [`crate::verify::verify_trace`] checks the LIR before the backend runs;
//! this module re-checks the *output* of the backend — after register
//! allocation and after the superinstruction pass — so a fusion bug is
//! caught as a structured error instead of executed as garbage:
//!
//! * every register operand is in `0..NREGS` (the executor masks indexes,
//!   so an out-of-range register would silently alias another);
//! * every spill-slot reference is below `num_spills`, and every reload
//!   reads a slot some earlier instruction stored;
//! * every exit id (including the fused forms' second, loop-edge exit) has
//!   an entry in the exit-target table;
//! * the fragment ends with exactly one terminator (`LoopBack`, `End`, or
//!   a fused loop-edge compare-branch), and none appears earlier;
//! * the decoded `stitch` table mirrors `exit_targets` entry for entry.

use tm_nanojit::machinst::{ExitTarget, Fragment, MachInst, EXIT_UNSTITCHED, NREGS};

/// A structural violation in a compiled fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentError {
    /// A register operand is outside `0..NREGS`.
    RegOutOfRange {
        /// Instruction index.
        pc: usize,
        /// The offending register.
        reg: u8,
    },
    /// A spill-slot index is `>= num_spills`.
    SpillOutOfRange {
        /// Instruction index.
        pc: usize,
        /// The offending slot.
        slot: u16,
    },
    /// A `LoadSpill` reads a slot no earlier `StoreSpill` wrote.
    SpillReadBeforeWrite {
        /// Instruction index.
        pc: usize,
        /// The offending slot.
        slot: u16,
    },
    /// An exit id has no entry in the exit-target table.
    ExitOutOfRange {
        /// Instruction index.
        pc: usize,
        /// The offending exit id.
        exit: u16,
    },
    /// A terminator instruction appears before the last position.
    TerminatorNotLast {
        /// Instruction index.
        pc: usize,
    },
    /// The fragment does not end with a terminator (or is empty).
    MissingTerminator,
    /// `stitch[exit]` disagrees with `exit_targets[exit]`.
    StitchTableMismatch {
        /// The inconsistent exit id.
        exit: u16,
    },
    /// `stitch` and `exit_targets` have different lengths.
    StitchTableLength {
        /// `exit_targets.len()`.
        targets: usize,
        /// `stitch.len()`.
        stitch: usize,
    },
    /// A stitched exit targets a fragment index outside the tree (only
    /// reachable through [`verify_loaded_fragments`]; in-process stitching
    /// always targets an installed fragment).
    StitchTargetOutOfRange {
        /// Fragment the exit belongs to.
        fragment: usize,
        /// The offending exit id.
        exit: u16,
        /// The out-of-range target fragment index.
        target: u32,
    },
}

impl std::fmt::Display for FragmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FragmentError::RegOutOfRange { pc, reg } => {
                write!(f, "pc {pc}: register r{reg} out of range (NREGS = {NREGS})")
            }
            FragmentError::SpillOutOfRange { pc, slot } => {
                write!(f, "pc {pc}: spill slot {slot} >= num_spills")
            }
            FragmentError::SpillReadBeforeWrite { pc, slot } => {
                write!(f, "pc {pc}: reload of spill slot {slot} before any store")
            }
            FragmentError::ExitOutOfRange { pc, exit } => {
                write!(f, "pc {pc}: exit {exit} has no exit-target entry")
            }
            FragmentError::TerminatorNotLast { pc } => {
                write!(f, "pc {pc}: terminator before the end of the fragment")
            }
            FragmentError::MissingTerminator => {
                write!(f, "fragment does not end with a terminator")
            }
            FragmentError::StitchTableMismatch { exit } => {
                write!(f, "stitch table disagrees with exit_targets at exit {exit}")
            }
            FragmentError::StitchTableLength { targets, stitch } => {
                write!(f, "stitch table length {stitch} != exit_targets length {targets}")
            }
            FragmentError::StitchTargetOutOfRange { fragment, exit, target } => {
                write!(
                    f,
                    "fragment {fragment} exit {exit}: stitch target {target} outside the tree"
                )
            }
        }
    }
}

/// Verifies the structural invariants of a compiled fragment.
///
/// # Errors
///
/// Returns the first [`FragmentError`] found, scanning in program order.
pub fn verify_fragment(frag: &Fragment) -> Result<(), FragmentError> {
    if frag.stitch.len() != frag.exit_targets.len() {
        return Err(FragmentError::StitchTableLength {
            targets: frag.exit_targets.len(),
            stitch: frag.stitch.len(),
        });
    }
    for (e, target) in frag.exit_targets.iter().enumerate() {
        let want = match target {
            ExitTarget::Return => EXIT_UNSTITCHED,
            ExitTarget::Fragment(idx) => *idx,
        };
        if frag.stitch[e] != want {
            return Err(FragmentError::StitchTableMismatch { exit: e as u16 });
        }
    }

    let mut stored_spills = vec![false; frag.num_spills as usize];
    let last = frag.code.len().checked_sub(1);
    for (pc, inst) in frag.code.iter().enumerate() {
        let mut bad_reg = None;
        inst.for_each_src(|s| {
            if (s as usize) >= NREGS {
                bad_reg.get_or_insert(s);
            }
        });
        if let Some(d) = inst.dest() {
            if (d as usize) >= NREGS {
                bad_reg.get_or_insert(d);
            }
        }
        if let Some(reg) = bad_reg {
            return Err(FragmentError::RegOutOfRange { pc, reg });
        }

        match *inst {
            MachInst::StoreSpill { slot, .. } => {
                if slot >= frag.num_spills {
                    return Err(FragmentError::SpillOutOfRange { pc, slot });
                }
                stored_spills[slot as usize] = true;
            }
            MachInst::LoadSpill { slot, .. } => {
                if slot >= frag.num_spills {
                    return Err(FragmentError::SpillOutOfRange { pc, slot });
                }
                if !stored_spills[slot as usize] {
                    return Err(FragmentError::SpillReadBeforeWrite { pc, slot });
                }
            }
            _ => {}
        }

        let mut bad_exit = None;
        inst.for_each_exit(|e| {
            if (e as usize) >= frag.exit_targets.len() {
                bad_exit.get_or_insert(e);
            }
        });
        if let Some(exit) = bad_exit {
            return Err(FragmentError::ExitOutOfRange { pc, exit });
        }

        if inst.is_terminator() && Some(pc) != last {
            return Err(FragmentError::TerminatorNotLast { pc });
        }
    }
    match frag.code.last() {
        Some(inst) if inst.is_terminator() => Ok(()),
        _ => Err(FragmentError::MissingTerminator),
    }
}

/// Verifies a whole tree of fragments loaded from the persistent trace
/// cache: every fragment passes [`verify_fragment`], and every stitched
/// exit targets a fragment inside the tree. This is the **mandatory**
/// gate between deserialization and installation (`docs/PERSISTENCE.md`
/// §5) — in-process compilation establishes these invariants by
/// construction, but bytes from disk prove nothing until checked.
///
/// # Errors
///
/// Returns the offending fragment's index and the first [`FragmentError`]
/// found in it.
pub fn verify_loaded_fragments(fragments: &[Fragment]) -> Result<(), (usize, FragmentError)> {
    for (i, frag) in fragments.iter().enumerate() {
        verify_fragment(frag).map_err(|e| (i, e))?;
        for (e, target) in frag.exit_targets.iter().enumerate() {
            if let ExitTarget::Fragment(idx) = *target {
                if idx as usize >= fragments.len() {
                    return Err((
                        i,
                        FragmentError::StitchTargetOutOfRange {
                            fragment: i,
                            exit: e as u16,
                            target: idx,
                        },
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_nanojit::machinst::MachInst::*;

    fn ok_frag() -> Fragment {
        Fragment::new(
            vec![
                ReadAr { d: 0, slot: 0 },
                StoreSpill { slot: 0, s: 0 },
                LoadSpill { d: 1, slot: 0 },
                WriteAr { slot: 1, s: 1 },
                End { exit: 0 },
            ],
            1,
            1,
        )
    }

    #[test]
    fn accepts_well_formed_fragment() {
        assert_eq!(verify_fragment(&ok_frag()), Ok(()));
    }

    #[test]
    fn accepts_fused_terminator() {
        let frag = Fragment::new(
            vec![
                ReadAr { d: 0, slot: 0 },
                ReadAr { d: 1, slot: 1 },
                CmpBranchLoopI {
                    op: tm_lir::CmpOp::Lt,
                    want: true,
                    a: 0,
                    b: 1,
                    exit: 0,
                    loop_exit: 1,
                },
            ],
            0,
            2,
        );
        assert_eq!(verify_fragment(&frag), Ok(()));
    }

    #[test]
    fn accepts_extended_superinstruction_forms() {
        // One of each new PR-5 fused shape, ending in the fused loop
        // tail; all registers, slots, and exits in range.
        let frag = Fragment::new(
            vec![
                MovAr { d: 0, src: 0, dst: 1 },
                ConstWrAr { d: 1, w: 7, slot: 2 },
                CmpImmWrBranchI {
                    op: tm_lir::CmpOp::Lt,
                    want: true,
                    d: 2,
                    a: 0,
                    imm: 500,
                    slot: 3,
                    exit: 0,
                },
                AluArWrI { op: tm_lir::AluOp::Xor, d: 2, slot_a: 1, b: 1, slot_d: 4 },
                WriteAr3 { slot_a: 5, s_a: 0, slot_b: 6, s_b: 1, slot_c: 7, s_c: 2 },
                ChkAluImmWrLoopI {
                    op: tm_lir::ChkOp::Add,
                    d: 2,
                    a: 0,
                    imm: 1,
                    slot: 0,
                    exit: 1,
                    loop_exit: 2,
                },
            ],
            0,
            3,
        );
        assert_eq!(verify_fragment(&frag), Ok(()));
    }

    #[test]
    fn rejects_fused_loop_tail_with_bad_loop_exit() {
        // The fused loop tail's *second* exit must be range-checked, and
        // it is a terminator: nothing may follow it.
        let frag = Fragment::new(
            vec![ChkAluImmWrLoopI {
                op: tm_lir::ChkOp::Add,
                d: 0,
                a: 0,
                imm: 1,
                slot: 0,
                exit: 0,
                loop_exit: 9,
            }],
            0,
            2,
        );
        assert!(matches!(
            verify_fragment(&frag),
            Err(FragmentError::ExitOutOfRange { exit: 9, .. })
        ));

        let frag = Fragment::new(
            vec![
                ChkAluImmWrLoopI {
                    op: tm_lir::ChkOp::Add,
                    d: 0,
                    a: 0,
                    imm: 1,
                    slot: 0,
                    exit: 0,
                    loop_exit: 1,
                },
                End { exit: 0 },
            ],
            0,
            2,
        );
        assert!(matches!(
            verify_fragment(&frag),
            Err(FragmentError::TerminatorNotLast { pc: 0 })
        ));
    }

    #[test]
    fn rejects_out_of_range_register_in_grouped_store() {
        let frag = Fragment::new(
            vec![
                WriteAr2 { slot_a: 0, s_a: 0, slot_b: 1, s_b: NREGS as u8 },
                End { exit: 0 },
            ],
            0,
            1,
        );
        assert!(matches!(
            verify_fragment(&frag),
            Err(FragmentError::RegOutOfRange { pc: 0, .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut frag = ok_frag();
        frag.code[0] = ReadAr { d: NREGS as u8, slot: 0 };
        assert!(matches!(
            verify_fragment(&frag),
            Err(FragmentError::RegOutOfRange { pc: 0, .. })
        ));
    }

    #[test]
    fn rejects_unstored_spill_reload() {
        let mut frag = ok_frag();
        frag.code.remove(1);
        assert!(matches!(
            verify_fragment(&frag),
            Err(FragmentError::SpillReadBeforeWrite { slot: 0, .. })
        ));
    }

    #[test]
    fn rejects_exit_without_target_entry() {
        let mut frag = ok_frag();
        frag.code[4] = End { exit: 3 };
        assert!(matches!(
            verify_fragment(&frag),
            Err(FragmentError::ExitOutOfRange { exit: 3, .. })
        ));
    }

    #[test]
    fn rejects_loop_edge_exit_without_target_entry() {
        // The fused triple's *second* exit must be range-checked too.
        let frag = Fragment::new(
            vec![CmpBranchLoopI {
                op: tm_lir::CmpOp::Lt,
                want: true,
                a: 0,
                b: 1,
                exit: 0,
                loop_exit: 5,
            }],
            0,
            2,
        );
        assert!(matches!(
            verify_fragment(&frag),
            Err(FragmentError::ExitOutOfRange { exit: 5, .. })
        ));
    }

    #[test]
    fn rejects_mid_fragment_terminator() {
        let mut frag = ok_frag();
        frag.code[1] = End { exit: 0 };
        assert!(matches!(
            verify_fragment(&frag),
            Err(FragmentError::TerminatorNotLast { pc: 1 })
        ));
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut frag = ok_frag();
        frag.code.pop();
        assert_eq!(verify_fragment(&frag), Err(FragmentError::MissingTerminator));
    }

    #[test]
    fn loaded_tree_rejects_out_of_range_stitch_target() {
        let mut a = ok_frag();
        let b = ok_frag();
        assert_eq!(verify_loaded_fragments(&[a.clone(), b.clone()]), Ok(()));

        // Stitch into fragment 1: fine in a two-fragment tree...
        a.set_exit_target(0, ExitTarget::Fragment(1));
        assert_eq!(verify_loaded_fragments(&[a.clone(), b]), Ok(()));
        // ...fatal when the tree has only the one fragment.
        assert!(matches!(
            verify_loaded_fragments(&[a]),
            Err((0, FragmentError::StitchTargetOutOfRange { exit: 0, target: 1, .. }))
        ));
    }

    #[test]
    fn loaded_tree_reports_offending_fragment_index() {
        let mut bad = ok_frag();
        bad.code.pop();
        assert_eq!(
            verify_loaded_fragments(&[ok_frag(), bad]),
            Err((1, FragmentError::MissingTerminator))
        );
    }

    #[test]
    fn rejects_desynced_stitch_table() {
        let mut frag = ok_frag();
        // Bypassing set_exit_target leaves the decoded table stale.
        frag.exit_targets[0] = ExitTarget::Fragment(1);
        assert_eq!(
            verify_fragment(&frag),
            Err(FragmentError::StitchTableMismatch { exit: 0 })
        );
        frag.set_exit_target(0, ExitTarget::Fragment(1));
        assert_eq!(verify_fragment(&frag), Ok(()));
    }
}
