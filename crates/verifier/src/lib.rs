//! Static trace verification and failing-program reduction.
//!
//! A recorded trace is a linear SSA program whose only control flow is
//! guards, so its correctness conditions are local and checkable (Dissegna
//! et al. model tracing-JIT soundness exactly this way): every use is
//! dominated by its definition, every operand type matches what the
//! operation consumes, every referenced side exit has a descriptor, and
//! every exit's write-back map covers the operand-stack state it promises
//! to restore. [`verify_trace`] checks all of that before a trace is handed
//! to the backend; a violation is reported as a structured [`VerifyError`]
//! instead of compiled into garbage. [`verify_fragment`] re-checks the
//! backend's *output* — register ranges, spill discipline, exit tables,
//! terminator placement — after register allocation and superinstruction
//! fusion.
//!
//! The companion [`reduce`] module shrinks failing guest programs (found by
//! the differential fuzzer or by a verifier rejection) to minimal
//! regression tests via delta debugging.

#![warn(missing_docs)]

pub mod fragment;
pub mod reduce;
pub mod verify;

pub use fragment::{verify_fragment, verify_loaded_fragments, FragmentError};
pub use reduce::{as_regression_test, reduce_program, ReduceStats};
pub use verify::{verify_trace, ExitView, TypeClass, VerifyError};
