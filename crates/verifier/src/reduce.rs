//! Delta-debugging reduction of failing guest programs.
//!
//! When the differential fuzzer (or a verifier rejection) flags a
//! generated program, the raw reproducer is a page of random statements.
//! [`reduce_program`] shrinks it while a caller-supplied predicate keeps
//! reporting "still fails":
//!
//! 1. **Statement level** — the program is split into brace-balanced
//!    chunks (a simple statement line, or a `for`/`if` header through its
//!    matching close brace). Each pass tries deleting every chunk and
//!    unwrapping every block (replacing `hdr { body }` with `body`),
//!    keeping any change that preserves the failure, until a fixpoint.
//! 2. **Expression level** — within the surviving lines, parenthesized
//!    binary expressions `((a) op (b))` are replaced by either operand,
//!    and numeric literals are replaced by `0`; again to fixpoint.
//!
//! The result is emitted as a ready-to-paste regression test by
//! [`as_regression_test`].

/// Counters describing one reduction run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReduceStats {
    /// Times the predicate was invoked.
    pub probes: u32,
    /// Candidate edits that preserved the failure.
    pub accepted: u32,
    /// Source lines in / out.
    pub lines_in: u32,
    /// Source lines in the reduced program.
    pub lines_out: u32,
}

/// One brace-balanced region of the program: `[start, end)` line range.
/// For a block chunk, `body` is the inner line range (header and closing
/// brace excluded).
struct Chunk {
    start: usize,
    end: usize,
    body: Option<(usize, usize)>,
}

/// Splits `lines[from..to]` into top-level chunks by brace balance.
fn chunks(lines: &[String], from: usize, to: usize) -> Vec<Chunk> {
    let mut out = Vec::new();
    let mut i = from;
    while i < to {
        let opens = lines[i].matches('{').count() as i32 - lines[i].matches('}').count() as i32;
        if opens <= 0 {
            out.push(Chunk { start: i, end: i + 1, body: None });
            i += 1;
            continue;
        }
        // Scan forward for the line that rebalances the braces.
        let mut depth = opens;
        let mut j = i + 1;
        while j < to && depth > 0 {
            depth += lines[j].matches('{').count() as i32;
            depth -= lines[j].matches('}').count() as i32;
            j += 1;
        }
        out.push(Chunk { start: i, end: j, body: Some((i + 1, j.saturating_sub(1))) });
        i = j;
    }
    out
}

/// Tries removing/unwrapping statement chunks until no edit survives.
fn shrink_statements(
    lines: &mut Vec<String>,
    fails: &mut dyn FnMut(&str) -> bool,
    stats: &mut ReduceStats,
) {
    loop {
        let mut changed = false;
        // Collect candidate edits against the current line list; apply the
        // first that survives, then rescan (line indices shift).
        let mut i = 0;
        while i < lines.len() {
            let cs = chunks(lines, 0, lines.len());
            let Some(c) = cs.into_iter().find(|c| c.start >= i) else { break };
            i = c.start + 1;

            // Candidate A: delete the chunk entirely.
            let mut without: Vec<String> = Vec::with_capacity(lines.len());
            without.extend_from_slice(&lines[..c.start]);
            without.extend_from_slice(&lines[c.end..]);
            stats.probes += 1;
            if fails(&without.join("\n")) {
                *lines = without;
                stats.accepted += 1;
                changed = true;
                i = c.start;
                continue;
            }
            // Candidate B: unwrap a block — keep the body, drop the
            // header and closing brace (an `else` arm, if present, goes
            // with the header's chunk and is dropped too).
            if let Some((bs, be)) = c.body {
                if bs < be {
                    let mut unwrapped: Vec<String> = Vec::with_capacity(lines.len());
                    unwrapped.extend_from_slice(&lines[..c.start]);
                    unwrapped.extend_from_slice(&lines[bs..be]);
                    unwrapped.extend_from_slice(&lines[c.end..]);
                    stats.probes += 1;
                    if fails(&unwrapped.join("\n")) {
                        *lines = unwrapped;
                        stats.accepted += 1;
                        changed = true;
                        i = c.start;
                    }
                }
            }
        }
        if !changed {
            return;
        }
    }
}

/// Finds the extent of the parenthesized group starting at byte `open`
/// (which must be `(`), returning the index of its matching `)`.
fn match_paren(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Expression-level candidates for one line: for every group `(X)`, a
/// rewrite of the line with the group replaced by `X` stripped of one
/// paren layer, plus literal-to-`0` rewrites.
fn expr_candidates(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    for open in 0..bytes.len() {
        if bytes[open] != b'(' {
            continue;
        }
        let Some(close) = match_paren(bytes, open) else { continue };
        let inner = &line[open + 1..close];
        // Replacing `(X)` by `X` is safe only when X itself stays
        // self-delimiting; restrict to inner groups `( ... )`.
        if inner.starts_with('(') && inner.ends_with(')') {
            // `((a) op (b))` → try each operand.
            if let Some(a_close) = match_paren(inner.as_bytes(), 0) {
                let rest = inner[a_close + 1..].trim_start();
                if let Some(bpos) = rest.find('(') {
                    let b = &rest[bpos..];
                    if match_paren(b.as_bytes(), 0) == Some(b.len() - 1) {
                        let a = &inner[..=a_close];
                        out.push(format!("{}{}{}", &line[..open], a, &line[close + 1..]));
                        out.push(format!("{}{}{}", &line[..open], b, &line[close + 1..]));
                    }
                }
            }
        }
        // `(lit)` or a lone group → try collapsing to `0`.
        out.push(format!("{}0{}", &line[..open], &line[close + 1..]));
    }
    // Multi-digit literals → `0`.
    let mut k = 0;
    while k < bytes.len() {
        if bytes[k].is_ascii_digit() {
            let mut j = k;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
                j += 1;
            }
            if j - k > 1 {
                out.push(format!("{}0{}", &line[..k], &line[j..]));
            }
            k = j;
        } else {
            k += 1;
        }
    }
    out
}

/// Tries expression-level rewrites line by line until a fixpoint.
fn shrink_expressions(
    lines: &mut [String],
    fails: &mut dyn FnMut(&str) -> bool,
    stats: &mut ReduceStats,
) {
    loop {
        let mut changed = false;
        for i in 0..lines.len() {
            let mut progressed = true;
            while progressed {
                progressed = false;
                for cand in expr_candidates(&lines[i]) {
                    if cand.len() >= lines[i].len() {
                        continue;
                    }
                    let prev = std::mem::replace(&mut lines[i], cand);
                    stats.probes += 1;
                    if fails(&lines.join("\n")) {
                        stats.accepted += 1;
                        progressed = true;
                        changed = true;
                        break;
                    }
                    lines[i] = prev;
                }
            }
        }
        if !changed {
            return;
        }
    }
}

/// Shrinks `src` while `fails` keeps returning `true` for the candidate.
///
/// `fails` must return `true` for `src` itself (the caller should check
/// before reducing); candidates that no longer fail are discarded. The
/// returned program is 1-minimal with respect to the edit set: no single
/// chunk deletion, block unwrap, or expression rewrite preserves the
/// failure.
pub fn reduce_program(src: &str, mut fails: impl FnMut(&str) -> bool) -> (String, ReduceStats) {
    let mut stats = ReduceStats::default();
    let mut lines: Vec<String> = src
        .lines()
        .map(|l| l.trim_end().to_string())
        .filter(|l| !l.trim().is_empty())
        .collect();
    stats.lines_in = lines.len() as u32;
    shrink_statements(&mut lines, &mut fails, &mut stats);
    shrink_expressions(&mut lines, &mut fails, &mut stats);
    // Expression rewrites can turn statements into dead weight (`0;`);
    // one more statement pass mops those up.
    shrink_statements(&mut lines, &mut fails, &mut stats);
    stats.lines_out = lines.len() as u32;
    (lines.join("\n"), stats)
}

/// Formats a reduced program as a ready-to-paste differential regression
/// test (a Rust `#[test]` body comparing all engines on the program).
pub fn as_regression_test(name: &str, src: &str) -> String {
    let mut out = String::new();
    out.push_str("#[test]\n");
    out.push_str(&format!("fn {name}() {{\n"));
    out.push_str("    let src = \"\\\n");
    for line in src.lines() {
        out.push_str("        ");
        out.push_str(&line.replace('\\', "\\\\").replace('"', "\\\""));
        out.push_str("\\n\\\n");
    }
    out.push_str("    \";\n");
    out.push_str("    assert_engines_agree(src);\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_respects_braces() {
        let lines: Vec<String> = ["var a = 1;", "for (;;) {", "a = 2;", "}", "a;"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cs = chunks(&lines, 0, lines.len());
        assert_eq!(cs.len(), 3);
        assert_eq!((cs[1].start, cs[1].end), (1, 4));
        assert_eq!(cs[1].body, Some((2, 3)));
    }

    #[test]
    fn removes_irrelevant_statements() {
        let src = "var a = 1;\nvar b = 2;\nneedle;\nvar c = 3;";
        let (out, stats) = reduce_program(src, |s| s.contains("needle"));
        assert_eq!(out, "needle;");
        assert_eq!(stats.lines_out, 1);
        assert!(stats.probes > 0);
    }

    #[test]
    fn unwraps_blocks_around_the_needle() {
        let src = "var a = 1;\nfor (var i = 0; i < 3; i++) {\nneedle;\n}\na;";
        let (out, _) = reduce_program(src, |s| s.contains("needle"));
        assert_eq!(out, "needle;");
    }

    #[test]
    fn shrinks_binary_expressions() {
        let src = "var a = ((7) + ((needle) * (3)));";
        let (out, _) = reduce_program(src, |s| s.contains("needle"));
        assert!(out.len() < src.len(), "{out}");
        assert!(out.contains("needle"), "{out}");
        assert!(!out.contains('7'), "{out}");
    }

    #[test]
    fn regression_test_formatting() {
        let t = as_regression_test("repro_1", "var a = 1;\na;");
        assert!(t.contains("fn repro_1()"), "{t}");
        assert!(t.contains("var a = 1;"), "{t}");
        assert!(t.contains("assert_engines_agree"), "{t}");
    }
}
