//! The trace verifier: static well-formedness checks over recorded LIR.
//!
//! Four families of checks, mirroring the invariants the recorder is
//! supposed to establish and the executor relies on:
//!
//! 1. **SSA shape** — the trace is linear, so "defs dominate uses" is just
//!    `operand < self`; operands must also name value-producing
//!    instructions (stores/guards define nothing).
//! 2. **Operand types** — each operation consumes specific [`TypeClass`]es
//!    (integer words, doubles, object handles, boxed words, ...); the
//!    class system admits the recorder's word-level conventions, e.g.
//!    booleans are 0/1 words and feed integer arithmetic after `ToNumber`.
//! 3. **Exit table** — every referenced [`ExitId`] has a descriptor, the
//!    declared exit count matches the table, and the trace ends in exactly
//!    one terminator (`LoopBack`/`End`).
//! 4. **Exit maps** — for each exit, the write-back map must cover every
//!    live operand-stack entry of every frame (the restore path panics on
//!    a missing entry), write-back entries must be covered by the exit's
//!    type map, and map types must be consistent with the types the trace
//!    (or its entry map) actually puts in those activation-record slots.

use tm_lir::{ArSlot, Lir, LirId, LirTrace, LirType, NO_EXIT};

/// What an operand position accepts. Coarser than [`LirType`] because the
/// recorder works on raw words: a `Bool` is a 0/1 word and is valid
/// integer-arithmetic input, `null`/`undefined` values are materialized as
/// boxed-word constants, and object handles compare with integer equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeClass {
    /// A 32-bit integer word: `Int` or `Bool`.
    IntWord,
    /// An IEEE-754 double.
    Double,
    /// A boolean (guard and logic inputs).
    Bool,
    /// An object handle.
    Object,
    /// A string handle.
    String,
    /// A raw tagged value word: `Boxed`, `Null`, or `Undefined`.
    BoxedWord,
    /// Integer-comparable word: `IntWord` plus object handles (identity
    /// comparison via `EqI`).
    EqWord,
    /// Any value (helper-call arguments, raw AR stores).
    Any,
}

impl TypeClass {
    /// Whether a value of LIR type `ty` is acceptable in this position.
    pub fn admits(self, ty: LirType) -> bool {
        use LirType::*;
        match self {
            TypeClass::IntWord => matches!(ty, Int | Bool),
            TypeClass::Double => ty == Double,
            TypeClass::Bool => ty == Bool,
            TypeClass::Object => ty == Object,
            TypeClass::String => ty == String,
            TypeClass::BoxedWord => matches!(ty, Boxed | Null | Undefined),
            TypeClass::EqWord => matches!(ty, Int | Bool | Object),
            TypeClass::Any => true,
        }
    }
}

/// A caller-assembled view of one side exit's restoration metadata. The
/// full descriptor lives with the tracer (it names interpreter locations);
/// the verifier only needs the shape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExitView {
    /// Operand-stack depth of each interpreter frame at this exit
    /// (index 0 = the trace entry frame). Must be non-empty.
    pub stack_depths: Vec<u16>,
    /// `(frame depth, stack index)` pairs covered by the exit's write-back
    /// map — the operand-stack entries the monitor can restore.
    pub stack_writes: Vec<(u8, u16)>,
    /// `(AR slot, boxing type)` of every write-back entry.
    pub write_back: Vec<(ArSlot, LirType)>,
    /// `(AR slot, observed type)` of every type-map entry.
    pub typemap: Vec<(ArSlot, LirType)>,
}

/// A structural defect found in a recorded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyError {
    /// Instruction `at` uses `operand`, which is not defined before it in
    /// the linear trace (SSA defs must dominate uses).
    UseBeforeDef {
        /// Offending instruction index.
        at: LirId,
        /// The out-of-order (or out-of-range) operand id.
        operand: LirId,
    },
    /// Instruction `at` uses `operand`, but that instruction produces no
    /// SSA value (it is a store, guard, or trace end).
    UseOfNonValue {
        /// Offending instruction index.
        at: LirId,
        /// The value-less operand id.
        operand: LirId,
    },
    /// An operand's type does not match what the operation consumes.
    TypeMismatch {
        /// Offending instruction index.
        at: LirId,
        /// The ill-typed operand id.
        operand: LirId,
        /// What the operand position accepts.
        expected: TypeClass,
        /// The operand's actual LIR type.
        found: LirType,
    },
    /// Instruction `at` references side exit `exit`, which has no
    /// descriptor in the exit table.
    MissingExit {
        /// Offending instruction index.
        at: LirId,
        /// The dangling exit id.
        exit: u16,
    },
    /// The trace's declared exit count disagrees with the descriptor table.
    ExitCountMismatch {
        /// `LirTrace::num_exits`.
        declared: u16,
        /// Descriptors actually supplied.
        descriptors: u16,
    },
    /// The trace does not end in a single `LoopBack`/`End` terminator (a
    /// terminator is missing, or appears before the last instruction).
    BadTerminator {
        /// Index where the malformation was detected.
        at: LirId,
    },
    /// An exit descriptor has no frames (state restoration needs at least
    /// the entry frame).
    EmptyExitFrames {
        /// The defective exit id.
        exit: u16,
    },
    /// An exit's write-back map does not cover a live operand-stack entry;
    /// restoring interpreter state through this exit would fail.
    UnbalancedExitStack {
        /// The defective exit id.
        exit: u16,
        /// Frame depth of the uncovered entry.
        depth: u8,
        /// Stack index of the uncovered entry.
        idx: u16,
    },
    /// A write-back entry's slot/type is absent from the exit's type map
    /// (the type map must describe everything the exit restores).
    WriteBackNotInTypeMap {
        /// The defective exit id.
        exit: u16,
        /// The uncovered AR slot.
        slot: ArSlot,
    },
    /// An exit map claims a type for an AR slot that is inconsistent with
    /// every value the trace (or its entry map) puts in that slot.
    ExitTypeMismatch {
        /// The defective exit id.
        exit: u16,
        /// The inconsistent AR slot.
        slot: ArSlot,
        /// The type the exit map claims.
        ty: LirType,
    },
    /// An `Import` reads an AR slot at a type different from the entry
    /// map's type for that slot.
    ImportTypeMismatch {
        /// Offending instruction index.
        at: LirId,
        /// The imported AR slot.
        slot: ArSlot,
        /// The import's declared type.
        imported: LirType,
        /// The entry map's type.
        entry: LirType,
    },
    /// The same AR slot is imported twice (each slot has exactly one
    /// entry read — the trace's φ-node).
    DuplicateImport {
        /// Offending instruction index.
        at: LirId,
        /// The re-imported AR slot.
        slot: ArSlot,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use VerifyError::*;
        match *self {
            UseBeforeDef { at, operand } => {
                write!(f, "instruction {at} uses operand {operand} before its definition")
            }
            UseOfNonValue { at, operand } => {
                write!(f, "instruction {at} uses operand {operand}, which produces no value")
            }
            TypeMismatch { at, operand, expected, found } => write!(
                f,
                "instruction {at}: operand {operand} has type {found:?}, expected {expected:?}"
            ),
            MissingExit { at, exit } => {
                write!(f, "instruction {at} references exit {exit}, which has no descriptor")
            }
            ExitCountMismatch { declared, descriptors } => write!(
                f,
                "trace declares {declared} exits but {descriptors} descriptors were supplied"
            ),
            BadTerminator { at } => {
                write!(f, "trace terminator malformed at instruction {at}")
            }
            EmptyExitFrames { exit } => write!(f, "exit {exit} has no frames"),
            UnbalancedExitStack { exit, depth, idx } => write!(
                f,
                "exit {exit} does not write back stack entry {idx} of frame {depth}"
            ),
            WriteBackNotInTypeMap { exit, slot } => write!(
                f,
                "exit {exit} writes back AR slot {slot} absent from its type map"
            ),
            ExitTypeMismatch { exit, slot, ty } => write!(
                f,
                "exit {exit} maps AR slot {slot} as {ty:?}, inconsistent with the trace"
            ),
            ImportTypeMismatch { at, slot, imported, entry } => write!(
                f,
                "instruction {at} imports slot {slot} as {imported:?}, entry map says {entry:?}"
            ),
            DuplicateImport { at, slot } => {
                write!(f, "instruction {at} imports AR slot {slot} a second time")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Whether an exit map claiming `map_ty` for a slot is consistent with the
/// slot holding an SSA value of LIR type `lir_ty`.
///
/// `Int` and `Bool` are one word class in both directions: the recorder
/// labels 0/1 integer words (e.g. the `OrI` that truthiness tests compile
/// to) as boolean shadow values and feeds booleans to integer arithmetic
/// after `ToNumber`, so either label may back either map type. The three
/// boxed-word types are likewise interchangeable at the word level
/// (`null`/`undefined` constants are materialized as `ConstBoxed`).
fn map_compatible(map_ty: LirType, lir_ty: LirType) -> bool {
    use LirType::*;
    map_ty == lir_ty
        || (matches!(map_ty, Int | Bool) && matches!(lir_ty, Int | Bool))
        || (matches!(map_ty, Boxed | Null | Undefined)
            && matches!(lir_ty, Boxed | Null | Undefined))
}

/// The type class each operand position of `op` consumes, in
/// [`Lir::operands`] order.
fn operand_classes(op: &Lir, out: &mut Vec<TypeClass>) {
    use Lir::*;
    use TypeClass::*;
    match op {
        ConstI(_) | ConstD(_) | ConstObj(_) | ConstStr(_) | ConstBool(_) | ConstBoxed(_)
        | Import { .. } | CallTree { .. } | LoopBack(_) | End(_) => {}
        // Raw word into the activation record; boxing type is the exit
        // map's business, not the store's.
        WriteAr { .. } => out.push(Any),
        AddI(..) | SubI(..) | MulI(..) | AndI(..) | OrI(..) | XorI(..) | ShlI(..) | ShrI(..)
        | UShrI(..) | AddIChk(..) | SubIChk(..) | MulIChk(..) | ModIChk(..) | ShlIChk(..)
        | UShrIChk(..) => out.extend([IntWord, IntWord]),
        NotI(_) | NegI(_) | NegIChk(..) | I2D(_) | U2D(_) | ChkRangeI(..) | BoxI(_) => {
            out.push(IntWord);
        }
        AddD(..) | SubD(..) | MulD(..) | DivD(..) | ModD(..) | EqD(..) | LtD(..) | LeD(..)
        | GtD(..) | GeD(..) => out.extend([Double, Double]),
        NegD(_) | D2IChk(..) | D2I32(_) | BoxD(_) => out.push(Double),
        // Object handles compare by identity through the integer comparator.
        EqI(..) => out.extend([EqWord, EqWord]),
        LtI(..) | LeI(..) | GtI(..) | GeI(..) => out.extend([IntWord, IntWord]),
        NotB(_) | BoxB(_) | GuardTrue(..) | GuardFalse(..) => out.push(Bool),
        BoxObj(_) | LoadProto(_) | ArrayLen(_) | GuardShape { .. } | GuardClass { .. } => {
            out.push(Object);
        }
        BoxStr(_) | StrLen(_) => out.push(String),
        UnboxI(..) | UnboxD(..) | UnboxNumD(..) | UnboxObj(..) | UnboxStr(..) | UnboxBool(..) => {
            out.push(BoxedWord);
        }
        // Guards the raw word of a boxed value — or an object handle's
        // identity (function-callee guards compare the handle directly).
        GuardBoxedEq(..) => out.push(Any),
        GuardBound { .. } => out.extend([Object, IntWord]),
        LoadSlot(..) => out.push(Object),
        StoreSlot(..) => out.extend([Object, BoxedWord]),
        LoadElem(..) => out.extend([Object, IntWord]),
        StoreElem(..) => out.extend([Object, IntWord, BoxedWord]),
        // Helper arguments are raw words in the helper's own convention.
        Call { args, .. } => out.extend(std::iter::repeat(Any).take(args.len())),
    }
}

/// Statically verifies a recorded trace against its exit metadata.
///
/// `entry` is the entry type map as `(AR slot, entry type)` pairs: the
/// slots the monitor populates (and type-checks) before entering the
/// fragment. For branch fragments this is the parent exit's type map plus
/// the tree entry map. Slots a trace neither imports nor writes are
/// allowed to appear in exit maps (branch traces inherit parent-path
/// state).
///
/// # Errors
///
/// Returns the first [`VerifyError`] found, scanning instructions in
/// order and then the exit table.
pub fn verify_trace(
    trace: &LirTrace,
    exits: &[ExitView],
    entry: &[(ArSlot, LirType)],
) -> Result<(), VerifyError> {
    if trace.num_exits as usize != exits.len() {
        return Err(VerifyError::ExitCountMismatch {
            declared: trace.num_exits,
            descriptors: exits.len() as u16,
        });
    }

    // Types every AR slot can hold, as seen by this fragment: entry map
    // types plus everything the trace imports or writes.
    let mut slot_types: Vec<(ArSlot, LirType)> = entry.to_vec();
    let mut imported: Vec<ArSlot> = Vec::new();
    let mut classes: Vec<TypeClass> = Vec::new();
    let mut operands: Vec<LirId> = Vec::new();
    // Exits some instruction can actually take. The recorder allocates
    // exit snapshots eagerly (one per bytecode op), so when the forward
    // filters fold away every guard of an op, its descriptor dangles —
    // and dead-store elimination is free to drop stores only that
    // unreachable exit would have observed, so its maps are not checked.
    let mut reachable = vec![false; exits.len()];

    let len = trace.code.len();
    for (i, op) in trace.code.iter().enumerate() {
        let at = i as LirId;

        // 1. SSA shape and operand types.
        operands.clear();
        classes.clear();
        op.operands(&mut operands);
        operand_classes(op, &mut classes);
        debug_assert_eq!(operands.len(), classes.len());
        for (&operand, &class) in operands.iter().zip(&classes) {
            if operand >= at {
                return Err(VerifyError::UseBeforeDef { at, operand });
            }
            let Some(found) = trace.code[operand as usize].result_ty() else {
                return Err(VerifyError::UseOfNonValue { at, operand });
            };
            if !class.admits(found) {
                return Err(VerifyError::TypeMismatch { at, operand, expected: class, found });
            }
        }

        // 2. Exit references. `NO_EXIT` marks structurally-carried exits
        // that can never be taken (soft-float helper calls).
        if let Some(e) = op.exit() {
            if e != NO_EXIT {
                if e.0 >= trace.num_exits {
                    return Err(VerifyError::MissingExit { at, exit: e.0 });
                }
                reachable[e.0 as usize] = true;
            }
        }

        // 3. Terminator discipline: exactly one, in last position.
        let is_term = matches!(op, Lir::LoopBack(_) | Lir::End(_));
        if is_term != (i + 1 == len) {
            return Err(VerifyError::BadTerminator { at });
        }

        // Track slot contents for the exit-map consistency pass.
        match *op {
            Lir::Import { slot, ty } => {
                if imported.contains(&slot) {
                    return Err(VerifyError::DuplicateImport { at, slot });
                }
                imported.push(slot);
                if let Some(&(_, ety)) =
                    entry.iter().find(|&&(s, _)| s == slot)
                {
                    if ety != ty {
                        return Err(VerifyError::ImportTypeMismatch {
                            at,
                            slot,
                            imported: ty,
                            entry: ety,
                        });
                    }
                }
                slot_types.push((slot, ty));
            }
            Lir::WriteAr { slot, v } => {
                // `v` was validated above; record the stored type.
                if let Some(ty) = trace.code[v as usize].result_ty() {
                    slot_types.push((slot, ty));
                }
            }
            _ => {}
        }
    }
    if len == 0 {
        return Err(VerifyError::BadTerminator { at: 0 });
    }

    // 4. Exit maps (only for exits that can be taken).
    for (e, view) in exits.iter().enumerate() {
        let exit = e as u16;
        if !reachable[e] {
            continue;
        }
        if view.stack_depths.is_empty() {
            return Err(VerifyError::EmptyExitFrames { exit });
        }
        // Stack balance: every live operand-stack entry must be covered by
        // the write-back map, or restoration would have nothing to push.
        for (depth, &sd) in view.stack_depths.iter().enumerate() {
            let depth = depth as u8;
            for idx in 0..sd {
                if !view.stack_writes.contains(&(depth, idx)) {
                    return Err(VerifyError::UnbalancedExitStack { exit, depth, idx });
                }
            }
        }
        // The type map describes everything the write-back restores.
        for &(slot, _) in &view.write_back {
            if !view.typemap.iter().any(|&(s, _)| s == slot) {
                return Err(VerifyError::WriteBackNotInTypeMap { exit, slot });
            }
        }
        // Map types must be producible by this fragment (or its entry
        // state). Slots the fragment never touches come from the parent
        // path of a branch trace and cannot be checked locally.
        for &(slot, ty) in view.typemap.iter().chain(&view.write_back) {
            let mut seen = slot_types.iter().filter(|&&(s, _)| s == slot).peekable();
            if seen.peek().is_some() && !seen.any(|&(_, lt)| map_compatible(ty, lt)) {
                return Err(VerifyError::ExitTypeMismatch { exit, slot, ty });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_lir::ExitId;

    fn exit0() -> ExitView {
        ExitView {
            stack_depths: vec![0],
            stack_writes: vec![],
            write_back: vec![(0, LirType::Int)],
            typemap: vec![(0, LirType::Int)],
        }
    }

    /// import → add-checked → store → loop: the minimal Figure 3 shape.
    fn valid_trace() -> (LirTrace, Vec<ExitView>, Vec<(ArSlot, LirType)>) {
        let trace = LirTrace {
            code: vec![
                Lir::Import { slot: 0, ty: LirType::Int },
                Lir::ConstI(1),
                Lir::AddIChk(0, 1, ExitId(0)),
                Lir::WriteAr { slot: 0, v: 2 },
                Lir::LoopBack(ExitId(1)),
            ],
            num_exits: 2,
        };
        (trace, vec![exit0(), exit0()], vec![(0, LirType::Int)])
    }

    #[test]
    fn accepts_the_minimal_loop() {
        let (t, e, entry) = valid_trace();
        assert_eq!(verify_trace(&t, &e, &entry), Ok(()));
    }

    #[test]
    fn rejects_empty_trace() {
        let t = LirTrace::new();
        assert_eq!(
            verify_trace(&t, &[], &[]),
            Err(VerifyError::BadTerminator { at: 0 })
        );
    }

    #[test]
    fn type_classes_admit_word_conventions() {
        assert!(TypeClass::IntWord.admits(LirType::Bool));
        assert!(!TypeClass::IntWord.admits(LirType::Double));
        assert!(TypeClass::EqWord.admits(LirType::Object));
        assert!(TypeClass::BoxedWord.admits(LirType::Undefined));
        assert!(!TypeClass::BoxedWord.admits(LirType::Int));
        assert!(TypeClass::Any.admits(LirType::String));
    }

    #[test]
    fn display_is_informative() {
        let e = VerifyError::UnbalancedExitStack { exit: 3, depth: 1, idx: 2 };
        let s = e.to_string();
        assert!(s.contains("exit 3"), "{s}");
        assert!(s.contains("frame 1"), "{s}");
    }
}
