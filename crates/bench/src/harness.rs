//! Measurement harness shared by the figure-reproduction binaries.

use std::time::{Duration, Instant};

use tracemonkey::{Engine, JitOptions, Vm};

use crate::suite::BenchProgram;

/// Result of running one program on one engine.
#[derive(Debug)]
pub struct RunResult {
    /// Best-of-N wall-clock time.
    pub time: Duration,
    /// Completion value rendered as a string (consistency checking).
    pub value: String,
    /// The VM after the run (profile/monitor inspection).
    pub vm: Vm,
}

/// Runs `prog` under `engine`, returning the fastest of `repeats` runs
/// (SunSpider-style: each run is a fresh VM, timing includes compilation —
/// the "low startup time" constraint the paper emphasizes).
pub fn run_program(prog: &BenchProgram, engine: Engine, opts: JitOptions, repeats: u32) -> RunResult {
    let mut best = Duration::MAX;
    let mut last_vm = None;
    let mut value = String::new();
    for _ in 0..repeats.max(1) {
        let mut vm = Vm::with_options(engine, opts);
        let start = Instant::now();
        let v = vm.eval(prog.source).unwrap_or_else(|e| {
            panic!("{} failed under {:?}: {e}", prog.name, engine)
        });
        let elapsed = start.elapsed();
        value = tracemonkey::runtime::ops::to_display(&mut vm.realm, v);
        if elapsed < best {
            best = elapsed;
        }
        last_vm = Some(vm);
    }
    RunResult { time: best, value, vm: last_vm.expect("at least one run") }
}

/// Runs `prog` on all four engines and checks result consistency.
///
/// # Panics
///
/// Panics when engines disagree on the result (a correctness bug).
pub fn run_all_engines(
    prog: &BenchProgram,
    opts: JitOptions,
    repeats: u32,
) -> [RunResult; 4] {
    let interp = run_program(prog, Engine::Interp, opts, repeats);
    let fast = run_program(prog, Engine::FastInterp, opts, repeats);
    let method = run_program(prog, Engine::Method, opts, repeats);
    let tracing = run_program(prog, Engine::Tracing, opts, repeats);
    for (name, r) in
        [("fast", &fast), ("method", &method), ("tracing", &tracing)]
    {
        assert_eq!(
            interp.value, r.value,
            "{}: {name} engine disagrees with the interpreter",
            prog.name
        );
    }
    [interp, fast, method, tracing]
}

/// Speedup of `t` relative to baseline `base`.
pub fn speedup(base: Duration, t: Duration) -> f64 {
    base.as_secs_f64() / t.as_secs_f64().max(1e-9)
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:8.2}", d.as_secs_f64() * 1e3)
}
