//! Figure 10: speedup of TraceMonkey (tracing), SFX (fast interpreter),
//! and V8 (method JIT) over the SpiderMonkey baseline interpreter on the
//! 26 SunSpider programs.
//!
//! Usage: `fig10 [repeats]` (default 3). Prints one row per program plus
//! the in-text claim checks (fastest-VM counts, peak speedups).

use tm_bench::{harness, SUITE};
use tracemonkey::JitOptions;

fn main() {
    let repeats: u32 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let opts = JitOptions::default();

    println!(
        "{:26} {:>9} {:>9} {:>9} {:>9}  {:>7} {:>7} {:>7}  winner",
        "program", "interp", "sfx", "method", "tracing", "sfx x", "meth x", "trace x"
    );
    let mut tm_fastest = 0;
    let mut best_trace: (f64, &str) = (0.0, "");
    let mut total = [0.0f64; 4];
    let mut geo = [0.0f64; 3];
    for prog in SUITE {
        let [interp, fast, method, tracing] = harness::run_all_engines(prog, opts, repeats);
        let times = [interp.time, fast.time, method.time, tracing.time];
        for (t, acc) in times.iter().zip(total.iter_mut()) {
            *acc += t.as_secs_f64();
        }
        let sx = harness::speedup(interp.time, fast.time);
        let mx = harness::speedup(interp.time, method.time);
        let tx = harness::speedup(interp.time, tracing.time);
        geo[0] += sx.ln();
        geo[1] += mx.ln();
        geo[2] += tx.ln();
        let winner = if tx >= mx && tx >= sx && tx >= 1.0 {
            tm_fastest += 1;
            "tracing"
        } else if mx >= sx && mx >= 1.0 {
            "method"
        } else if sx > 1.0 {
            "sfx"
        } else {
            "interp"
        };
        if tx > best_trace.0 {
            best_trace = (tx, prog.name);
        }
        println!(
            "{:26} {} {} {} {}  {:7.2} {:7.2} {:7.2}  {}",
            prog.name,
            harness::ms(interp.time),
            harness::ms(fast.time),
            harness::ms(method.time),
            harness::ms(tracing.time),
            sx,
            mx,
            tx,
            winner
        );
    }
    let n = SUITE.len() as f64;
    println!(
        "\ntotal: interp {:.0}ms  sfx {:.0}ms  method {:.0}ms  tracing {:.0}ms",
        total[0] * 1e3,
        total[1] * 1e3,
        total[2] * 1e3,
        total[3] * 1e3
    );
    println!(
        "geomean speedups vs interp: sfx {:.2}x  method {:.2}x  tracing {:.2}x",
        (geo[0] / n).exp(),
        (geo[1] / n).exp(),
        (geo[2] / n).exp()
    );
    println!("\npaper claim checks:");
    println!("  tracing fastest on {tm_fastest} of 26 programs (paper: 9 of 26)");
    println!(
        "  best tracing speedup: {:.1}x on {} (paper: 25x on bitops-bitwise-and)",
        best_trace.0, best_trace.1
    );
}
