//! Writes the full evaluation (Figures 10/11-equivalent data) as JSON for
//! downstream analysis: per-program times under each engine, speedups,
//! bytecode distribution, and trace statistics.
//!
//! Usage: `results_json [repeats] > results.json`

use serde::Serialize;
use tm_bench::{harness, SUITE};
use tracemonkey::JitOptions;

#[derive(Serialize)]
struct ProgramResult {
    name: &'static str,
    group: &'static str,
    untraceable_by_design: bool,
    interp_ms: f64,
    sfx_ms: f64,
    method_ms: f64,
    tracing_ms: f64,
    sfx_speedup: f64,
    method_speedup: f64,
    tracing_speedup: f64,
    bytecodes_total: u64,
    bytecodes_interp_pct: f64,
    bytecodes_recorded_pct: f64,
    bytecodes_native_pct: f64,
    trees: usize,
    fragments: u64,
    trace_enters: u64,
    side_exits: u64,
}

#[derive(Serialize)]
struct Results {
    repeats: u32,
    programs: Vec<ProgramResult>,
    totals: Totals,
}

#[derive(Serialize)]
struct Totals {
    interp_ms: f64,
    sfx_ms: f64,
    method_ms: f64,
    tracing_ms: f64,
    tracing_geomean_speedup: f64,
    tracing_fastest_count: usize,
}

fn main() {
    let repeats: u32 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let opts = JitOptions::default();
    let mut programs = Vec::new();
    let mut totals = Totals {
        interp_ms: 0.0,
        sfx_ms: 0.0,
        method_ms: 0.0,
        tracing_ms: 0.0,
        tracing_geomean_speedup: 0.0,
        tracing_fastest_count: 0,
    };
    let mut geo = 0.0;
    for prog in SUITE {
        let [interp, sfx, method, tracing] = harness::run_all_engines(prog, opts, repeats);
        let p = tracing.vm.profile().expect("profile");
        let total_bc = p.bytecodes_interp + p.bytecodes_recorded + p.bytecodes_native;
        let pct = |x: u64| 100.0 * x as f64 / total_bc.max(1) as f64;
        let t = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        let tx = harness::speedup(interp.time, tracing.time);
        let mx = harness::speedup(interp.time, method.time);
        let sx = harness::speedup(interp.time, sfx.time);
        geo += tx.ln();
        if tx >= mx && tx >= sx && tx >= 1.0 {
            totals.tracing_fastest_count += 1;
        }
        totals.interp_ms += t(interp.time);
        totals.sfx_ms += t(sfx.time);
        totals.method_ms += t(method.time);
        totals.tracing_ms += t(tracing.time);
        programs.push(ProgramResult {
            name: prog.name,
            group: prog.group,
            untraceable_by_design: prog.untraceable,
            interp_ms: t(interp.time),
            sfx_ms: t(sfx.time),
            method_ms: t(method.time),
            tracing_ms: t(tracing.time),
            sfx_speedup: sx,
            method_speedup: mx,
            tracing_speedup: tx,
            bytecodes_total: total_bc,
            bytecodes_interp_pct: pct(p.bytecodes_interp),
            bytecodes_recorded_pct: pct(p.bytecodes_recorded),
            bytecodes_native_pct: pct(p.bytecodes_native),
            trees: tracing.vm.monitor().map(|m| m.cache.len()).unwrap_or(0),
            fragments: p.fragments,
            trace_enters: p.trace_enters,
            side_exits: p.side_exits,
        });
    }
    totals.tracing_geomean_speedup = (geo / SUITE.len() as f64).exp();
    let results = Results { repeats, programs, totals };
    println!("{}", serde_json::to_string_pretty(&results).expect("serialize"));
}
