//! Writes the full evaluation (Figures 10/11-equivalent data) as JSON for
//! downstream analysis: per-program times under each engine, speedups,
//! bytecode distribution, and trace statistics. Serialized with the
//! in-tree `tm-support` JSON writer; the schema (field names, nesting,
//! order) is unchanged from the `serde_json` version.
//!
//! Usage: `results_json [repeats] > results.json`

use tm_bench::{harness, SUITE};
use tm_support::Json;
use tracemonkey::JitOptions;

struct Totals {
    interp_ms: f64,
    sfx_ms: f64,
    method_ms: f64,
    tracing_ms: f64,
    tracing_geomean_speedup: f64,
    tracing_fastest_count: usize,
}

fn main() {
    let repeats: u32 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let opts = JitOptions::default();
    let mut programs = Vec::new();
    let mut totals = Totals {
        interp_ms: 0.0,
        sfx_ms: 0.0,
        method_ms: 0.0,
        tracing_ms: 0.0,
        tracing_geomean_speedup: 0.0,
        tracing_fastest_count: 0,
    };
    let mut geo = 0.0;
    for prog in SUITE {
        let [interp, sfx, method, tracing] = harness::run_all_engines(prog, opts, repeats);
        let p = tracing.vm.profile().expect("profile");
        let total_bc = p.bytecodes_interp + p.bytecodes_recorded + p.bytecodes_native;
        let pct = |x: u64| 100.0 * x as f64 / total_bc.max(1) as f64;
        let t = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        let tx = harness::speedup(interp.time, tracing.time);
        let mx = harness::speedup(interp.time, method.time);
        let sx = harness::speedup(interp.time, sfx.time);
        geo += tx.ln();
        if tx >= mx && tx >= sx && tx >= 1.0 {
            totals.tracing_fastest_count += 1;
        }
        totals.interp_ms += t(interp.time);
        totals.sfx_ms += t(sfx.time);
        totals.method_ms += t(method.time);
        totals.tracing_ms += t(tracing.time);
        programs.push(Json::obj([
            ("name", Json::from(prog.name)),
            ("group", Json::from(prog.group)),
            ("untraceable_by_design", Json::from(prog.untraceable)),
            ("interp_ms", Json::from(t(interp.time))),
            ("sfx_ms", Json::from(t(sfx.time))),
            ("method_ms", Json::from(t(method.time))),
            ("tracing_ms", Json::from(t(tracing.time))),
            ("sfx_speedup", Json::from(sx)),
            ("method_speedup", Json::from(mx)),
            ("tracing_speedup", Json::from(tx)),
            ("bytecodes_total", Json::from(total_bc)),
            ("bytecodes_interp_pct", Json::from(pct(p.bytecodes_interp))),
            ("bytecodes_recorded_pct", Json::from(pct(p.bytecodes_recorded))),
            ("bytecodes_native_pct", Json::from(pct(p.bytecodes_native))),
            ("trees", Json::from(tracing.vm.monitor().map(|m| m.cache.len()).unwrap_or(0))),
            ("fragments", Json::from(p.fragments)),
            ("trace_enters", Json::from(p.trace_enters)),
            ("side_exits", Json::from(p.side_exits)),
        ]));
    }
    totals.tracing_geomean_speedup = (geo / SUITE.len() as f64).exp();
    let results = Json::obj([
        ("repeats", Json::from(repeats)),
        ("programs", Json::Array(programs)),
        (
            "totals",
            Json::obj([
                ("interp_ms", Json::from(totals.interp_ms)),
                ("sfx_ms", Json::from(totals.sfx_ms)),
                ("method_ms", Json::from(totals.method_ms)),
                ("tracing_ms", Json::from(totals.tracing_ms)),
                ("tracing_geomean_speedup", Json::from(totals.tracing_geomean_speedup)),
                ("tracing_fastest_count", Json::from(totals.tracing_fastest_count)),
            ]),
        ),
    ]);
    println!("{}", results.to_string_pretty());
}
