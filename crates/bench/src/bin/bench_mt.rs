//! Multi-tenant throughput benchmark (`BENCH_pr8.json`): N concurrent
//! realms over one shared code cache and one background compiler pool,
//! versus a single realm working through the same request stream.
//!
//! Each workload is one "request" program evaluated `requests` times per
//! realm on a persistent realm (so requests after the first run against
//! a warm tree cache, server-style). The harness measures:
//!
//! * **throughput** — requests/second, single-realm versus N-realm;
//! * **latency** — per-request p50/p99 in the concurrent phase
//!   (reported, never gated: wall-clock is machine-dependent);
//! * **sharing** — process-wide [`SharedCodeCache`] counters after the
//!   concurrent phase.
//!
//! Gates (exit non-zero on failure):
//!   1. every request in every phase returns the expected value —
//!      concurrency must not change results;
//!   2. on every `traceable`-group workload, realms running the same
//!      program actually share code: the concurrent phase ends with
//!      nonzero shared-cache publishes *and* hits (realms ≥ 2);
//!   3. **core-adaptive speedup** on the `traceable` group's aggregate
//!      throughput (per-workload speedups are reported but too noisy to
//!      gate on sub-second walls): with C cores available, N-realm
//!      throughput must be at least `min(4.0, C/2)`× single-realm
//!      throughput when C ≥ 2; on a single-core machine concurrency
//!      cannot beat sequential, so the gate degrades to no-regression
//!      (≥ `0.50`×, slack for scheduler overhead). The acceptance
//!      target "8 realms ≥ 4× single-realm" is the C ≥ 8 instantiation
//!      of this gate;
//!   4. with `--baseline FILE`, structural counters must not regress:
//!      a workload that shared code in the baseline (nonzero hits) must
//!      still share, and one that compiled in the background
//!      (`compile_jobs_installed > 0`) must still do so. Timings in the
//!      baseline are never compared.
//!
//! Usage:
//!   `bench_mt`                        full run (8 realms × 40 requests)
//!   `bench_mt --smoke`                4 realms × 25 requests
//!   `bench_mt --realms N`             override realm count
//!   `bench_mt --requests M`           override requests per realm
//!   `bench_mt --repeats R`            best-of-R walls (default 3)
//!   `bench_mt --baseline FILE`        additionally gate vs a checked-in
//!                                     BENCH_pr8.json
//!
//! [`SharedCodeCache`]: tracemonkey::SharedCodeCache

use std::time::{Duration, Instant};

use tm_support::Json;
use tracemonkey::MultiTenantVm;

struct Workload {
    name: &'static str,
    /// `traceable` workloads carry the speedup and sharing gates;
    /// `untraceable` ones are reported only (the paper's never-tracing
    /// programs have no code to share).
    group: &'static str,
    source: &'static str,
}

/// Request programs. Each is small enough to be one server request and
/// deterministic, so every realm and every repetition must agree.
const WORKLOADS: &[Workload] = &[
    Workload {
        name: "arith-loop",
        group: "traceable",
        source: "var s = 0; for (var i = 0; i < 2000; i++) s += i * 3 - (i >> 1); s",
    },
    Workload {
        name: "branchy",
        group: "traceable",
        source: "var s = 0; \
                 for (var i = 0; i < 1500; i++) { \
                     if (i % 3 == 0) s += i * 2; else s -= i; \
                 } s",
    },
    Workload {
        name: "objects",
        group: "traceable",
        source: "var p = { x: 0, y: 0 }; \
                 for (var i = 0; i < 1200; i++) { p.x += i; p.y = p.x - i; } \
                 p.x + p.y",
    },
    Workload {
        name: "strings",
        group: "traceable",
        source: "var s = ''; var n = 0; \
                 for (var i = 0; i < 600; i++) { s = 'ab' + s.substring(0, 6); n += s.length; } \
                 n",
    },
    Workload {
        name: "straightline",
        group: "untraceable",
        source: "var a = 1; var b = a + 41; var c = b * 2 - 42; c",
    },
];

/// Native-tier counters accumulated over one realm's requests.
#[derive(Clone, Copy, Default)]
struct NativeCounts {
    exits: u64,
    fallbacks: u64,
}

/// One realm working through `requests` evaluations of `source` on the
/// given tenant VM, timing each request. Returns (latencies, results,
/// native-tier counters).
fn drive_realm(
    mt: &MultiTenantVm,
    source: &str,
    requests: usize,
) -> (Vec<Duration>, Vec<String>, NativeCounts) {
    let mut vm = mt.realm_vm();
    let mut lats = Vec::with_capacity(requests);
    let mut results = Vec::with_capacity(requests);
    for _ in 0..requests {
        let start = Instant::now();
        let r = vm.eval(source);
        lats.push(start.elapsed());
        let shown = match r {
            Ok(v) => tracemonkey::runtime::ops::to_display(&mut vm.realm, v),
            Err(e) => format!("error: {e}"),
        };
        results.push(shown);
    }
    let native = vm
        .profile()
        .map(|s| NativeCounts { exits: s.native_exits, fallbacks: s.native_fallbacks })
        .unwrap_or_default();
    (lats, results, native)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Structural counters per workload from a previous bench_mt JSON.
fn load_baseline(path: &str) -> Vec<(String, u64, u64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
    doc.get("workloads")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("baseline {path} has no workloads array"))
        .iter()
        .filter_map(|row| {
            let name = row.get("name")?.as_str()?;
            let hits = row.get("shared_hits")?.as_u64()?;
            let installed = row.get("compile_jobs_installed")?.as_u64()?;
            Some((name.to_owned(), hits, installed))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let realms: usize = flag_value("--realms")
        .map(|v| v.parse().expect("--realms: a realm count"))
        .unwrap_or(if smoke { 4 } else { 8 });
    let requests: usize = flag_value("--requests")
        .map(|v| v.parse().expect("--requests: a request count"))
        .unwrap_or(if smoke { 25 } else { 40 });
    let repeats: usize = flag_value("--repeats")
        .map(|v| v.parse().expect("--repeats: a repeat count"))
        .unwrap_or(3)
        .max(1);
    let baseline = flag_value("--baseline").map(|p| (load_baseline(&p), p));

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Core-adaptive speedup floor (gate 3). Capped at the acceptance
    // target of 4x; single-core machines get a no-regression bar.
    let required_speedup =
        if cores >= 2 { (cores as f64 / 2.0).min(4.0) } else { 0.50 };
    let pool_workers = 2.min(cores.max(1));

    let mut gate_failures: Vec<String> = Vec::new();
    let mut rows: Vec<Json> = Vec::new();
    // Aggregate walls over the `traceable` group: the speedup gate runs
    // on the group total, not per workload, so one workload's warm-up
    // skew (a branchy program re-records more under N fresh realms)
    // doesn't dominate a sub-second measurement.
    let mut group_single = Duration::ZERO;
    let mut group_mt = Duration::ZERO;

    for w in WORKLOADS {
        // Expected value from a throwaway tenant (also warms nothing the
        // measured phases see: each phase builds a fresh MultiTenantVm).
        let probe = MultiTenantVm::new(pool_workers);
        let (_, first, _) = drive_realm(&probe, w.source, 1);
        let expected = first[0].clone();
        drop(probe);

        // Phase 1: one realm, realms * requests sequential requests —
        // the same total work the concurrent phase does. Best-of-N wall
        // clock: on a loaded single-core box one descheduled slice can
        // cost 30%+ of a sub-second phase.
        let mut single_wall = Duration::MAX;
        for _ in 0..repeats {
            let single = MultiTenantVm::new(pool_workers);
            let start = Instant::now();
            let (_, single_results, _) = drive_realm(&single, w.source, realms * requests);
            single_wall = single_wall.min(start.elapsed());
            drop(single);
            for (i, r) in single_results.iter().enumerate() {
                if *r != expected {
                    gate_failures.push(format!(
                        "{}: single-realm request {i} returned {r:?}, expected {expected:?}",
                        w.name
                    ));
                    break;
                }
            }
        }

        // Phase 2: N realms concurrently, `requests` each, over one
        // fresh shared cache + pool per repeat; best-of-N wall clock,
        // latencies and counters reported from the fastest repeat.
        let mut mt_wall = Duration::MAX;
        let mut mt_lats: Vec<Duration> = Vec::new();
        let mut shared = tracemonkey::SharedCacheStats::default();
        let mut compile_jobs_installed = 0u64;
        let mut native = NativeCounts::default();
        for _ in 0..repeats {
            let mt = MultiTenantVm::new(pool_workers);
            let start = Instant::now();
            let per_realm: Vec<(Vec<Duration>, Vec<String>, NativeCounts)> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..realms)
                    .map(|_| s.spawn(|| drive_realm(&mt, w.source, requests)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("realm thread panicked"))
                    .collect()
            });
            let wall = start.elapsed();
            let rep_shared = mt.shared_stats();
            let rep_pool = mt.pool_stats();
            drop(mt);

            let mut rep_lats: Vec<Duration> = Vec::new();
            let mut rep_native = NativeCounts::default();
            for (k, (lats, results, nc)) in per_realm.iter().enumerate() {
                rep_lats.extend_from_slice(lats);
                rep_native.exits += nc.exits;
                rep_native.fallbacks += nc.fallbacks;
                for (i, r) in results.iter().enumerate() {
                    if *r != expected {
                        gate_failures.push(format!(
                            "{}: realm {k} request {i} returned {r:?}, expected {expected:?}",
                            w.name
                        ));
                        break;
                    }
                }
            }
            if wall < mt_wall {
                mt_wall = wall;
                mt_lats = rep_lats;
                shared = rep_shared;
                // The pool's executed count is per MultiTenantVm; jobs
                // the realms installed show up in the executed tally.
                compile_jobs_installed = rep_pool.executed;
                native = rep_native;
            }
        }
        mt_lats.sort();

        let total = (realms * requests) as f64;
        let thr_single = total / single_wall.as_secs_f64().max(1e-9);
        let thr_mt = total / mt_wall.as_secs_f64().max(1e-9);
        let speedup = thr_mt / thr_single.max(1e-9);

        if w.group == "traceable" {
            if realms >= 2 && (shared.publishes == 0 || shared.hits == 0) {
                gate_failures.push(format!(
                    "{}: no cross-realm code sharing (publishes={}, hits={})",
                    w.name, shared.publishes, shared.hits
                ));
            }
            group_single += single_wall;
            group_mt += mt_wall;
        }
        if let Some((base, path)) = &baseline {
            if let Some((_, base_hits, base_installed)) =
                base.iter().find(|(n, _, _)| n == w.name)
            {
                if *base_hits > 0 && shared.hits == 0 {
                    gate_failures.push(format!(
                        "{}: shared code in baseline {path} but not now",
                        w.name
                    ));
                }
                if *base_installed > 0 && compile_jobs_installed == 0 {
                    gate_failures.push(format!(
                        "{}: background-compiled in baseline {path} but not now",
                        w.name
                    ));
                }
            }
        }

        rows.push(Json::obj([
            ("name", Json::from(w.name)),
            ("group", Json::from(w.group)),
            ("requests_total", Json::from(realms * requests)),
            ("single_wall_ms", Json::from(ms(single_wall))),
            ("mt_wall_ms", Json::from(ms(mt_wall))),
            ("throughput_single_rps", Json::from(thr_single)),
            ("throughput_mt_rps", Json::from(thr_mt)),
            ("speedup", Json::from(speedup)),
            ("p50_ms", Json::from(ms(percentile(&mt_lats, 0.50)))),
            ("p99_ms", Json::from(ms(percentile(&mt_lats, 0.99)))),
            ("shared_hits", Json::from(shared.hits)),
            ("shared_misses", Json::from(shared.misses)),
            ("shared_publishes", Json::from(shared.publishes)),
            ("shared_evictions", Json::from(shared.evictions)),
            ("compile_jobs_installed", Json::from(compile_jobs_installed)),
            // Native-tier uptake across all realms of the fastest repeat
            // (report-only: on targets without the backend both are 0).
            ("native_exits", Json::from(native.exits)),
            ("native_fallbacks", Json::from(native.fallbacks)),
        ]));
    }

    // Gate 3: core-adaptive speedup on the traceable group's aggregate
    // throughput (same request totals on both sides, so the wall ratio
    // is the throughput ratio).
    let group_speedup =
        group_single.as_secs_f64() / group_mt.as_secs_f64().max(1e-9);
    if group_mt > Duration::ZERO && group_speedup < required_speedup {
        gate_failures.push(format!(
            "traceable group: {realms}-realm speedup {group_speedup:.2}x below \
             the {required_speedup:.2}x floor for {cores} core(s)"
        ));
    }

    let out = Json::obj([
        ("schema", Json::from("bench_mt/v1")),
        (
            "statistic",
            Json::from(
                "N-realm vs single-realm request throughput over one shared \
                 code cache and background compiler pool; latency and \
                 wall-clock reported, speedup gated core-adaptively",
            ),
        ),
        ("realms", Json::from(realms)),
        ("requests_per_realm", Json::from(requests)),
        ("repeats", Json::from(repeats)),
        ("cores", Json::from(cores)),
        ("required_speedup", Json::from(required_speedup)),
        ("traceable_group_speedup", Json::from(group_speedup)),
        ("pool_workers", Json::from(pool_workers)),
        ("smoke", Json::from(smoke)),
        ("workloads", Json::from(rows)),
    ]);
    println!("{}", out.to_string_pretty());

    if !gate_failures.is_empty() {
        eprintln!("bench_mt: {} gate failure(s):", gate_failures.len());
        for f in &gate_failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
