//! Figure 12: wall-clock breakdown by VM activity (the Figure 2 state
//! machine): interpreting, monitoring (trace-cache lookup + entering/
//! leaving traces), recording, compiling, and executing native code.

use tm_bench::SUITE;
use tracemonkey::jit::profiler::Activity;
use tracemonkey::{Engine, JitOptions, Vm};

fn main() {
    let mut opts = JitOptions::default();
    opts.profile = true;
    println!(
        "{:26} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "program", "total ms", "interp%", "monitor%", "record%", "compile%", "native%"
    );
    for prog in SUITE {
        let mut vm = Vm::with_options(Engine::Tracing, opts);
        vm.eval(prog.source).unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        let p = vm.profile().expect("profile");
        let total = p.total_time().as_secs_f64().max(1e-9);
        let pct = |a: Activity| 100.0 * p.time_in(a).as_secs_f64() / total;
        println!(
            "{:26} {:>9.2} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            prog.name,
            total * 1e3,
            pct(Activity::Interpret),
            pct(Activity::Monitor),
            pct(Activity::Record),
            pct(Activity::Compile),
            pct(Activity::Native),
        );
    }
    println!(
        "\npaper claim checks: for well-traced programs most time is native and\n\
         monitor time is small (<5% total in the paper; transition-heavy programs\n\
         can reach ~10%)."
    );
}
