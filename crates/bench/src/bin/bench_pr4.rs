//! Benchmark trajectory snapshot for the hot-path de-hashing work
//! (`BENCH_pr4.json`): median wall-clock per program under the baseline
//! interpreter and the tracing (interpreter+JIT) engine.
//!
//! Unlike `results_json` (best-of-N, all four engines, Figure 10/11
//! schema), this binary reports **medians** — the statistic the bench
//! acceptance gates use — and only the two engines the monitor/IC hot
//! paths affect.
//!
//! Usage:
//!   `bench_pr4 [repeats]`          full 26-program suite, JSON to stdout
//!   `bench_pr4 --only a,b [reps]`  named subset only
//!   `bench_pr4 --smoke [repeats]`  pinned one-program-per-group subset,
//!                                  JSON to stdout; exits non-zero when a
//!                                  traceable bitops program's tracing
//!                                  median exceeds its interpreter median
//!                                  (the CI bench-smoke gate)

use std::time::{Duration, Instant};

use tm_bench::{BenchProgram, SUITE};
use tm_support::Json;
use tracemonkey::{Engine, JitOptions, Vm};

/// Pinned smoke subset: one program per SunSpider group (the traceable
/// bitops entry is what the CI gate asserts on).
const SMOKE: &[&str] = &[
    "3d-morph",
    "access-nsieve",
    "bitops-bits-in-byte",
    "controlflow-recursive",
    "crypto-sha1",
    "date-format-tofte",
    "math-cordic",
    "regexp-dna",
    "string-fasta",
];

/// Median of `repeats` fresh-VM wall-clock runs (each run includes
/// compilation, SunSpider-style).
fn median_time(prog: &BenchProgram, engine: Engine, opts: JitOptions, repeats: u32) -> Duration {
    let mut times: Vec<Duration> = (0..repeats.max(1))
        .map(|_| {
            let mut vm = Vm::with_options(engine, opts);
            let start = Instant::now();
            vm.eval(prog.source)
                .unwrap_or_else(|e| panic!("{} failed under {:?}: {e}", prog.name, engine));
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let only: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .map(|names| names.split(',').map(str::to_string).collect());
    let repeats: u32 = args
        .iter()
        .filter(|a| only.as_ref().map_or(true, |o| !o.contains(a)))
        .find_map(|a| a.parse().ok())
        .unwrap_or(if smoke { 3 } else { 5 });
    let opts = JitOptions::default();

    let programs: Vec<&BenchProgram> = if let Some(only) = &only {
        SUITE.iter().filter(|p| only.iter().any(|n| n == p.name)).collect()
    } else if smoke {
        SUITE.iter().filter(|p| SMOKE.contains(&p.name)).collect()
    } else {
        SUITE.iter().collect()
    };

    let mut rows = Vec::new();
    let mut gate_failures = Vec::new();
    for prog in &programs {
        let interp = median_time(prog, Engine::Interp, opts, repeats);
        let tracing = median_time(prog, Engine::Tracing, opts, repeats);
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        eprintln!(
            "{:28} interp {:8.2} ms   tracing {:8.2} ms   ({:.2}x)",
            prog.name,
            ms(interp),
            ms(tracing),
            ms(interp) / ms(tracing).max(1e-9),
        );
        if smoke && prog.group == "bitops" && !prog.untraceable && tracing > interp {
            gate_failures.push(prog.name);
        }
        rows.push(Json::obj([
            ("name", Json::from(prog.name)),
            ("group", Json::from(prog.group)),
            ("untraceable_by_design", Json::from(prog.untraceable)),
            ("interp_ms", Json::from(ms(interp))),
            ("tracing_ms", Json::from(ms(tracing))),
            ("tracing_speedup", Json::from(ms(interp) / ms(tracing).max(1e-9))),
        ]));
    }

    let out = Json::obj([
        ("schema", Json::from("bench_pr4/v1")),
        ("statistic", Json::from("median wall-clock, fresh VM per run")),
        ("repeats", Json::from(repeats)),
        ("smoke", Json::from(smoke)),
        ("programs", Json::Array(rows)),
    ]);
    println!("{}", out.to_string_pretty());

    if !gate_failures.is_empty() {
        eprintln!(
            "bench smoke gate FAILED: tracing median exceeds interpreter median on {}",
            gate_failures.join(", ")
        );
        std::process::exit(1);
    }
}
