//! Ablation studies for the design choices DESIGN.md calls out:
//! trace stitching (§6.2), the oracle (§3.2), nested trees (§4),
//! blacklisting (§3.3), hotness thresholds (§6.3), and the forward filter
//! pipeline (§5.1).
//!
//! For each configuration, runs the full suite under the tracing engine
//! and reports total time relative to the default configuration.

use std::time::Duration;

use tm_bench::{harness, SUITE};
use tracemonkey::{Engine, JitOptions};

fn total_time(opts: JitOptions, repeats: u32) -> Duration {
    SUITE
        .iter()
        .map(|p| harness::run_program(p, Engine::Tracing, opts, repeats).time)
        .sum()
}

fn main() {
    let repeats: u32 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let configs: Vec<(&str, Box<dyn Fn(&mut JitOptions)>)> = vec![
        ("default", Box::new(|_| {})),
        ("no stitching (§6.2)", Box::new(|o| o.enable_stitching = false)),
        ("no nesting (§4)", Box::new(|o| o.enable_nesting = false)),
        ("no oracle (§3.2)", Box::new(|o| o.enable_oracle = false)),
        ("no blacklisting (§3.3)", Box::new(|o| o.blacklist.enabled = false)),
        ("no stability linking (Fig 6)", Box::new(|o| o.enable_stability_linking = false)),
        ("no CSE (§5.1)", Box::new(|o| o.filters.cse = false)),
        ("no const folding (§5.1)", Box::new(|o| o.filters.fold = false)),
        ("no INT/DOUBLE demotion (§5.1)", Box::new(|o| o.filters.demote = false)),
        ("soft-float backend (§5.1)", Box::new(|o| o.filters.softfloat = true)),
        ("no branch traces", Box::new(|o| o.hot_exit_threshold = u32::MAX)),
        ("hotness threshold 16 (§6.3)", Box::new(|o| o.hotness_threshold = 16)),
        ("hotness threshold 64 (§6.3)", Box::new(|o| o.hotness_threshold = 64)),
    ];

    let mut base = Duration::ZERO;
    println!("{:34} {:>10} {:>10}", "configuration", "total ms", "vs default");
    for (name, f) in configs {
        let mut opts = JitOptions::default();
        f(&mut opts);
        let t = total_time(opts, repeats);
        if name == "default" {
            base = t;
        }
        println!(
            "{:34} {:>10.1} {:>9.2}x",
            name,
            t.as_secs_f64() * 1e3,
            t.as_secs_f64() / base.as_secs_f64().max(1e-9)
        );
    }
}
