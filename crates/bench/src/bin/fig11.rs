//! Figure 11: fraction of dynamic bytecodes executed by the interpreter,
//! while recording, and natively on traces, with the tracing speedup in
//! parentheses — per SunSpider program.

use tm_bench::{harness, SUITE};
use tracemonkey::{Engine, JitOptions};

fn main() {
    let opts = JitOptions::default();
    println!(
        "{:26} {:>10} {:>8} {:>8} {:>8}  {:>9}",
        "program", "bytecodes", "interp%", "record%", "native%", "(speedup)"
    );
    for prog in SUITE {
        let interp = harness::run_program(prog, Engine::Interp, opts, 2);
        let tracing = harness::run_program(prog, Engine::Tracing, opts, 2);
        let p = tracing.vm.profile().expect("tracing profile");
        let total = p.bytecodes_interp + p.bytecodes_recorded + p.bytecodes_native;
        let pct = |x: u64| 100.0 * x as f64 / total.max(1) as f64;
        println!(
            "{:26} {:>10} {:>7.1}% {:>7.1}% {:>7.1}%  ({:>6.2}x){}",
            prog.name,
            total,
            pct(p.bytecodes_interp),
            pct(p.bytecodes_recorded),
            pct(p.bytecodes_native),
            harness::speedup(interp.time, tracing.time),
            if prog.untraceable { "  [interpreter-only by design]" } else { "" }
        );
    }
    println!(
        "\npaper claim check: three programs (date-format-tofte, date-format-xparb,\n\
         regexp-dna) are not traced and run (almost) entirely in the interpreter."
    );
}
