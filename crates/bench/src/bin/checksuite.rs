//! Differential check: every suite program must produce identical results
//! under all four engines. Also reports which programs traced.
use tm_bench::{run_all_engines, SUITE};
use tracemonkey::JitOptions;

fn main() {
    let opts = JitOptions::default();
    let mut traced = 0;
    for prog in SUITE {
        let [interp, _fast, _method, tracing] = run_all_engines(prog, opts, 1);
        let trees = tracing.vm.monitor().map(|m| m.cache.len()).unwrap_or(0);
        let frac = tracing.vm.profile().map(|p| p.native_bytecode_fraction()).unwrap_or(0.0);
        if frac > 0.10 { traced += 1; }
        println!(
            "OK {:26} value={:12} trees={:2} native_frac={:5.1}% {}",
            prog.name, interp.value, trees, frac * 100.0,
            if prog.untraceable { "(untraceable by design)" } else { "" }
        );
    }
    println!("\n{traced}/26 programs spend >10% of bytecodes on trace");
}
