//! Superinstruction-fusion benchmark (`BENCH_pr5.json`): per-program
//! dispatched machine-instruction counts with the peephole pass off
//! (raw) versus on (fused), plus median wall-clock under both
//! configurations.
//!
//! The dispatched-instruction count is the executor's own tally
//! (`ProfileStats::native_insts`, where a fused superinstruction counts
//! once) and is deterministic per program — that is what the CI perf
//! gate compares against the checked-in baseline; wall-clock is
//! reported for trend inspection but never gated (too noisy for CI
//! hardware).
//!
//! Usage:
//!   `bench_pr5 [repeats]`            full 26-program suite, JSON to stdout
//!   `bench_pr5 --only a,b [reps]`    named subset only
//!   `bench_pr5 --smoke [reps]`       pinned 3-program subset
//!                                    (bitops-bits-in-byte,
//!                                    bitops-bitwise-and, access-nsieve)
//!   `bench_pr5 --baseline FILE`      gate: exit non-zero if any program's
//!                                    fused dispatched count exceeds the
//!                                    baseline's by more than 5%
//!
//! `--smoke` additionally gates the tentpole claim itself: the aggregate
//! dispatched-instruction reduction over the smoke programs must be at
//! least 25%.

use std::time::{Duration, Instant};

use tm_bench::{BenchProgram, SUITE};
use tm_support::Json;
use tracemonkey::{Engine, JitOptions, Vm};

/// Pinned perf-smoke subset (ISSUE satellite: three fast programs from
/// the groups the acceptance bar names, bitops and access).
const SMOKE: &[&str] = &["bitops-bits-in-byte", "bitops-bitwise-and", "access-nsieve"];

/// Maximum tolerated growth of a program's fused dispatched-instruction
/// count relative to the checked-in baseline (5%).
const REGRESSION_TOLERANCE: f64 = 1.05;

/// Minimum aggregate dispatch reduction the smoke gate demands.
const MIN_SMOKE_REDUCTION_PCT: f64 = 25.0;

/// Deterministic per-run counters harvested from the monitor profiler.
struct Counts {
    /// Machine instructions dispatched on trace (fused counts once).
    dispatched: u64,
    /// Of `dispatched`, how many were fused superinstructions.
    fused_dispatched: u64,
    /// Superinstructions the peephole pass emitted (static).
    superinsts: u64,
    /// Instructions the pass removed from compiled code (static).
    removed: u64,
}

fn counts(prog: &BenchProgram, opts: JitOptions) -> Counts {
    let mut vm = Vm::with_options(Engine::Tracing, opts);
    vm.eval(prog.source)
        .unwrap_or_else(|e| panic!("{} failed under tracing: {e}", prog.name));
    let stats = &vm.monitor().expect("tracing engine has a monitor").profiler.stats;
    Counts {
        dispatched: stats.native_insts,
        fused_dispatched: stats.native_insts_fused,
        superinsts: stats.fused_superinsts,
        removed: stats.fuse_insts_removed,
    }
}

/// Median of `repeats` fresh-VM wall-clock runs (each run includes
/// compilation, SunSpider-style).
fn median_time(prog: &BenchProgram, opts: JitOptions, repeats: u32) -> Duration {
    let mut times: Vec<Duration> = (0..repeats.max(1))
        .map(|_| {
            let mut vm = Vm::with_options(Engine::Tracing, opts);
            let start = Instant::now();
            vm.eval(prog.source)
                .unwrap_or_else(|e| panic!("{} failed under tracing: {e}", prog.name));
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// `name -> fused dispatched count` from a previous bench_pr5 JSON.
fn load_baseline(path: &str) -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
    doc.get("programs")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("baseline {path} has no programs array"))
        .iter()
        .filter_map(|row| {
            let name = row.get("name")?.as_str()?;
            let fused = row.get("fused_dispatched")?.as_u64()?;
            Some((name.to_owned(), fused))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let only: Option<Vec<String>> =
        flag_value("--only").map(|names| names.split(',').map(str::to_string).collect());
    let baseline_path = flag_value("--baseline");
    let repeats: u32 = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            // A bare integer that is not the operand of --only/--baseline.
            let prev = i.checked_sub(1).and_then(|p| args.get(p));
            !matches!(prev.map(String::as_str), Some("--only" | "--baseline"))
                && a.parse::<u32>().is_ok()
        })
        .find_map(|(_, a)| a.parse().ok())
        .unwrap_or(if smoke { 3 } else { 5 });

    let raw_opts = JitOptions { enable_fusion: false, ..JitOptions::default() };
    let fused_opts = JitOptions::default();

    let programs: Vec<&BenchProgram> = if let Some(only) = &only {
        SUITE.iter().filter(|p| only.iter().any(|n| n == p.name)).collect()
    } else if smoke {
        SUITE.iter().filter(|p| SMOKE.contains(&p.name)).collect()
    } else {
        SUITE.iter().collect()
    };

    let baseline = baseline_path.as_deref().map(load_baseline);
    let mut rows = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();
    let mut total_raw: u64 = 0;
    let mut total_fused: u64 = 0;
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let pct = |raw: u64, fused: u64| {
        if raw == 0 { 0.0 } else { 100.0 * (raw - fused.min(raw)) as f64 / raw as f64 }
    };

    for prog in &programs {
        let raw = counts(prog, raw_opts);
        let fused = counts(prog, fused_opts);
        let raw_ms = median_time(prog, raw_opts, repeats);
        let fused_ms = median_time(prog, fused_opts, repeats);
        let reduction = pct(raw.dispatched, fused.dispatched);
        total_raw += raw.dispatched;
        total_fused += fused.dispatched;
        eprintln!(
            "{:28} raw {:>12} insts   fused {:>12} insts   (-{:5.1}%)   {:8.2} -> {:8.2} ms",
            prog.name,
            raw.dispatched,
            fused.dispatched,
            reduction,
            ms(raw_ms),
            ms(fused_ms),
        );
        if let Some(base) = &baseline {
            match base.iter().find(|(n, _)| n == prog.name) {
                Some((_, base_fused)) => {
                    let limit = (*base_fused as f64 * REGRESSION_TOLERANCE).ceil() as u64;
                    if fused.dispatched > limit {
                        gate_failures.push(format!(
                            "{}: fused dispatched {} exceeds baseline {} by >5%",
                            prog.name, fused.dispatched, base_fused
                        ));
                    }
                }
                None => gate_failures
                    .push(format!("{}: missing from baseline {:?}", prog.name, baseline_path)),
            }
        }
        rows.push(Json::obj([
            ("name", Json::from(prog.name)),
            ("group", Json::from(prog.group)),
            ("untraceable_by_design", Json::from(prog.untraceable)),
            ("raw_dispatched", Json::from(raw.dispatched)),
            ("fused_dispatched", Json::from(fused.dispatched)),
            ("dispatch_reduction_pct", Json::from(reduction)),
            (
                "superinst_share_pct",
                Json::from(if fused.dispatched == 0 {
                    0.0
                } else {
                    100.0 * fused.fused_dispatched as f64 / fused.dispatched as f64
                }),
            ),
            ("static_superinsts", Json::from(fused.superinsts)),
            ("static_insts_removed", Json::from(fused.removed)),
            ("raw_ms", Json::from(ms(raw_ms))),
            ("fused_ms", Json::from(ms(fused_ms))),
            ("wall_clock_speedup", Json::from(ms(raw_ms) / ms(fused_ms).max(1e-9))),
        ]));
    }

    // Per-group aggregates (the acceptance bar is stated per group).
    let mut groups: Vec<(&str, u64, u64)> = Vec::new();
    for (prog, row) in programs.iter().zip(&rows) {
        let raw = row.get("raw_dispatched").and_then(Json::as_u64).unwrap();
        let fused = row.get("fused_dispatched").and_then(Json::as_u64).unwrap();
        match groups.iter_mut().find(|(g, _, _)| *g == prog.group) {
            Some(entry) => {
                entry.1 += raw;
                entry.2 += fused;
            }
            None => groups.push((prog.group, raw, fused)),
        }
    }
    let group_rows: Vec<Json> = groups
        .iter()
        .map(|&(group, raw, fused)| {
            Json::obj([
                ("group", Json::from(group)),
                ("raw_dispatched", Json::from(raw)),
                ("fused_dispatched", Json::from(fused)),
                ("dispatch_reduction_pct", Json::from(pct(raw, fused))),
            ])
        })
        .collect();

    let total_reduction = pct(total_raw, total_fused);
    eprintln!(
        "total: raw {total_raw} -> fused {total_fused} dispatched insts (-{total_reduction:.1}%)"
    );
    if smoke && total_reduction < MIN_SMOKE_REDUCTION_PCT {
        gate_failures.push(format!(
            "aggregate dispatch reduction {total_reduction:.1}% is below the \
             {MIN_SMOKE_REDUCTION_PCT}% smoke bar"
        ));
    }

    let out = Json::obj([
        ("schema", Json::from("bench_pr5/v1")),
        (
            "statistic",
            Json::from(
                "dispatched machine instructions (deterministic, gated) and \
                 median wall-clock of fresh-VM runs (reported, ungated)",
            ),
        ),
        ("repeats", Json::from(repeats)),
        ("smoke", Json::from(smoke)),
        ("total_raw_dispatched", Json::from(total_raw)),
        ("total_fused_dispatched", Json::from(total_fused)),
        ("total_dispatch_reduction_pct", Json::from(total_reduction)),
        ("programs", Json::Array(rows)),
        ("groups", Json::Array(group_rows)),
    ]);
    println!("{}", out.to_string_pretty());

    if !gate_failures.is_empty() {
        eprintln!("bench_pr5 perf gate FAILED:");
        for f in &gate_failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
