//! Native-tier benchmark (`BENCH_pr10.json`): every suite program run
//! through the tracing JIT twice — decoded dispatch-loop executor versus
//! the native x86-64 backend — with four kinds of output:
//!
//! * **identity** (gated, deterministic): the two tiers must print the
//!   same result and report identical per-trace accounting
//!   (`native_insts`, `trace_enters`, `side_exits`, `bytecodes_native`)
//!   — the native tier is required to be observationally invisible;
//! * **coverage** (gated with `--baseline`): which programs actually ran
//!   native code (`native_exits > 0`) and the per-entry accounting
//!   invariant `native_exits + native_fallbacks == trace_enters`. A
//!   program that ran natively in the checked-in baseline must keep
//!   doing so, a program that ran with zero fallbacks must stay
//!   fallback-free, and its dispatched-instruction count must stay
//!   within 5%;
//! * **per-group uptake** (gated on `access` and `string`): native-tier
//!   exits vs fallbacks summed per suite group. With the full-coverage
//!   emitter the object/string-heavy groups must execute majority-native
//!   (`native_exits > native_fallbacks`), not just bitops;
//! * **wall-clock** (gated on bitops and access): median fresh-VM run
//!   time per tier. Bitops is pure traced integer code; access is the
//!   newly-covered shape-guard/array group — `ci.sh` requires the native
//!   aggregate to beat decoded dispatch on both. Other groups' timings
//!   are reported for trend inspection, never gated (too noisy).
//!
//! On targets without the backend the binary prints a skipped marker and
//! exits 0, so callers need no target detection of their own.
//!
//! Usage:
//!   `bench_native [repeats]`          full suite, JSON to stdout
//!   `bench_native --smoke [reps]`     bitops + access-nsieve subset
//!   `bench_native --only a,b [reps]`  named subset only
//!   `bench_native --baseline FILE`    gate coverage/dispatch vs a
//!                                     checked-in BENCH_pr10.json

use std::time::{Duration, Instant};

use tm_bench::{BenchProgram, SUITE};
use tm_support::Json;
use tracemonkey::{Engine, JitOptions, Vm};

/// Pinned perf-smoke subset: the whole gated bitops group plus shape-
/// guard/array and string representatives of the full-coverage emitter.
const SMOKE: &[&str] = &[
    "bitops-3bit-bits-in-byte",
    "bitops-bits-in-byte",
    "bitops-bitwise-and",
    "bitops-nsieve-bits",
    "access-nsieve",
    "string-fasta",
];

/// Groups whose native-uptake majority and (for the wall-clock gate,
/// `access` only) aggregate run time are gated, beyond bitops. These are
/// the object/string groups the full-coverage emitter exists for.
const GATED_UPTAKE_GROUPS: &[&str] = &["access", "string"];

/// Tolerated growth of a program's dispatched-instruction count
/// relative to the checked-in baseline.
const REGRESSION_TOLERANCE: f64 = 1.05;

/// One tier's deterministic counters plus the displayed result.
struct Run {
    shown: String,
    dispatched: u64,
    trace_enters: u64,
    side_exits: u64,
    bytecodes_native: u64,
    native_exits: u64,
    native_fallbacks: u64,
    native_fragments: u64,
}

fn opts(native: bool) -> JitOptions {
    JitOptions { native_backend: native, ..JitOptions::default() }
}

fn run_once(prog: &BenchProgram, native: bool) -> Run {
    let mut vm = Vm::with_options(Engine::Tracing, opts(native));
    let v = vm
        .eval(prog.source)
        .unwrap_or_else(|e| panic!("{} failed under tracing: {e}", prog.name));
    let shown = tracemonkey::runtime::ops::to_display(&mut vm.realm, v);
    let stats = &vm.monitor().expect("tracing engine has a monitor").profiler.stats;
    Run {
        shown,
        dispatched: stats.native_insts,
        trace_enters: stats.trace_enters,
        side_exits: stats.side_exits,
        bytecodes_native: stats.bytecodes_native,
        native_exits: stats.native_exits,
        native_fallbacks: stats.native_fallbacks,
        native_fragments: stats.native_fragments,
    }
}

/// Median of `repeats` fresh-VM wall-clock runs.
fn median_time(prog: &BenchProgram, native: bool, repeats: u32) -> Duration {
    let mut times: Vec<Duration> = (0..repeats.max(1))
        .map(|_| {
            let mut vm = Vm::with_options(Engine::Tracing, opts(native));
            let start = Instant::now();
            vm.eval(prog.source)
                .unwrap_or_else(|e| panic!("{} failed under tracing: {e}", prog.name));
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// `name -> (ran_native, zero_fallback, dispatched)` from a previous
/// bench_native JSON. `zero_fallback` is absent in pre-PR-10 baselines
/// and defaults to `false` (not gated).
fn load_baseline(path: &str) -> Vec<(String, bool, bool, u64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
    doc.get("programs")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("baseline {path} has no programs array"))
        .iter()
        .filter_map(|row| {
            let name = row.get("name")?.as_str()?;
            let ran = row.get("ran_native")?.as_bool()?;
            let zero_fallback =
                row.get("zero_fallback").and_then(Json::as_bool).unwrap_or(false);
            let dispatched = row.get("dispatched")?.as_u64()?;
            Some((name.to_owned(), ran, zero_fallback, dispatched))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let only: Option<Vec<String>> =
        flag_value("--only").map(|names| names.split(',').map(str::to_string).collect());
    let baseline_path = flag_value("--baseline");
    let repeats: u32 = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            let prev = i.checked_sub(1).and_then(|p| args.get(p));
            !matches!(prev.map(String::as_str), Some("--only" | "--baseline"))
                && a.parse::<u32>().is_ok()
        })
        .find_map(|(_, a)| a.parse().ok())
        .unwrap_or(if smoke { 3 } else { 5 });

    if !tracemonkey::nanojit::native_supported() {
        println!(
            "{}",
            Json::obj([
                ("schema", Json::from("bench_native/v1")),
                ("skipped", Json::from(true)),
                ("reason", Json::from("no native backend for this target")),
            ])
            .to_string_pretty()
        );
        return;
    }

    let programs: Vec<&BenchProgram> = if let Some(only) = &only {
        SUITE.iter().filter(|p| only.iter().any(|n| n == p.name)).collect()
    } else if smoke {
        SUITE.iter().filter(|p| SMOKE.contains(&p.name)).collect()
    } else {
        SUITE.iter().collect()
    };

    let baseline = baseline_path.as_deref().map(load_baseline);
    let mut rows = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();
    let mut bitops_decoded = Duration::ZERO;
    let mut bitops_native = Duration::ZERO;
    // group -> (exits, fallbacks, enters, decoded time, native time)
    let mut by_group: Vec<(&str, u64, u64, u64, Duration, Duration)> = Vec::new();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;

    for prog in &programs {
        let decoded = run_once(prog, false);
        let native = run_once(prog, true);

        // Identity gate: the native tier must be observationally
        // invisible — same program result, same per-trace accounting.
        if native.shown != decoded.shown {
            gate_failures.push(format!(
                "{}: native printed {:?}, decoded printed {:?}",
                prog.name, native.shown, decoded.shown
            ));
        }
        for (what, n, d) in [
            ("dispatched insts", native.dispatched, decoded.dispatched),
            ("trace enters", native.trace_enters, decoded.trace_enters),
            ("side exits", native.side_exits, decoded.side_exits),
            ("native bytecodes", native.bytecodes_native, decoded.bytecodes_native),
        ] {
            if n != d {
                gate_failures.push(format!(
                    "{}: {what} diverge (native {n}, decoded {d})",
                    prog.name
                ));
            }
        }
        if native.native_exits + native.native_fallbacks != native.trace_enters {
            gate_failures.push(format!(
                "{}: native_exits {} + native_fallbacks {} != trace_enters {}",
                prog.name, native.native_exits, native.native_fallbacks, native.trace_enters
            ));
        }

        let decoded_ms = median_time(prog, false, repeats);
        let native_ms = median_time(prog, true, repeats);
        if prog.group == "bitops" {
            bitops_decoded += decoded_ms;
            bitops_native += native_ms;
        }
        {
            let g = match by_group.iter_mut().find(|g| g.0 == prog.group) {
                Some(g) => g,
                None => {
                    by_group.push((prog.group, 0, 0, 0, Duration::ZERO, Duration::ZERO));
                    by_group.last_mut().expect("just pushed")
                }
            };
            g.1 += native.native_exits;
            g.2 += native.native_fallbacks;
            g.3 += native.trace_enters;
            g.4 += decoded_ms;
            g.5 += native_ms;
        }
        let ran_native = native.native_exits > 0;
        let coverage = if native.trace_enters == 0 {
            0.0
        } else {
            100.0 * native.native_exits as f64 / native.trace_enters as f64
        };
        eprintln!(
            "{:28} {:>12} insts   native exits {:>7}/{:<7}   {:8.2} -> {:8.2} ms ({:.2}x)",
            prog.name,
            native.dispatched,
            native.native_exits,
            native.trace_enters,
            ms(decoded_ms),
            ms(native_ms),
            ms(decoded_ms) / ms(native_ms).max(1e-9),
        );

        if let Some(base) = &baseline {
            match base.iter().find(|(n, _, _, _)| n == prog.name) {
                Some((_, base_ran, base_zero_fallback, base_dispatched)) => {
                    if *base_ran && !ran_native {
                        gate_failures.push(format!(
                            "{}: ran natively in the baseline but fell back now",
                            prog.name
                        ));
                    }
                    if *base_zero_fallback && native.native_fallbacks > 0 {
                        gate_failures.push(format!(
                            "{}: fallback-free in the baseline but fell back {} times now",
                            prog.name, native.native_fallbacks
                        ));
                    }
                    let limit =
                        (*base_dispatched as f64 * REGRESSION_TOLERANCE).ceil() as u64;
                    if native.dispatched > limit {
                        gate_failures.push(format!(
                            "{}: dispatched {} exceeds baseline {} by >5%",
                            prog.name, native.dispatched, base_dispatched
                        ));
                    }
                }
                None => gate_failures
                    .push(format!("{}: missing from baseline {:?}", prog.name, baseline_path)),

            }
        }

        rows.push(Json::obj([
            ("name", Json::from(prog.name)),
            ("group", Json::from(prog.group)),
            ("untraceable_by_design", Json::from(prog.untraceable)),
            ("dispatched", Json::from(native.dispatched)),
            ("trace_enters", Json::from(native.trace_enters)),
            ("native_exits", Json::from(native.native_exits)),
            ("native_fallbacks", Json::from(native.native_fallbacks)),
            ("native_fragments", Json::from(native.native_fragments)),
            ("ran_native", Json::from(ran_native)),
            (
                "zero_fallback",
                Json::from(native.trace_enters > 0 && native.native_fallbacks == 0),
            ),
            ("native_coverage_pct", Json::from(coverage)),
            ("decoded_ms", Json::from(ms(decoded_ms))),
            ("native_ms", Json::from(ms(native_ms))),
            ("wall_clock_speedup", Json::from(ms(decoded_ms) / ms(native_ms).max(1e-9))),
        ]));
    }

    // Per-group native uptake: the full-coverage emitter's whole point is
    // that the object/string groups execute majority-native, so `access`
    // and `string` are gated on `native_exits > native_fallbacks`; the
    // newly-covered `access` group must also win on wall clock.
    let mut group_rows = Vec::new();
    for (group, exits, fallbacks, enters, dec_t, nat_t) in &by_group {
        let majority = exits > fallbacks;
        eprintln!(
            "group {group:12} native exits {exits:>9}/{enters:<9} fallbacks {fallbacks:>7}   \
             {:8.2} -> {:8.2} ms ({:.2}x)",
            ms(*dec_t),
            ms(*nat_t),
            ms(*dec_t) / ms(*nat_t).max(1e-9),
        );
        if GATED_UPTAKE_GROUPS.contains(group) && *enters > 0 && !majority {
            gate_failures.push(format!(
                "group {group}: not majority-native ({exits} exits vs {fallbacks} fallbacks)"
            ));
        }
        if *group == "access" && *dec_t > Duration::ZERO && nat_t >= dec_t {
            gate_failures.push(format!(
                "access group: native {:.2} ms does not beat decoded {:.2} ms",
                ms(*nat_t),
                ms(*dec_t)
            ));
        }
        group_rows.push(Json::obj([
            ("group", Json::from(*group)),
            ("native_exits", Json::from(*exits)),
            ("native_fallbacks", Json::from(*fallbacks)),
            ("trace_enters", Json::from(*enters)),
            ("majority_native", Json::from(majority)),
            ("decoded_ms", Json::from(ms(*dec_t))),
            ("native_ms", Json::from(ms(*nat_t))),
            ("wall_clock_speedup", Json::from(ms(*dec_t) / ms(*nat_t).max(1e-9))),
        ]));
    }

    // The tentpole wall-clock gate: on the pure-int bitops group the
    // native tier must beat decoded dispatch outright.
    if bitops_decoded > Duration::ZERO && bitops_native >= bitops_decoded {
        gate_failures.push(format!(
            "bitops group: native {:.2} ms does not beat decoded {:.2} ms",
            ms(bitops_native),
            ms(bitops_decoded)
        ));
    }
    if bitops_decoded > Duration::ZERO {
        eprintln!(
            "bitops group: decoded {:.2} ms -> native {:.2} ms ({:.2}x)",
            ms(bitops_decoded),
            ms(bitops_native),
            ms(bitops_decoded) / ms(bitops_native).max(1e-9)
        );
    }

    let out = Json::obj([
        ("schema", Json::from("bench_native/v1")),
        (
            "statistic",
            Json::from(
                "decoded-executor vs native-x86-64 tier: result/accounting \
                 identity and native coverage (deterministic, gated), median \
                 fresh-VM wall-clock (gated on the bitops group only)",
            ),
        ),
        ("repeats", Json::from(repeats)),
        ("smoke", Json::from(smoke)),
        ("bitops_decoded_ms", Json::from(ms(bitops_decoded))),
        ("bitops_native_ms", Json::from(ms(bitops_native))),
        (
            "bitops_speedup",
            Json::from(ms(bitops_decoded) / ms(bitops_native).max(1e-9)),
        ),
        ("groups", Json::Array(group_rows)),
        ("programs", Json::Array(rows)),
    ]);
    println!("{}", out.to_string_pretty());

    if !gate_failures.is_empty() {
        eprintln!("bench_native perf gate FAILED:");
        for f in &gate_failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
