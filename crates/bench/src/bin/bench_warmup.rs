//! Warm-start benchmark (`BENCH_pr7.json`): time-to-peak under a cold
//! JIT versus a JIT warm-started from the persistent trace cache
//! (`docs/PERSISTENCE.md`).
//!
//! Per program, the harness drives the same cache file with **fresh
//! VMs**: a *cold* run records traces and persists them, follow-up runs
//! keep appending until the cache reaches its fixed point (a warmed run
//! has native coverage from iteration 0, so side exits that never got
//! hot under the cold ramp can become hot and extend the trees — each
//! quiescing run saves its additions), and the final *warm* run must
//! install everything from disk and record **nothing**. The headline
//! statistic is deterministic: `warm_bytecodes`, the number of
//! bytecodes executed outside compiled traces (interpreted plus
//! recorded). A warmed run skips the entire hotness/record/compile
//! ramp, so its count must be strictly lower than the cold run's on
//! every program that traces. Wall-clock time-to-peak is reported for
//! trend inspection but never gated.
//!
//! Usage:
//!   `bench_warmup [repeats]`          full 26-program suite, JSON to stdout
//!   `bench_warmup --smoke [reps]`     pinned fast subset (see `SMOKE`)
//!   `bench_warmup --only a,b [reps]`  named subset only
//!   `bench_warmup --baseline FILE`    additionally gate: exit non-zero if a
//!                                     program's warm bytecode count exceeds
//!                                     the checked-in baseline by >5%, or a
//!                                     program warm-started in the baseline
//!                                     no longer does
//!   `bench_warmup --phase cold|warm|both`
//!                                     `cold` records, persists, and
//!                                     converges the caches; `warm` gates a
//!                                     single strict run against caches
//!                                     written by an earlier process (the
//!                                     ci.sh fresh-process warm-start
//!                                     stage)
//!   `bench_warmup --cache-dir DIR`    where cache files live (default: a
//!                                     fixed directory under the system
//!                                     temp dir)
//!
//! Gates (always on for the programs in the run):
//!   1. every warmed run hits the cache (`cache_hits == 1`);
//!   2. the cache quiesces within `MAX_WARM_RUNS` fresh VMs, and the
//!      final warm run records nothing (`traces_completed == 0 &&
//!      traces_aborted == 0`) — strict on the *first* run in `--phase
//!      warm`, whose caches are already converged;
//!   3. the final warm run installs at least every tree and fragment the
//!      cold run recorded (`cache_loaded_trees`/`cache_loaded_fragments`);
//!   4. on every program whose warm run enters compiled traces,
//!      `warm_bytecodes < cold_bytecodes` (the time-to-peak claim). A
//!      program may instead converge to *zero* trace entries: the §3.3
//!      short-loop/blacklist machinery decided tracing it is
//!      unprofitable, and the cache persists that verdict — the warmed
//!      run then skips the whole futile record/compile tax and runs at
//!      interpreter speed (reported as `converged_to_interp`);
//!   5. with `--baseline`, no >5% regression of `warm_bytecodes`, and no
//!      program flipping from warm-started to converged-to-interp.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use tm_bench::{BenchProgram, SUITE};
use tm_support::Json;
use tracemonkey::{Engine, JitOptions, Vm};

/// Pinned warm-start smoke subset: cheap programs covering loops,
/// floating point, strings, and recursion (the trace shapes the cache
/// must round-trip).
const SMOKE: &[&str] = &[
    "bitops-3bit-bits-in-byte",
    "math-partial-sums",
    "string-unpack-code",
    "date-format-xparb",
    "controlflow-recursive",
];

/// A warm run's bytecode count may exceed the checked-in baseline by at
/// most this factor (the count is deterministic; the slack absorbs
/// future recorder/oracle tuning, not jitter).
const BASELINE_TOLERANCE: f64 = 1.05;

/// Maximum fresh-VM runs (after the cold one) the cache may take to
/// quiesce. Warmed runs legitimately extend the trees — native coverage
/// from iteration 0 drives side exits hot that the cold ramp never
/// reached — but the growth must reach a fixed point fast.
const MAX_WARM_RUNS: u32 = 6;

/// Everything the gates need from one tracing run.
struct RunStats {
    /// Bytecodes executed outside compiled traces: interpreted while
    /// cold/monitoring plus replayed under the recorder. The
    /// time-to-peak proxy.
    warmup_bytecodes: u64,
    trees: u64,
    fragments: u64,
    traces_completed: u64,
    traces_aborted: u64,
    trace_enters: u64,
    cache_hits: u64,
    cache_loaded_trees: u64,
    cache_loaded_fragments: u64,
    wall: Duration,
}

fn tracing_run(prog: &BenchProgram, cache: Option<PathBuf>) -> RunStats {
    let mut vm = Vm::with_options(Engine::Tracing, JitOptions::default());
    vm.set_cache_path(cache);
    let start = Instant::now();
    vm.eval(prog.source)
        .unwrap_or_else(|e| panic!("{} failed under tracing: {e}", prog.name));
    let wall = start.elapsed();
    if let Some(e) = vm.last_cache_error() {
        panic!("{}: cache rejected: {e}", prog.name);
    }
    let stats = &vm.monitor().expect("tracing engine has a monitor").profiler.stats;
    RunStats {
        warmup_bytecodes: stats.bytecodes_interp + stats.bytecodes_recorded,
        trees: stats.trees,
        fragments: stats.fragments,
        traces_completed: stats.traces_completed,
        traces_aborted: stats.traces_aborted,
        trace_enters: stats.trace_enters,
        cache_hits: stats.cache_hits,
        cache_loaded_trees: stats.cache_loaded_trees,
        cache_loaded_fragments: stats.cache_loaded_fragments,
        wall,
    }
}

/// Median wall-clock of `repeats` fresh-VM runs against `cache` (the
/// cache file is pre-populated and never rewritten by a pure warm run,
/// so repeats are independent).
fn median_wall(prog: &BenchProgram, cache: Option<&PathBuf>, repeats: u32) -> Duration {
    let mut times: Vec<Duration> =
        (0..repeats.max(1)).map(|_| tracing_run(prog, cache.cloned()).wall).collect();
    times.sort();
    times[times.len() / 2]
}

/// `name -> (warm_bytecodes, entered_traces_when_warm)` from a previous
/// bench_warmup JSON.
fn load_baseline(path: &str) -> Vec<(String, u64, bool)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
    doc.get("programs")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("baseline {path} has no programs array"))
        .iter()
        .filter_map(|row| {
            let name = row.get("name")?.as_str()?;
            let warm = row.get("warm_bytecodes")?.as_u64()?;
            let entered = row.get("warm_trace_enters")?.as_u64()? > 0;
            Some((name.to_owned(), warm, entered))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let only: Option<Vec<String>> =
        flag_value("--only").map(|names| names.split(',').map(str::to_string).collect());
    let baseline_path = flag_value("--baseline");
    let phase = flag_value("--phase").unwrap_or_else(|| "both".to_owned());
    if !matches!(phase.as_str(), "cold" | "warm" | "both") {
        eprintln!("bench_warmup: --phase must be cold, warm, or both");
        std::process::exit(2);
    }
    let cache_dir = flag_value("--cache-dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("tm-warmup-cache"));
    let repeats: u32 = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            let prev = i.checked_sub(1).and_then(|p| args.get(p));
            !matches!(
                prev.map(String::as_str),
                Some("--only" | "--baseline" | "--phase" | "--cache-dir")
            ) && a.parse::<u32>().is_ok()
        })
        .find_map(|(_, a)| a.parse().ok())
        .unwrap_or(if smoke { 3 } else { 5 });

    let programs: Vec<&BenchProgram> = if let Some(only) = &only {
        SUITE.iter().filter(|p| only.iter().any(|n| n == p.name)).collect()
    } else if smoke {
        SUITE.iter().filter(|p| SMOKE.contains(&p.name)).collect()
    } else {
        SUITE.iter().collect()
    };

    std::fs::create_dir_all(&cache_dir)
        .unwrap_or_else(|e| panic!("cannot create cache dir {}: {e}", cache_dir.display()));

    let baseline = baseline_path.as_deref().map(load_baseline);
    let mut rows = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;

    for prog in &programs {
        let cache_file = cache_dir.join(format!("{}.tmc", prog.name));

        // Cold phase: start from an empty cache, record, persist.
        let cold = if phase == "warm" {
            // Fresh-process warm start: the cache was converged by an
            // earlier invocation. Measure the cold reference with the
            // cache disabled so the file is untouched.
            tracing_run(prog, None)
        } else {
            let _ = std::fs::remove_file(&cache_file);
            tracing_run(prog, Some(cache_file.clone()))
        };
        if phase != "warm" && !cache_file.is_file() {
            panic!("{}: cold run did not write {}", prog.name, cache_file.display());
        }

        // Warmed runs until the cache quiesces. In `--phase warm` the
        // caches were converged by the cold process, so the very first
        // run must already be quiet (the fresh-process guarantee ci.sh
        // gates on).
        let mut warm_runs = 0u32;
        let warm = loop {
            let w = tracing_run(prog, Some(cache_file.clone()));
            warm_runs += 1;
            if w.cache_hits != 1 {
                gate_failures.push(format!(
                    "{}: warmed run {warm_runs} missed the cache (hits = {})",
                    prog.name, w.cache_hits
                ));
                break w;
            }
            if w.traces_completed == 0 && w.traces_aborted == 0 {
                break w;
            }
            if phase == "warm" {
                gate_failures.push(format!(
                    "{}: fresh-process warm run recorded ({} completed, {} aborted) \
                     against a converged cache",
                    prog.name, w.traces_completed, w.traces_aborted
                ));
                break w;
            }
            if warm_runs >= MAX_WARM_RUNS {
                gate_failures.push(format!(
                    "{}: cache did not quiesce within {MAX_WARM_RUNS} warmed runs \
                     (last run: {} completed, {} aborted)",
                    prog.name, w.traces_completed, w.traces_aborted
                ));
                break w;
            }
        };
        if phase == "cold" {
            eprintln!(
                "{:28} cold {:>12} bytecodes   {} trees persisted, converged after \
                 {warm_runs} warmed runs",
                prog.name, cold.warmup_bytecodes, warm.cache_loaded_trees
            );
            continue;
        }
        if warm.cache_loaded_trees < cold.trees
            || warm.cache_loaded_fragments < cold.fragments
        {
            gate_failures.push(format!(
                "{}: final warm run installed {} trees / {} fragments but the cold \
                 run recorded {} / {}",
                prog.name,
                warm.cache_loaded_trees,
                warm.cache_loaded_fragments,
                cold.trees,
                cold.fragments
            ));
        }
        let converged_to_interp = warm.trace_enters == 0 && cold.trees > 0;
        if cold.trees > 0 && !converged_to_interp
            && warm.warmup_bytecodes >= cold.warmup_bytecodes
        {
            gate_failures.push(format!(
                "{}: no time-to-peak win — warm executed {} non-native bytecodes, \
                 cold {}",
                prog.name, warm.warmup_bytecodes, cold.warmup_bytecodes
            ));
        }
        if let Some(base) = &baseline {
            if let Some((_, base_warm, base_entered)) =
                base.iter().find(|(n, _, _)| n == prog.name)
            {
                if *base_entered && converged_to_interp {
                    gate_failures.push(format!(
                        "{}: warm-started in the baseline but converges to \
                         interpreter-only now",
                        prog.name
                    ));
                } else if *base_entered {
                    let limit = (*base_warm as f64 * BASELINE_TOLERANCE) as u64;
                    if warm.warmup_bytecodes > limit {
                        gate_failures.push(format!(
                            "{}: warm bytecodes {} exceed baseline {} by more than {}x",
                            prog.name, warm.warmup_bytecodes, base_warm,
                            BASELINE_TOLERANCE
                        ));
                    }
                }
            }
        }

        let cold_ms = if phase == "both" && repeats > 1 {
            // Extra cold repeats must not clobber the cache the gated
            // warm run just validated; measure with the cache disabled.
            ms(median_wall(prog, None, repeats - 1).min(cold.wall))
        } else {
            ms(cold.wall)
        };
        let warm_ms = if repeats > 1 {
            ms(median_wall(prog, Some(&cache_file), repeats - 1).min(warm.wall))
        } else {
            ms(warm.wall)
        };
        let reduction = if cold.warmup_bytecodes > 0 {
            1.0 - warm.warmup_bytecodes as f64 / cold.warmup_bytecodes as f64
        } else {
            0.0
        };
        eprintln!(
            "{:28} cold {:>12} bytecodes {:8.2} ms   warm {:>10} bytecodes \
             {:8.2} ms   {:5.1}% ramp cut, {} trees{}",
            prog.name,
            cold.warmup_bytecodes,
            cold_ms,
            warm.warmup_bytecodes,
            warm_ms,
            reduction * 100.0,
            warm.cache_loaded_trees,
            if converged_to_interp { "   [converged_to_interp]" } else { "" },
        );
        rows.push(Json::obj([
            ("name", Json::from(prog.name)),
            ("group", Json::from(prog.group)),
            ("untraceable_by_design", Json::from(prog.untraceable)),
            ("cold_bytecodes", Json::from(cold.warmup_bytecodes)),
            ("warm_bytecodes", Json::from(warm.warmup_bytecodes)),
            ("warmup_reduction", Json::from(reduction)),
            ("trees", Json::from(cold.trees)),
            ("warm_runs_to_quiesce", Json::from(warm_runs)),
            ("loaded_trees", Json::from(warm.cache_loaded_trees)),
            ("loaded_fragments", Json::from(warm.cache_loaded_fragments)),
            ("warm_trace_enters", Json::from(warm.trace_enters)),
            ("converged_to_interp", Json::from(converged_to_interp)),
            ("cold_ms", Json::from(cold_ms)),
            ("warm_ms", Json::from(warm_ms)),
            ("time_to_peak_speedup", Json::from(cold_ms / warm_ms.max(1e-9))),
        ]));
    }

    if phase == "cold" {
        if !gate_failures.is_empty() {
            eprintln!("bench_warmup cold/converge phase FAILED:");
            for f in &gate_failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "bench_warmup: cold phase done, converged caches in {}",
            cache_dir.display()
        );
        return;
    }

    let out = Json::obj([
        ("schema", Json::from("bench_warmup/v1")),
        (
            "statistic",
            Json::from(
                "non-native (interpreted + recorded) bytecodes to reach peak under a \
                 cold JIT vs one warm-started from the persistent trace cache; \
                 wall-clock reported, never gated",
            ),
        ),
        ("repeats", Json::from(repeats)),
        ("smoke", Json::from(smoke)),
        ("phase", Json::from(phase.as_str())),
        ("programs", Json::Array(rows)),
    ]);
    println!("{}", out.to_string_pretty());

    if !gate_failures.is_empty() {
        eprintln!("bench_warmup warm-start gate FAILED:");
        for f in &gate_failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
