fn main() { println!("Op = {} bytes", std::mem::size_of::<tm_bytecode::Op>()); }
