//! Trace-coverage benchmark (`BENCH_pr6.json`): per-program and
//! per-group fused dispatched-instruction counts under the tracing
//! engine, plus median wall-clock under tracing versus the baseline
//! interpreter.
//!
//! This is the harness behind the recursion/builtin coverage work: the
//! gate asserts that **no suite group reports zero fused dispatched
//! instructions** unless every program in the group is flagged
//! `untraceable_by_design` (the paper's never-tracing benchmarks). The
//! dispatched count is the executor's own deterministic tally
//! (`ProfileStats::native_insts_fused`); wall-clock is reported for the
//! interpreter-parity check and trend inspection.
//!
//! Usage:
//!   `bench_pr6 [repeats]`            full 26-program suite, JSON to stdout
//!   `bench_pr6 --only a,b [reps]`    named subset only
//!   `bench_pr6 --smoke [reps]`       pinned coverage subset
//!                                    (access-binary-trees,
//!                                    date-format-tofte, date-format-xparb,
//!                                    controlflow-recursive)
//!   `bench_pr6 --baseline FILE`      additionally gate: exit non-zero if a
//!                                    program traced in the baseline
//!                                    reports zero fused dispatched now
//!
//! `--smoke` gates the tentpole claim itself: every smoke program must
//! report nonzero fused dispatched instructions. When a gated group
//! (`access`, `date`) is *fully* present in the run, its aggregate
//! tracing wall-clock must additionally not exceed the interpreter's by
//! more than the parity tolerance (the paper-facing "no worse than
//! interpreter-only" bar; per-program parity is deliberately not gated —
//! `access-binary-trees` trades recording overhead for coverage and the
//! group absorbs it).

use std::time::{Duration, Instant};

use tm_bench::{BenchProgram, SUITE};
use tm_support::Json;
use tracemonkey::{Engine, JitOptions, Vm};

/// Pinned coverage-smoke subset: the programs this PR moved from zero to
/// nonzero traced instructions (recursion + string/date builtins), plus
/// the recursion-heavy controlflow program.
const SMOKE: &[&str] = &[
    "access-binary-trees",
    "date-format-tofte",
    "date-format-xparb",
    "controlflow-recursive",
];

/// Groups whose aggregate tracing wall-clock is gated against the
/// interpreter (the acceptance bar of the recursion/builtin coverage
/// work).
const PARITY_GROUPS: &[&str] = &["access", "date"];

/// A gated group's tracing wall-clock may exceed interpreter wall-clock
/// by at most this factor (slack for CI timer jitter; the measured
/// ratios are well below 1.0).
const PARITY_TOLERANCE: f64 = 1.10;

fn fused_counts(prog: &BenchProgram) -> (u64, Vec<(String, u64)>) {
    let mut vm = Vm::with_options(Engine::Tracing, JitOptions::default());
    vm.eval(prog.source)
        .unwrap_or_else(|e| panic!("{} failed under tracing: {e}", prog.name));
    let stats = &vm.monitor().expect("tracing engine has a monitor").profiler.stats;
    let mut builtins: Vec<(String, u64)> =
        stats.builtin_fast_records.iter().map(|(k, &v)| (k.clone(), v)).collect();
    builtins.sort();
    (stats.native_insts_fused, builtins)
}

/// Median of `repeats` fresh-VM wall-clock runs (each run includes
/// compilation, SunSpider-style).
fn median_time(prog: &BenchProgram, engine: Engine, repeats: u32) -> Duration {
    let mut times: Vec<Duration> = (0..repeats.max(1))
        .map(|_| {
            let mut vm = Vm::with_options(engine, JitOptions::default());
            let start = Instant::now();
            vm.eval(prog.source)
                .unwrap_or_else(|e| panic!("{} failed under {engine:?}: {e}", prog.name));
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// `name -> fused dispatched count` from a previous bench_pr6 JSON.
fn load_baseline(path: &str) -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
    doc.get("programs")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("baseline {path} has no programs array"))
        .iter()
        .filter_map(|row| {
            let name = row.get("name")?.as_str()?;
            let fused = row.get("fused_dispatched")?.as_u64()?;
            Some((name.to_owned(), fused))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let only: Option<Vec<String>> =
        flag_value("--only").map(|names| names.split(',').map(str::to_string).collect());
    let baseline_path = flag_value("--baseline");
    let repeats: u32 = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            let prev = i.checked_sub(1).and_then(|p| args.get(p));
            !matches!(prev.map(String::as_str), Some("--only" | "--baseline"))
                && a.parse::<u32>().is_ok()
        })
        .find_map(|(_, a)| a.parse().ok())
        .unwrap_or(if smoke { 3 } else { 5 });

    let programs: Vec<&BenchProgram> = if let Some(only) = &only {
        SUITE.iter().filter(|p| only.iter().any(|n| n == p.name)).collect()
    } else if smoke {
        SUITE.iter().filter(|p| SMOKE.contains(&p.name)).collect()
    } else {
        SUITE.iter().collect()
    };

    let baseline = baseline_path.as_deref().map(load_baseline);
    let mut rows = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;

    for prog in &programs {
        let (fused, builtins) = fused_counts(prog);
        let interp_t = median_time(prog, Engine::Interp, repeats);
        let tracing_t = median_time(prog, Engine::Tracing, repeats);
        eprintln!(
            "{:28} fused {:>12} insts   interp {:8.2} ms   tracing {:8.2} ms{}",
            prog.name,
            fused,
            ms(interp_t),
            ms(tracing_t),
            if prog.untraceable { "   [untraceable_by_design]" } else { "" },
        );
        if smoke && fused == 0 && !prog.untraceable {
            gate_failures.push(format!("{}: zero fused dispatched instructions", prog.name));
        }
        if let Some(base) = &baseline {
            if let Some((_, base_fused)) = base.iter().find(|(n, _)| n == prog.name) {
                if *base_fused > 0 && fused == 0 {
                    gate_failures.push(format!(
                        "{}: traced in the baseline ({} fused insts) but reports zero now",
                        prog.name, base_fused
                    ));
                }
            }
        }
        let builtin_rows: Vec<(String, Json)> =
            builtins.into_iter().map(|(k, v)| (k, Json::from(v))).collect();
        rows.push(Json::obj([
            ("name", Json::from(prog.name)),
            ("group", Json::from(prog.group)),
            ("untraceable_by_design", Json::from(prog.untraceable)),
            ("fused_dispatched", Json::from(fused)),
            ("interp_ms", Json::from(ms(interp_t))),
            ("tracing_ms", Json::from(ms(tracing_t))),
            ("speedup_vs_interp", Json::from(ms(interp_t) / ms(tracing_t).max(1e-9))),
            (
                "builtin_fast_records",
                Json::obj(builtin_rows.iter().map(|(k, v)| (k.as_str(), v.clone()))),
            ),
        ]));
    }

    // Per-group aggregates and the coverage gate: a group is exempt only
    // when *every* member is untraceable by design.
    let mut groups: Vec<(&str, u64, bool)> = Vec::new();
    for prog in &programs {
        let fused = rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some(prog.name))
            .and_then(|r| r.get("fused_dispatched"))
            .and_then(Json::as_u64)
            .unwrap();
        match groups.iter_mut().find(|(g, _, _)| *g == prog.group) {
            Some(entry) => {
                entry.1 += fused;
                entry.2 &= prog.untraceable;
            }
            None => groups.push((prog.group, fused, prog.untraceable)),
        }
    }
    for &(group, fused, exempt) in &groups {
        if fused == 0 && !exempt {
            gate_failures.push(format!(
                "group {group}: zero fused dispatched instructions and not \
                 untraceable_by_design"
            ));
        }
    }
    let group_rows: Vec<Json> = groups
        .iter()
        .map(|&(group, fused, exempt)| {
            Json::obj([
                ("group", Json::from(group)),
                ("fused_dispatched", Json::from(fused)),
                ("untraceable_by_design", Json::from(exempt)),
            ])
        })
        .collect();

    // Group wall-clock parity: gated only when every suite member of the
    // group is present in this run (partial subsets would misattribute a
    // single program's recording overhead to the whole group).
    for &gated in PARITY_GROUPS {
        let members: Vec<&str> =
            SUITE.iter().filter(|p| p.group == gated).map(|p| p.name).collect();
        if !members.iter().all(|m| programs.iter().any(|p| p.name == *m)) {
            continue;
        }
        let sum = |key: &str| -> f64 {
            rows.iter()
                .filter(|r| r.get("group").and_then(Json::as_str) == Some(gated))
                .filter_map(|r| r.get(key).and_then(Json::as_f64))
                .sum()
        };
        let interp_total = sum("interp_ms");
        let tracing_total = sum("tracing_ms");
        if tracing_total > interp_total * PARITY_TOLERANCE {
            gate_failures.push(format!(
                "group {gated}: tracing wall-clock {tracing_total:.2} ms exceeds \
                 interpreter {interp_total:.2} ms by more than {PARITY_TOLERANCE}x"
            ));
        }
    }

    let out = Json::obj([
        ("schema", Json::from("bench_pr6/v1")),
        (
            "statistic",
            Json::from(
                "fused dispatched machine instructions (deterministic, coverage-gated) \
                 and median wall-clock of fresh-VM runs under interp vs tracing",
            ),
        ),
        ("repeats", Json::from(repeats)),
        ("smoke", Json::from(smoke)),
        ("programs", Json::Array(rows)),
        ("groups", Json::Array(group_rows)),
    ]);
    println!("{}", out.to_string_pretty());

    if !gate_failures.is_empty() {
        eprintln!("bench_pr6 coverage gate FAILED:");
        for f in &gate_failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
