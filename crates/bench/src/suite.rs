//! The benchmark suite: JTS ports of the 26 SunSpider programs the paper
//! evaluates (Figures 10–12), plus the paper's Figure 1 sieve.
//!
//! Ports preserve each program's computational kernel. The paper reports
//! three benchmarks as never tracing (they depend on regexps/`eval`):
//! `regexp-dna` keeps that class — its hot loop formats an opaque match
//! record, and object→string coercion is outside this tracer's subset.
//! The two `date-format` ports substituted string→number coercion, which
//! the recorder now traces through the `StrToNum` fast path, so they are
//! traceable here (deliberately: the coverage gate requires every
//! non-flagged group to reach the JIT). See DESIGN.md for the
//! substitution table.

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct BenchProgram {
    /// SunSpider program name.
    pub name: &'static str,
    /// SunSpider category.
    pub group: &'static str,
    /// JTS source.
    pub source: &'static str,
    /// Whether the port is untraceable by design (the paper's
    /// interpreter-only programs).
    pub untraceable: bool,
}

macro_rules! prog {
    ($name:literal, $group:literal, $file:literal) => {
        BenchProgram {
            name: $name,
            group: $group,
            source: include_str!(concat!("../suite/", $file)),
            untraceable: false,
        }
    };
    ($name:literal, $group:literal, $file:literal, untraceable) => {
        BenchProgram {
            name: $name,
            group: $group,
            source: include_str!(concat!("../suite/", $file)),
            untraceable: true,
        }
    };
}

/// The full 26-program SunSpider suite (paper order: 3d, access, bitops,
/// controlflow, crypto, date, math, regexp, string).
pub const SUITE: &[BenchProgram] = &[
    prog!("3d-cube", "3d", "3d-cube.js"),
    prog!("3d-morph", "3d", "3d-morph.js"),
    prog!("3d-raytrace", "3d", "3d-raytrace.js"),
    prog!("access-binary-trees", "access", "access-binary-trees.js"),
    prog!("access-fannkuch", "access", "access-fannkuch.js"),
    prog!("access-nbody", "access", "access-nbody.js"),
    prog!("access-nsieve", "access", "access-nsieve.js"),
    prog!("bitops-3bit-bits-in-byte", "bitops", "bitops-3bit-bits-in-byte.js"),
    prog!("bitops-bits-in-byte", "bitops", "bitops-bits-in-byte.js"),
    prog!("bitops-bitwise-and", "bitops", "bitops-bitwise-and.js"),
    prog!("bitops-nsieve-bits", "bitops", "bitops-nsieve-bits.js"),
    prog!("controlflow-recursive", "controlflow", "controlflow-recursive.js"),
    prog!("crypto-aes", "crypto", "crypto-aes.js"),
    prog!("crypto-md5", "crypto", "crypto-md5.js"),
    prog!("crypto-sha1", "crypto", "crypto-sha1.js"),
    prog!("date-format-tofte", "date", "date-format-tofte.js"),
    prog!("date-format-xparb", "date", "date-format-xparb.js"),
    prog!("math-cordic", "math", "math-cordic.js"),
    prog!("math-partial-sums", "math", "math-partial-sums.js"),
    prog!("math-spectral-norm", "math", "math-spectral-norm.js"),
    prog!("regexp-dna", "regexp", "regexp-dna.js", untraceable),
    prog!("string-base64", "string", "string-base64.js"),
    prog!("string-fasta", "string", "string-fasta.js"),
    prog!("string-tagcloud", "string", "string-tagcloud.js"),
    prog!("string-unpack-code", "string", "string-unpack-code.js"),
    prog!("string-validate-input", "string", "string-validate-input.js"),
];

/// The paper's Figure 1 sieve, scaled up (used by examples and tests).
pub const SIEVE: BenchProgram = BenchProgram {
    name: "sieve",
    group: "extra",
    source: include_str!("../suite/extra-sieve.js"),
    untraceable: false,
};

/// Looks up a program by name.
pub fn by_name(name: &str) -> Option<&'static BenchProgram> {
    SUITE.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_26_programs_like_sunspider() {
        assert_eq!(SUITE.len(), 26);
        assert_eq!(SUITE.iter().filter(|p| p.untraceable).count(), 1);
        assert!(by_name("bitops-bitwise-and").is_some());
        assert!(by_name("nope").is_none());
    }
}
