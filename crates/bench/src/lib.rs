//! # tm-bench
//!
//! Benchmark suite and paper-figure harnesses for the TraceMonkey
//! reproduction: JTS ports of the 26 SunSpider programs (the paper's
//! evaluation workload) and binaries regenerating Figures 10, 11, and 12
//! plus the ablation studies. See EXPERIMENTS.md for results.

pub mod harness;
pub mod suite;

pub use harness::{run_all_engines, run_program, speedup};
pub use suite::{by_name, BenchProgram, SIEVE, SUITE};
