//! Microbenchmarks of tracer components (on the in-tree `tm-support`
//! harness): recording+compilation latency (the paper's low-startup
//! requirement), trace-call transition overhead (§6.1/§6.2), and the LIR
//! filter pipeline.

use tm_support::bench::Runner;
use tracemonkey::lir::{FilterOptions, Lir, LirBuffer, LirType};
use tracemonkey::{Engine, JitOptions, Vm};

fn main() {
    let mut runner = Runner::from_args();

    // How long does it take to go from cold start to compiled trace and
    // a correct answer on a small loop? (Startup latency.)
    runner.bench("record_and_compile_small_loop", || {
        let mut vm = Vm::new(Engine::Tracing);
        vm.eval("var s = 0; for (var i = 0; i < 10; i++) s += i; s").expect("runs")
    });

    // A loop that exits every 4 iterations: measures monitor transition
    // cost (the §3.3 pathological shape, pre-mitigation).
    runner.bench("trace_call_transitions", || {
        let mut opts = JitOptions::default();
        opts.min_useful_bytecodes = 0; // keep the tree alive
        let mut vm = Vm::with_options(Engine::Tracing, opts);
        vm.eval(
            "var s = 0;
             for (var i = 0; i < 20000; i++) { if (i % 4 == 0) s += 3; else s += 1; }
             s",
        )
        .expect("runs")
    });

    // Forward-filter throughput over a synthetic instruction stream.
    runner.bench("forward_filters_10k_insts", || {
        let mut buf = LirBuffer::new(FilterOptions::default());
        let x = buf.emit(Lir::Import { slot: 0, ty: LirType::Int });
        let mut v = x;
        for i in 0..10_000u32 {
            let k = buf.emit(Lir::ConstI((i % 7) as i32));
            v = buf.emit(Lir::AddI(v, k));
            let dup = buf.emit(Lir::AddI(v, k));
            let _ = buf.emit(Lir::XorI(dup, v));
        }
        buf.into_trace().code.len()
    });
}
