//! Criterion benchmarks: every SunSpider program under every engine (the
//! statistical counterpart of the fig10 binary). Run a focused subset with
//! `cargo bench -p tm-bench -- <program-name>`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tm_bench::SUITE;
use tracemonkey::{Engine, JitOptions, Vm};

fn bench_suite(c: &mut Criterion) {
    for prog in SUITE {
        let mut group = c.benchmark_group(prog.name);
        group.sample_size(10);
        for (label, engine) in [
            ("interp", Engine::Interp),
            ("sfx", Engine::FastInterp),
            ("method", Engine::Method),
            ("tracing", Engine::Tracing),
        ] {
            group.bench_with_input(BenchmarkId::from_parameter(label), &engine, |b, &engine| {
                b.iter(|| {
                    let mut vm = Vm::with_options(engine, JitOptions::default());
                    vm.eval(prog.source).expect("benchmark program runs")
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
