//! Wall-clock benchmarks (on the in-tree `tm-support` harness): every
//! SunSpider program under every engine (the statistical counterpart of
//! the fig10 binary). Run a focused subset with
//! `cargo bench -p tm-bench --bench engines -- <program-name>`;
//! `TM_BENCH_SAMPLES`/`TM_BENCH_WARMUP` override the 10-sample default.

use tm_bench::SUITE;
use tm_support::bench::Runner;
use tracemonkey::{Engine, JitOptions, Vm};

fn main() {
    let mut runner = Runner::from_args();
    for prog in SUITE {
        for (label, engine) in [
            ("interp", Engine::Interp),
            ("sfx", Engine::FastInterp),
            ("method", Engine::Method),
            ("tracing", Engine::Tracing),
        ] {
            runner.bench(&format!("{}/{label}", prog.name), || {
                let mut vm = Vm::with_options(engine, JitOptions::default());
                vm.eval(prog.source).expect("benchmark program runs")
            });
        }
    }
}
