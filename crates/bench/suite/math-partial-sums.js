// math-partial-sums: nine partial series sums (pow/sin/cos heavy).
function partial(n) {
    var a1 = 0, a2 = 0, a3 = 0, a4 = 0, a5 = 0, a6 = 0, a7 = 0, a8 = 0, a9 = 0;
    var twothirds = 2.0 / 3.0;
    var alt = -1.0;
    var k2 = 0, k3 = 0, sk = 0, ck = 0;
    for (var k = 1; k <= n; k++) {
        k2 = k * k;
        k3 = k2 * k;
        sk = Math.sin(k);
        ck = Math.cos(k);
        alt = -alt;
        a1 += Math.pow(twothirds, k - 1);
        a2 += Math.pow(k, -0.5);
        a3 += 1.0 / (k * (k + 1.0));
        a4 += 1.0 / (k3 * sk * sk);
        a5 += 1.0 / (k3 * ck * ck);
        a6 += 1.0 / k;
        a7 += 1.0 / k2;
        a8 += alt / k;
        a9 += alt / (2 * k - 1);
    }
    return a1 + a2 + a3 + a4 + a5 + a6 + a7 + a8 + a9;
}
var total = 0;
for (var i = 1024; i <= 4096; i *= 2) total += partial(i);
Math.floor(total * 1000)
