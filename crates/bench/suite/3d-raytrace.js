// 3d-raytrace: ray-sphere intersection over a pixel grid (simplified
// SunSpider raytracer kernel: constructors, prototype property reads,
// heavy double math).
function Sphere(cx, cy, cz, r) {
    this.cx = cx; this.cy = cy; this.cz = cz; this.r2 = r * r;
}
var spheres = [new Sphere(0, 0, 5, 1), new Sphere(2, 1, 7, 1.5), new Sphere(-2, -1, 6, 0.8)];
var width = 100, height = 100;
var hits = 0;
var shade = 0.0;
for (var py = 0; py < height; py++) {
    for (var px = 0; px < width; px++) {
        var dx = (px - width / 2) / width;
        var dy = (py - height / 2) / height;
        var dz = 1.0;
        var len = Math.sqrt(dx * dx + dy * dy + dz * dz);
        dx /= len; dy /= len; dz /= len;
        var best = 1e30;
        for (var s = 0; s < 3; s++) {
            var sp = spheres[s];
            var ocx = -sp.cx, ocy = -sp.cy, ocz = -sp.cz;
            var b = ocx * dx + ocy * dy + ocz * dz;
            var c = ocx * ocx + ocy * ocy + ocz * ocz - sp.r2;
            var disc = b * b - c;
            if (disc > 0) {
                var t = -b - Math.sqrt(disc);
                if (t > 0 && t < best) best = t;
            }
        }
        if (best < 1e30) { hits++; shade += 1.0 / (1.0 + best); }
    }
}
hits * 1000 + Math.floor(shade)
