// bitops-3bit-bits-in-byte: count bits with the 3-instruction trick.
function fast3bitlookup(b) {
    var c = 0xE994;
    var bi3b = ((c >> ((b << 1) & 14)) & 3) + ((c >> (((b >> 2) & 7) << 1)) & 3)
             + ((c >> (((b >> 5) & 7) << 1)) & 3);
    return bi3b;
}
var sum = 0;
for (var x = 0; x < 500; x++)
    for (var y = 0; y < 256; y++)
        sum += fast3bitlookup(y);
sum
