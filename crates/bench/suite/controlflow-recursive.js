// controlflow-recursive: ackermann, fib, tak — recursion is untraceable
// in TraceMonkey, so this runs mostly in the interpreter (paper Fig. 11).
function ack(m, n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
function fib(n) {
    if (n < 2) return n;
    return fib(n - 2) + fib(n - 1);
}
function tak(x, y, z) {
    if (y >= x) return z;
    return tak(tak(x - 1, y, z), tak(y - 1, z, x), tak(z - 1, x, y));
}
var result = 0;
for (var i = 3; i <= 5; i++) {
    result += ack(3, i);
    result += fib(10 + i);
    result += tak(3 * i + 3, 2 * i + 2, i + 1);
}
result
