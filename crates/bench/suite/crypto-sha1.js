// crypto-sha1: SHA-1-style rotate/mix rounds.
function rol(n, c) { return (n << c) | (n >>> (32 - c)); }
var w = [];
for (var i = 0; i < 80; i++) w[i] = (i * 0x9e3779b9) | 0;
var h0 = 0x67452301 | 0, h1 = 0xefcdab89 | 0, h2 = 0x98badcfe | 0, h3 = 0x10325476 | 0, h4 = 0xc3d2e1f0 | 0;
for (var block = 0; block < 3000; block++) {
    var a = h0, b = h1, c = h2, d = h3, e = h4;
    for (var i = 0; i < 80; i++) {
        var f, k;
        if (i < 20) { f = (b & c) | (~b & d); k = 0x5a827999 | 0; }
        else if (i < 40) { f = b ^ c ^ d; k = 0x6ed9eba1 | 0; }
        else if (i < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8f1bbcdc | 0; }
        else { f = b ^ c ^ d; k = 0xca62c1d6 | 0; }
        var temp = (rol(a, 5) + f + e + k + w[i]) | 0;
        e = d; d = c; c = rol(b, 30); b = a; a = temp;
    }
    h0 = (h0 + a) | 0; h1 = (h1 + b) | 0; h2 = (h2 + c) | 0; h3 = (h3 + d) | 0; h4 = (h4 + e) | 0;
}
(h0 ^ h1 ^ h2 ^ h3 ^ h4) & 0xfffffff
