// string-base64: base64 encode/decode of generated data.
var chars = 'ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/';
function encode(data) {
    var out = '';
    var i = 0;
    while (i + 2 < data.length) {
        var n = (data.charCodeAt(i) << 16) | (data.charCodeAt(i + 1) << 8) | data.charCodeAt(i + 2);
        out = out + chars.charAt((n >> 18) & 63) + chars.charAt((n >> 12) & 63)
                  + chars.charAt((n >> 6) & 63) + chars.charAt(n & 63);
        i += 3;
    }
    return out;
}
function decodeSum(data) {
    var sum = 0;
    for (var i = 0; i + 3 < data.length; i += 4) {
        var n = (chars.indexOf(data.charAt(i)) << 18) | (chars.indexOf(data.charAt(i + 1)) << 12)
              | (chars.indexOf(data.charAt(i + 2)) << 6) | chars.indexOf(data.charAt(i + 3));
        sum = (sum + ((n >> 16) & 255) + ((n >> 8) & 255) + (n & 255)) & 0xffffff;
    }
    return sum;
}
var data = '';
for (var i = 0; i < 600; i++) data = data + String.fromCharCode(25 + (i * 7) % 91);
var total = 0;
for (var round = 0; round < 12; round++) {
    var enc = encode(data);
    total = (total + decodeSum(enc)) & 0xffffff;
}
total
