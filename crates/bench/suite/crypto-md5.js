// crypto-md5: MD5-style nonlinear mixing rounds over message words
// derived from a string via charCodeAt.
function rol(n, c) { return (n << c) | (n >>> (32 - c)); }
var msg = 'The quick brown fox jumps over the lazy dog, then does it again and again to fill the block with enough data for hashing rounds.';
var words = [];
for (var i = 0; i < 16; i++) {
    var w = 0;
    for (var b = 0; b < 4; b++) w = (w << 8) | msg.charCodeAt((i * 4 + b) % msg.length);
    words[i] = w;
}
var a = 0x67452301 | 0, b = 0xefcdab89 | 0, c = 0x98badcfe | 0, d = 0x10325476 | 0;
for (var block = 0; block < 12000; block++) {
    for (var i = 0; i < 16; i++) {
        var f = (b & c) | (~b & d);
        var tmp = d; d = c; c = b;
        b = (b + rol((a + f + words[i] + 0x5a827999) | 0, 7)) | 0;
        a = tmp;
    }
}
(a ^ b ^ c ^ d) & 0xfffffff
