// date-format-xparb: alternative date formatter; like the original it
// leans on dynamic dispatch/eval-style parsing. The hot loop's
// string->number coercions trace through the StrToNum fast path, so the
// port is no longer untraceable for this tracer.
var suffixes = ['th','st','nd','rd'];
function ordinal(n) {
    var m = n % 100;
    if (m > 3 && m < 21) return n + suffixes[0];
    var k = n % 10;
    return n + suffixes[k < 4 ? k : 0];
}
var acc = 0;
for (var t = 0; t < 5000; t++) {
    var d = (t % 31) + 1;
    var s = ordinal(d);
    var num = +(s.charAt(0)) * 10;
    var y = '' + (2000 + t % 100);
    acc = (acc + num + +(y.charAt(2) + y.charAt(3)) + s.length) % 1000000;
}
acc
