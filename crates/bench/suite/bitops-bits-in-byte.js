// bitops-bits-in-byte: shift-and-mask bit counting.
function bitsinbyte(b) {
    var m = 1, c = 0;
    while (m < 0x100) {
        if (b & m) c++;
        m <<= 1;
    }
    return c;
}
var sum = 0;
for (var x = 0; x < 350; x++)
    for (var y = 0; y < 256; y++)
        sum += bitsinbyte(y);
sum
