// crypto-aes: byte-substitution + mixing rounds over a state array
// (simplified AES-like kernel: table lookups, xors, shifts).
var sbox = [];
for (var i = 0; i < 256; i++) sbox[i] = ((i * 7) ^ (i >> 3) ^ 0x63) & 0xff;
var state = [];
for (var i = 0; i < 16; i++) state[i] = i * 11 & 0xff;
var key = [];
for (var i = 0; i < 16; i++) key[i] = (i * 31 + 7) & 0xff;
var checksum = 0;
for (var block = 0; block < 4000; block++) {
    for (var round = 0; round < 10; round++) {
        // SubBytes
        for (var i = 0; i < 16; i++) state[i] = sbox[state[i]];
        // ShiftRows (simplified rotation)
        var t = state[1]; state[1] = state[5]; state[5] = state[9]; state[9] = state[13]; state[13] = t;
        // MixColumns-ish
        for (var c = 0; c < 4; c++) {
            var a0 = state[c * 4], a1 = state[c * 4 + 1], a2 = state[c * 4 + 2], a3 = state[c * 4 + 3];
            state[c * 4] = (a0 ^ a1 ^ (a2 << 1)) & 0xff;
            state[c * 4 + 1] = (a1 ^ a2 ^ (a3 << 1)) & 0xff;
            state[c * 4 + 2] = (a2 ^ a3 ^ (a0 << 1)) & 0xff;
            state[c * 4 + 3] = (a3 ^ a0 ^ (a1 << 1)) & 0xff;
        }
        // AddRoundKey
        for (var i = 0; i < 16; i++) state[i] = state[i] ^ key[i];
    }
    checksum = (checksum + state[block & 15]) & 0xffffff;
}
checksum
