// 3d-cube: rotate the 8 vertices of a cube through many frames.
// Port of the SunSpider kernel: 3x3 rotation matrices applied to points.
var vx = [-1, 1, 1, -1, -1, 1, 1, -1];
var vy = [-1, -1, 1, 1, -1, -1, 1, 1];
var vz = [-1, -1, -1, -1, 1, 1, 1, 1];
var outx = [0,0,0,0,0,0,0,0];
var outy = [0,0,0,0,0,0,0,0];
var outz = [0,0,0,0,0,0,0,0];
var checksum = 0;
for (var frame = 0; frame < 6000; frame++) {
    var ax = frame * 0.01, ay = frame * 0.013, az = frame * 0.017;
    var sx = Math.sin(ax), cx = Math.cos(ax);
    var sy = Math.sin(ay), cy = Math.cos(ay);
    var sz = Math.sin(az), cz = Math.cos(az);
    // Combined rotation matrix.
    var m00 = cy * cz, m01 = -cy * sz, m02 = sy;
    var m10 = sx * sy * cz + cx * sz, m11 = -sx * sy * sz + cx * cz, m12 = -sx * cy;
    var m20 = -cx * sy * cz + sx * sz, m21 = cx * sy * sz + sx * cz, m22 = cx * cy;
    for (var i = 0; i < 8; i++) {
        var x = vx[i], y = vy[i], z = vz[i];
        outx[i] = m00 * x + m01 * y + m02 * z;
        outy[i] = m10 * x + m11 * y + m12 * z;
        outz[i] = m20 * x + m21 * y + m22 * z;
    }
    checksum = checksum + outx[0] + outy[3] + outz[7];
}
Math.floor(checksum * 1000)
