// string-tagcloud: word-frequency tag cloud with string-keyed objects
// and markup string building.
var words = ['web','script','trace','type','loop','fast','cloud','data','node','code',
             'json','font','page','site','blog','post','link','list','item','view'];
var freq = {};
for (var i = 0; i < 20; i++) freq[words[i]] = 0;
var seed = 7;
for (var i = 0; i < 30000; i++) {
    seed = (seed * 1103515245 + 12345) & 0x7fffffff;
    var w = words[seed % 20];
    freq[w] = freq[w] + 1;
}
var maxf = 0;
for (var i = 0; i < 20; i++) if (freq[words[i]] > maxf) maxf = freq[words[i]];
var markup = '';
for (var i = 0; i < 20; i++) {
    var size = 10 + Math.floor(30 * freq[words[i]] / maxf);
    markup = markup + '<span style="font-size:' + size + 'px">' + words[i] + '</span>';
}
markup.length
