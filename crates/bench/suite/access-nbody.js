// access-nbody: planetary n-body simulation (objects with double fields).
function Body(x, y, z, vx, vy, vz, mass) {
    this.x = x; this.y = y; this.z = z;
    this.vx = vx; this.vy = vy; this.vz = vz;
    this.mass = mass;
}
var SOLAR_MASS = 4 * Math.PI * Math.PI;
var DAYS = 365.24;
var bodies = [
    new Body(0, 0, 0, 0, 0, 0, SOLAR_MASS),
    new Body(4.84, -1.16, -0.10, 0.00166 * DAYS, 0.0077 * DAYS, -0.0000690 * DAYS, 0.000954 * SOLAR_MASS),
    new Body(8.34, 4.12, -0.40, -0.00276 * DAYS, 0.0049 * DAYS, 0.0000230 * DAYS, 0.000285 * SOLAR_MASS),
    new Body(12.89, -15.11, -0.22, 0.00296 * DAYS, 0.00237 * DAYS, -0.0000296 * DAYS, 0.0000436 * SOLAR_MASS),
    new Body(15.37, -25.91, 0.17, 0.00268 * DAYS, 0.00162 * DAYS, -0.0000951 * DAYS, 0.0000515 * SOLAR_MASS)
];
var dt = 0.01;
for (var step = 0; step < 6000; step++) {
    for (var i = 0; i < 5; i++) {
        var bi = bodies[i];
        for (var j = i + 1; j < 5; j++) {
            var bj = bodies[j];
            var dx = bi.x - bj.x, dy = bi.y - bj.y, dz = bi.z - bj.z;
            var d2 = dx * dx + dy * dy + dz * dz;
            var mag = dt / (d2 * Math.sqrt(d2));
            bi.vx -= dx * bj.mass * mag; bi.vy -= dy * bj.mass * mag; bi.vz -= dz * bj.mass * mag;
            bj.vx += dx * bi.mass * mag; bj.vy += dy * bi.mass * mag; bj.vz += dz * bi.mass * mag;
        }
    }
    for (var i = 0; i < 5; i++) {
        var b = bodies[i];
        b.x += dt * b.vx; b.y += dt * b.vy; b.z += dt * b.vz;
    }
}
var e = 0;
for (var i = 0; i < 5; i++) {
    var b = bodies[i];
    e += 0.5 * b.mass * (b.vx * b.vx + b.vy * b.vy + b.vz * b.vz);
}
Math.floor(e * 1000000)
