// regexp-dna: DNA pattern frequency counting. The original is regexp
// bound (regexps are not traceable in TraceMonkey); this port scans with
// string operations and keeps the untraceable character by converting
// digit strings to numbers in the scoring loop.
var alu = 'GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGAGGCGGGCGGA';
var seq = '';
for (var i = 0; i < 40; i++) seq = seq + alu;
var patterns = ['AGGC', 'CGCG', 'TTTG', 'GGGA', 'CCCA'];
var weights = ['3', '1', '4', '1', '5'];
var score = 0;
for (var p = 0; p < patterns.length; p++) {
    var pat = patterns[p];
    var w = weights[p];
    var from = 0;
    while (true) {
        var at = seq.indexOf(pat, from);
        if (at < 0) break;
        // Weighted scoring parses the digit string on every match — the
        // untraceable coercion lives in the hot loop, like the regexp
        // engine calls in the original.
        score += +w;
        from = at + 1;
    }
}
score
