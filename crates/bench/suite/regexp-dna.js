// regexp-dna: DNA pattern frequency counting. The original is regexp
// bound (regexps are not traceable in TraceMonkey); this port scans with
// string operations and keeps the untraceable character by formatting an
// opaque match record — ToString(object) — on every match. (The earlier
// stand-in, string->number coercion, became traceable once the recorder
// grew a StrToNum fast path.)
var alu = 'GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGAGGCGGGCGGA';
var seq = '';
for (var i = 0; i < 40; i++) seq = seq + alu;
var patterns = ['AGGC', 'CGCG', 'TTTG', 'GGGA', 'CCCA'];
var weights = [3, 1, 4, 1, 5];
var tag = {kind: 1};
var score = 0;
var log = 0;
for (var p = 0; p < patterns.length; p++) {
    var pat = patterns[p];
    var w = weights[p];
    var from = 0;
    while (true) {
        var at = seq.indexOf(pat, from);
        if (at < 0) break;
        // Formatting the match record (object->string coercion) is the
        // untraceable step, standing in for the regexp engine calls in
        // the original: every recording attempt aborts here.
        log = log + ('' + tag).length;
        score += w;
        from = at + 1;
    }
}
score + log % 1
