// string-unpack-code: decompress packed text (dictionary substitution
// driven by charCodeAt / fromCharCode and concatenation).
var dict = ['function', 'return', 'var ', 'while', 'for', 'if', 'else', 'true', 'false', 'null'];
var packed = '';
var seed = 3;
for (var i = 0; i < 1500; i++) {
    seed = (seed * 16807) % 2147483647;
    packed = packed + String.fromCharCode(48 + (seed % 10));
}
var total = 0;
for (var round = 0; round < 12; round++) {
    var out = '';
    var outLen = 0;
    for (var i = 0; i < packed.length; i++) {
        var idx = packed.charCodeAt(i) - 48;
        var word = dict[idx];
        outLen += word.length;
        if ((i & 63) == 0) out = out + word;
    }
    total = (total + outLen + out.length) % 1000000;
}
total
