// string-fasta: pseudo-random sequence generation with cumulative
// probability selection.
var last = 42;
function genRandom(max) {
    last = (last * 3877 + 29573) % 139968;
    return max * last / 139968;
}
var codes = 'acgtBDHKMNRSVWY';
var probs = [0.27, 0.12, 0.12, 0.27, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02];
var cum = [];
var c = 0;
for (var i = 0; i < probs.length; i++) { c += probs[i]; cum[i] = c; }
var counts = [];
for (var i = 0; i < 15; i++) counts[i] = 0;
for (var i = 0; i < 300000; i++) {
    var r = genRandom(1);
    var k = 0;
    while (cum[k] < r) k++;
    counts[k]++;
}
var checksum = 0;
for (var i = 0; i < 15; i++) checksum = (checksum + counts[i] * codes.charCodeAt(i)) % 1000000007;
checksum
