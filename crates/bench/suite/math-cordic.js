// math-cordic: CORDIC sine/cosine approximation (int shifts + adds).
var AG_CONST = 0.6072529350;
function FIXED(X) { return X * 65536.0; }
function FLOAT(X) { return X / 65536.0; }
function DEG2RAD(X) { return 0.017453 * X; }
var Angles = [
    FIXED(45.0), FIXED(26.565), FIXED(14.0362), FIXED(7.12502),
    FIXED(3.57633), FIXED(1.78991), FIXED(0.895174), FIXED(0.447614),
    FIXED(0.223811), FIXED(0.111906), FIXED(0.055953), FIXED(0.027977)
];
var Target = 28.027;
function cordicsincos() {
    var X = FIXED(AG_CONST);
    var Y = 0;
    var TargetAngle = FIXED(Target);
    var CurrAngle = 0;
    for (var Step = 0; Step < 12; Step++) {
        var NewX;
        if (TargetAngle > CurrAngle) {
            NewX = X - (Y >> Step);
            Y = (X >> Step) + Y;
            X = NewX;
            CurrAngle += Angles[Step];
        } else {
            NewX = X + (Y >> Step);
            Y = -(X >> Step) + Y;
            X = NewX;
            CurrAngle -= Angles[Step];
        }
    }
    return FLOAT(X) * FLOAT(Y);
}
var total = 0;
for (var i = 0; i < 50000; i++) total += cordicsincos();
Math.floor(total)
