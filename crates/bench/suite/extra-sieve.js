// The paper's Figure 1 sample program (scaled): sieve of Eratosthenes.
var primes = [];
for (var i = 0; i < 2000; i++) primes[i] = true;
for (var i = 2; i < 2000; ++i) {
    if (!primes[i]) continue;
    for (var k = i + i; k < 2000; k += i) primes[k] = false;
}
var count = 0;
for (var i = 2; i < 2000; i++) if (primes[i]) count++;
count
