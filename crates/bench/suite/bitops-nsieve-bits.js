// bitops-nsieve-bits: sieve with packed bit arrays.
function primes(isNotPrime, n) {
    var count = 0, m = 10000 << n, size = m + 31 >> 5;
    for (var i = 0; i < size; i++) isNotPrime[i] = 0;
    for (var i = 2; i < m; i++) {
        if ((isNotPrime[i >> 5] & (1 << (i & 31))) == 0) {
            count++;
            for (var k = i + i; k < m; k += i)
                isNotPrime[k >> 5] = isNotPrime[k >> 5] | (1 << (k & 31));
        }
    }
    return count;
}
var arr = [];
var sum = 0;
for (var i = 0; i <= 2; i++) sum += primes(arr, i);
sum
