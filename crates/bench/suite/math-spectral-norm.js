// math-spectral-norm: power iteration with the infinite matrix A.
function A(i, j) {
    return 1 / ((i + j) * (i + j + 1) / 2 + i + 1);
}
function Au(u, v, n) {
    for (var i = 0; i < n; i++) {
        var t = 0;
        for (var j = 0; j < n; j++) t += A(i, j) * u[j];
        v[i] = t;
    }
}
function Atu(u, v, n) {
    for (var i = 0; i < n; i++) {
        var t = 0;
        for (var j = 0; j < n; j++) t += A(j, i) * u[j];
        v[i] = t;
    }
}
var n = 120;
var u = [], v = [], w = [];
for (var i = 0; i < n; i++) { u[i] = 1; v[i] = 0; w[i] = 0; }
for (var it = 0; it < 10; it++) {
    Au(u, w, n); Atu(w, v, n);
    Au(v, w, n); Atu(w, u, n);
}
var vBv = 0, vv = 0;
for (var i = 0; i < n; i++) { vBv += u[i] * v[i]; vv += v[i] * v[i]; }
Math.floor(Math.sqrt(vBv / vv) * 100000000)
