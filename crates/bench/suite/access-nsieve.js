// access-nsieve: classic sieve with a boolean flags array.
function nsieve(m, isPrime) {
    for (var i = 2; i <= m; i++) isPrime[i] = true;
    var count = 0;
    for (var i = 2; i <= m; i++) {
        if (isPrime[i]) {
            for (var k = i + i; k <= m; k += i) isPrime[k] = false;
            count++;
        }
    }
    return count;
}
var sum = 0;
var flags = [];
for (var i = 1; i <= 3; i++) {
    var m = (1 << i) * 10000;
    sum += nsieve(m, flags);
}
sum
