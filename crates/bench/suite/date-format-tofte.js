// date-format-tofte: date formatting. The original drives formatting
// through eval(), which TraceMonkey cannot trace; our port substitutes
// numeric-string coercions in the hot loop. Since the recorder grew a
// StrToNum fast path, those coercions trace — the port now exercises the
// string/date builtin fast paths instead of pinning the interpreter.
function pad(n) { return n < 10 ? '0' + n : '' + n; }
var out = 0;
var names = ['Jan','Feb','Mar','Apr','May','Jun','Jul','Aug','Sep','Oct','Nov','Dec'];
for (var t = 0; t < 4000; t++) {
    var day = (t * 7) % 28 + 1;
    var month = (t * 3) % 12;
    var year = 1970 + (t % 60);
    var h = t % 24, m = (t * 13) % 60, s = (t * 29) % 60;
    var str = pad(day) + '-' + names[month] + '-' + year + ' ' + pad(h) + ':' + pad(m) + ':' + pad(s);
    // Parse the digits back out of the formatted string (string->number
    // coercion: the untraceable step, standing in for eval()).
    var dd = +(str.charAt(0) + str.charAt(1));
    var hh = +(str.charAt(12) + str.charAt(13));
    out = (out + dd + hh + str.length) % 1000000;
}
out
