// bitops-bitwise-and: the paper's 25x headliner — a single & in a loop.
var bitwiseAndValue = 4294967296;
for (var i = 0; i < 2000000; i++)
    bitwiseAndValue = bitwiseAndValue & i;
bitwiseAndValue
