// string-validate-input: generate user input and validate emails / zip
// codes character by character.
var letters = 'abcdefghijklmnopqrstuvwxyz';
var seed = 11;
function rnd(n) { seed = (seed * 1103515245 + 12345) & 0x7fffffff; return seed % n; }
function isDigit(ch) { var c = ch.charCodeAt(0); return c >= 48 && c <= 57; }
function isLetter(ch) { var c = ch.charCodeAt(0); return (c >= 97 && c <= 122) || (c >= 65 && c <= 90); }
var okEmails = 0, okZips = 0;
for (var i = 0; i < 3000; i++) {
    // Build a name@host.tld email.
    var name = '';
    var nlen = 3 + rnd(8);
    for (var k = 0; k < nlen; k++) name = name + letters.charAt(rnd(26));
    var email = name + '@' + letters.charAt(rnd(26)) + letters.charAt(rnd(26)) + '.com';
    // Validate: letters, one @, letters, one dot.
    var at = email.indexOf('@');
    var dot = email.indexOf('.', at);
    var valid = at > 0 && dot > at + 1 && dot < email.length - 1;
    for (var k = 0; valid && k < at; k++) if (!isLetter(email.charAt(k))) valid = false;
    if (valid) okEmails++;
    // Build and validate a zip code.
    var zip = '';
    for (var k = 0; k < 5; k++) zip = zip + String.fromCharCode(48 + rnd(10));
    var zvalid = zip.length == 5;
    for (var k = 0; zvalid && k < 5; k++) if (!isDigit(zip.charAt(k))) zvalid = false;
    if (zvalid) okZips++;
}
okEmails * 10000 + okZips
