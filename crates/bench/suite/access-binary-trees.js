// access-binary-trees: allocate and walk binary trees (GC pressure +
// recursion; recursion is untraceable, as in the paper's TraceMonkey).
function TreeNode(left, right, item) {
    this.left = left; this.right = right; this.item = item;
}
function itemCheck(node) {
    if (node.left === null) return node.item;
    return node.item + itemCheck(node.left) - itemCheck(node.right);
}
function bottomUpTree(item, depth) {
    if (depth > 0)
        return new TreeNode(bottomUpTree(2 * item - 1, depth - 1),
                            bottomUpTree(2 * item, depth - 1), item);
    return new TreeNode(null, null, item);
}
var check = 0;
for (var n = 4; n <= 7; n++) {
    var iterations = 1 << (9 - n);
    for (var i = 1; i <= iterations; i++) {
        check += itemCheck(bottomUpTree(i, n));
        check += itemCheck(bottomUpTree(-i, n));
    }
}
check
