// 3d-morph: morph a height field with sine waves (SunSpider kernel).
var size = 120;
var a = [];
for (var i = 0; i < size * size; i++) a[i] = 0;
var PI2 = Math.PI * 2;
for (var f = 0; f < 12; f++) {
    var fd = f / 25;
    for (var i = 0; i < size; i++) {
        for (var j = 0; j < size; j++) {
            a[i * size + j] = Math.sin((i + fd) * PI2 / size) * 0.3;
        }
    }
}
var sum = 0;
for (var i = 0; i < size * size; i++) sum += a[i];
Math.floor(sum * 1000000)
