// access-fannkuch: permutation flipping (pure int array shuffling).
var n = 7;
var perm = [], perm1 = [], count = [];
for (var i = 0; i < n; i++) perm1[i] = i;
var maxFlips = 0, checksum = 0, permCount = 0;
var r = n;
while (true) {
    while (r != 1) { count[r - 1] = r; r--; }
    for (var i = 0; i < n; i++) perm[i] = perm1[i];
    var flips = 0;
    var k = perm[0];
    while (k != 0) {
        var k2 = (k + 1) >> 1;
        for (var i = 0; i < k2; i++) {
            var temp = perm[i]; perm[i] = perm[k - i]; perm[k - i] = temp;
        }
        flips++;
        k = perm[0];
    }
    if (flips > maxFlips) maxFlips = flips;
    checksum += permCount % 2 == 0 ? flips : -flips;
    permCount++;
    while (true) {
        if (r == n) { maxFlips = maxFlips; r = n; break; }
        var perm0 = perm1[0];
        for (var i = 0; i < r; i++) perm1[i] = perm1[i + 1];
        perm1[r] = perm0;
        count[r] = count[r] - 1;
        if (count[r] > 0) break;
        r++;
    }
    if (r == n) break;
}
maxFlips * 100000 + (checksum & 0xffff)
